// Fig. 11 — roofline chart of RankNet training kernels on this CPU.
// Prints the measured machine ceilings (dense FMA peak, scalar add peak,
// DRAM bandwidth) and, for each dispatched kernel variant (scalar / avx2)
// and batch size 32 vs 3200, the (arithmetic intensity, achieved Gflop/s)
// position of each kernel class — MatMul, Mul, Add, Sigmoid, Tanh —
// measured inside real training steps. The variant axis shows how far the
// hand-vectorized GEMM moves the MatMul dot toward the FMA ceiling.
#include <cstdio>

#include "core/device_model.hpp"
#include "tensor/simd_kernels.hpp"

int main() {
  using namespace ranknet;
  const auto roof = core::measure_cpu_roofline();
  std::printf("Fig. 11 — roofline of RankNet training kernels (CPU)\n");
  std::printf("machine ceilings (measured):\n");
  std::printf("  dense FMA peak : %8.2f Gflop/s\n", roof.peak_gflops);
  std::printf("  scalar add peak: %8.2f Gflop/s\n", roof.scalar_gflops);
  std::printf("  DRAM bandwidth : %8.2f GB/s\n", roof.dram_bw_gbs);
  std::printf("  ridge point    : %8.4f flop/byte\n\n",
              roof.peak_gflops / roof.dram_bw_gbs);

  const tensor::Kernel kernels[] = {
      tensor::Kernel::kMatMul, tensor::Kernel::kMul, tensor::Kernel::kAdd,
      tensor::Kernel::kSigmoid, tensor::Kernel::kTanh};

  namespace tk = tensor::kernels;
  // Precision axis: the reduced variants show how much of the MatMul dot's
  // distance to the bandwidth roof comes from weight bytes (bf16 halves
  // them, int8 quarters them); epilogues stay f64 so the other dots barely
  // move. Note Adam invalidates packs every step, so training-loop numbers
  // include the per-step repack cost — the honest serving-side picture is
  // fig10/fig12, where weights are frozen.
  for (const auto variant : {tk::Variant::kScalar, tk::Variant::kAvx2,
                             tk::Variant::kBf16, tk::Variant::kInt8}) {
    if (!tk::cpu_supports(variant)) {
      std::printf("kernel variant %s: not supported on this CPU, skipped\n\n",
                  tk::variant_name(variant));
      continue;
    }
    (void)tk::set_variant(variant);
    for (const std::size_t batch : {32UL, 3200UL}) {
      const auto w =
          core::measure_ranknet_workload(batch, batch > 1000 ? 1 : 3);
      std::printf(
          "kernel variant %s, batch size %zu (one training step, %.1f "
          "µs/sample):\n",
          tk::variant_name(variant), batch, w.cpu_us_per_sample());
      std::printf("  %-8s %10s %14s %12s %12s\n", "kernel", "calls",
                  "AI(flop/byte)", "Gflop/s", "roof-bound");
      for (const auto k : kernels) {
        const auto& s = w.kernel(k);
        if (s.calls == 0) continue;
        const double ai = static_cast<double>(s.flops) /
                          static_cast<double>(s.bytes);
        const double gflops =
            s.cpu_seconds > 0 ? s.flops / s.cpu_seconds * 1e-9 : 0.0;
        const double mem_roof = ai * roof.dram_bw_gbs;
        const bool is_matmul = k == tensor::Kernel::kMatMul;
        const double ceiling = std::min(
            is_matmul ? roof.peak_gflops : roof.scalar_gflops, mem_roof);
        std::printf("  %-8s %10llu %14.4f %12.3f %12.3f\n",
                    tensor::kernel_name(k),
                    static_cast<unsigned long long>(s.calls), ai, gflops,
                    ceiling);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("(paper: larger batch moves the dots up — mostly higher "
              "Gflop/s, some with higher AI — which is why large-batch "
              "training is faster)\n");
  return 0;
}

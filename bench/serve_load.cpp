// Serving-path load bench: drives the real ForecastServer over AF_UNIX
// sockets and sweeps offered load (pipeline window) x fault profile x
// per-request deadline, exporting sustained throughput and latency
// quantiles to BENCH_serve.json.
//
// Latency quantiles come *through the obs registry*: the server books every
// request into the serve.request.latency histogram (admission -> response
// sent), and this bench reads p50/p99 back out with approx_quantile() after
// resetting the histogram per configuration — so the numbers gate the same
// instrumentation the production loop exports.
//
// The lossy profile injects drop + payload-corruption faults client-side
// through sim::WireFaultInjector (truncation is excluded on purpose: it
// poisons connection framing, and this bench measures steady-state
// throughput, not reconnect churn — the soak test owns that). Unanswered
// requests are re-driven until everything is answered, so every
// configuration reports answered == offered.
//
// Gate with tests/check_bench_regression.py BENCH_serve.json (understands
// the "serve_load" key; see that script's docstring).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/forecast_cache.hpp"
#include "obs/metrics.hpp"
#include "serve/affine_model.hpp"
#include "serve/client.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "simulator/fault_injector.hpp"
#include "simulator/season.hpp"
#include "util/socket.hpp"

namespace {

using namespace ranknet;
namespace wire = serve::wire;

constexpr const char* kSocketPath = "/tmp/ranknet_serve_load.sock";
constexpr const char* kArtifact = "/tmp/ranknet_serve_load_model.bin";
constexpr int kSeedSpace = 64;

struct SweepResult {
  std::size_t window;
  std::string profile;
  std::uint32_t deadline_us;
  int requests;
  int answered;
  int rejected;
  double wall_seconds;
  double forecasts_per_sec;
  double p50_us;
  double p99_us;
};

util::Result<wire::ForecastResponse> read_response(util::UnixStream& stream) {
  std::uint8_t header_bytes[wire::kHeaderSize];
  if (auto st = stream.recv_all(header_bytes, sizeof(header_bytes), 10.0);
      !st.ok()) {
    return st;
  }
  auto header = wire::decode_header(header_bytes);
  if (!header.ok()) return header.status();
  std::vector<std::uint8_t> payload(header.value().payload_len);
  if (auto st = stream.recv_all(payload.data(), payload.size(), 10.0);
      !st.ok()) {
    return st;
  }
  if (auto st = wire::verify_payload(header.value(), payload); !st.ok()) {
    return st;
  }
  return wire::decode_forecast_response(payload);
}

wire::ForecastRequest make_request(const std::string& race_id,
                                   std::uint64_t id, std::uint32_t deadline) {
  wire::ForecastRequest req;
  req.request_id = id;
  req.seed = 1000 + (id % kSeedSpace);
  req.race_id = race_id;
  req.origin_lap = 30;
  req.horizon = 5;
  req.num_samples = 4;
  req.deadline_us = deadline;
  return req;
}

/// Drive `total` requests through the server with `window` in flight,
/// optionally mangling frames through `injector`; re-drives unanswered
/// requests until every one is answered or rejected.
SweepResult run_config(const std::string& race_id, std::size_t window,
                       const std::string& profile_name,
                       sim::WireFaultInjector* injector,
                       std::uint32_t deadline_us, int total) {
  auto& latency =
      obs::Registry::instance().latency_histogram("serve.request.latency");
  latency.reset();

  std::vector<std::uint64_t> pending(total);
  for (int i = 0; i < total; ++i) pending[i] = i + 1;

  std::fprintf(stderr, "config: window=%zu profile=%s deadline=%u\n", window,
               profile_name.c_str(), deadline_us);
  int answered = 0;
  int rejected = 0;
  const auto start = std::chrono::steady_clock::now();
  auto stream = util::UnixStream::connect(kSocketPath, 1.0);
  if (!stream.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 stream.status().to_string().c_str());
    std::exit(1);
  }
  while (!pending.empty()) {
    std::vector<std::uint64_t> next;
    for (std::size_t base = 0; base < pending.size(); base += window) {
      const std::size_t n = std::min(window, pending.size() - base);
      std::vector<std::uint8_t> out;
      std::set<std::uint64_t> expecting;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t id = pending[base + i];
        const auto frame = wire::encode_frame(
            wire::FrameType::kForecastRequest,
            wire::encode_forecast_request(
                make_request(race_id, id, deadline_us)));
        if (injector != nullptr) {
          auto mutated = injector->apply(frame);
          if (!mutated.has_value()) {  // dropped: re-drive next round
            next.push_back(id);
            continue;
          }
          // A flip inside the header would make the server drop the whole
          // connection (bad magic) — like truncation, that measures
          // reconnect churn, not throughput, so withhold those frames the
          // same way a drop would.
          if (std::memcmp(mutated->data(), frame.data(), wire::kHeaderSize) !=
              0) {
            next.push_back(id);
            continue;
          }
          out.insert(out.end(), mutated->begin(), mutated->end());
          if (!std::equal(mutated->begin(), mutated->end(), frame.begin())) {
            next.push_back(id);  // corrupted: checksum-skipped, no answer
            continue;
          }
        } else {
          out.insert(out.end(), frame.begin(), frame.end());
        }
        expecting.insert(id);
      }
      if (!out.empty() &&
          !stream.value().send_all(out.data(), out.size(), 10.0).ok()) {
        std::fprintf(stderr, "send failed mid-bench\n");
        std::exit(1);
      }
      while (!expecting.empty()) {
        auto response = read_response(stream.value());
        if (!response.ok()) {
          std::fprintf(stderr, "response starved: %s\n",
                       response.status().to_string().c_str());
          std::exit(1);
        }
        expecting.erase(response.value().request_id);
        if (response.value().tier == wire::Tier::kRejected) {
          ++rejected;
        } else {
          ++answered;
        }
      }
    }
    pending = std::move(next);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SweepResult r;
  r.window = window;
  r.profile = profile_name;
  r.deadline_us = deadline_us;
  r.requests = total;
  r.answered = answered;
  r.rejected = rejected;
  r.wall_seconds = wall;
  r.forecasts_per_sec = static_cast<double>(total) / wall;
  r.p50_us = latency.approx_quantile(0.50) * 1e6;
  r.p99_us = latency.approx_quantile(0.99) * 1e6;
  return r;
}

}  // namespace

int main() {
  const auto race =
      sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest});
  serve::AffineRankModel::save_artifact(kArtifact, 1.0, 0.0);

  serve::RegistryConfig reg_cfg;
  reg_cfg.gate.probe_origin_lap = 30;
  reg_cfg.gate.probe_horizon = 5;
  reg_cfg.gate.probe_num_samples = 4;
  serve::ModelRegistry registry(
      [](const std::string& path)
          -> util::Result<std::shared_ptr<core::RaceForecaster>> {
        auto model = std::make_shared<serve::AffineRankModel>();
        if (auto st = model->load_artifact(path); !st.ok()) return st;
        return std::shared_ptr<core::RaceForecaster>(std::move(model));
      },
      reg_cfg);
  registry.set_probe_race(race);
  registry.set_forecast_cache(std::make_shared<core::ForecastCache>(256));
  if (auto st = registry.init(kArtifact); !st.ok()) {
    std::fprintf(stderr, "registry init failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }

  serve::ServerConfig cfg;
  cfg.socket_path = kSocketPath;
  serve::ForecastServer server(registry, cfg);
  server.add_race(race);
  if (auto st = server.start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }

  const int total = 4000;
  sim::WireFaultProfile lossy;
  lossy.drop_rate = 0.01;
  lossy.corrupt_rate = 0.01;

  std::vector<SweepResult> results;
  for (const std::size_t window : {std::size_t{8}, std::size_t{32},
                                   std::size_t{128}}) {
    for (const std::uint32_t deadline_us : {0u, 2000u}) {
      results.push_back(run_config(race.id(), window, "clean", nullptr,
                                   deadline_us, total));
      sim::WireFaultInjector injector(lossy, 0xbe7c);
      results.push_back(run_config(race.id(), window, "lossy", &injector,
                                   deadline_us, total));
    }
  }
  server.stop();

  std::printf("%-7s %-6s %-11s %10s %9s %9s %9s\n", "window", "prof",
              "deadline_us", "fcst/s", "p50_us", "p99_us", "rejected");
  for (const auto& r : results) {
    std::printf("%-7zu %-6s %-11u %10.0f %9.1f %9.1f %9d\n", r.window,
                r.profile.c_str(), r.deadline_us, r.forecasts_per_sec,
                r.p50_us, r.p99_us, r.rejected);
  }

  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"serve_load\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"window\": %zu, \"profile\": \"%s\", \"deadline_us\": %u, "
        "\"requests\": %d, \"answered\": %d, \"rejected\": %d, "
        "\"forecasts_per_sec\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
        r.window, r.profile.c_str(), r.deadline_us, r.requests, r.answered,
        r.rejected, r.forecasts_per_sec, r.p50_us, r.p99_us,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_serve.json (%zu configurations)\n",
              results.size());
  return 0;
}

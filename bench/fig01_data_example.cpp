// Fig. 1 — data examples: (a) the first scoring records of a race in the
// Rank/CarId/Lap/LapTime/TimeBehindLeader/LapStatus/TrackStatus schema, and
// (b) the Rank and LapTime series of the race winner annotated with pit
// stops and caution laps.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "simulator/season.hpp"

int main() {
  using namespace ranknet;
  const auto race =
      sim::simulate_race({"Indy500", 2018, 200, sim::Usage::kValidation});

  std::printf("Fig. 1(a) — scoring records of %s (first 12 of %zu)\n",
              race.id().c_str(), race.num_records());
  std::printf("%4s %6s %4s %9s %18s %10s %12s\n", "Rank", "CarId", "Lap",
              "LapTime", "TimeBehindLeader", "LapStatus", "TrackStatus");
  int shown = 0;
  for (const auto& rec : race.records()) {
    if (rec.lap < 31) continue;  // mid-race laps like the paper's excerpt
    std::printf("%4d %6d %4d %9.4f %18.4f %10c %12c\n", rec.rank, rec.car_id,
                rec.lap, rec.lap_time, rec.time_behind_leader,
                telemetry::to_char(rec.lap_status),
                telemetry::to_char(rec.track_status));
    if (++shown >= 12) break;
  }

  const int winner = race.winner();
  const auto& car = race.car(winner);
  std::printf("\nFig. 1(b) — Rank and LapTime sequence of car %d (winner)\n",
              winner);
  std::printf("%4s %5s %9s %6s  (P = pit stop, Y = caution lap)\n", "Lap",
              "Rank", "LapTime", "Flags");
  for (std::size_t lap = 0; lap < car.laps(); ++lap) {
    std::printf("%4zu %5.0f %9.3f %3c%c\n", lap + 1, car.rank[lap],
                car.lap_time[lap], car.pit(lap) ? 'P' : ' ',
                car.yellow(lap) ? 'Y' : ' ');
  }
  return 0;
}

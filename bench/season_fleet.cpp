// Season-fleet bench: replay every Table II race (all track/event/year
// combinations, 2013-2019) through core::FleetEngine as ONE workload and
// sweep the shard count. The headline number is races/s — how many whole
// races the fleet forecasts end-to-end per second of wall clock — plus
// jobs/s over the (race, origin) forecast jobs.
//
// Correctness rides along: for every shard count the bench digests every
// job's sample bytes and requires the digest to be identical to the 1-shard
// reference — the byte-identity contract (bases are job-keyed, routing
// never touches bytes) checked at bench scale, not just unit-test scale.
//
// Output: BENCH_season.json with a "season_fleet" array, gated by
// tests/check_bench_regression.py (understands the season_fleet key).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/fleet_engine.hpp"
#include "simulator/season.hpp"
#include "util/timer.hpp"

namespace {

using namespace ranknet;

/// FNV-1a over the exact double bit patterns of every (car, sample, lap)
/// cell, car ids and shapes included — two digests match iff the forecasts
/// are byte-identical.
std::uint64_t samples_digest(const core::RaceSamples& samples) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& [car_id, m] : samples) {
    mix(&car_id, sizeof(car_id));
    const std::size_t rows = m.rows(), cols = m.cols();
    mix(&rows, sizeof(rows));
    mix(&cols, sizeof(cols));
    mix(m.data(), rows * cols * sizeof(double));
  }
  return h;
}

struct SweepResult {
  std::size_t shards;
  std::size_t races;
  std::size_t jobs;
  double seconds;
  double races_per_sec;
  double jobs_per_sec;
};

}  // namespace

int main() {
  constexpr std::uint64_t kSeasonSeed = 0x5ea50u;
  constexpr int kOriginStride = 10;
  constexpr int kHorizon = 10;
  constexpr int kNumSamples = 64;

  std::printf("simulating the Table II season (25 races, 2013-2019)...\n");
  std::vector<std::shared_ptr<const telemetry::RaceLog>> races;
  for (auto& race : sim::simulate_season()) {
    races.push_back(
        std::make_shared<const telemetry::RaceLog>(std::move(race)));
  }

  // One forecast job per (race, origin) with a fixed stride — the same
  // whole-season replay a deployment would run between live events.
  std::vector<core::FleetEngine::SeasonJob> jobs;
  for (const auto& race : races) {
    for (int origin = kOriginStride; origin < race->num_laps() - kHorizon;
         origin += kOriginStride) {
      jobs.push_back({race, origin, kHorizon, kNumSamples});
    }
  }
  std::printf("season workload: %zu races, %zu forecast jobs\n", races.size(),
              jobs.size());

  std::vector<SweepResult> results;
  std::vector<std::uint64_t> reference;  // 1-shard digests, per job
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    core::FleetConfig cfg;
    cfg.shards = shards;
    core::FleetEngine fleet(
        [] { return std::make_shared<core::ArimaForecaster>(); }, cfg);

    // Warm-up pass (prepare caches, pool spin-up), then the timed pass.
    (void)fleet.run_season({jobs.data(), std::min<std::size_t>(jobs.size(),
                                                               shards)},
                           kSeasonSeed);
    util::Timer timer;
    const auto samples = fleet.run_season(jobs, kSeasonSeed);
    const double seconds = timer.seconds();

    std::vector<std::uint64_t> digests;
    digests.reserve(samples.size());
    for (const auto& s : samples) digests.push_back(samples_digest(s));
    if (reference.empty()) {
      reference = digests;
    } else if (digests != reference) {
      std::fprintf(stderr,
                   "FATAL: %zu-shard season bytes differ from the 1-shard "
                   "reference — byte-identity contract violated\n",
                   shards);
      return 1;
    }

    SweepResult r;
    r.shards = shards;
    r.races = races.size();
    r.jobs = jobs.size();
    r.seconds = seconds;
    r.races_per_sec = static_cast<double>(races.size()) / seconds;
    r.jobs_per_sec = static_cast<double>(jobs.size()) / seconds;
    results.push_back(r);
    std::printf(
        "shards=%zu  %7.3fs  %8.2f races/s  %9.2f jobs/s  (bytes == "
        "1-shard reference)\n",
        shards, seconds, r.races_per_sec, r.jobs_per_sec);
  }

  std::FILE* f = std::fopen("BENCH_season.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_season.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"season_fleet\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"races\": %zu, \"jobs\": %zu, "
                 "\"seconds\": %.6f, \"races_per_sec\": %.3f, "
                 "\"jobs_per_sec\": %.3f}%s\n",
                 r.shards, r.races, r.jobs, r.seconds, r.races_per_sec,
                 r.jobs_per_sec, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_season.json (%zu shard counts)\n",
              results.size());
  return 0;
}

// Micro-benchmarks (google-benchmark) for the compute kernels underneath
// RankNet training: GEMM at LSTM-relevant shapes, the pointwise gate
// kernels, a full LSTM cell step (training path and fused inference
// session), one training step, and the Algorithm-2 sampling rollout.
// Useful for tracking kernel-level regressions; the paper-level numbers
// come from the fig10-12 benches.
//
// Output: besides the console table, every run writes machine-readable
// results to BENCH_kernels.json (google-benchmark JSON; pass your own
// --benchmark_out to override). Each benchmark attaches flops/step,
// kernel_calls/step and ws_allocs/step counters so the JSON captures op
// counts and allocation behaviour next to ns/step.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/ar_model.hpp"
#include "nn/inference.hpp"
#include "nn/lstm.hpp"
#include "tensor/kernels.hpp"
#include "tensor/opcount.hpp"
#include "tensor/workspace.hpp"

namespace {

using namespace ranknet;
using tensor::Matrix;

/// Snapshot global op/workspace counters around the timed loop and attach
/// per-iteration deltas as custom counters (flows into the JSON output).
class StepAccounting {
 public:
  StepAccounting()
      : ops_before_(tensor::OpCounters::instance().total()),
        ws_before_(tensor::WorkspaceCounters::instance().snapshot()) {}

  void finish(benchmark::State& state) const {
    const auto ops = tensor::OpCounters::instance().total();
    const auto ws = tensor::WorkspaceCounters::instance().snapshot();
    const double steps =
        std::max<double>(1.0, static_cast<double>(state.iterations()));
    state.counters["flops/step"] =
        static_cast<double>(ops.flops - ops_before_.flops) / steps;
    state.counters["kernel_calls/step"] =
        static_cast<double>(ops.calls - ops_before_.calls) / steps;
    state.counters["ws_allocs/step"] =
        static_cast<double>(ws.block_allocs - ws_before_.block_allocs) /
        steps;
  }

 private:
  tensor::KernelStats ops_before_;
  tensor::WorkspaceCounters::Snapshot ws_before_;
};

void BM_GemmLstmGates(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const Matrix x = Matrix::randn(batch, 53, rng);
  const Matrix w = Matrix::randn(53, 160, rng);
  Matrix out(batch, 160);
  for (auto _ : state) {
    tensor::gemm(1.0, x, false, w, false, 0.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * batch * 53 * 160,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmLstmGates)->Arg(32)->Arg(256)->Arg(3200);

void BM_SigmoidKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  Matrix m = Matrix::randn(n, 160, rng);
  for (auto _ : state) {
    Matrix copy = m;
    tensor::sigmoid_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * 160));
}
BENCHMARK(BM_SigmoidKernel)->Arg(32)->Arg(3200);

void BM_LstmCellStep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  nn::LstmLayer lstm(53, 40, rng);
  const Matrix x = Matrix::randn(batch, 53, rng);
  nn::LstmState lstm_state(batch, 40);
  StepAccounting acct;
  for (auto _ : state) {
    auto h = lstm.step(x, lstm_state);
    benchmark::DoNotOptimize(h.data());
  }
  acct.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
}
BENCHMARK(BM_LstmCellStep)->Arg(32)->Arg(256)->Arg(3200);

void BM_FusedLstmCellStep(benchmark::State& state) {
  // Inference-session counterpart of BM_LstmCellStep: one packed GEMM per
  // step over arena storage, zero heap allocations once warm.
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  nn::LstmLayer lstm(53, 40, rng);
  const Matrix x = Matrix::randn(batch, 53, rng);
  tensor::Workspace ws;
  ws.begin();
  nn::LstmInferenceSession session(lstm, batch, ws);
  session.reset_state();
  session.set_input(x);
  StepAccounting acct;
  for (auto _ : state) {
    session.step();
    benchmark::DoNotOptimize(session.h().data());
  }
  acct.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
}
BENCHMARK(BM_FusedLstmCellStep)->Arg(32)->Arg(256)->Arg(3200);

core::SeqModelConfig bench_model_config() {
  core::SeqModelConfig cfg;
  cfg.cov_dim = 9;
  cfg.embed_dim = 4;
  cfg.vocab = 40;
  return cfg;
}

std::vector<features::SeqExample> bench_windows(std::size_t count,
                                                std::size_t window) {
  util::Rng rng(4);
  std::vector<features::SeqExample> out(count);
  for (auto& ex : out) {
    ex.car_index = static_cast<int>(rng.uniform_int(0, 39));
    ex.target.resize(window);
    ex.covariates.assign(window, std::vector<double>(9));
    for (std::size_t t = 0; t < window; ++t) {
      ex.target[t] = rng.uniform(1, 33);
      for (auto& c : ex.covariates[t]) c = rng.uniform(0, 1);
    }
  }
  return out;
}

void BM_TrainStep(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  core::LstmSeqModel model(bench_model_config());
  model.set_scaler(features::StandardScaler(17.0, 9.0));
  const auto windows = bench_windows(batch_size, 62);
  std::vector<const features::SeqExample*> ptrs;
  for (const auto& w : windows) ptrs.push_back(&w);
  const auto batch = model.make_batch(ptrs, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_step(batch));
    model.zero_grad();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(batch_size));
}
BENCHMARK(BM_TrainStep)->Arg(32)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SamplingRollout(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  core::LstmSeqModel model(bench_model_config());
  model.set_scaler(features::StandardScaler(17.0, 9.0));
  util::Rng rng(5);
  core::LstmSeqModel::StackState start(2, nn::LstmState(rows, 40));
  const std::vector<std::vector<double>> z(rows, {10.0});
  const std::vector<std::vector<std::vector<double>>> covs(
      rows, std::vector<std::vector<double>>(2, std::vector<double>(9, 0.0)));
  const std::vector<int> idx(rows, 0);
  StepAccounting acct;
  for (auto _ : state) {
    auto s = start;
    auto out = model.sample_forward(s, z, covs, idx, 2, rng);
    benchmark::DoNotOptimize(out.data());
  }
  acct.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows) * 2);
}
BENCHMARK(BM_SamplingRollout)->Arg(330)->Arg(3300)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: default --benchmark_out to BENCH_kernels.json so every run
// leaves a machine-readable record, while explicit flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  static std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Micro-benchmarks (google-benchmark) for the compute kernels underneath
// RankNet training and inference: GEMM at LSTM-relevant shapes, the
// pointwise gate kernels, a full LSTM cell step (training path and fused
// inference session), the dense/Gaussian head, one training step, and the
// Algorithm-2 sampling rollout.
//
// Every kernel-level benchmark runs once per CPU-supported dispatch variant
// (tensor/simd_kernels.hpp) under names like `BM_GemmLstmGates<avx2>/256`,
// so the JSON output captures ns/op per kernel x variant x shape. The
// scalar rows double as the regression baseline for
// tests/check_bench_regression.py.
//
// Output: besides the console table, every run writes machine-readable
// results to BENCH_kernels.json (google-benchmark JSON; pass your own
// --benchmark_out to override). Each benchmark attaches flops/step,
// kernel_calls/step and ws_allocs/step counters so the JSON captures op
// counts and allocation behaviour next to ns/step.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/ar_model.hpp"
#include "nn/inference.hpp"
#include "nn/lstm.hpp"
#include "tensor/kernels.hpp"
#include "tensor/opcount.hpp"
#include "tensor/simd_kernels.hpp"
#include "tensor/workspace.hpp"

namespace {

using namespace ranknet;
using tensor::Matrix;
namespace tk = tensor::kernels;

/// Snapshot global op/workspace counters around the timed loop and attach
/// per-iteration deltas as custom counters (flows into the JSON output).
class StepAccounting {
 public:
  StepAccounting()
      : ops_before_(tensor::OpCounters::instance().total()),
        ws_before_(tensor::WorkspaceCounters::instance().snapshot()) {}

  void finish(benchmark::State& state) const {
    const auto ops = tensor::OpCounters::instance().total();
    const auto ws = tensor::WorkspaceCounters::instance().snapshot();
    const double steps =
        std::max<double>(1.0, static_cast<double>(state.iterations()));
    state.counters["flops/step"] =
        static_cast<double>(ops.flops - ops_before_.flops) / steps;
    state.counters["kernel_calls/step"] =
        static_cast<double>(ops.calls - ops_before_.calls) / steps;
    state.counters["ws_allocs/step"] =
        static_cast<double>(ws.block_allocs - ws_before_.block_allocs) /
        steps;
  }

 private:
  tensor::KernelStats ops_before_;
  tensor::WorkspaceCounters::Snapshot ws_before_;
};

/// Pin a dispatch variant for the duration of one benchmark run.
void use_variant(tk::Variant v) {
  const auto st = tk::set_variant(v);
  if (!st.ok()) throw std::runtime_error(st.to_string());
}

void BM_GemmLstmGates(benchmark::State& state, tk::Variant variant) {
  use_variant(variant);
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const Matrix x = Matrix::randn(batch, 53, rng);
  const Matrix w = Matrix::randn(53, 160, rng);
  Matrix out(batch, 160);
  for (auto _ : state) {
    tensor::gemm(1.0, x, false, w, false, 0.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * batch * 53 * 160,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_Gemv(benchmark::State& state, tk::Variant variant) {
  // n == 1 GEMM — the Gaussian-head projection shape, routed to the
  // dedicated GEMV path under avx2.
  use_variant(variant);
  const auto rows = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  const Matrix x = Matrix::randn(rows, 40, rng);
  const Matrix w = Matrix::randn(40, 1, rng);
  Matrix out(rows, 1);
  for (auto _ : state) {
    tensor::gemm(1.0, x, false, w, false, 0.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
}

void BM_SigmoidKernel(benchmark::State& state, tk::Variant variant) {
  use_variant(variant);
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  Matrix m = Matrix::randn(n, 160, rng);
  for (auto _ : state) {
    Matrix copy = m;
    tensor::sigmoid_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * 160));
}

void BM_LstmCellStep(benchmark::State& state, tk::Variant variant) {
  use_variant(variant);
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  nn::LstmLayer lstm(53, 40, rng);
  const Matrix x = Matrix::randn(batch, 53, rng);
  nn::LstmState lstm_state(batch, 40);
  StepAccounting acct;
  for (auto _ : state) {
    auto h = lstm.step(x, lstm_state);
    benchmark::DoNotOptimize(h.data());
  }
  acct.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
}

void BM_FusedLstmCellStep(benchmark::State& state, tk::Variant variant) {
  // Inference-session counterpart of BM_LstmCellStep: one packed GEMM per
  // step over arena storage plus the fused gate epilogue (avx2), zero heap
  // allocations once warm.
  use_variant(variant);
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  nn::LstmLayer lstm(53, 40, rng);
  const Matrix x = Matrix::randn(batch, 53, rng);
  tensor::Workspace ws;
  ws.begin();
  nn::LstmInferenceSession session(lstm, batch, ws);
  session.reset_state();
  session.set_input(x);
  StepAccounting acct;
  for (auto _ : state) {
    session.step();
    benchmark::DoNotOptimize(session.h().data());
  }
  acct.finish(state);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
}

void BM_DenseForward(benchmark::State& state, tk::Variant variant) {
  use_variant(variant);
  const auto rows = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  nn::Dense dense(40, 40, rng, nn::Activation::kTanh, "bench");
  const Matrix x = Matrix::randn(rows, 40, rng);
  for (auto _ : state) {
    auto y = dense.forward_inference(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
}

void BM_GaussianHead(benchmark::State& state, tk::Variant variant) {
  use_variant(variant);
  const auto rows = static_cast<std::size_t>(state.range(0));
  util::Rng rng(9);
  nn::GaussianHead head(40, 1, rng, "bench");
  const Matrix h = Matrix::randn(rows, 40, rng);
  for (auto _ : state) {
    auto out = head.forward_inference(h);
    benchmark::DoNotOptimize(out.mu.data());
    benchmark::DoNotOptimize(out.sigma.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
}

core::SeqModelConfig bench_model_config() {
  core::SeqModelConfig cfg;
  cfg.cov_dim = 9;
  cfg.embed_dim = 4;
  cfg.vocab = 40;
  return cfg;
}

std::vector<features::SeqExample> bench_windows(std::size_t count,
                                                std::size_t window) {
  util::Rng rng(4);
  std::vector<features::SeqExample> out(count);
  for (auto& ex : out) {
    ex.car_index = static_cast<int>(rng.uniform_int(0, 39));
    ex.target.resize(window);
    ex.covariates.assign(window, std::vector<double>(9));
    for (std::size_t t = 0; t < window; ++t) {
      ex.target[t] = rng.uniform(1, 33);
      for (auto& c : ex.covariates[t]) c = rng.uniform(0, 1);
    }
  }
  return out;
}

void BM_TrainStep(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  core::LstmSeqModel model(bench_model_config());
  model.set_scaler(features::StandardScaler(17.0, 9.0));
  const auto windows = bench_windows(batch_size, 62);
  std::vector<const features::SeqExample*> ptrs;
  for (const auto& w : windows) ptrs.push_back(&w);
  const auto batch = model.make_batch(ptrs, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_step(batch));
    model.zero_grad();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(batch_size));
}
BENCHMARK(BM_TrainStep)->Arg(32)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SamplingRollout(benchmark::State& state, tk::Variant variant) {
  // The fig10 forecast hot path: K samples advanced in lockstep through
  // the stacked LSTM decode + Gaussian head (Algorithm 2). us/sample in
  // the JSON is the single-thread per-sample cost the fig10 bench scales
  // over batch sizes; the scalar-vs-avx2 ratio of this row is the
  // tentpole's headline speedup.
  use_variant(variant);
  const auto rows = static_cast<std::size_t>(state.range(0));
  core::LstmSeqModel model(bench_model_config());
  model.set_scaler(features::StandardScaler(17.0, 9.0));
  util::Rng rng(5);
  core::LstmSeqModel::StackState start(2, nn::LstmState(rows, 40));
  const std::vector<std::vector<double>> z(rows, {10.0});
  const std::vector<std::vector<std::vector<double>>> covs(
      rows, std::vector<std::vector<double>>(2, std::vector<double>(9, 0.0)));
  const std::vector<int> idx(rows, 0);
  StepAccounting acct;
  for (auto _ : state) {
    auto s = start;
    auto out = model.sample_forward(s, z, covs, idx, 2, rng);
    benchmark::DoNotOptimize(out.data());
  }
  acct.finish(state);
  const double samples =
      static_cast<double>(state.iterations()) * static_cast<double>(rows) * 2;
  state.SetItemsProcessed(static_cast<long>(samples));
  state.counters["us/sample"] = benchmark::Counter(
      samples, benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

/// Register each kernel benchmark once per CPU-supported variant, with the
/// variant baked into the name (`BM_Foo<scalar>/32`). Registration order
/// puts the variant sweeps after the macro-registered training benchmarks.
void register_variant_benchmarks() {
  // The precision axis: reduced-precision variants ride the same sweep, so
  // BENCH_kernels.json carries ns/op per kernel x variant x shape for f64
  // AND bf16/int8 (regression-gated by tests/check_bench_regression.py).
  for (const auto v : {tk::Variant::kScalar, tk::Variant::kAvx2,
                       tk::Variant::kBf16, tk::Variant::kInt8}) {
    if (!tk::cpu_supports(v)) continue;
    const std::string tag = std::string("<") + tk::variant_name(v) + ">";
    benchmark::RegisterBenchmark(("BM_GemmLstmGates" + tag).c_str(),
                                 BM_GemmLstmGates, v)
        ->Arg(32)->Arg(256)->Arg(3200);
    benchmark::RegisterBenchmark(("BM_Gemv" + tag).c_str(), BM_Gemv, v)
        ->Arg(32)->Arg(3200);
    benchmark::RegisterBenchmark(("BM_SigmoidKernel" + tag).c_str(),
                                 BM_SigmoidKernel, v)
        ->Arg(32)->Arg(3200);
    benchmark::RegisterBenchmark(("BM_LstmCellStep" + tag).c_str(),
                                 BM_LstmCellStep, v)
        ->Arg(32)->Arg(256)->Arg(3200);
    benchmark::RegisterBenchmark(("BM_FusedLstmCellStep" + tag).c_str(),
                                 BM_FusedLstmCellStep, v)
        ->Arg(32)->Arg(256)->Arg(3200);
    benchmark::RegisterBenchmark(("BM_DenseForward" + tag).c_str(),
                                 BM_DenseForward, v)
        ->Arg(32)->Arg(3200);
    benchmark::RegisterBenchmark(("BM_GaussianHead" + tag).c_str(),
                                 BM_GaussianHead, v)
        ->Arg(32)->Arg(3300);
    benchmark::RegisterBenchmark(("BM_SamplingRollout" + tag).c_str(),
                                 BM_SamplingRollout, v)
        ->Arg(330)->Arg(3300)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

// Custom main: default --benchmark_out to BENCH_kernels.json so every run
// leaves a machine-readable record, while explicit flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  static std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  register_variant_benchmarks();
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

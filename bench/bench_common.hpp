// Shared plumbing for the reproduction benches: the evaluation profile
// (sample counts / origin strides, switchable between a quick default and
// the paper's full setting via RANKNET_FULL=1), table printers, and
// construction of the full baseline roster.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/registry.hpp"
#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "ml/svr.hpp"
#include "simulator/season.hpp"
#include "util/timer.hpp"

namespace ranknet::bench {

/// Evaluation budget. The default reproduces every table/figure in minutes
/// on one core; RANKNET_FULL=1 switches to the paper's setting (100 sample
/// paths, every origin lap).
struct Profile {
  int num_samples = 32;
  int transformer_samples = 12;  // attention rollout is O(T^2) per step
  int origin_stride = 4;
  int taskb_samples = 16;

  static Profile get() {
    Profile p;
    if (const char* full = std::getenv("RANKNET_FULL");
        full != nullptr && full[0] != '\0') {
      p.num_samples = 100;
      p.transformer_samples = 100;
      p.origin_stride = 1;
      p.taskb_samples = 100;
    }
    return p;
  }
};

inline core::TaskAConfig task_a_config(const Profile& p, int horizon = 2) {
  core::TaskAConfig cfg;
  cfg.horizon = horizon;
  cfg.num_samples = p.num_samples;
  cfg.origin_stride = p.origin_stride;
  return cfg;
}

/// Named forecaster handle (owns the model).
struct NamedForecaster {
  std::string name;
  std::unique_ptr<core::RaceForecaster> forecaster;
};

/// Train the pointwise ML regression baselines for a fixed horizon.
inline std::vector<NamedForecaster> make_ml_baselines(
    const std::vector<telemetry::RaceLog>& train_races, int horizon) {
  std::vector<NamedForecaster> out;
  core::MlFeatureConfig fcfg;
  const auto ds = core::build_ml_dataset(train_races, horizon, fcfg, 12000);

  auto forest = std::make_shared<ml::RandomForest>();
  forest->fit(ds.x, ds.y);
  out.push_back({"RandomForest",
                 std::make_unique<core::MlRegressorForecaster>(
                     "RandomForest", forest, fcfg, horizon)});

  auto svr = std::make_shared<ml::Svr>();
  svr->fit(ds.x, ds.y);
  out.push_back({"SVM", std::make_unique<core::MlRegressorForecaster>(
                            "SVM", svr, fcfg, horizon)});

  auto gbdt = std::make_shared<ml::Gbdt>();
  gbdt->fit(ds.x, ds.y);
  out.push_back({"XGBoost", std::make_unique<core::MlRegressorForecaster>(
                                "XGBoost", gbdt, fcfg, horizon)});
  return out;
}

inline void print_rule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_task_a_header(const char* title) {
  std::printf("%s\n", title);
  print_rule();
  std::printf("%-18s | %8s %8s %8s %8s | %8s %8s %8s %8s | %8s %8s %8s %8s\n",
              "Model", "Top1Acc", "MAE", "50-Risk", "90-Risk", "Top1Acc",
              "MAE", "50-Risk", "90-Risk", "Top1Acc", "MAE", "50-Risk",
              "90-Risk");
  std::printf("%-18s | %35s | %35s | %35s\n", "",
              "           All Laps", "          Normal Laps",
              "      PitStop Covered Laps");
  print_rule();
}

inline void print_task_a_row(const std::string& name,
                             const core::TaskAResult& r) {
  std::printf(
      "%-18s | %8.2f %8.2f %8.3f %8.3f | %8.2f %8.2f %8.3f %8.3f | %8.2f "
      "%8.2f %8.3f %8.3f\n",
      name.c_str(), r.all.top1, r.all.mae, r.all.risk50, r.all.risk90,
      r.normal.top1, r.normal.mae, r.normal.risk50, r.normal.risk90,
      r.pit_covered.top1, r.pit_covered.mae, r.pit_covered.risk50,
      r.pit_covered.risk90);
}

}  // namespace ranknet::bench

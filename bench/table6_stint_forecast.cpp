// Table VI — rank-position-change forecasting between consecutive pit
// stops (Task B), Indy500-2019: SignAcc, MAE, 50-risk, 90-risk for CurRank
// (zero change), the stint-trained ML regressors, DeepAR and the RankNet
// variants (Algorithm 2 applied regressively across the stint).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "ml/svr.hpp"

int main() {
  using namespace ranknet;
  const auto profile = bench::Profile::get();
  const auto ds = sim::build_event_dataset("Indy500");
  core::ModelZoo zoo;
  util::Timer timer;

  core::TaskBConfig cfg;
  cfg.num_samples = profile.taskb_samples;

  std::printf(
      "Table VI — rank position changes forecasting between pit stops, "
      "Indy500-2019\n");
  bench::print_rule(64);
  std::printf("%-18s %9s %9s %9s %9s %7s\n", "Model", "SignAcc", "MAE",
              "50-Risk", "90-Risk", "count");
  bench::print_rule(64);
  auto run = [&](core::StintPredictor& p) {
    const auto r = core::evaluate_task_b(p, ds.test, cfg);
    std::printf("%-18s %9.2f %9.2f %9.3f %9.3f %7zu\n", p.name().c_str(),
                r.sign_acc, r.mae, r.risk50, r.risk90, r.count);
    std::fflush(stdout);
  };

  core::ZeroChangeStintPredictor zero;
  run(zero);

  // Stint-trained pointwise regressors ([30]-style baselines).
  const auto stint_data =
      core::RegressorStintPredictor::build_dataset(ds.train, cfg.min_stint);
  {
    auto forest = std::make_shared<ml::RandomForest>();
    forest->fit(stint_data.x, stint_data.y);
    core::RegressorStintPredictor p("RandomForest", forest);
    run(p);
  }
  {
    auto svr = std::make_shared<ml::Svr>();
    svr->fit(stint_data.x, stint_data.y);
    core::RegressorStintPredictor p("SVM", svr);
    run(p);
  }
  {
    auto gbdt = std::make_shared<ml::Gbdt>();
    gbdt->fit(stint_data.x, stint_data.y);
    core::RegressorStintPredictor p("XGBoost", gbdt);
    run(p);
  }

  auto deepar = zoo.deepar(ds);
  core::ForecasterStintAdapter deepar_adapter(*deepar, cfg.num_samples);
  run(deepar_adapter);

  auto joint = zoo.ranknet_joint(ds);
  core::ForecasterStintAdapter joint_adapter(*joint, cfg.num_samples);
  run(joint_adapter);

  auto mlp = zoo.ranknet_mlp(ds);
  core::ForecasterStintAdapter mlp_adapter(*mlp, cfg.num_samples);
  run(mlp_adapter);

  auto oracle = zoo.ranknet_oracle(ds);
  core::ForecasterStintAdapter oracle_adapter(*oracle, cfg.num_samples);
  run(oracle_adapter);

  bench::print_rule(64);
  std::printf("evaluated in %.1fs (%d sample paths per stint)\n",
              timer.seconds(), cfg.num_samples);
  return 0;
}

// Fig. 10 (+ Table IV batch sizes, Table VIII devices) — impact of batch
// size on training speed (µs/sample) for RankNet training steps, plus the
// inference-side counterpart: Monte-Carlo forecast throughput versus worker
// threads through core::ParallelForecastEngine.
//
// The CPU column is measured on this machine with kernel-level profiling;
// the GPU / GPU-cuDNN / VE columns come from the analytic device model
// (paper hardware peaks + per-call offload overhead) applied to the same
// measured kernel workload — see src/core/device_model.hpp and DESIGN.md.
#include <cstdio>
#include <vector>

#include "core/device_model.hpp"
#include "core/parallel_engine.hpp"
#include "core/ranknet.hpp"
#include "simulator/season.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

// Forecast-side scaling: one RankNet-sized model, a full simulated race,
// per-car sampling fanned across the engine's pool. The determinism
// contract means every row of this table computes the same bits; only the
// wall clock may move.
void inference_thread_scaling() {
  using namespace ranknet;
  const auto race =
      sim::simulate_race({"Indy500", 2019, 4242, sim::Usage::kTest});
  features::CarVocab vocab({race});
  core::SeqModelConfig cfg;
  cfg.cov_dim = features::CovariateConfig{}.dim();
  cfg.hidden = 40;
  cfg.embed_dim = 4;
  cfg.vocab = vocab.size();
  auto model = std::make_shared<core::LstmSeqModel>(cfg);
  model->set_scaler(features::StandardScaler(17.0, 9.0));
  core::RankNetForecaster forecaster(model, nullptr, vocab,
                                     features::CovariateConfig{},
                                     core::StatusSource::kOracle, "RankNet");

  const int horizon = 5, samples = 96;
  const std::vector<int> origins{40, 80, 120, 160};
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};

  std::printf("\nInference — RankNet forecast throughput vs threads "
              "(horizon %d, %d samples/car, %zu origins; hw threads: %zu)\n",
              horizon, samples, origins.size(),
              util::ThreadPool::hardware_threads());
  std::printf("%10s %14s %10s %12s\n", "Threads", "us/sample", "speedup",
              "concurrency");

  double base_us = 0.0;
  for (const auto t : thread_counts) {
    core::ParallelForecastEngine engine(forecaster, t);
    // Warm the per-race feature cache outside the timed region.
    util::Rng warm(7);
    (void)engine.forecast(race, origins[0], horizon, samples, warm);
    engine.reset_stats();

    util::Rng rng(7);
    std::size_t rows = 0;
    util::Timer timer;
    for (const int origin : origins) {
      const auto out = engine.forecast(race, origin, horizon, samples, rng);
      for (const auto& [car_id, m] : out) rows += m.rows();
    }
    const double us = timer.seconds() * 1e6 / static_cast<double>(rows);
    if (t == thread_counts.front()) base_us = us;
    const auto stats = engine.stats();
    std::printf("%10zu %14.2f %9.2fx %12.2f\n", t, us,
                base_us > 0.0 ? base_us / us : 0.0, stats.concurrency());
    std::fflush(stdout);
  }
  std::printf("(speedup tracks physical cores; concurrency = summed task "
              "time / wall time)\n");
}

}  // namespace

int main() {
  using namespace ranknet;
  const std::vector<std::size_t> batch_sizes{32, 64, 128, 256, 640, 1600,
                                             3200};
  std::printf("Fig. 10 — training speed, µs/sample (lower is better)\n");
  std::printf("%10s %12s %12s %12s %12s\n", "BatchSize", "CPU(meas.)",
              "GPU(model)", "cuDNN(model)", "VE(model)");

  const auto gpu = core::gpu_spec();
  const auto cudnn = core::gpu_cudnn_spec();
  const auto ve = core::ve_spec();
  for (const auto b : batch_sizes) {
    const int reps = b >= 1600 ? 1 : (b >= 256 ? 2 : 3);
    const auto w = core::measure_ranknet_workload(b, reps);
    std::printf("%10zu %12.1f %12.1f %12.1f %12.1f\n", b,
                w.cpu_us_per_sample(), core::modeled_us_per_sample(w, gpu),
                core::modeled_us_per_sample(w, cudnn),
                core::modeled_us_per_sample(w, ve));
    std::fflush(stdout);
  }
  std::printf(
      "\n(paper: all devices improve with batch size; cuDNN fastest "
      "throughout; VE overtakes plain CPU at large batches)\n");

  inference_thread_scaling();
  return 0;
}

// Fig. 10 (+ Table IV batch sizes, Table VIII devices) — impact of batch
// size on training speed (µs/sample) for RankNet training steps, plus the
// inference-side counterparts: Monte-Carlo forecast throughput versus
// worker threads through core::ParallelForecastEngine, and versus the
// number of MC samples per car on the zero-allocation decode path.
//
// The CPU column is measured on this machine with kernel-level profiling;
// the GPU / GPU-cuDNN / VE columns come from the analytic device model
// (paper hardware peaks + per-call offload overhead) applied to the same
// measured kernel workload — see src/core/device_model.hpp and DESIGN.md.
//
// Output: the console tables below, plus machine-readable BENCH_fig10.json
// (training series with per-kernel-class op counts, thread scaling, and the
// MC-decode series with ns/step and workspace allocs/step).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/device_model.hpp"
#include "core/parallel_engine.hpp"
#include "core/ranknet.hpp"
#include "obs/trace.hpp"
#include "simulator/season.hpp"
#include "tensor/simd_kernels.hpp"
#include "tensor/workspace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace ranknet;

struct TrainingRow {
  std::size_t batch = 0;
  double cpu_us = 0.0, gpu_us = 0.0, cudnn_us = 0.0, ve_us = 0.0;
  core::Workload workload;
};

struct ThreadRow {
  std::size_t threads = 0;
  double us_per_sample = 0.0;
  double speedup = 0.0;
  double concurrency = 0.0;
};

struct DecodeRow {
  const char* variant = nullptr;  // non-null: reduced-precision axis row
  int num_samples = 0;
  std::size_t rows = 0;        // trajectories sampled per forecast
  double us_per_sample = 0.0;  // wall µs per sampled trajectory-step
  double ns_per_step = 0.0;    // wall ns per decode step (row x horizon lap)
  double samples_per_second = 0.0;
  double ws_allocs_per_forecast = 0.0;
  double ws_epoch_reuse = 0.0;  // reused epochs / epochs in steady state
  double branches_per_forecast = 0.0;  // decode-tree branches coalesced
  double rows_per_branch = 0.0;        // 1.0 = no sharing
};

struct CacheRow {
  int num_samples = 0;
  double cold_us_per_sample = 0.0;  // uncached forecast
  double hit_us_per_sample = 0.0;   // cache replay of the same request
  double hit_speedup = 0.0;
  double hit_rate = 0.0;  // CacheCounters over this row's requests
};

struct BenchResults {
  TrainingRow training[16];
  std::size_t training_rows = 0;
  ThreadRow threads[8];
  std::size_t thread_rows = 0;
  DecodeRow decode[16];
  std::size_t decode_rows = 0;
  CacheRow cache[8];
  std::size_t cache_rows = 0;
};

struct RankNetFixture {
  telemetry::RaceLog race;
  features::CarVocab vocab;
  std::shared_ptr<core::LstmSeqModel> model;
  core::RankNetForecaster forecaster;

  RankNetFixture()
      : race(sim::simulate_race({"Indy500", 2019, 4242, sim::Usage::kTest})),
        vocab({race}),
        model(make_model(vocab)),
        forecaster(model, nullptr, vocab, features::CovariateConfig{},
                   core::StatusSource::kOracle, "RankNet") {}

  static std::shared_ptr<core::LstmSeqModel> make_model(
      const features::CarVocab& vocab) {
    core::SeqModelConfig cfg;
    cfg.cov_dim = features::CovariateConfig{}.dim();
    cfg.hidden = 40;
    cfg.embed_dim = 4;
    cfg.vocab = vocab.size();
    auto model = std::make_shared<core::LstmSeqModel>(cfg);
    model->set_scaler(features::StandardScaler(17.0, 9.0));
    return model;
  }
};

// Forecast-side scaling: one RankNet-sized model, a full simulated race,
// per-car sampling fanned across the engine's pool. The determinism
// contract means every row of this table computes the same bits; only the
// wall clock may move.
void inference_thread_scaling(RankNetFixture& fix, BenchResults& results) {
  const int horizon = 5, samples = 96;
  const std::vector<int> origins{40, 80, 120, 160};
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};

  std::printf("\nInference — RankNet forecast throughput vs threads "
              "(horizon %d, %d samples/car, %zu origins; hw threads: %zu)\n",
              horizon, samples, origins.size(),
              util::ThreadPool::hardware_threads());
  std::printf("%10s %14s %10s %12s\n", "Threads", "us/sample", "speedup",
              "concurrency");

  double base_us = 0.0;
  for (const auto t : thread_counts) {
    core::ParallelForecastEngine engine(fix.forecaster, t);
    // Warm the per-race feature cache outside the timed region.
    util::Rng warm(7);
    (void)engine.forecast(fix.race, origins[0], horizon, samples, warm);
    engine.reset_stats();
    // Fresh span histograms so the per-stage line below covers only this
    // thread count's timed origins.
    for (std::size_t s = 0;
         s < static_cast<std::size_t>(obs::Stage::kCount); ++s) {
      obs::stage_histogram(static_cast<obs::Stage>(s)).reset();
      obs::stage_seconds_total(static_cast<obs::Stage>(s)).reset();
    }

    util::Rng rng(7);
    std::size_t rows = 0;
    util::Timer timer;
    for (const int origin : origins) {
      const auto out =
          engine.forecast(fix.race, origin, horizon, samples, rng);
      for (const auto& [car_id, m] : out) rows += m.rows();
    }
    const double us = timer.seconds() * 1e6 / static_cast<double>(rows);
    if (t == thread_counts.front()) base_us = us;
    const auto stats = engine.stats();
    std::printf("%10zu %14.2f %9.2fx %12.2f\n", t, us,
                base_us > 0.0 ? base_us / us : 0.0, stats.concurrency());
    if (obs::spans_enabled()) {
      std::printf("%10s", "stages:");
      for (std::size_t s = 0;
           s < static_cast<std::size_t>(obs::Stage::kCount); ++s) {
        const auto stage = static_cast<obs::Stage>(s);
        const auto& h = obs::stage_histogram(stage);
        if (h.count() == 0) continue;
        std::printf(" %s n=%llu mean=%.3fms", obs::stage_name(stage),
                    (unsigned long long)h.count(), h.mean() * 1e3);
      }
      std::printf("\n");
    }
    std::fflush(stdout);
    results.threads[results.thread_rows++] =
        ThreadRow{t, us, base_us > 0.0 ? base_us / us : 0.0,
                  stats.concurrency()};
  }
  std::printf("(speedup tracks physical cores; concurrency = summed task "
              "time / wall time; set RANKNET_OBS_SPANS=0 to A/B the span "
              "overhead)\n");
}

// MC-decode scaling: direct (single-thread) RankNet forecasts at growing
// per-car sample counts. All samples of a car ride one batched decode loop
// through the inference sessions, so µs/sample should drop as samples grow
// and the workspace must not allocate once warm.
DecodeRow measure_decode_row(RankNetFixture& fix, int samples, int origin,
                             int horizon) {
  // Two warm-up forecasts: the first grows the thread-local arena to this
  // problem size (and, for reduced variants, builds the weight packs), the
  // second leaves only warm epochs in the window.
  util::Rng warm(11);
  (void)fix.forecaster.forecast(fix.race, origin, horizon, samples, warm);
  util::Rng warm2(11);
  (void)fix.forecaster.forecast(fix.race, origin, horizon, samples, warm2);

  const auto ws_before = tensor::WorkspaceCounters::instance().snapshot();
  auto& tree = core::DecodeTreeCounters::instance();
  const auto tree_rows0 = tree.rows();
  const auto tree_branches0 = tree.branches();
  const int reps = 3;
  std::size_t rows = 0;
  util::Timer timer;
  for (int r = 0; r < reps; ++r) {
    util::Rng rng(11);
    const auto out =
        fix.forecaster.forecast(fix.race, origin, horizon, samples, rng);
    for (const auto& [car_id, m] : out) rows += m.rows();
  }
  const double seconds = timer.seconds();
  const auto ws_after = tensor::WorkspaceCounters::instance().snapshot();
  const auto tree_rows = tree.rows() - tree_rows0;
  const auto tree_branches = tree.branches() - tree_branches0;

  DecodeRow row;
  row.num_samples = samples;
  row.rows = rows / static_cast<std::size_t>(reps);
  row.us_per_sample = seconds * 1e6 / static_cast<double>(rows);
  row.ns_per_step = seconds * 1e9 /
                    (static_cast<double>(rows) * horizon);
  row.samples_per_second = static_cast<double>(rows) / seconds;
  row.ws_allocs_per_forecast =
      static_cast<double>(ws_after.block_allocs - ws_before.block_allocs) /
      reps;
  const auto epochs = ws_after.epochs - ws_before.epochs;
  row.ws_epoch_reuse =
      epochs == 0 ? 1.0
                  : static_cast<double>(ws_after.reused_epochs -
                                        ws_before.reused_epochs) /
                        static_cast<double>(epochs);
  row.branches_per_forecast =
      static_cast<double>(tree_branches) / reps;
  row.rows_per_branch =
      tree_branches == 0 ? 0.0
                         : static_cast<double>(tree_rows) /
                               static_cast<double>(tree_branches);
  return row;
}

void print_decode_row(const DecodeRow& row, const char* label) {
  std::printf("%10s %10zu %14.2f %14.1f %16.2f %11.0f%% %10.0f %12.1f\n",
              label, row.rows, row.us_per_sample, row.ns_per_step,
              row.ws_allocs_per_forecast, 100.0 * row.ws_epoch_reuse,
              row.branches_per_forecast, row.rows_per_branch);
  std::fflush(stdout);
}

void mc_decode_scaling(RankNetFixture& fix, BenchResults& results) {
  const int horizon = 5;
  const int origin = 80;
  const std::vector<int> sample_counts{8, 32, 96};

  std::printf("\nInference — MC decode throughput vs samples/car "
              "(horizon %d, origin %d, single thread)\n",
              horizon, origin);
  std::printf("%10s %10s %14s %14s %16s %12s %10s %12s\n", "Samples", "rows",
              "us/sample", "ns/step", "allocs/forecast", "reuse", "branches",
              "rows/branch");

  for (const int samples : sample_counts) {
    char label[16];
    std::snprintf(label, sizeof(label), "%d", samples);
    const DecodeRow row = measure_decode_row(fix, samples, origin, horizon);
    results.decode[results.decode_rows++] = row;
    print_decode_row(row, label);
  }
  std::printf("(us/sample amortizes with samples/car — all of a car's "
              "samples share one batched GEMM per decode step; rows/branch "
              "is the decode tree's prefix sharing, 1.0 = none)\n");
}

// Precision axis: the same 96-samples/car rollout, one row per dispatch
// variant. Weight packs are built during warm-up, so the timed region sees
// only the steady-state decode cost — the serving-side picture, where
// weights are frozen. Rows carry a "variant" tag in the JSON so the
// regression gate tracks them separately from the default rows above
// (whose names must stay stable against old baselines).
void mc_decode_precision_axis(RankNetFixture& fix, BenchResults& results) {
  namespace tk = tensor::kernels;
  const int horizon = 5;
  const int origin = 80;
  const int samples = 96;
  const auto restore = tk::active_variant();

  std::printf("\nInference — MC decode by kernel variant "
              "(horizon %d, origin %d, %d samples/car, single thread)\n",
              horizon, origin, samples);
  std::printf("%10s %10s %14s %14s %16s %12s %10s %12s\n", "Variant", "rows",
              "us/sample", "ns/step", "allocs/forecast", "reuse", "branches",
              "rows/branch");

  double scalar_us = 0.0;
  for (const auto variant : {tk::Variant::kScalar, tk::Variant::kAvx2,
                             tk::Variant::kBf16, tk::Variant::kInt8}) {
    if (!tk::cpu_supports(variant)) {
      std::printf("%10s (not supported on this CPU, skipped)\n",
                  tk::variant_name(variant));
      continue;
    }
    (void)tk::set_variant(variant);
    DecodeRow row = measure_decode_row(fix, samples, origin, horizon);
    row.variant = tk::variant_name(variant);
    results.decode[results.decode_rows++] = row;
    print_decode_row(row, row.variant);
    if (variant == tk::Variant::kScalar) scalar_us = row.us_per_sample;
    if (scalar_us > 0.0 && variant != tk::Variant::kScalar) {
      std::printf("%10s   %.2fx vs scalar\n", "",
                  scalar_us / row.us_per_sample);
    }
  }
  (void)tk::set_variant(restore);
  std::printf("(bf16 rides the tuned f64 GEMM on pre-rounded operands — "
              "near-avx2 speed at reduced precision; int8's win at these "
              "cache-resident shapes is the 4x smaller pack, not time — "
              "row quantization offsets the integer arithmetic)\n");
}

// Forecast-cache replay: the serving cadence loop asks for the same
// (race, origin) forecast over and over — a hit must be orders of magnitude
// cheaper than the cold compute it replays, at identical bytes.
void forecast_cache_replay(RankNetFixture& fix, BenchResults& results) {
  const int horizon = 5;
  const int origin = 80;
  const std::vector<int> sample_counts{8, 32, 96};

  std::printf("\nInference — forecast cache replay (horizon %d, origin %d, "
              "single thread)\n",
              horizon, origin);
  std::printf("%10s %14s %14s %10s %10s\n", "Samples", "cold us/sm",
              "hit us/sm", "speedup", "hit rate");

  for (const int samples : sample_counts) {
    core::ParallelForecastEngine engine(fix.forecaster, 0);
    auto cache = std::make_shared<core::ForecastCache>(8);
    engine.set_forecast_cache(cache);
    // Warm model-side caches (race features, workspace arena) but not the
    // forecast cache: a different seed keys a different entry.
    util::Rng warm(23);
    (void)engine.forecast(fix.race, origin, horizon, samples, warm);
    cache->clear();

    auto& ctr = core::CacheCounters::instance();
    const auto hits0 = ctr.hits();
    const auto misses0 = ctr.misses();

    std::size_t rows = 0;
    util::Timer cold_timer;
    {
      util::Rng rng(29);
      const auto out =
          engine.forecast(fix.race, origin, horizon, samples, rng);
      for (const auto& [car_id, m] : out) rows += m.rows();
    }
    const double cold_seconds = cold_timer.seconds();

    const int reps = 50;
    util::Timer hit_timer;
    for (int r = 0; r < reps; ++r) {
      util::Rng rng(29);
      (void)engine.forecast(fix.race, origin, horizon, samples, rng);
    }
    const double hit_seconds = hit_timer.seconds();

    CacheRow row;
    row.num_samples = samples;
    row.cold_us_per_sample =
        cold_seconds * 1e6 / static_cast<double>(rows);
    row.hit_us_per_sample =
        hit_seconds * 1e6 / static_cast<double>(rows * reps);
    row.hit_speedup = row.hit_us_per_sample > 0.0
                          ? row.cold_us_per_sample / row.hit_us_per_sample
                          : 0.0;
    const auto hits = ctr.hits() - hits0;
    const auto misses = ctr.misses() - misses0;
    row.hit_rate = hits + misses == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(hits + misses);
    results.cache[results.cache_rows++] = row;
    std::printf("%10d %14.2f %14.3f %9.0fx %9.0f%%\n", samples,
                row.cold_us_per_sample, row.hit_us_per_sample,
                row.hit_speedup, 100.0 * row.hit_rate);
    std::fflush(stdout);
  }
  std::printf("(hit cost is one race digest + one map copy — independent "
              "of model size; hit rate counts this row's %s requests)\n",
              "1 cold + 50 replay");
}

void write_json(const BenchResults& r, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"training\": [\n");
  for (std::size_t i = 0; i < r.training_rows; ++i) {
    const auto& t = r.training[i];
    std::fprintf(f,
                 "    {\"batch\": %zu, \"cpu_us_per_sample\": %.3f, "
                 "\"gpu_us_per_sample\": %.3f, \"cudnn_us_per_sample\": "
                 "%.3f, \"ve_us_per_sample\": %.3f,\n     \"kernels\": {",
                 t.batch, t.cpu_us, t.gpu_us, t.cudnn_us, t.ve_us);
    bool first = true;
    for (std::size_t k = 0; k < t.workload.per_kernel.size(); ++k) {
      const auto& s = t.workload.per_kernel[k];
      if (s.calls == 0) continue;
      std::fprintf(f,
                   "%s\"%s\": {\"calls\": %llu, \"flops\": %llu, \"bytes\": "
                   "%llu}",
                   first ? "" : ", ",
                   tensor::kernel_name(static_cast<tensor::Kernel>(k)),
                   static_cast<unsigned long long>(s.calls),
                   static_cast<unsigned long long>(s.flops),
                   static_cast<unsigned long long>(s.bytes));
      first = false;
    }
    std::fprintf(f, "}}%s\n", i + 1 < r.training_rows ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"inference_thread_scaling\": [\n");
  for (std::size_t i = 0; i < r.thread_rows; ++i) {
    const auto& t = r.threads[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"us_per_sample\": %.3f, "
                 "\"speedup\": %.3f, \"concurrency\": %.3f}%s\n",
                 t.threads, t.us_per_sample, t.speedup, t.concurrency,
                 i + 1 < r.thread_rows ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"mc_decode\": [\n");
  for (std::size_t i = 0; i < r.decode_rows; ++i) {
    const auto& d = r.decode[i];
    if (d.variant != nullptr) {
      std::fprintf(f, "    {\"variant\": \"%s\", ", d.variant);
    } else {
      std::fprintf(f, "    {");
    }
    std::fprintf(f,
                 "\"num_samples\": %d, \"rows\": %zu, "
                 "\"us_per_sample\": %.3f, \"ns_per_step\": %.1f, "
                 "\"samples_per_second\": %.1f, "
                 "\"ws_allocs_per_forecast\": %.2f, "
                 "\"ws_epoch_reuse\": %.4f, "
                 "\"branches_per_forecast\": %.1f, "
                 "\"rows_per_branch\": %.2f}%s\n",
                 d.num_samples, d.rows, d.us_per_sample, d.ns_per_step,
                 d.samples_per_second, d.ws_allocs_per_forecast,
                 d.ws_epoch_reuse, d.branches_per_forecast,
                 d.rows_per_branch, i + 1 < r.decode_rows ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"forecast_cache\": [\n");
  for (std::size_t i = 0; i < r.cache_rows; ++i) {
    const auto& c = r.cache[i];
    std::fprintf(f,
                 "    {\"num_samples\": %d, \"cold_us_per_sample\": %.3f, "
                 "\"hit_us_per_sample\": %.4f, \"hit_speedup\": %.1f, "
                 "\"hit_rate\": %.4f}%s\n",
                 c.num_samples, c.cold_us_per_sample, c.hit_us_per_sample,
                 c.hit_speedup, c.hit_rate,
                 i + 1 < r.cache_rows ? "," : "");
  }
  std::fprintf(f, "  ]");
  // A/B against the pre-refactor binary: run the old fig10 bench on the
  // same (otherwise idle) machine, take its threads=1 us/sample figure
  // (96 samples/car — identical protocol to this binary's threads=1 row),
  // and export it as RANKNET_FIG10_BASELINE_US before running this bench.
  // The emitted speedup is then measured-vs-measured, not recorded-vs-
  // measured, so machine load cancels out.
  const char* base_env = std::getenv("RANKNET_FIG10_BASELINE_US");
  if (base_env != nullptr && r.thread_rows > 0) {
    const double baseline_us = std::atof(base_env);
    const double us = r.threads[0].us_per_sample;
    if (baseline_us > 0.0 && us > 0.0) {
      std::fprintf(f,
                   ",\n  \"decode_vs_baseline\": {\"num_samples\": 96, "
                   "\"baseline_us_per_sample\": %.3f, "
                   "\"us_per_sample\": %.3f, \"speedup\": %.3f}",
                   baseline_us, us, baseline_us / us);
      std::printf("\ndecode speedup vs pre-refactor baseline: %.2fx "
                  "(%.2f -> %.2f us/sample)\n",
                  baseline_us / us, baseline_us, us);
    }
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  BenchResults results;
  const std::vector<std::size_t> batch_sizes{32, 64, 128, 256, 640, 1600,
                                             3200};
  std::printf("Fig. 10 — training speed, µs/sample (lower is better)\n");
  std::printf("%10s %12s %12s %12s %12s\n", "BatchSize", "CPU(meas.)",
              "GPU(model)", "cuDNN(model)", "VE(model)");

  const auto gpu = core::gpu_spec();
  const auto cudnn = core::gpu_cudnn_spec();
  const auto ve = core::ve_spec();
  for (const auto b : batch_sizes) {
    const int reps = b >= 1600 ? 1 : (b >= 256 ? 2 : 3);
    const auto w = core::measure_ranknet_workload(b, reps);
    TrainingRow row;
    row.batch = b;
    row.cpu_us = w.cpu_us_per_sample();
    row.gpu_us = core::modeled_us_per_sample(w, gpu);
    row.cudnn_us = core::modeled_us_per_sample(w, cudnn);
    row.ve_us = core::modeled_us_per_sample(w, ve);
    row.workload = w;
    results.training[results.training_rows++] = row;
    std::printf("%10zu %12.1f %12.1f %12.1f %12.1f\n", b, row.cpu_us,
                row.gpu_us, row.cudnn_us, row.ve_us);
    std::fflush(stdout);
  }
  std::printf(
      "\n(paper: all devices improve with batch size; cuDNN fastest "
      "throughout; VE overtakes plain CPU at large batches)\n");

  RankNetFixture fixture;
  inference_thread_scaling(fixture, results);
  mc_decode_scaling(fixture, results);
  mc_decode_precision_axis(fixture, results);
  forecast_cache_replay(fixture, results);
  write_json(results, "BENCH_fig10.json");
  return 0;
}

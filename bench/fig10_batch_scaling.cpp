// Fig. 10 (+ Table IV batch sizes, Table VIII devices) — impact of batch
// size on training speed (µs/sample) for RankNet training steps.
//
// The CPU column is measured on this machine with kernel-level profiling;
// the GPU / GPU-cuDNN / VE columns come from the analytic device model
// (paper hardware peaks + per-call offload overhead) applied to the same
// measured kernel workload — see src/core/device_model.hpp and DESIGN.md.
#include <cstdio>
#include <vector>

#include "core/device_model.hpp"
#include "util/timer.hpp"

int main() {
  using namespace ranknet;
  const std::vector<std::size_t> batch_sizes{32, 64, 128, 256, 640, 1600,
                                             3200};
  std::printf("Fig. 10 — training speed, µs/sample (lower is better)\n");
  std::printf("%10s %12s %12s %12s %12s\n", "BatchSize", "CPU(meas.)",
              "GPU(model)", "cuDNN(model)", "VE(model)");

  const auto gpu = core::gpu_spec();
  const auto cudnn = core::gpu_cudnn_spec();
  const auto ve = core::ve_spec();
  for (const auto b : batch_sizes) {
    const int reps = b >= 1600 ? 1 : (b >= 256 ? 2 : 3);
    const auto w = core::measure_ranknet_workload(b, reps);
    std::printf("%10zu %12.1f %12.1f %12.1f %12.1f\n", b,
                w.cpu_us_per_sample(), core::modeled_us_per_sample(w, gpu),
                core::modeled_us_per_sample(w, cudnn),
                core::modeled_us_per_sample(w, ve));
    std::fflush(stdout);
  }
  std::printf(
      "\n(paper: all devices improve with batch size; cuDNN fastest "
      "throughout; VE overtakes plain CPU at large batches)\n");
  return 0;
}

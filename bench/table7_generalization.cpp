// Table VII — generalization to new races: two-lap MAE improvement over
// CurRank on PitStop-covered laps, for models trained on Indy500 vs models
// trained on the same event, tested on Indy500-2019, Texas-2018/2019,
// Pocono-2018 and Iowa-2019.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_common.hpp"

namespace {

using namespace ranknet;

double improvement(core::RaceForecaster& f, core::RaceForecaster& base,
                   const telemetry::RaceLog& race,
                   const core::TaskAConfig& cfg_model,
                   const core::TaskAConfig& cfg_base) {
  const double mae_base =
      core::evaluate_task_a(base, race, cfg_base).pit_covered.mae;
  const double mae_model =
      core::evaluate_task_a(f, race, cfg_model).pit_covered.mae;
  return (mae_base - mae_model) / mae_base;
}

}  // namespace

int main() {
  const auto profile = bench::Profile::get();
  core::ModelZoo zoo;
  util::Timer timer;

  const auto indy = sim::build_event_dataset("Indy500");
  std::map<std::string, sim::EventDataset> events;
  for (const char* name : {"Indy500", "Texas", "Pocono", "Iowa"}) {
    events.emplace(name, sim::build_event_dataset(name));
  }

  // Models trained by Indy500 (shared across all test races).
  auto indy_mlp = zoo.ranknet_mlp(indy);
  auto indy_joint = zoo.ranknet_joint(indy);
  auto indy_tf = zoo.transformer_mlp(indy);
  auto indy_ml = bench::make_ml_baselines(indy.train, 2);
  core::RaceForecaster* indy_forest = nullptr;
  for (auto& m : indy_ml) {
    if (m.name == "RandomForest") indy_forest = m.forecaster.get();
  }

  core::CurRankForecaster currank;
  auto cfg = bench::task_a_config(profile);
  // Five test races x eight model columns: thin the origins to keep the
  // sweep tractable on one core (RANKNET_FULL restores density).
  cfg.origin_stride = std::max(cfg.origin_stride, 5);
  auto cfg_det = cfg;
  cfg_det.num_samples = 1;
  auto cfg_tf = cfg;
  cfg_tf.num_samples = profile.transformer_samples;

  std::printf("Table VII — two-lap MAE improvement over CurRank on "
              "PitStop-covered laps\n");
  bench::print_rule(116);
  std::printf("%-14s | %12s %12s %12s %12s | %12s %12s %12s %12s\n",
              "Dataset", "RankNet-MLP", "RandomForest", "RankNet-Joint",
              "Transf.-MLP", "RankNet-MLP", "RandomForest", "RankNet-Joint",
              "Transf.-MLP");
  std::printf("%-14s | %51s | %51s\n", "", "Train by Indy500",
              "Train by same event");
  bench::print_rule(116);

  struct TestRace {
    std::string event;
    std::size_t test_index;
  };
  const std::vector<TestRace> tests{{"Indy500", 0}, {"Texas", 0},
                                    {"Texas", 1},   {"Pocono", 0},
                                    {"Iowa", 0}};
  for (const auto& t : tests) {
    const auto& ds = events.at(t.event);
    const auto& race = ds.test[t.test_index];

    // Same-event models (for Indy500 they coincide with the left column).
    auto same_mlp = zoo.ranknet_mlp(ds);
    auto same_joint = zoo.ranknet_joint(ds);
    auto same_tf = zoo.transformer_mlp(ds);
    auto same_ml = bench::make_ml_baselines(ds.train, 2);
    core::RaceForecaster* same_forest = nullptr;
    for (auto& m : same_ml) {
      if (m.name == "RandomForest") same_forest = m.forecaster.get();
    }

    const double left_mlp =
        improvement(*indy_mlp, currank, race, cfg, cfg_det);
    const double left_rf =
        improvement(*indy_forest, currank, race, cfg_det, cfg_det);
    const double left_joint =
        improvement(*indy_joint, currank, race, cfg, cfg_det);
    const double left_tf =
        improvement(*indy_tf, currank, race, cfg_tf, cfg_det);
    const double right_mlp =
        improvement(*same_mlp, currank, race, cfg, cfg_det);
    const double right_rf =
        improvement(*same_forest, currank, race, cfg_det, cfg_det);
    const double right_joint =
        improvement(*same_joint, currank, race, cfg, cfg_det);
    const double right_tf =
        improvement(*same_tf, currank, race, cfg_tf, cfg_det);

    std::printf("%-14s | %12.2f %12.2f %12.2f %12.2f | %12.2f %12.2f %12.2f "
                "%12.2f\n",
                race.id().c_str(), left_mlp, left_rf, left_joint, left_tf,
                right_mlp, right_rf, right_joint, right_tf);
    std::fflush(stdout);
  }
  bench::print_rule(116);
  std::printf("evaluated in %.1fs "
              "(paper: RankNet-MLP stays positive on unseen events while "
              "RandomForest collapses)\n",
              timer.seconds());
  return 0;
}

// Fig. 4 — pit-stop statistics over the Indy500 training data:
//  (a) stint-distance distribution, normal vs caution pits,
//  (b) stint-distance CDF,
//  (c) pit-stop lap distribution,
//  (d) rank-change distribution at the stop.
#include <cstdio>
#include <vector>

#include "simulator/season.hpp"
#include "telemetry/analysis.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ranknet;
  const auto ds = sim::build_event_dataset("Indy500");

  std::vector<double> normal_stint, caution_stint;
  std::vector<double> normal_lap, caution_lap;
  std::vector<double> normal_change, caution_change;
  for (const auto& race : ds.train) {
    for (const auto& p : telemetry::extract_pit_stops(race)) {
      auto& stints = p.caution ? caution_stint : normal_stint;
      auto& laps = p.caution ? caution_lap : normal_lap;
      auto& changes = p.caution ? caution_change : normal_change;
      stints.push_back(p.stint_distance);
      laps.push_back(p.lap);
      changes.push_back(p.rank_change);
    }
  }
  std::printf("Pit stops in the training data: %zu normal, %zu caution "
              "(paper: 777 / 763)\n\n",
              normal_lap.size(), caution_lap.size());

  std::printf("(a) Stint distance distribution (frequency per 5-lap bin)\n");
  std::printf("%10s %12s %12s\n", "laps", "normal", "caution");
  const auto hn = util::histogram(normal_stint, 0, 50, 10);
  const auto hc = util::histogram(caution_stint, 0, 50, 10);
  for (std::size_t b = 0; b < 10; ++b) {
    std::printf("%6.0f-%-4.0f %12.4f %12.4f\n", hn.lo + 5.0 * b,
                hn.lo + 5.0 * (b + 1), hn.frequency(b), hc.frequency(b));
  }

  std::printf("\n(b) Stint distance CDF\n%10s %12s %12s\n", "laps", "normal",
              "caution");
  const auto cn = util::ecdf(normal_stint);
  const auto cc = util::ecdf(caution_stint);
  for (double x = 5; x <= 50; x += 5) {
    std::printf("%10.0f %12.4f %12.4f\n", x, cn(x), cc(x));
  }
  std::printf("  normal stints: q10=%.0f median=%.0f q90=%.0f max=%.0f\n",
              util::quantile(normal_stint, 0.1), util::median(normal_stint),
              util::quantile(normal_stint, 0.9), util::max(normal_stint));

  std::printf("\n(c) Pit-stop lap distribution (frequency per 20-lap bin)\n");
  std::printf("%10s %12s %12s\n", "lap", "normal", "caution");
  const auto ln = util::histogram(normal_lap, 0, 200, 10);
  const auto lc = util::histogram(caution_lap, 0, 200, 10);
  for (std::size_t b = 0; b < 10; ++b) {
    std::printf("%5.0f-%-5.0f %12.4f %12.4f\n", 20.0 * b, 20.0 * (b + 1),
                ln.frequency(b), lc.frequency(b));
  }

  std::printf("\n(d) Rank-change distribution at the stop "
              "(frequency per 3-position bin)\n");
  std::printf("%10s %12s %12s\n", "change", "normal", "caution");
  const auto rn = util::histogram(normal_change, 0, 30, 10);
  const auto rc = util::histogram(caution_change, 0, 30, 10);
  for (std::size_t b = 0; b < 10; ++b) {
    std::printf("%6.0f-%-4.0f %12.4f %12.4f\n", 3.0 * b, 3.0 * (b + 1),
                rn.frequency(b), rc.frequency(b));
  }
  std::printf("  mean rank change: normal %.2f, caution %.2f "
              "(paper: caution pits cost much less)\n",
              util::mean(normal_change), util::mean(caution_change));
  return 0;
}

// Ablations of RankNet's own design choices (beyond the paper's Fig. 7
// feature ablation), on Indy500-2019 with the cached full model:
//
//  A. Joint per-sample sorting (Section III-C "final rank positions are
//     calculated by sorting the sampled outputs") vs using raw sampled
//     values directly.
//  B. Number of Monte-Carlo sample paths (the paper uses 100).
//  C. Loss weight on rank-change windows (Fig. 7 step 1 fixes w=9): a sweep
//     over w with a reduced training budget.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"

namespace {

using namespace ranknet;

/// Task-A evaluation with optional joint sorting disabled: a thin variant
/// of evaluate_task_a that reads medians from raw sampled values.
struct RawVsSorted {
  double mae_sorted = 0.0;
  double mae_raw = 0.0;
  double risk90_sorted = 0.0;
  double risk90_raw = 0.0;
  std::size_t count = 0;
};

RawVsSorted compare_sorting(core::RaceForecaster& f,
                            const telemetry::RaceLog& race,
                            const core::TaskAConfig& cfg) {
  util::Rng rng(cfg.seed);
  std::vector<double> med_s, med_r, q90_s, q90_r, actual;
  for (int origin = cfg.min_origin;
       origin <= race.num_laps() - cfg.horizon;
       origin += cfg.origin_stride) {
    const auto raw =
        f.forecast(race, origin, cfg.horizon, cfg.num_samples, rng);
    if (raw.empty()) continue;
    const auto sorted = core::sort_to_ranks(raw);
    const auto target = static_cast<std::size_t>(origin + cfg.horizon);
    for (const auto& [car_id, m_raw] : raw) {
      const auto& car = race.car(car_id);
      if (car.laps() < target) continue;
      const std::size_t h = m_raw.cols() - 1;
      med_r.push_back(core::sample_quantile(m_raw, h, 0.5));
      q90_r.push_back(core::sample_quantile(m_raw, h, 0.9));
      med_s.push_back(core::sample_quantile(sorted.at(car_id), h, 0.5));
      q90_s.push_back(core::sample_quantile(sorted.at(car_id), h, 0.9));
      actual.push_back(car.rank[target - 1]);
    }
  }
  RawVsSorted out;
  out.count = actual.size();
  out.mae_sorted = core::mae(med_s, actual);
  out.mae_raw = core::mae(med_r, actual);
  out.risk90_sorted = core::rho_risk(q90_s, actual, 0.9);
  out.risk90_raw = core::rho_risk(q90_r, actual, 0.9);
  return out;
}

}  // namespace

int main() {
  const auto profile = bench::Profile::get();
  const auto ds = sim::build_event_dataset("Indy500");
  core::ModelZoo zoo;
  util::Timer timer;
  auto cfg = bench::task_a_config(profile);

  std::printf("Ablation A — joint per-sample sorting vs raw sampled values "
              "(RankNet-MLP, k=2, Indy500-2019)\n");
  {
    auto mlp = zoo.ranknet_mlp(ds);
    const auto r = compare_sorting(*mlp, ds.test[0], cfg);
    std::printf("  %-22s %10s %10s\n", "", "MAE", "90-risk");
    std::printf("  %-22s %10.3f %10.3f\n", "sorted ranks", r.mae_sorted,
                r.risk90_sorted);
    std::printf("  %-22s %10.3f %10.3f\n", "raw sampled values", r.mae_raw,
                r.risk90_raw);
    std::printf("  (sorting projects samples onto valid permutations; it "
                "should not hurt and typically tightens the quantiles)\n\n");
  }

  std::printf("Ablation B — Monte-Carlo sample budget (RankNet-MLP)\n");
  std::printf("  %-10s %10s %10s %10s\n", "samples", "MAE", "50-risk",
              "90-risk");
  {
    auto mlp = zoo.ranknet_mlp(ds);
    for (const int s : {4, 16, 64}) {
      auto c = cfg;
      c.num_samples = s;
      const auto r = core::evaluate_task_a(*mlp, ds.test, c);
      std::printf("  %-10d %10.3f %10.3f %10.3f\n", s, r.all.mae,
                  r.all.risk50, r.all.risk90);
    }
    std::printf("  (point accuracy saturates early; the tail quantiles keep "
                "improving with more paths — why the paper draws 100)\n\n");
  }

  std::printf("Ablation C — loss weight on rank-change windows "
              "(oracle status, reduced training budget)\n");
  std::printf("  %-10s %10s %14s\n", "weight", "MAE(all)", "MAE(pit-cov.)");
  {
    core::TrainConfig tcfg = core::default_train_config();
    tcfg.max_epochs = std::min(tcfg.max_epochs, 6);
    tcfg.max_windows = std::min<std::size_t>(tcfg.max_windows, 2000);
    for (const double w : {1.0, 3.0, 9.0, 15.0}) {
      auto wcfg = core::ModelZoo::ranknet_window_config();
      wcfg.change_weight = w;
      auto bundle = zoo.custom_rank_model(ds, wcfg, tcfg);
      core::RankNetForecaster oracle(bundle.model, nullptr, bundle.vocab,
                                     wcfg.covariates,
                                     core::StatusSource::kOracle, "ablation");
      const auto r = core::evaluate_task_a(oracle, ds.test, cfg);
      std::printf("  %-10.0f %10.3f %14.3f\n", w, r.all.mae,
                  r.pit_covered.mae);
      std::fflush(stdout);
    }
    std::printf("  (the paper tunes w to 9: too little weight misses the "
                "changes, too much sacrifices the quiet laps)\n");
  }
  std::printf("\ndone in %.1fs\n", timer.seconds());
  return 0;
}

// Table II + Fig. 6 — the dataset inventory (25 superspeedway races across
// four events with the paper's train/validation/test split) and the
// per-race statistics PitLapsRatio vs RankChangesRatio.
//
// PitLapsRatio: fraction of race laps on which at least one car pits.
// RankChangesRatio: fraction of (car, lap) transitions with a rank change.
#include <cstdio>
#include <set>

#include "simulator/season.hpp"
#include "telemetry/analysis.hpp"

namespace {

double pit_laps_ratio_by_lap(const ranknet::telemetry::RaceLog& race) {
  std::set<int> pit_laps;
  for (const auto& rec : race.records()) {
    if (rec.lap_status == ranknet::telemetry::LapStatus::kPit) {
      pit_laps.insert(rec.lap);
    }
  }
  return static_cast<double>(pit_laps.size()) /
         static_cast<double>(race.num_laps());
}

}  // namespace

int main() {
  using namespace ranknet;

  std::printf("Table II — dataset summary\n");
  std::printf("%-8s %-9s %7s %9s %6s %10s %13s %9s %-10s\n", "Event", "Year",
              "Track", "Shape", "Laps", "AvgSpeed", "#Participants",
              "#Records", "Usage");
  for (const auto& spec : sim::table2_specs()) {
    const auto race = sim::simulate_race(spec);
    std::printf("%-8s %-9d %7.3f %9s %6d %10.0f %13zu %9zu %-10s\n",
                spec.event.c_str(), spec.year,
                race.info().track_length_miles,
                race.info().track_shape.c_str(), race.num_laps(),
                race.info().avg_speed_mph, race.car_ids().size(),
                race.num_records(), sim::usage_name(spec.usage));
  }

  std::printf("\nFig. 6 — per-race data distribution\n");
  std::printf("%-14s %14s %18s\n", "Race", "PitLapsRatio", "RankChangesRatio");
  for (const auto& ds : sim::build_all_datasets()) {
    for (const auto* group : {&ds.train, &ds.validation, &ds.test}) {
      for (const auto& race : *group) {
        std::printf("%-14s %14.3f %18.3f\n", race.id().c_str(),
                    pit_laps_ratio_by_lap(race),
                    telemetry::rank_changes_ratio(race));
      }
    }
  }
  std::printf("\n(paper: Indy500 is the most dynamic event on both axes, "
              "Iowa the least)\n");
  return 0;
}

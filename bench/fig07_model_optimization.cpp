// Fig. 7 — stepwise model optimization on the Indy500-2018 validation race.
// Starting from a basic oracle-status RankNet (context 40, no loss weights,
// no context/shift features), each step adds one optimization:
//   1. loss weights (9x on windows with rank changes),
//   2. context length 60,
//   3. context features (LeaderPitCount, TotalPitCount),
//   4. shift features (race status / pit counts at lap +2).
// Reported: two-lap MAE on all laps and on pit-covered laps (validation).
#include <cstdio>

#include "bench/bench_common.hpp"

int main() {
  using namespace ranknet;
  const auto profile = bench::Profile::get();
  const auto ds = sim::build_event_dataset("Indy500");
  core::ModelZoo zoo;
  util::Timer timer;

  // Ablations use a reduced budget: this is a relative study on the
  // validation set, not the final model.
  core::TrainConfig tcfg = core::default_train_config();
  tcfg.max_epochs = std::min(tcfg.max_epochs, 6);
  tcfg.max_windows = std::min<std::size_t>(tcfg.max_windows, 2000);

  struct Step {
    const char* name;
    features::WindowConfig wcfg;
  };
  std::vector<Step> steps;
  {
    features::WindowConfig base = core::ModelZoo::ranknet_window_config();
    base.encoder_length = 40;
    base.change_weight = 1.0;
    base.covariates.context_features = false;
    base.covariates.shift_features = false;
    steps.push_back({"(a) basic RankNet-Oracle (ctx 40)", base});

    auto s1 = base;
    s1.change_weight = 9.0;
    steps.push_back({"(b) + loss weights (w=9)", s1});

    auto s2 = s1;
    s2.encoder_length = 60;
    steps.push_back({"(c) + context length 60", s2});

    auto s3 = s2;
    s3.covariates.context_features = true;
    steps.push_back({"(d) + context features", s3});

    auto s4 = s3;
    s4.covariates.shift_features = true;
    steps.push_back({"(e) + shift features", s4});
  }

  std::printf("Fig. 7 — RankNet model optimization on Indy500-2018 "
              "(validation, oracle race status, k=2)\n");
  bench::print_rule(88);
  std::printf("%-38s %10s %12s %14s\n", "Step", "MAE(all)", "MAE(normal)",
              "MAE(pit-cov.)");
  bench::print_rule(88);

  core::CurRankForecaster currank;
  auto cfg = bench::task_a_config(profile);
  const auto& val_race = ds.validation[0];
  {
    auto det = cfg;
    det.num_samples = 1;
    const auto r = core::evaluate_task_a(currank, val_race, det);
    std::printf("%-38s %10.3f %12.3f %14.3f\n", "CurRank (reference)",
                r.all.mae, r.normal.mae, r.pit_covered.mae);
  }

  for (const auto& step : steps) {
    auto bundle = zoo.custom_rank_model(ds, step.wcfg, tcfg);
    core::RankNetForecaster oracle(bundle.model, nullptr, bundle.vocab,
                                   step.wcfg.covariates,
                                   core::StatusSource::kOracle, step.name);
    const auto r = core::evaluate_task_a(oracle, val_race, cfg);
    std::printf("%-38s %10.3f %12.3f %14.3f\n", step.name, r.all.mae,
                r.normal.mae, r.pit_covered.mae);
    std::fflush(stdout);
  }
  bench::print_rule(88);
  std::printf("done in %.1fs (each step should reduce pit-covered MAE)\n",
              timer.seconds());
  return 0;
}

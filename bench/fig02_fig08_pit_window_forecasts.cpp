// Fig. 2 + Fig. 8 — two-lap forecasts around a pit-stop window for one car
// of Indy500-2019, for every model family: the ML regressors and ARIMA
// (Fig. 2a-c), DeepAR (Fig. 2d), and the RankNet / Transformer variants
// (Fig. 8). Prints observed rank, forecast median and the 5%-95% band per
// lap so the series can be plotted directly.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/forecaster.hpp"

namespace {

using namespace ranknet;

/// Rolling two-lap-ahead forecast across [from, to]: at each origin o the
/// model predicts lap o+2; we record median and quantiles for that lap.
struct Series {
  std::vector<double> median, q05, q95;
};

Series rolling_forecast(core::RaceForecaster& f,
                        const telemetry::RaceLog& race, int car_id, int from,
                        int to, int samples) {
  Series s;
  util::Rng rng(31);
  for (int lap = from; lap <= to; ++lap) {
    const int origin = lap - 2;
    const auto ranks =
        core::sort_to_ranks(f.forecast(race, origin, 2, samples, rng));
    const auto it = ranks.find(car_id);
    if (it == ranks.end()) {
      s.median.push_back(0);
      s.q05.push_back(0);
      s.q95.push_back(0);
      continue;
    }
    s.median.push_back(core::sample_quantile(it->second, 1, 0.5));
    s.q05.push_back(core::sample_quantile(it->second, 1, 0.05));
    s.q95.push_back(core::sample_quantile(it->second, 1, 0.95));
  }
  return s;
}

}  // namespace

int main() {
  const auto profile = bench::Profile::get();
  const auto ds = sim::build_event_dataset("Indy500");
  const auto& race = ds.test[0];
  core::ModelZoo zoo;

  // Pick a car with a mid-race green-flag pit stop (the paper uses car 12,
  // which pits around lap 34).
  int car_id = race.winner();
  int pit_lap = 0;
  for (int cand : race.car_ids()) {
    const auto& car = race.car(cand);
    if (car.laps() < 60) continue;
    for (std::size_t lap = 28; lap < 45; ++lap) {
      if (car.pit(lap) && !car.yellow(lap)) {
        car_id = cand;
        pit_lap = static_cast<int>(lap) + 1;
        break;
      }
    }
    if (pit_lap > 0) break;
  }
  const int from = pit_lap - 8, to = pit_lap + 22;
  std::printf("Fig. 2 / Fig. 8 — two-lap forecasts for car %d of %s "
              "(green-flag pit at lap %d), laps %d..%d\n\n",
              car_id, race.id().c_str(), pit_lap, from, to);

  std::vector<bench::NamedForecaster> models;
  for (auto& ml : bench::make_ml_baselines(ds.train, 2)) {
    models.push_back(std::move(ml));
  }
  models.push_back({"ARIMA", std::make_unique<core::ArimaForecaster>()});
  models.push_back({"DeepAR", zoo.deepar(ds)});
  models.push_back({"RankNet-MLP", zoo.ranknet_mlp(ds)});
  models.push_back({"RankNet-Oracle", zoo.ranknet_oracle(ds)});
  models.push_back({"Transformer-MLP", zoo.transformer_mlp(ds)});
  models.push_back({"Transformer-Oracle", zoo.transformer_oracle(ds)});

  const auto& car = race.car(car_id);
  for (auto& m : models) {
    const bool transformer = m.name.rfind("Transformer", 0) == 0;
    const int samples = m.name == "RandomForest" || m.name == "SVM" ||
                                m.name == "XGBoost"
                            ? 1
                            : (transformer ? profile.transformer_samples
                                           : profile.num_samples);
    const auto s =
        rolling_forecast(*m.forecaster, race, car_id, from, to, samples);
    std::printf("%s\n%4s %9s %16s %8s %8s\n", m.name.c_str(), "lap",
                "observed", "forecast-median", "q05", "q95");
    for (int lap = from; lap <= to; ++lap) {
      const auto i = static_cast<std::size_t>(lap - from);
      std::printf("%4d %9.0f %16.1f %8.1f %8.1f%s\n", lap,
                  car.rank[static_cast<std::size_t>(lap) - 1], s.median[i],
                  s.q05[i], s.q95[i], lap == pit_lap ? "   <- pit stop" : "");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}

// Fig. 9 — impact of prediction length on forecasting performance,
// Indy500-2019: MAE improvement (%) over CurRank at horizons 2..8 for
// RankNet-{Oracle,MLP}, Transformer-{Oracle,MLP} and the ML regressors
// (which are retrained per horizon, as pointwise models).
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_common.hpp"

int main() {
  using namespace ranknet;
  const auto profile = bench::Profile::get();
  const auto ds = sim::build_event_dataset("Indy500");
  core::ModelZoo zoo;

  auto oracle = zoo.ranknet_oracle(ds);
  auto mlp = zoo.ranknet_mlp(ds);
  auto tf_oracle = zoo.transformer_oracle(ds);
  auto tf_mlp = zoo.transformer_mlp(ds);
  core::CurRankForecaster currank;

  const std::vector<int> horizons{2, 4, 6, 8};
  std::map<std::string, std::map<int, double>> improvements;

  for (int h : horizons) {
    auto cfg = bench::task_a_config(profile, h);
    // The horizon sweep multiplies evaluation cost; thin the origins.
    cfg.origin_stride = std::max(cfg.origin_stride, 6);
    const double base =
        core::evaluate_task_a(currank, ds.test, cfg).all.mae;

    auto measure = [&](const std::string& name, core::RaceForecaster& f,
                       int samples) {
      auto c = cfg;
      c.num_samples = samples;
      const double mae = core::evaluate_task_a(f, ds.test, c).all.mae;
      improvements[name][h] = 100.0 * (base - mae) / base;
      std::fflush(stdout);
    };

    measure("RankNet-Oracle", *oracle, profile.num_samples);
    measure("RankNet-MLP", *mlp, profile.num_samples);
    measure("Transformer-Oracle", *tf_oracle, profile.transformer_samples);
    measure("Transformer-MLP", *tf_mlp, profile.transformer_samples);
    for (auto& ml : bench::make_ml_baselines(ds.train, h)) {
      if (ml.name == "SVM") continue;  // paper plots XGBoost + RandomForest
      measure(ml.name, *ml.forecaster, 1);
    }
    std::fprintf(stderr, "[fig09] horizon %d done (CurRank MAE %.3f)\n", h,
                 base);
  }

  std::printf("Fig. 9 — MAE improvement over CurRank (%%), Indy500-2019\n");
  std::printf("%-20s", "Model");
  for (int h : horizons) std::printf(" %8s%d", "k=", h);
  std::printf("\n");
  bench::print_rule(60);
  for (const auto& [name, by_h] : improvements) {
    std::printf("%-20s", name.c_str());
    for (int h : horizons) std::printf(" %9.1f", by_h.at(h));
    std::printf("\n");
  }
  std::printf(
      "\n(paper: RankNet-Oracle ~40%%+, RankNet-MLP ~20%%+, LSTM slightly "
      "above Transformer, ML baselines degrade toward/below 0)\n");
  return 0;
}

// Fig. 12 — operation breakdown for the CPU+VE hybrid system at batch size
// 32 vs 3200, per dispatched kernel variant (scalar / avx2). Offload per
// kernel class is decided by profitability under the VE device model
// (measured host time vs modeled device time + transfer); the printed
// percentages are shares of total step walltime. The variant axis shows
// how a faster host GEMM shrinks the profitable-to-offload fraction.
#include <cstdio>

#include "core/device_model.hpp"
#include "tensor/simd_kernels.hpp"

int main() {
  using namespace ranknet;
  namespace tk = tensor::kernels;
  const auto ve = core::ve_spec();
  std::printf("Fig. 12 — operation breakdown, CPU+VE hybrid\n");

  // Precision axis: a reduced-precision host GEMM (bf16/int8 weight
  // streaming) shrinks the profitable-to-offload fraction further than
  // avx2 alone — the breakdown quantifies how much VE offload headroom
  // quantization buys back.
  for (const auto variant : {tk::Variant::kScalar, tk::Variant::kAvx2,
                             tk::Variant::kBf16, tk::Variant::kInt8}) {
    if (!tk::cpu_supports(variant)) {
      std::printf("\nkernel variant %s: not supported on this CPU, skipped\n",
                  tk::variant_name(variant));
      continue;
    }
    (void)tk::set_variant(variant);
    std::printf("\nkernel variant %s:\n", tk::variant_name(variant));
    std::printf("%-26s %12s %12s\n", "category", "batch=32", "batch=3200");

    const auto w32 = core::measure_ranknet_workload(32, 3);
    const auto w3200 = core::measure_ranknet_workload(3200, 1);
    const auto b32 = core::hybrid_breakdown(w32, ve);
    const auto b3200 = core::hybrid_breakdown(w3200, ve);

    auto row = [](const char* name, double a, double b) {
      std::printf("%-26s %11.1f%% %11.1f%%\n", name, 100.0 * a, 100.0 * b);
    };
    row("MatMul+Mul (CPU)", b32.matmul_mul_host, b3200.matmul_mul_host);
    row("Add+Sigmoid+Tanh (CPU)", b32.pointwise_host, b3200.pointwise_host);
    row("Other ops (CPU)", b32.other_host, b3200.other_host);
    row("MatMul+Mul (VE)", b32.matmul_mul_dev, b3200.matmul_mul_dev);
    row("Add+Sigmoid+Tanh (VE)", b32.pointwise_dev, b3200.pointwise_dev);
    row("Other ops (VE)", b32.other_dev, b3200.other_dev);
    row("Data movement", b32.data_move, b3200.data_move);
    std::printf("\noffloaded work (flops): %.1f%% (batch 32) vs %.1f%% "
                "(batch 3200)\n",
                100.0 * b32.offloaded_flop_fraction,
                100.0 * b3200.offloaded_flop_fraction);
    std::printf("hybrid step time: %.1f µs/sample (batch 32) vs %.1f "
                "µs/sample (batch 3200); CPU-only: %.1f vs %.1f\n",
                b32.hybrid_seconds * 1e6 / 32,
                b3200.hybrid_seconds * 1e6 / 3200, w32.cpu_us_per_sample(),
                w3200.cpu_us_per_sample());
  }
  std::printf("(paper: ~7%% offloaded at batch 32, ~35%% at batch 3200 — "
              "offload pays only once kernels are large)\n");
  return 0;
}

// Table V — short-term rank position forecasting (prediction length 2) on
// Indy500-2019: CurRank, ARIMA, RandomForest, SVM, XGBoost, DeepAR and the
// three RankNet variants, evaluated per lap category (All / Normal /
// PitStop-covered) with Top1Acc, MAE, 50-risk and 90-risk.
//
// Models are trained (or loaded) through the ModelZoo cache; set
// RANKNET_FULL=1 for the paper's 100-sample / every-lap evaluation budget.
#include <cstdio>

#include "bench/bench_common.hpp"

int main() {
  using namespace ranknet;
  const auto profile = bench::Profile::get();
  const auto ds = sim::build_event_dataset("Indy500");
  core::ModelZoo zoo;
  util::Timer timer;

  bench::print_task_a_header(
      "Table V — short-term rank forecasting (k=2), Indy500-2019");

  const auto cfg = bench::task_a_config(profile);
  auto run = [&](const std::string& name, core::RaceForecaster& f,
                 int samples) {
    auto c = cfg;
    c.num_samples = samples;
    const auto r = core::evaluate_task_a(f, ds.test, c);
    bench::print_task_a_row(name, r);
    std::fflush(stdout);
  };

  core::CurRankForecaster currank;
  run("CurRank", currank, 1);

  core::ArimaForecaster arima;
  run("ARIMA", arima, profile.num_samples);

  for (auto& ml : bench::make_ml_baselines(ds.train, cfg.horizon)) {
    run(ml.name, *ml.forecaster, 1);
  }

  auto deepar = zoo.deepar(ds);
  run("DeepAR", *deepar, profile.num_samples);

  auto joint = zoo.ranknet_joint(ds);
  run("RankNet-Joint", *joint, profile.num_samples);

  auto mlp = zoo.ranknet_mlp(ds);
  run("RankNet-MLP", *mlp, profile.num_samples);

  auto oracle = zoo.ranknet_oracle(ds);
  run("RankNet-Oracle", *oracle, profile.num_samples);

  bench::print_rule();
  std::printf("evaluated in %.1fs (samples=%d, origin stride=%d)\n",
              timer.seconds(), profile.num_samples, profile.origin_stride);
  return 0;
}

// Serving quickstart: boots a ForecastServer in-process, then walks the
// client API end to end — load a race over the wire, request forecasts
// (watch the second identical request come back from the forecast cache),
// hot-swap the model with no downtime, and shut the server down.
//
//   ./build/examples/serve_quickstart
//
// In production the server and client live in different processes; the
// wire protocol (src/serve/wire.hpp) is the only coupling. Everything the
// server does is booked into the obs registry under "serve.*" — this
// example dumps the interesting counters at the end.
#include <cstdio>
#include <memory>
#include <string>

#include "core/forecast_cache.hpp"
#include "obs/metrics.hpp"
#include "serve/affine_model.hpp"
#include "serve/client.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "simulator/season.hpp"

using namespace ranknet;

int main() {
  // --- server side -------------------------------------------------------
  // A ModelRegistry owns the versioned models: candidates are staged from
  // an artifact file, gated against a probe race, and atomically published.
  const char* artifact_v1 = "/tmp/ranknet_example_model_v1.bin";
  const char* artifact_v2 = "/tmp/ranknet_example_model_v2.bin";
  serve::AffineRankModel::save_artifact(artifact_v1, 1.0, 0.0);  // CurRank
  serve::AffineRankModel::save_artifact(artifact_v2, 1.0, 0.5);

  const auto probe_race =
      sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest});

  serve::ModelRegistry registry(
      [](const std::string& path)
          -> util::Result<std::shared_ptr<core::RaceForecaster>> {
        auto model = std::make_shared<serve::AffineRankModel>();
        if (auto st = model->load_artifact(path); !st.ok()) return st;
        return std::shared_ptr<core::RaceForecaster>(std::move(model));
      },
      serve::RegistryConfig{});
  registry.set_probe_race(probe_race);
  registry.set_forecast_cache(std::make_shared<core::ForecastCache>(256));
  if (auto st = registry.init(artifact_v1); !st.ok()) {
    std::fprintf(stderr, "registry init: %s\n", st.to_string().c_str());
    return 1;
  }

  serve::ServerConfig server_cfg;
  server_cfg.socket_path = "/tmp/ranknet_serve_quickstart.sock";
  serve::ForecastServer server(registry, server_cfg);
  if (auto st = server.start(); !st.ok()) {
    std::fprintf(stderr, "server start: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("server listening on %s\n", server_cfg.socket_path.c_str());

  // --- client side -------------------------------------------------------
  serve::ClientConfig client_cfg;
  client_cfg.socket_path = server_cfg.socket_path;
  serve::ForecastClient client(client_cfg);

  // Upload the race the forecasts will be about.
  const auto race =
      sim::simulate_race({"Indy500", 2019, 120, sim::Usage::kTest});
  if (auto st = client.load_race(race); !st.ok()) {
    std::fprintf(stderr, "load_race: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("loaded race %s (%d laps)\n", race.id().c_str(),
              race.num_laps());

  // Forecast: rank trajectories over a 10-lap horizon from lap 60.
  serve::wire::ForecastRequest req;
  req.request_id = 1;
  req.seed = 42;  // the response is a pure function of (race, seed, model)
  req.race_id = race.id();
  req.origin_lap = 60;
  req.horizon = 10;
  req.num_samples = 16;
  auto res = client.forecast(req);
  if (!res.ok() || !res.value().ok()) {
    std::fprintf(stderr, "forecast failed\n");
    return 1;
  }
  std::printf("forecast: tier=%s model=v%llu cars=%zu\n",
              serve::wire::tier_name(res.value().tier),
              static_cast<unsigned long long>(res.value().model_version),
              res.value().cars.size());
  for (std::size_t i = 0; i < 3 && i < res.value().cars.size(); ++i) {
    const auto& car = res.value().cars[i];
    std::printf("  car %d median ranks:", car.car_id);
    for (double v : car.median) std::printf(" %.1f", v);
    std::printf("\n");
  }

  // The same request again is served from the forecast cache — same bytes,
  // no recompute (tier says so).
  req.request_id = 2;
  auto replay = client.forecast(req);
  std::printf("replay:   tier=%s (byte-identical by construction)\n",
              serve::wire::tier_name(replay.value().tier));

  // Zero-downtime hot-swap: stage v2, gate it, publish atomically. Requests
  // in flight drain on v1; everything after the ack serves v2.
  auto ack = client.swap_model(artifact_v2);
  if (!ack.ok()) {
    std::fprintf(stderr, "swap: %s\n", ack.status().to_string().c_str());
    return 1;
  }
  std::printf("hot-swap: %s -> active v%llu\n",
              ack.value().action == serve::wire::SwapAction::kPromoted
                  ? "promoted"
                  : "rejected",
              static_cast<unsigned long long>(ack.value().active_version));

  req.request_id = 3;
  auto after = client.forecast(req);
  std::printf("post-swap forecast: tier=%s model=v%llu\n",
              serve::wire::tier_name(after.value().tier),
              static_cast<unsigned long long>(after.value().model_version));

  // --- observability -----------------------------------------------------
  auto& reg = obs::Registry::instance();
  std::printf("\nserve.* counters:\n");
  for (const char* name :
       {"serve.requests.received", "serve.tier.full", "serve.tier.cached",
        "serve.registry.promoted", "serve.registry.rolled_back"}) {
    std::printf("  %-28s %llu\n", name,
                static_cast<unsigned long long>(reg.counter(name).value()));
  }

  if (auto st = client.shutdown_server(); st.ok()) {
    std::printf("\nserver shut down cleanly\n");
  }
  server.stop();
  return 0;
}

// Export the generated dataset as CSV files in the Fig. 1(a) schema —
// useful for inspecting races, plotting, or feeding external tools.
//
// Usage: export_dataset [output_dir]   (default: ./dataset)
#include <cstdio>
#include <filesystem>
#include <string>

#include "simulator/season.hpp"

int main(int argc, char** argv) {
  using namespace ranknet;
  const std::string out_dir = argc > 1 ? argv[1] : "dataset";
  std::filesystem::create_directories(out_dir);

  std::size_t races = 0, records = 0;
  for (const auto& spec : sim::table2_specs()) {
    const auto race = sim::simulate_race(spec);
    const auto path = out_dir + "/" + race.id() + ".csv";
    race.to_csv().save(path);
    ++races;
    records += race.num_records();
    std::printf("wrote %-22s (%5zu records, %s)\n", path.c_str(),
                race.num_records(), sim::usage_name(spec.usage));
  }
  std::printf("done: %zu races, %zu records under %s/\n", races, records,
              out_dir.c_str());
  return 0;
}

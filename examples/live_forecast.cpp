// Live race forecasting under feed faults — replays a race lap by lap the
// way the on-premises timing feed would deliver it, then replays it again
// through sim::FaultInjector at increasing fault rates. Each tier runs the
// full serving path: FaultInjector (drops / duplicates / corruption /
// reordering / stalls) -> telemetry::StreamIngestor (validate, dedup,
// reorder-heal, impute, quarantine) -> core::ParallelForecastEngine with a
// degradation ladder (RankNet, falling back to CurRank for damaged series).
// The point of the demo: forecasts degrade gracefully — accuracy falls with
// the fault rate, counters show what was absorbed, and nothing crashes.
//
// Tier 0 is the clean feed and is bit-identical to the engine's direct
// clean-path output (the determinism contract survives the ingestion hop).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <map>
#include <memory>
#include <vector>

#include "core/baselines.hpp"
#include "core/forecaster.hpp"
#include "core/parallel_engine.hpp"
#include "core/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simulator/fault_injector.hpp"
#include "telemetry/stream_ingestor.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ranknet;

struct TierReport {
  const char* label = "";
  sim::FaultCounters feed;
  telemetry::IngestCounters ingest;
  core::ParallelForecastEngine::Degradation degradation;
  double mae = 0.0;            // median forecast vs true future rank
  std::size_t mae_points = 0;  // (car, origin) pairs scored
  int predicted_winner = -1;
  std::size_t cars_served = 0;
};

/// Replay one fault tier end to end. `truth` is the clean race used for
/// scoring; `verbose` prints the per-cadence forecast tables (tier 0).
TierReport run_tier(const char* label, const telemetry::RaceLog& truth,
                    core::RaceForecaster& ranknet,
                    const sim::FaultProfile& profile, bool verbose) {
  TierReport report;
  report.label = label;

  // --- feed -> ingestor -------------------------------------------------
  sim::FaultInjector feed(truth.records(), profile, /*seed=*/77);
  telemetry::IngestConfig icfg;
  icfg.expected_total_laps = truth.num_laps();
  telemetry::StreamIngestor ingestor(icfg);
  while (!feed.done()) {
    if (auto rec = feed.next()) {
      (void)ingestor.push(*rec);  // quarantine decisions are counted inside
    }
  }
  auto ingested = ingestor.finalize(truth.info());
  report.feed = feed.counters();
  report.ingest = ingestor.counters();
  if (!ingested.ok()) {
    std::printf("%s: feed unusable — %s\n", label,
                ingested.status().to_string().c_str());
    return report;
  }
  const telemetry::RaceLog& race = ingested.value();
  report.cars_served = race.car_ids().size();

  // --- forecast engine with the degradation ladder ----------------------
  core::ParallelForecastEngine engine(ranknet,
                                      util::ThreadPool::hardware_threads());
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<core::CurRankForecaster>();
  policy.series_damaged = [&ingestor](int car_id, int /*origin_lap*/) {
    return ingestor.damage_fraction(car_id) > 0.05;
  };
  if (const auto st = engine.set_degradation_policy(std::move(policy));
      !st.ok()) {
    throw std::runtime_error("degradation policy rejected: " +
                             st.to_string());
  }

  const int horizon = 10, samples = 60, cadence = 25;
  util::Rng rng(11);

  if (verbose) {
    std::printf("replaying %s — forecast cadence every %d laps, horizon %d\n",
                race.id().c_str(), cadence, horizon);
  }
  for (int lap = cadence; lap + horizon <= race.num_laps(); lap += cadence) {
    // --- current standings (what the timing screen shows now) ----------
    struct Entry {
      int car;
      double rank;
    };
    std::vector<Entry> now;
    for (int car_id : race.car_ids()) {
      const auto& car = race.car(car_id);
      if (car.laps() < static_cast<std::size_t>(lap)) continue;
      now.push_back({car_id, car.rank[static_cast<std::size_t>(lap) - 1]});
    }
    std::sort(now.begin(), now.end(),
              [](const Entry& a, const Entry& b) { return a.rank < b.rank; });

    // --- forecast -------------------------------------------------------
    const auto raw = engine.forecast(race, lap, horizon, samples, rng);
    const auto ranks = core::sort_to_ranks(raw);
    std::vector<std::pair<double, int>> predicted;  // (median rank, car)
    for (const auto& [car_id, m] : ranks) {
      predicted.emplace_back(
          core::sample_quantile(m, m.cols() - 1, 0.5), car_id);
    }
    std::sort(predicted.begin(), predicted.end());
    std::map<int, double> raw_median;
    for (const auto& [car_id, m] : raw) {
      raw_median[car_id] = core::sample_quantile(m, m.cols() - 1, 0.5);
    }

    // --- score against the clean race (the ground truth) ---------------
    // Scored on each car's raw median forecast (rank-scale values), not on
    // jointly sorted ranks: under partial fallback the field mixes two
    // sample sources whose level calibration differs, and a cross-source
    // joint sort would charge that calibration gap to every car. Per-car
    // raw medians keep the metric comparable across tiers.
    for (const auto& [med, car_id] : predicted) {
      (void)med;
      const auto it = truth.cars().find(car_id);
      if (it == truth.cars().end()) continue;
      const auto target = static_cast<std::size_t>(lap + horizon);
      if (it->second.laps() < target) continue;
      report.mae += std::abs(raw_median.at(car_id) - it->second.rank[target - 1]);
      ++report.mae_points;
    }

    if (verbose) {
      std::printf("\nlap %3d | %-34s | forecast for lap %d\n", lap,
                  "current top 5", lap + horizon);
      const int shown = std::min<int>(
          5, static_cast<int>(std::min(now.size(), predicted.size())));
      for (int pos = 0; pos < shown; ++pos) {
        const auto [med, pred_car] = predicted[static_cast<std::size_t>(pos)];
        const auto& m = ranks.at(pred_car);
        std::printf("      P%d | car %2d%25s | car %2d (median %.1f, q90 "
                    "%.1f)\n",
                    pos + 1, now[static_cast<std::size_t>(pos)].car, "",
                    pred_car, med,
                    core::sample_quantile(m, m.cols() - 1, 0.9));
      }
    }
  }

  // Final verification against the checkered flag.
  const int final_origin = race.num_laps() - horizon;
  const auto final_ranks = core::sort_to_ranks(
      engine.forecast(race, final_origin, horizon, samples, rng));
  double best = 1e9;
  for (const auto& [car_id, m] : final_ranks) {
    const double med = core::sample_quantile(m, m.cols() - 1, 0.5);
    if (med < best) {
      best = med;
      report.predicted_winner = car_id;
    }
  }
  if (verbose) {
    std::printf("\npredicted winner from lap %d: car %d | actual winner: car "
                "%d\n",
                final_origin, report.predicted_winner, truth.winner());
    const auto stats = engine.stats();
    std::printf("engine: %llu forecasts over %zu threads, %llu tasks, "
                "concurrency %.2f\n",
                static_cast<unsigned long long>(stats.forecasts),
                engine.threads(),
                static_cast<unsigned long long>(stats.tasks),
                stats.concurrency());
  }
  report.degradation = engine.degradation();
  return report;
}

/// Per-tier observability snapshot: one line per pipeline stage that fired,
/// read straight from the obs registry's span histograms.
void print_span_snapshot() {
  std::printf("spans:");
  bool any = false;
  for (std::size_t s = 0;
       s < static_cast<std::size_t>(obs::Stage::kCount); ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    const auto& h = obs::stage_histogram(stage);
    if (h.count() == 0) continue;
    std::printf(" %s(n=%llu mean=%.2fms p95=%.2fms)",
                obs::stage_name(stage),
                (unsigned long long)h.count(), h.mean() * 1e3,
                h.approx_quantile(0.95) * 1e3);
    any = true;
  }
  std::printf(any ? "\n" : " (disabled)\n");
}

}  // namespace

int main() {
  const auto ds = sim::build_event_dataset("Indy500");
  const auto& race = ds.test[0];
  core::ModelZoo zoo;
  auto ranknet = zoo.ranknet_mlp(ds);

  struct Tier {
    const char* label;
    sim::FaultProfile profile;
  };
  const std::vector<Tier> tiers = {
      {"clean", {}},
      {"faulty(drop 5% corrupt 2% reorder 3)",
       {.drop_rate = 0.05, .corrupt_rate = 0.02, .reorder_depth = 3}},
      {"severe(drop 15% dup 5% corrupt 5% reorder 5 stalls)",
       {.drop_rate = 0.15,
        .duplicate_rate = 0.05,
        .corrupt_rate = 0.05,
        .reorder_depth = 5,
        .stall_rate = 0.02,
        .stall_length = 4}},
  };

  std::vector<TierReport> reports;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (i > 0) {
      std::printf("\n=== fault tier %zu: %s ===\n", i, tiers[i].label);
    }
    // Fresh metrics per tier so the snapshot below covers this tier only
    // (registrations and handles survive a reset; only values zero).
    obs::Registry::instance().reset();
    reports.push_back(run_tier(tiers[i].label, race, *ranknet,
                               tiers[i].profile, /*verbose=*/i == 0));
    print_span_snapshot();
    const auto& r = reports.back();
    if (i > 0) {
      std::printf("feed: %llu delivered, %llu dropped, %llu duplicated, "
                  "%llu corrupted, %llu reordered, %llu stall ticks\n",
                  (unsigned long long)r.feed.delivered,
                  (unsigned long long)r.feed.dropped,
                  (unsigned long long)r.feed.duplicated,
                  (unsigned long long)r.feed.corrupted,
                  (unsigned long long)r.feed.reordered,
                  (unsigned long long)r.feed.stall_ticks);
      std::printf("ingest: %llu accepted, %llu dup, %llu reordered, "
                  "%llu imputed, %llu quarantined "
                  "(schema %llu, range %llu, monotonic %llu, gap %llu), "
                  "%llu cars trimmed\n",
                  (unsigned long long)r.ingest.accepted,
                  (unsigned long long)r.ingest.duplicates,
                  (unsigned long long)r.ingest.reordered,
                  (unsigned long long)r.ingest.imputed,
                  (unsigned long long)r.ingest.quarantined(),
                  (unsigned long long)r.ingest.quarantined_schema,
                  (unsigned long long)r.ingest.quarantined_range,
                  (unsigned long long)r.ingest.quarantined_monotonic,
                  (unsigned long long)r.ingest.quarantined_gap,
                  (unsigned long long)r.ingest.trimmed_cars);
      std::printf("degradation: %llu cars full model, %llu fallback "
                  "(damaged %llu, deadline %llu, error %llu)\n",
                  (unsigned long long)r.degradation.full_cars,
                  (unsigned long long)r.degradation.fallback_cars(),
                  (unsigned long long)r.degradation.damaged_fallback_cars,
                  (unsigned long long)r.degradation.deadline_fallback_cars,
                  (unsigned long long)r.degradation.error_fallback_cars);
    }
  }

  std::printf("\n=== accuracy vs fault rate (MAE of median forecast, "
              "horizon 10) ===\n");
  std::printf("%-52s %8s %8s %10s %8s\n", "tier", "MAE", "points",
              "quarantine", "fallback");
  for (const auto& r : reports) {
    std::printf("%-52s %8.3f %8zu %10llu %8llu\n", r.label,
                r.mae_points == 0 ? 0.0
                                  : r.mae / static_cast<double>(r.mae_points),
                r.mae_points,
                (unsigned long long)r.ingest.quarantined(),
                (unsigned long long)r.degradation.fallback_cars());
  }
  std::printf("winner truth: car %d | predicted per tier:", race.winner());
  for (const auto& r : reports) std::printf(" %d", r.predicted_winner);
  std::printf("\n");

  // Full registry snapshot for the last tier — the same JSON a serving
  // process would expose on its health endpoint.
  std::printf("\n=== metrics snapshot (last tier) ===\n%s",
              obs::Registry::instance().to_json().c_str());
  return 0;
}

// Live race forecasting — replays a race lap by lap the way the on-premises
// timing feed would deliver it, and at a fixed cadence prints the current
// top five with RankNet's probabilistic forecast of the top five ten laps
// later (the broadcast/strategy-desk use case).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/forecaster.hpp"
#include "core/parallel_engine.hpp"
#include "core/registry.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace ranknet;
  const auto ds = sim::build_event_dataset("Indy500");
  const auto& race = ds.test[0];
  core::ModelZoo zoo;
  auto ranknet = zoo.ranknet_mlp(ds);
  // Fan per-car sampling across the machine's cores. The engine's
  // determinism contract makes this a pure latency optimization: the
  // forecasts below are bit-identical to calling ranknet directly.
  core::ParallelForecastEngine engine(*ranknet,
                                      util::ThreadPool::hardware_threads());

  const int horizon = 10, samples = 60, cadence = 25;
  util::Rng rng(11);

  std::printf("replaying %s — forecast cadence every %d laps, horizon %d\n",
              race.id().c_str(), cadence, horizon);
  for (int lap = cadence; lap + horizon <= race.num_laps(); lap += cadence) {
    // --- current standings (what the timing screen shows now) ----------
    struct Entry {
      int car;
      double rank;
    };
    std::vector<Entry> now;
    for (int car_id : race.car_ids()) {
      const auto& car = race.car(car_id);
      if (car.laps() < static_cast<std::size_t>(lap)) continue;
      now.push_back({car_id, car.rank[static_cast<std::size_t>(lap) - 1]});
    }
    std::sort(now.begin(), now.end(),
              [](const Entry& a, const Entry& b) { return a.rank < b.rank; });

    // --- forecast -------------------------------------------------------
    const auto ranks = core::sort_to_ranks(
        engine.forecast(race, lap, horizon, samples, rng));
    std::vector<std::pair<double, int>> predicted;  // (median rank, car)
    for (const auto& [car_id, m] : ranks) {
      predicted.emplace_back(
          core::sample_quantile(m, m.cols() - 1, 0.5), car_id);
    }
    std::sort(predicted.begin(), predicted.end());

    std::printf("\nlap %3d | %-34s | forecast for lap %d\n", lap,
                "current top 5", lap + horizon);
    for (int pos = 0; pos < 5 && pos < static_cast<int>(now.size()); ++pos) {
      const auto [med, pred_car] = predicted[static_cast<std::size_t>(pos)];
      const auto& m = ranks.at(pred_car);
      std::printf("      P%d | car %2d%25s | car %2d (median %.1f, q90 "
                  "%.1f)\n",
                  pos + 1, now[static_cast<std::size_t>(pos)].car, "",
                  pred_car, med,
                  core::sample_quantile(m, m.cols() - 1, 0.9));
    }
    // How did the previous forecast hold up? (10-lap-old median leader)
    const auto& leader_car = race.car(now[0].car);
    (void)leader_car;
  }

  // Final verification against the checkered flag.
  const int final_origin = race.num_laps() - horizon;
  const auto final_ranks = core::sort_to_ranks(
      engine.forecast(race, final_origin, horizon, samples, rng));
  int predicted_winner = -1;
  double best = 1e9;
  for (const auto& [car_id, m] : final_ranks) {
    const double med = core::sample_quantile(m, m.cols() - 1, 0.5);
    if (med < best) {
      best = med;
      predicted_winner = car_id;
    }
  }
  std::printf("\npredicted winner from lap %d: car %d | actual winner: car "
              "%d\n",
              final_origin, predicted_winner, race.winner());

  const auto stats = engine.stats();
  std::printf("engine: %llu forecasts over %zu threads, %llu tasks, "
              "concurrency %.2f\n",
              static_cast<unsigned long long>(stats.forecasts),
              engine.threads(),
              static_cast<unsigned long long>(stats.tasks),
              stats.concurrency());
  return 0;
}

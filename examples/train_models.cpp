// Example: train (or load from the artifact cache) every model the bench
// suite uses — the full RankNet rank model, DeepAR, RankNet-Joint, the
// Transformer variant and the PitModel — for one or all events.
//
// Usage:
//   train_models [event]        # default: all four events
//
// Models are cached under $RANKNET_ARTIFACTS (default ./artifacts); rerun
// after deleting that directory to retrain from scratch.
#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ranknet;
  std::vector<std::string> events{"Indy500", "Texas", "Iowa", "Pocono"};
  if (argc > 1) events = {argv[1]};

  core::ModelZoo zoo;
  util::Timer total;
  for (const auto& event : events) {
    std::printf("=== %s ===\n", event.c_str());
    util::Timer t;
    const auto ds = sim::build_event_dataset(event);
    std::printf("  dataset: %zu train, %zu validation, %zu test races "
                "(%zu records)\n",
                ds.train.size(), ds.validation.size(), ds.test.size(),
                ds.total_records());

    const auto rank = zoo.rank_model(ds);
    std::printf("  rank model   : %zu weights, best val NLL %.4f (%.1fs)\n",
                rank.model->num_weights(), rank.stats.best_val, t.seconds());
    zoo.pit_model(ds);
    std::printf("  pit model    : ready (%.1fs)\n", t.seconds());
    if (event == "Indy500") {
      // DeepAR is an Indy500-only baseline (Tables V/VI).
      const auto deepar = zoo.deepar_model(ds);
      std::printf("  deepar model : best val NLL %.4f (%.1fs)\n",
                  deepar.stats.best_val, t.seconds());
    }
    const auto joint = zoo.joint_model(ds);
    std::printf("  joint model  : best val NLL %.4f (%.1fs)\n",
                joint.stats.best_val, t.seconds());
    const auto tf = zoo.transformer_model(ds);
    std::printf("  transformer  : %zu weights, best val NLL %.4f (%.1fs)\n",
                tf.model->num_weights(), tf.stats.best_val, t.seconds());
  }
  std::printf("all models ready in %.1fs\n", total.seconds());
  return 0;
}

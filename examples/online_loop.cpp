// Online learning quickstart: a registry serving a deliberately stale model,
// a stream of fault-injected races arriving one by one, and the online
// trainer refitting / gating / promoting candidates as the data lands —
// then a sabotaged fit slipping through a loosened gate and probation
// rolling it back.
//
//   ./build/examples/online_loop
//
// Everything is seeded, so two runs print the same promote/rollback trace
// (the property tests/test_online_soak.cpp proves across engine thread
// counts). Counters land in the obs registry under "serve.online.*".
#include <cstdio>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "serve/affine_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/online_loop.hpp"
#include "simulator/fault_injector.hpp"
#include "simulator/season.hpp"

using namespace ranknet;

int main() {
  // --- a registry serving a stale champion -------------------------------
  // The champion predicts rank@origin + 4: plausible enough to pass the
  // serving gates, consistently beatable by any honest refit.
  const char* champion_artifact = "/tmp/ranknet_online_example_champion.bin";
  serve::AffineRankModel::save_artifact(champion_artifact, 1.0, 4.0);

  serve::ModelRegistry registry(
      [](const std::string& path)
          -> util::Result<std::shared_ptr<core::RaceForecaster>> {
        auto model = std::make_shared<serve::AffineRankModel>();
        if (auto st = model->load_artifact(path); !st.ok()) return st;
        return std::shared_ptr<core::RaceForecaster>(std::move(model));
      },
      serve::RegistryConfig{});
  if (auto st = registry.init(champion_artifact); !st.ok()) {
    std::fprintf(stderr, "registry init: %s\n", st.to_string().c_str());
    return 1;
  }

  // --- the online loop ---------------------------------------------------
  // Ingest -> replay -> fit (affine refit on the newest 3 races) -> shadow
  // score on the 2 held-out races before them -> gate -> registry promote,
  // with 2 probation steps after every promotion.
  serve::OnlineLoopConfig loop_cfg;
  loop_cfg.trainer.train_window = 3;
  loop_cfg.trainer.probe_window = 2;
  loop_cfg.trainer.probation_steps = 2;
  loop_cfg.trainer.artifact_dir = "/tmp";
  loop_cfg.trainer.gate.max_mae_delta = 0.0;  // must beat the champion

  // The fitter is the honest affine refit — except when `sabotage` is
  // armed, in which case it emits a grossly biased model (standing in for
  // a diverged fit or poisoned data) for the probation demo below.
  auto sabotage = std::make_shared<bool>(false);
  auto honest = serve::make_affine_fitter();
  core::CandidateFitter fitter =
      [sabotage, honest](const telemetry::RaceWindow& train,
                         std::uint64_t seed, const std::string& path)
      -> util::Result<core::FittedCandidate> {
    if (!*sabotage) return honest(train, seed, path);
    serve::AffineRankModel::save_artifact(path, 1.0, 40.0);
    core::FittedCandidate bad;
    bad.forecaster = std::make_shared<serve::AffineRankModel>(1.0, 40.0);
    bad.artifact_path = path;
    bad.summary = "sabotaged affine offset=40";
    return bad;
  };
  serve::OnlineLoop loop(registry, fitter, loop_cfg);

  // --- feed a season of faulty race streams ------------------------------
  for (int k = 0; k < 6; ++k) {
    const auto race =
        sim::simulate_race({"Indy500", 2013 + k, 60, sim::Usage::kTest});
    sim::FaultProfile faults;
    faults.drop_rate = 0.02;
    faults.duplicate_rate = 0.02;
    faults.reorder_depth = 2;
    sim::FaultInjector feed(race.records(), faults,
                            static_cast<std::uint64_t>(700 + k));
    if (auto st = loop.ingest_race(race.info(), feed.drain()); !st.ok()) {
      std::printf("race %d rejected by ingest: %s\n", 2013 + k,
                  st.to_string().c_str());
      continue;
    }
    const auto event = loop.step();
    std::printf("race %d  ->  %s (v%llu) %s\n", 2013 + k,
                core::trace_action_name(event.action),
                static_cast<unsigned long long>(event.version),
                event.detail.c_str());
  }

  // --- sabotage + probation ---------------------------------------------
  // Arm the sabotaged fitter and loosen the gate: the degraded candidate
  // promotes. Then disarm and re-tighten — the next step's probation check
  // re-scores the displaced (good) champion on fresh data, sees it clearly
  // beating the degraded model, and rolls the registry back.
  std::printf("\nloosening the gate and promoting a degraded candidate...\n");
  auto& gate = loop.trainer().gate();
  const auto strict = gate.config();
  auto permissive = strict;
  permissive.max_nll_delta = 1e9;
  permissive.max_mae_delta = 1e9;
  permissive.max_prediction_failure_rate = 1.0;
  gate.set_config(permissive);
  *sabotage = true;

  for (int k = 0; k < 2; ++k) {
    const auto race =
        sim::simulate_race({"Indy500", 2019 + k, 60, sim::Usage::kTest});
    sim::FaultInjector feed(race.records(), sim::FaultProfile{},
                            static_cast<std::uint64_t>(800 + k));
    (void)loop.ingest_race(race.info(), feed.drain());
    const auto event = loop.step();
    std::printf("race %d  ->  %s (v%llu)\n", 2019 + k,
                core::trace_action_name(event.action),
                static_cast<unsigned long long>(event.version));
    // After the bad promotion, hand control back to the honest loop.
    *sabotage = false;
    gate.set_config(strict);
  }

  // --- the trace and the books ------------------------------------------
  std::printf("\nfull trainer trace:\n%s", loop.trainer().trace_string().c_str());
  auto& obs = obs::Registry::instance();
  std::printf("\nserve.online.promoted      = %llu\n",
              static_cast<unsigned long long>(
                  obs.counter("serve.online.promoted").value()));
  std::printf("serve.online.rejected_gate = %llu\n",
              static_cast<unsigned long long>(
                  obs.counter("serve.online.rejected_gate").value()));
  std::printf("serve.online.rolled_back   = %llu\n",
              static_cast<unsigned long long>(
                  obs.counter("serve.online.rolled_back").value()));
  std::printf("registry active version    = %llu\n",
              static_cast<unsigned long long>(registry.active_version()));
  return 0;
}

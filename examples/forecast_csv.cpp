// File-based workflow: load a race log from a CSV in the Fig. 1(a) schema
// (e.g. produced by examples/export_dataset) and forecast it with the
// cached RankNet-MLP model of the matching event.
//
// Usage: forecast_csv <race.csv> [event] [origin_lap] [horizon]
//   event defaults to Indy500; origin to mid-race; horizon to 5.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/forecaster.hpp"
#include "core/registry.hpp"

int main(int argc, char** argv) {
  using namespace ranknet;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <race.csv> [event] [origin_lap] [horizon]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const std::string event = argc > 2 ? argv[2] : "Indy500";

  telemetry::EventInfo info;
  info.name = event + "-csv";
  info.year = 0;
  const auto race =
      telemetry::RaceLog::from_csv(info, util::CsvTable::load(path));
  const int origin = argc > 3 ? std::atoi(argv[3]) : race.num_laps() / 2;
  const int horizon = argc > 4 ? std::atoi(argv[4]) : 5;
  std::printf("loaded %s: %zu records, %zu cars, %d laps\n", path.c_str(),
              race.num_records(), race.car_ids().size(), race.num_laps());

  core::ModelZoo zoo;
  auto ranknet = zoo.ranknet_mlp(sim::build_event_dataset(event));
  util::Rng rng(99);
  const auto ranks = core::sort_to_ranks(
      ranknet->forecast(race, origin, horizon, 100, rng));

  std::printf("\nforecast from lap %d (+%d laps):\n%6s %8s %18s\n", origin,
              horizon, "car", "now", "median [q10,q90]");
  for (const auto& [car_id, m] : ranks) {
    const auto& car = race.car(car_id);
    const auto h = m.cols() - 1;
    std::printf("%6d %8.0f %8.1f [%4.1f, %4.1f]\n", car_id,
                car.rank[static_cast<std::size_t>(origin) - 1],
                core::sample_quantile(m, h, 0.5),
                core::sample_quantile(m, h, 0.1),
                core::sample_quantile(m, h, 0.9));
  }
  return 0;
}

// Quickstart: the five-minute tour of the public API.
//
//  1. Generate the Indy500 dataset (the simulator substitutes for the
//     proprietary IndyCar timing logs — same schema and causal structure).
//  2. Train (or load from ./artifacts) the RankNet-MLP forecaster.
//  3. Forecast the next ten laps of the test race mid-way through and
//     compare against what actually happened.
#include <cstdio>

#include "core/forecaster.hpp"
#include "core/registry.hpp"

int main() {
  using namespace ranknet;

  // 1. Data. Every race is a telemetry::RaceLog with the Fig. 1(a) schema.
  const auto ds = sim::build_event_dataset("Indy500");
  const auto& race = ds.test[0];
  std::printf("dataset: %zu training races, test race %s with %zu cars\n",
              ds.train.size(), race.id().c_str(), race.car_ids().size());

  // 2. Model. The ModelZoo caches trained weights under ./artifacts, so the
  // first run trains (a few minutes on one core) and later runs load.
  core::ModelZoo zoo;
  auto ranknet = zoo.ranknet_mlp(ds);

  // 3. Forecast from lap 100: 10 laps ahead, 100 sampled futures. The
  // PitModel predicts who will pit when; the LSTM rolls the rank forward;
  // per-sample sorting turns values into rank positions.
  const int origin = 100, horizon = 10, samples = 100;
  util::Rng rng(2026);
  const auto ranks = core::sort_to_ranks(
      ranknet->forecast(race, origin, horizon, samples, rng));

  std::printf("\nforecast from lap %d, %d laps ahead (median [q10, q90] at "
              "lap %d):\n",
              origin, horizon, origin + horizon);
  std::printf("%6s %12s %22s %8s\n", "car", "rank@100", "forecast@110",
              "actual");
  for (const auto& [car_id, samples_matrix] : ranks) {
    const auto& car = race.car(car_id);
    const auto h = static_cast<std::size_t>(horizon) - 1;
    const double med = core::sample_quantile(samples_matrix, h, 0.5);
    const double q10 = core::sample_quantile(samples_matrix, h, 0.1);
    const double q90 = core::sample_quantile(samples_matrix, h, 0.9);
    const auto target = static_cast<std::size_t>(origin + horizon) - 1;
    if (car.laps() <= target) continue;
    std::printf("%6d %12.0f %10.1f [%4.1f, %4.1f] %8.0f\n", car_id,
                car.rank[static_cast<std::size_t>(origin) - 1], med, q10, q90,
                car.rank[target]);
  }
  std::printf("\n(see examples/pit_strategy.cpp and "
              "examples/live_forecast.cpp for deeper scenarios)\n");
  return 0;
}

// Pit-strategy analysis — the use case the paper's conclusion motivates
// ("RankNet is promising to be used as a tool to investigate and optimize
// the pit stop strategy").
//
// For one car at one decision point, we compare sampled race outcomes under
// alternative pit plans by feeding each plan into the RankModel as oracle
// covariates (everyone else follows their observed race). This is a
// counterfactual rollout: "if we pit on lap L, where do we run 15 laps from
// now?"
#include <cstdio>
#include <vector>

#include "core/registry.hpp"
#include "core/status_forecast.hpp"
#include "util/stats.hpp"

namespace {

using namespace ranknet;

/// Roll out `horizon` laps for `car_id` with a forced own-pit plan; other
/// cars keep their ground-truth status (oracle). Returns sampled ranks of
/// the car at the final lap.
std::vector<double> rollout_with_plan(
    const core::ModelZoo::LstmBundle& bundle, const telemetry::RaceLog& race,
    int car_id, int origin, int horizon, int pit_in_laps, int samples,
    util::Rng& rng) {
  const auto& model = *bundle.model;
  const auto& car = race.car(car_id);

  // Build this car's covariates with the planned stop replacing reality.
  auto streams = features::StatusStreams::from_race(race, car_id);
  const auto o = static_cast<std::size_t>(origin);
  for (std::size_t t = o; t < streams.laps(); ++t) {
    streams.lap_status[t] = 0.0;  // wipe the observed future stops
  }
  if (pit_in_laps > 0 && o + static_cast<std::size_t>(pit_in_laps) <=
                             streams.laps()) {
    streams.lap_status[o + static_cast<std::size_t>(pit_in_laps) - 1] = 1.0;
  }
  const auto covs =
      features::build_covariates(streams, bundle.wcfg.covariates);

  // Prime the LSTM on the true history, then sample forward under the plan.
  const auto trace =
      model.trace({car.rank}, {covs}, {bundle.vocab.index(car_id)});
  auto state = core::LstmSeqModel::replicate_state(
      trace[o - 2], 0, static_cast<std::size_t>(samples));
  std::vector<std::vector<double>> z(static_cast<std::size_t>(samples),
                                     {car.rank[o - 1]});
  std::vector<std::vector<std::vector<double>>> future(
      static_cast<std::size_t>(samples));
  for (auto& rows : future) {
    rows.resize(static_cast<std::size_t>(horizon));
    for (int h = 0; h < horizon; ++h) {
      const std::size_t idx = o + static_cast<std::size_t>(h);
      rows[static_cast<std::size_t>(h)] =
          idx < covs.size() ? covs[idx]
                            : std::vector<double>(
                                  bundle.wcfg.covariates.dim(), 0.0);
    }
  }
  const std::vector<int> car_idx(static_cast<std::size_t>(samples),
                                 bundle.vocab.index(car_id));
  const auto out =
      model.sample_forward(state, z, future, car_idx, horizon, rng);
  std::vector<double> final_ranks;
  for (std::size_t s = 0; s < out.rows(); ++s) {
    final_ranks.push_back(out(s, out.cols() - 1));
  }
  return final_ranks;
}

}  // namespace

int main() {
  const auto ds = sim::build_event_dataset("Indy500");
  const auto& race = ds.test[0];
  core::ModelZoo zoo;
  const auto bundle = zoo.rank_model(ds);
  const auto pit_model = zoo.pit_model(ds);

  // Decision point: lap 80 for a mid-field car with an aging stint.
  const int origin = 80, horizon = 15, samples = 200;
  int car_id = -1;
  for (int cand : race.car_ids()) {
    const auto& car = race.car(cand);
    if (car.laps() < static_cast<std::size_t>(origin + horizon)) continue;
    const auto streams = features::StatusStreams::from_race(race, cand);
    const auto f = core::current_pit_features(streams, origin);
    const double rank = car.rank[origin - 1];
    if (f.pit_age > 15 && rank >= 6 && rank <= 14) {
      car_id = cand;
      break;
    }
  }
  if (car_id < 0) car_id = race.car_ids()[race.car_ids().size() / 2];

  const auto& car = race.car(car_id);
  const auto streams = features::StatusStreams::from_race(race, car_id);
  const auto now = core::current_pit_features(streams, origin);
  const auto predicted = pit_model->predict(now);
  std::printf("car %d at lap %d: rank %.0f, stint age %.0f laps\n", car_id,
              origin, car.rank[origin - 1], now.pit_age);
  std::printf("PitModel expects the next stop in %.1f ± %.1f laps\n\n",
              predicted.mean, predicted.stddev);

  std::printf("counterfactual: rank at lap %d under alternative pit plans "
              "(%d sampled futures each)\n",
              origin + horizon, samples);
  std::printf("%-22s %8s %8s %8s\n", "plan", "median", "q10", "q90");
  util::Rng rng(7);
  for (const int pit_in : {0, 3, 6, 9, 12}) {
    const auto ranks = rollout_with_plan(bundle, race, car_id, origin,
                                         horizon, pit_in, samples, rng);
    char label[64];
    if (pit_in == 0) {
      std::snprintf(label, sizeof(label), "stay out (no stop)");
    } else {
      std::snprintf(label, sizeof(label), "pit in %d laps", pit_in);
    }
    std::printf("%-22s %8.1f %8.1f %8.1f\n", label, util::median(ranks),
                util::quantile(ranks, 0.1), util::quantile(ranks, 0.9));
  }
  std::printf("\n(staying out defers the ~%d-position pit loss beyond the "
              "horizon but risks running dry; the model quantifies the "
              "trade-off)\n",
              8);
  return 0;
}

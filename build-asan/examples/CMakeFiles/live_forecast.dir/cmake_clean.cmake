file(REMOVE_RECURSE
  "CMakeFiles/live_forecast.dir/live_forecast.cpp.o"
  "CMakeFiles/live_forecast.dir/live_forecast.cpp.o.d"
  "live_forecast"
  "live_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

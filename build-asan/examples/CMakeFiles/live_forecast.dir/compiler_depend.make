# Empty compiler generated dependencies file for live_forecast.
# This may be replaced when dependencies are built.

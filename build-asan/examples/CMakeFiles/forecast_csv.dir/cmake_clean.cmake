file(REMOVE_RECURSE
  "CMakeFiles/forecast_csv.dir/forecast_csv.cpp.o"
  "CMakeFiles/forecast_csv.dir/forecast_csv.cpp.o.d"
  "forecast_csv"
  "forecast_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

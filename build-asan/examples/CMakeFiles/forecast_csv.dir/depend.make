# Empty dependencies file for forecast_csv.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pit_strategy.dir/pit_strategy.cpp.o"
  "CMakeFiles/pit_strategy.dir/pit_strategy.cpp.o.d"
  "pit_strategy"
  "pit_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pit_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

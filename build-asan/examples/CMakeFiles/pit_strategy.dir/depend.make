# Empty dependencies file for pit_strategy.
# This may be replaced when dependencies are built.

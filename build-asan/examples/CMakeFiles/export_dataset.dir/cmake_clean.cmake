file(REMOVE_RECURSE
  "CMakeFiles/export_dataset.dir/export_dataset.cpp.o"
  "CMakeFiles/export_dataset.dir/export_dataset.cpp.o.d"
  "export_dataset"
  "export_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

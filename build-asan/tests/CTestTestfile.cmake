# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_util[1]_include.cmake")
include("/root/repo/build-asan/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-asan/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build-asan/tests/test_simulator[1]_include.cmake")
include("/root/repo/build-asan/tests/test_features[1]_include.cmake")
include("/root/repo/build-asan/tests/test_nn_gradcheck[1]_include.cmake")
include("/root/repo/build-asan/tests/test_nn[1]_include.cmake")
include("/root/repo/build-asan/tests/test_ml[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core_models[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core_forecast[1]_include.cmake")
include("/root/repo/build-asan/tests/test_registry[1]_include.cmake")
include("/root/repo/build-asan/tests/test_device_model[1]_include.cmake")
include("/root/repo/build-asan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-asan/tests/test_ranknet_forecaster[1]_include.cmake")
include("/root/repo/build-asan/tests/test_parallel_engine[1]_include.cmake")
include("/root/repo/build-asan/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build-asan/tests/test_golden_regression[1]_include.cmake")
include("/root/repo/build-asan/tests/test_integration[1]_include.cmake")
add_test(fault_suite "/root/repo/build-asan/tests/test_fault_injection")
set_tests_properties(fault_suite PROPERTIES  LABELS "fault" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")

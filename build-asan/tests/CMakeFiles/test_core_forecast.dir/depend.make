# Empty dependencies file for test_core_forecast.
# This may be replaced when dependencies are built.

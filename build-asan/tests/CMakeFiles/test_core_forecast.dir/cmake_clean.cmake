file(REMOVE_RECURSE
  "CMakeFiles/test_core_forecast.dir/test_core_forecast.cpp.o"
  "CMakeFiles/test_core_forecast.dir/test_core_forecast.cpp.o.d"
  "test_core_forecast"
  "test_core_forecast.pdb"
  "test_core_forecast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_forecast.cpp" "tests/CMakeFiles/test_core_forecast.dir/test_core_forecast.cpp.o" "gcc" "tests/CMakeFiles/test_core_forecast.dir/test_core_forecast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/ranknet_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/features/CMakeFiles/ranknet_features.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nn/CMakeFiles/ranknet_nn.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/ranknet_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simulator/CMakeFiles/ranknet_simulator.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/ranknet_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tensor/CMakeFiles/ranknet_tensor.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ranknet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_core_models.dir/test_core_models.cpp.o"
  "CMakeFiles/test_core_models.dir/test_core_models.cpp.o.d"
  "test_core_models"
  "test_core_models.pdb"
  "test_core_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

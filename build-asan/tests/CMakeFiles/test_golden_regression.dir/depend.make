# Empty dependencies file for test_golden_regression.
# This may be replaced when dependencies are built.

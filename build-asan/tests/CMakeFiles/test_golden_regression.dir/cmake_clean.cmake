file(REMOVE_RECURSE
  "CMakeFiles/test_golden_regression.dir/test_golden_regression.cpp.o"
  "CMakeFiles/test_golden_regression.dir/test_golden_regression.cpp.o.d"
  "test_golden_regression"
  "test_golden_regression.pdb"
  "test_golden_regression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

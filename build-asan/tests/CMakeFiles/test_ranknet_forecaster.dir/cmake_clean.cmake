file(REMOVE_RECURSE
  "CMakeFiles/test_ranknet_forecaster.dir/test_ranknet_forecaster.cpp.o"
  "CMakeFiles/test_ranknet_forecaster.dir/test_ranknet_forecaster.cpp.o.d"
  "test_ranknet_forecaster"
  "test_ranknet_forecaster.pdb"
  "test_ranknet_forecaster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranknet_forecaster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

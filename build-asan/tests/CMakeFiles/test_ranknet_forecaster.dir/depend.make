# Empty dependencies file for test_ranknet_forecaster.
# This may be replaced when dependencies are built.

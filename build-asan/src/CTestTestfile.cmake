# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tensor")
subdirs("telemetry")
subdirs("simulator")
subdirs("features")
subdirs("nn")
subdirs("ml")
subdirs("core")

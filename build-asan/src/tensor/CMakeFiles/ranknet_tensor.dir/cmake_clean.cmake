file(REMOVE_RECURSE
  "CMakeFiles/ranknet_tensor.dir/kernels.cpp.o"
  "CMakeFiles/ranknet_tensor.dir/kernels.cpp.o.d"
  "CMakeFiles/ranknet_tensor.dir/matrix.cpp.o"
  "CMakeFiles/ranknet_tensor.dir/matrix.cpp.o.d"
  "CMakeFiles/ranknet_tensor.dir/opcount.cpp.o"
  "CMakeFiles/ranknet_tensor.dir/opcount.cpp.o.d"
  "libranknet_tensor.a"
  "libranknet_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranknet_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ranknet_tensor.
# This may be replaced when dependencies are built.

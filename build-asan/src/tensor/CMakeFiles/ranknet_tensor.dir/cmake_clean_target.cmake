file(REMOVE_RECURSE
  "libranknet_tensor.a"
)

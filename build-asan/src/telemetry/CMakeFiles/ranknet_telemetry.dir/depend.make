# Empty dependencies file for ranknet_telemetry.
# This may be replaced when dependencies are built.

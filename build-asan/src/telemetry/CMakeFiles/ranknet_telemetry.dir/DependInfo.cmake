
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/analysis.cpp" "src/telemetry/CMakeFiles/ranknet_telemetry.dir/analysis.cpp.o" "gcc" "src/telemetry/CMakeFiles/ranknet_telemetry.dir/analysis.cpp.o.d"
  "/root/repo/src/telemetry/race_log.cpp" "src/telemetry/CMakeFiles/ranknet_telemetry.dir/race_log.cpp.o" "gcc" "src/telemetry/CMakeFiles/ranknet_telemetry.dir/race_log.cpp.o.d"
  "/root/repo/src/telemetry/stream_ingestor.cpp" "src/telemetry/CMakeFiles/ranknet_telemetry.dir/stream_ingestor.cpp.o" "gcc" "src/telemetry/CMakeFiles/ranknet_telemetry.dir/stream_ingestor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ranknet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

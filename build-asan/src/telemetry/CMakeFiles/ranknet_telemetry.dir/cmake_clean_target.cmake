file(REMOVE_RECURSE
  "libranknet_telemetry.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ranknet_telemetry.dir/analysis.cpp.o"
  "CMakeFiles/ranknet_telemetry.dir/analysis.cpp.o.d"
  "CMakeFiles/ranknet_telemetry.dir/race_log.cpp.o"
  "CMakeFiles/ranknet_telemetry.dir/race_log.cpp.o.d"
  "CMakeFiles/ranknet_telemetry.dir/stream_ingestor.cpp.o"
  "CMakeFiles/ranknet_telemetry.dir/stream_ingestor.cpp.o.d"
  "libranknet_telemetry.a"
  "libranknet_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranknet_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ranknet_util.dir/csv.cpp.o"
  "CMakeFiles/ranknet_util.dir/csv.cpp.o.d"
  "CMakeFiles/ranknet_util.dir/logging.cpp.o"
  "CMakeFiles/ranknet_util.dir/logging.cpp.o.d"
  "CMakeFiles/ranknet_util.dir/stats.cpp.o"
  "CMakeFiles/ranknet_util.dir/stats.cpp.o.d"
  "CMakeFiles/ranknet_util.dir/status.cpp.o"
  "CMakeFiles/ranknet_util.dir/status.cpp.o.d"
  "CMakeFiles/ranknet_util.dir/string_util.cpp.o"
  "CMakeFiles/ranknet_util.dir/string_util.cpp.o.d"
  "CMakeFiles/ranknet_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ranknet_util.dir/thread_pool.cpp.o.d"
  "libranknet_util.a"
  "libranknet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranknet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ranknet_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libranknet_util.a"
)

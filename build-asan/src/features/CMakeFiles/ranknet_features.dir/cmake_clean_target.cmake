file(REMOVE_RECURSE
  "libranknet_features.a"
)

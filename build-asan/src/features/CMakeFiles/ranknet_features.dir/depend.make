# Empty dependencies file for ranknet_features.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ranknet_features.dir/scaler.cpp.o"
  "CMakeFiles/ranknet_features.dir/scaler.cpp.o.d"
  "CMakeFiles/ranknet_features.dir/transforms.cpp.o"
  "CMakeFiles/ranknet_features.dir/transforms.cpp.o.d"
  "CMakeFiles/ranknet_features.dir/window.cpp.o"
  "CMakeFiles/ranknet_features.dir/window.cpp.o.d"
  "libranknet_features.a"
  "libranknet_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranknet_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/scaler.cpp" "src/features/CMakeFiles/ranknet_features.dir/scaler.cpp.o" "gcc" "src/features/CMakeFiles/ranknet_features.dir/scaler.cpp.o.d"
  "/root/repo/src/features/transforms.cpp" "src/features/CMakeFiles/ranknet_features.dir/transforms.cpp.o" "gcc" "src/features/CMakeFiles/ranknet_features.dir/transforms.cpp.o.d"
  "/root/repo/src/features/window.cpp" "src/features/CMakeFiles/ranknet_features.dir/window.cpp.o" "gcc" "src/features/CMakeFiles/ranknet_features.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/telemetry/CMakeFiles/ranknet_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tensor/CMakeFiles/ranknet_tensor.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ranknet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

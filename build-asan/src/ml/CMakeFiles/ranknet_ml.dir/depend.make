# Empty dependencies file for ranknet_ml.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ranknet_ml.dir/arima.cpp.o"
  "CMakeFiles/ranknet_ml.dir/arima.cpp.o.d"
  "CMakeFiles/ranknet_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/ranknet_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/ranknet_ml.dir/gbdt.cpp.o"
  "CMakeFiles/ranknet_ml.dir/gbdt.cpp.o.d"
  "CMakeFiles/ranknet_ml.dir/random_forest.cpp.o"
  "CMakeFiles/ranknet_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/ranknet_ml.dir/svr.cpp.o"
  "CMakeFiles/ranknet_ml.dir/svr.cpp.o.d"
  "libranknet_ml.a"
  "libranknet_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranknet_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

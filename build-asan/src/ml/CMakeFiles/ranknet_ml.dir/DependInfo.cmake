
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/arima.cpp" "src/ml/CMakeFiles/ranknet_ml.dir/arima.cpp.o" "gcc" "src/ml/CMakeFiles/ranknet_ml.dir/arima.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/ranknet_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/ranknet_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/ml/CMakeFiles/ranknet_ml.dir/gbdt.cpp.o" "gcc" "src/ml/CMakeFiles/ranknet_ml.dir/gbdt.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/ranknet_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/ranknet_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/svr.cpp" "src/ml/CMakeFiles/ranknet_ml.dir/svr.cpp.o" "gcc" "src/ml/CMakeFiles/ranknet_ml.dir/svr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ranknet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

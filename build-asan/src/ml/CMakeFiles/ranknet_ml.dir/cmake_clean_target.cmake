file(REMOVE_RECURSE
  "libranknet_ml.a"
)

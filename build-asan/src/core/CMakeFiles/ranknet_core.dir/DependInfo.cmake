
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ar_model.cpp" "src/core/CMakeFiles/ranknet_core.dir/ar_model.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/ar_model.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/ranknet_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/device_model.cpp" "src/core/CMakeFiles/ranknet_core.dir/device_model.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/device_model.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/ranknet_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/forecaster.cpp" "src/core/CMakeFiles/ranknet_core.dir/forecaster.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/forecaster.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/ranknet_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/parallel_engine.cpp" "src/core/CMakeFiles/ranknet_core.dir/parallel_engine.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/parallel_engine.cpp.o.d"
  "/root/repo/src/core/pit_model.cpp" "src/core/CMakeFiles/ranknet_core.dir/pit_model.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/pit_model.cpp.o.d"
  "/root/repo/src/core/ranknet.cpp" "src/core/CMakeFiles/ranknet_core.dir/ranknet.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/ranknet.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/ranknet_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/status_forecast.cpp" "src/core/CMakeFiles/ranknet_core.dir/status_forecast.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/status_forecast.cpp.o.d"
  "/root/repo/src/core/training.cpp" "src/core/CMakeFiles/ranknet_core.dir/training.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/training.cpp.o.d"
  "/root/repo/src/core/transformer_model.cpp" "src/core/CMakeFiles/ranknet_core.dir/transformer_model.cpp.o" "gcc" "src/core/CMakeFiles/ranknet_core.dir/transformer_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/features/CMakeFiles/ranknet_features.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nn/CMakeFiles/ranknet_nn.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/ranknet_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simulator/CMakeFiles/ranknet_simulator.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/telemetry/CMakeFiles/ranknet_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tensor/CMakeFiles/ranknet_tensor.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ranknet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ranknet_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ranknet_core.dir/ar_model.cpp.o"
  "CMakeFiles/ranknet_core.dir/ar_model.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/baselines.cpp.o"
  "CMakeFiles/ranknet_core.dir/baselines.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/device_model.cpp.o"
  "CMakeFiles/ranknet_core.dir/device_model.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/evaluation.cpp.o"
  "CMakeFiles/ranknet_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/forecaster.cpp.o"
  "CMakeFiles/ranknet_core.dir/forecaster.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/metrics.cpp.o"
  "CMakeFiles/ranknet_core.dir/metrics.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/parallel_engine.cpp.o"
  "CMakeFiles/ranknet_core.dir/parallel_engine.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/pit_model.cpp.o"
  "CMakeFiles/ranknet_core.dir/pit_model.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/ranknet.cpp.o"
  "CMakeFiles/ranknet_core.dir/ranknet.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/registry.cpp.o"
  "CMakeFiles/ranknet_core.dir/registry.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/status_forecast.cpp.o"
  "CMakeFiles/ranknet_core.dir/status_forecast.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/training.cpp.o"
  "CMakeFiles/ranknet_core.dir/training.cpp.o.d"
  "CMakeFiles/ranknet_core.dir/transformer_model.cpp.o"
  "CMakeFiles/ranknet_core.dir/transformer_model.cpp.o.d"
  "libranknet_core.a"
  "libranknet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranknet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

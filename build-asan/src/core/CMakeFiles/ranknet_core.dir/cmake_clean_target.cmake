file(REMOVE_RECURSE
  "libranknet_core.a"
)

file(REMOVE_RECURSE
  "libranknet_simulator.a"
)

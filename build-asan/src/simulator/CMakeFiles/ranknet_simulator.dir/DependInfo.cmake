
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulator/fault_injector.cpp" "src/simulator/CMakeFiles/ranknet_simulator.dir/fault_injector.cpp.o" "gcc" "src/simulator/CMakeFiles/ranknet_simulator.dir/fault_injector.cpp.o.d"
  "/root/repo/src/simulator/race_sim.cpp" "src/simulator/CMakeFiles/ranknet_simulator.dir/race_sim.cpp.o" "gcc" "src/simulator/CMakeFiles/ranknet_simulator.dir/race_sim.cpp.o.d"
  "/root/repo/src/simulator/season.cpp" "src/simulator/CMakeFiles/ranknet_simulator.dir/season.cpp.o" "gcc" "src/simulator/CMakeFiles/ranknet_simulator.dir/season.cpp.o.d"
  "/root/repo/src/simulator/track.cpp" "src/simulator/CMakeFiles/ranknet_simulator.dir/track.cpp.o" "gcc" "src/simulator/CMakeFiles/ranknet_simulator.dir/track.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/telemetry/CMakeFiles/ranknet_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ranknet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

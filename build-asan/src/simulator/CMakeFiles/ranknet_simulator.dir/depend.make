# Empty dependencies file for ranknet_simulator.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ranknet_simulator.dir/fault_injector.cpp.o"
  "CMakeFiles/ranknet_simulator.dir/fault_injector.cpp.o.d"
  "CMakeFiles/ranknet_simulator.dir/race_sim.cpp.o"
  "CMakeFiles/ranknet_simulator.dir/race_sim.cpp.o.d"
  "CMakeFiles/ranknet_simulator.dir/season.cpp.o"
  "CMakeFiles/ranknet_simulator.dir/season.cpp.o.d"
  "CMakeFiles/ranknet_simulator.dir/track.cpp.o"
  "CMakeFiles/ranknet_simulator.dir/track.cpp.o.d"
  "libranknet_simulator.a"
  "libranknet_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranknet_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

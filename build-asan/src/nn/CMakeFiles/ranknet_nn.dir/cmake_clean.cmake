file(REMOVE_RECURSE
  "CMakeFiles/ranknet_nn.dir/adam.cpp.o"
  "CMakeFiles/ranknet_nn.dir/adam.cpp.o.d"
  "CMakeFiles/ranknet_nn.dir/attention.cpp.o"
  "CMakeFiles/ranknet_nn.dir/attention.cpp.o.d"
  "CMakeFiles/ranknet_nn.dir/dense.cpp.o"
  "CMakeFiles/ranknet_nn.dir/dense.cpp.o.d"
  "CMakeFiles/ranknet_nn.dir/embedding.cpp.o"
  "CMakeFiles/ranknet_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/ranknet_nn.dir/gaussian.cpp.o"
  "CMakeFiles/ranknet_nn.dir/gaussian.cpp.o.d"
  "CMakeFiles/ranknet_nn.dir/layer_norm.cpp.o"
  "CMakeFiles/ranknet_nn.dir/layer_norm.cpp.o.d"
  "CMakeFiles/ranknet_nn.dir/lstm.cpp.o"
  "CMakeFiles/ranknet_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/ranknet_nn.dir/serialize.cpp.o"
  "CMakeFiles/ranknet_nn.dir/serialize.cpp.o.d"
  "libranknet_nn.a"
  "libranknet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranknet_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

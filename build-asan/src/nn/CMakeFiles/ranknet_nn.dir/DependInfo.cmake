
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/ranknet_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/ranknet_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/ranknet_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/ranknet_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/ranknet_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/ranknet_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/ranknet_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/ranknet_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/gaussian.cpp" "src/nn/CMakeFiles/ranknet_nn.dir/gaussian.cpp.o" "gcc" "src/nn/CMakeFiles/ranknet_nn.dir/gaussian.cpp.o.d"
  "/root/repo/src/nn/layer_norm.cpp" "src/nn/CMakeFiles/ranknet_nn.dir/layer_norm.cpp.o" "gcc" "src/nn/CMakeFiles/ranknet_nn.dir/layer_norm.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/ranknet_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/ranknet_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/ranknet_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/ranknet_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/tensor/CMakeFiles/ranknet_tensor.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ranknet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

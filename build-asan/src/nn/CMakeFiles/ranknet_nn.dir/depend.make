# Empty dependencies file for ranknet_nn.
# This may be replaced when dependencies are built.

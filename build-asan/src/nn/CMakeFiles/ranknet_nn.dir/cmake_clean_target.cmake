file(REMOVE_RECURSE
  "libranknet_nn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/table6_stint_forecast.dir/table6_stint_forecast.cpp.o"
  "CMakeFiles/table6_stint_forecast.dir/table6_stint_forecast.cpp.o.d"
  "table6_stint_forecast"
  "table6_stint_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_stint_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

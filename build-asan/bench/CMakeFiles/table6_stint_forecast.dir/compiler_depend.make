# Empty compiler generated dependencies file for table6_stint_forecast.
# This may be replaced when dependencies are built.

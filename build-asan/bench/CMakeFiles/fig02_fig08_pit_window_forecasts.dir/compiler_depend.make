# Empty compiler generated dependencies file for fig02_fig08_pit_window_forecasts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig02_fig08_pit_window_forecasts.dir/fig02_fig08_pit_window_forecasts.cpp.o"
  "CMakeFiles/fig02_fig08_pit_window_forecasts.dir/fig02_fig08_pit_window_forecasts.cpp.o.d"
  "fig02_fig08_pit_window_forecasts"
  "fig02_fig08_pit_window_forecasts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_fig08_pit_window_forecasts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

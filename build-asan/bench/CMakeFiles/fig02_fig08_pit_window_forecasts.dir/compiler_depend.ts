# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02_fig08_pit_window_forecasts.

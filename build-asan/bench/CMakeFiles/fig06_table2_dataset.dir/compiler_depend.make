# Empty compiler generated dependencies file for fig06_table2_dataset.
# This may be replaced when dependencies are built.

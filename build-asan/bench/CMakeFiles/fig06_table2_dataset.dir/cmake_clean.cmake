file(REMOVE_RECURSE
  "CMakeFiles/fig06_table2_dataset.dir/fig06_table2_dataset.cpp.o"
  "CMakeFiles/fig06_table2_dataset.dir/fig06_table2_dataset.cpp.o.d"
  "fig06_table2_dataset"
  "fig06_table2_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_table2_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

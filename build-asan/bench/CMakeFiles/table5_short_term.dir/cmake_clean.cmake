file(REMOVE_RECURSE
  "CMakeFiles/table5_short_term.dir/table5_short_term.cpp.o"
  "CMakeFiles/table5_short_term.dir/table5_short_term.cpp.o.d"
  "table5_short_term"
  "table5_short_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_short_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table5_short_term.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_model_optimization.dir/fig07_model_optimization.cpp.o"
  "CMakeFiles/fig07_model_optimization.dir/fig07_model_optimization.cpp.o.d"
  "fig07_model_optimization"
  "fig07_model_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_model_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig07_model_optimization.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig09_prediction_length.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_prediction_length.dir/fig09_prediction_length.cpp.o"
  "CMakeFiles/fig09_prediction_length.dir/fig09_prediction_length.cpp.o.d"
  "fig09_prediction_length"
  "fig09_prediction_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_prediction_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

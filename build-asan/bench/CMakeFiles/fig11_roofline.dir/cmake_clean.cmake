file(REMOVE_RECURSE
  "CMakeFiles/fig11_roofline.dir/fig11_roofline.cpp.o"
  "CMakeFiles/fig11_roofline.dir/fig11_roofline.cpp.o.d"
  "fig11_roofline"
  "fig11_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

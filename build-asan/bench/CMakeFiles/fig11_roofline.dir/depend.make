# Empty dependencies file for fig11_roofline.
# This may be replaced when dependencies are built.

# Empty dependencies file for table7_generalization.
# This may be replaced when dependencies are built.

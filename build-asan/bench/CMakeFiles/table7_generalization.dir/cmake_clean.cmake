file(REMOVE_RECURSE
  "CMakeFiles/table7_generalization.dir/table7_generalization.cpp.o"
  "CMakeFiles/table7_generalization.dir/table7_generalization.cpp.o.d"
  "table7_generalization"
  "table7_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

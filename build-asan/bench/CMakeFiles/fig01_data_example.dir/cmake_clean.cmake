file(REMOVE_RECURSE
  "CMakeFiles/fig01_data_example.dir/fig01_data_example.cpp.o"
  "CMakeFiles/fig01_data_example.dir/fig01_data_example.cpp.o.d"
  "fig01_data_example"
  "fig01_data_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_data_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

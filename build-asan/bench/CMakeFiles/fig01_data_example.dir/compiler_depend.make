# Empty compiler generated dependencies file for fig01_data_example.
# This may be replaced when dependencies are built.

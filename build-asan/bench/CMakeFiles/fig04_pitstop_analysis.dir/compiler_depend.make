# Empty compiler generated dependencies file for fig04_pitstop_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig04_pitstop_analysis.dir/fig04_pitstop_analysis.cpp.o"
  "CMakeFiles/fig04_pitstop_analysis.dir/fig04_pitstop_analysis.cpp.o.d"
  "fig04_pitstop_analysis"
  "fig04_pitstop_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_pitstop_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Reduced-precision weight packing + activation calibration for the bf16
// and int8 dispatch variants (tensor::kernels::Variant::{kBf16, kInt8}).
//
// The MC-decode GEMMs are memory-bandwidth-bound at decode shapes (paper
// Figs. 10-12; DESIGN.md roofline chapter), so the reduced-precision
// variants attack bytes-per-weight: the weight operand of every dispatched
// non-transposed GEMM is packed once into a 16-bit (bf16) or 8-bit
// (symmetric int8) sidecar and the inner loop streams the packed bytes,
// up-converting into f64 accumulators. Activations are rounded (bf16) or
// quantized (int8) on the fly per row; biases and every epilogue stay f64.
//
// Determinism contract (same bar as the other variants, enforced by
// tests/test_quant_kernels.cpp):
//   * Packing is a pure element-wise function of the source weights
//     (round-to-nearest-even for bf16; per-tensor symmetric absmax scale
//     for int8), so a warm pack and a cold pack hold identical bytes.
//   * int8 activation scales are per-row (a pure function of that row
//     alone) or fixed by calibration — NEVER per-batch — so batching rows
//     differently (decode tree vs independent decode, engine partitioning)
//     cannot perturb a single output bit.
//   * int8 accumulation is exact integer arithmetic; bf16 accumulates in
//     f64 strictly sequentially along k. Both are row-independent.
//
// Cache coherence: packs are keyed by the weight pointer and invalidated
// at every in-repo weight mutation point (LstmInferenceSession repack,
// serialize load commit, Adam step); a sampled content fingerprint at
// acquire time is defense-in-depth against out-of-band writes. Packing is
// not synchronized against concurrent mutation of the SAME weights — the
// standing rule that you never train the weights you are serving.
//
// Calibration: sessions record per-tensor input-activation absmax while
// recording_active() (one probe-race forecast — see
// core::calibrate_forecaster), keyed by the weight parameter's name. The
// resulting map is persisted in the v3 model artifact (nn/serialize) and
// applied process-wide with set_activation_calibration(); packs pick the
// calibrated scale up by name at pack time. Without calibration the int8
// variant falls back to per-row dynamic scales — bit-stable either way,
// just a different (documented) numerics point.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ranknet::tensor::quant {

// ---- bf16 scalar conversions ---------------------------------------------
// Defined inline: these sit in the GEMM inner loops, where an out-of-line
// call per element costs ~10x the multiply-add it feeds (measured on the
// fig10 rollout — the compiler must see the bodies to vectorize the loop).

/// Round a double to bf16 (via float, then round-to-nearest-even on the
/// top 16 float bits). NaNs map to one canonical quiet NaN so packed bytes
/// are a pure function of numeric value.
inline std::uint16_t to_bf16(double v) {
  const float f = static_cast<float>(v);
  if (std::isnan(f)) return 0x7fc0;  // canonical quiet NaN
  std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  // Round-to-nearest-even on the truncated 16 mantissa bits.
  const std::uint32_t lsb = (u >> 16) & 1u;
  u += 0x7fffu + lsb;
  return static_cast<std::uint16_t>(u >> 16);
}

/// Exact widening bf16 -> double (every bf16 is exactly representable).
inline double from_bf16(std::uint16_t b) {
  const std::uint32_t u = static_cast<std::uint32_t>(b) << 16;
  return static_cast<double>(std::bit_cast<float>(u));
}

/// Quantize one value to int8 with saturation, round-half-away-from-zero.
/// NaN maps to 0 (a NaN weight or activation carries no magnitude
/// information; a deterministic map beats lround's UB on non-finite
/// input). Shared by the pack builder and the per-row activation
/// quantizer in the GEMM hot loop — the two MUST agree bit-for-bit, and
/// the hot loop cannot afford a libm call per element.
inline std::int8_t quantize_int8(double v, double inv_scale) {
  const double q = v * inv_scale;
  if (std::isnan(q)) return 0;
  if (q >= 127.0) return 127;
  if (q <= -127.0) return -127;
  return static_cast<std::int8_t>(q >= 0.0 ? q + 0.5 : q - 0.5);
}

// ---- packed weight sidecars ----------------------------------------------

struct PackedBf16 {
  std::size_t rows = 0, cols = 0;
  std::vector<std::uint16_t> data;  // row-major, to_bf16(w)
};

struct PackedInt8 {
  std::size_t rows = 0, cols = 0;
  double scale = 1.0;       // absmax/127; 1.0 for an all-zero tensor
  double zero_point = 0.0;  // symmetric quantization: always 0 (persisted
                            // in the calibration artifact for format
                            // completeness)
  double act_absmax = 0.0;  // calibrated input absmax; 0 => per-row dynamic
  std::vector<std::int8_t> data;  // row-major, clamp(round(w/scale), ±127)
};

/// Pack (or return the cached pack of) `w` (rows x cols, row-major). The
/// returned shared_ptr keeps the pack alive across a concurrent
/// invalidate(). Thread-safe.
std::shared_ptr<const PackedBf16> acquire_bf16(const double* w,
                                               std::size_t rows,
                                               std::size_t cols);
std::shared_ptr<const PackedInt8> acquire_int8(const double* w,
                                               std::size_t rows,
                                               std::size_t cols);

/// Drop any packs for `w`. Writers call this after mutating weights in
/// place (session repack, artifact load commit, optimizer step).
void invalidate(const double* w);

/// Drop every pack and name annotation (tests; artifact swaps go through
/// invalidate()).
void clear_packs();

/// Number of live pack entries across both formats (tests/obs).
std::size_t pack_count();

/// Bind a tensor name to a weight pointer so int8 packs can look up their
/// calibrated activation range. Re-annotating a pointer with a different
/// name drops its packs (the pointer now holds a different tensor).
void annotate(const double* w, std::string_view name);

// ---- activation calibration ----------------------------------------------

/// Per-tensor activation ranges, keyed by weight parameter name (e.g.
/// "lstm0.wx" holds the absmax of the packed [x | h] GEMM input). The
/// int8 activation scale for tensor t is calibration[t] / 127.
using Calibration = std::map<std::string, double>;

/// True while a calibration pass is recording (one relaxed atomic load —
/// cheap enough for the decode hot path).
bool recording_active();

/// Begin recording: sessions fold input absmax into the recorder under
/// their weight tensor's name. Not reentrant; single-threaded calibration
/// passes only.
void recording_begin();

/// Stop recording and return the recorded ranges.
Calibration recording_end();

/// Fold |a[0..n)| max into the recorder under `name` (no-op unless
/// recording). Non-finite values are ignored (a NaN activation must not
/// poison the calibrated range).
void record_activation(std::string_view name, const double* a, std::size_t n);

/// Install `c` as the process-wide calibration used by future int8 packs
/// (drops existing packs so new scales take effect). An empty map reverts
/// to per-row dynamic scales. Callers must bump the serving
/// model_version when changing calibration — cache keys do not see it.
void set_activation_calibration(Calibration c);

/// The currently installed calibration (copy).
Calibration activation_calibration();

}  // namespace ranknet::tensor::quant

// Kernel-level operation accounting.
//
// The paper's efficiency study (Section IV-J, Figs. 10-12) reasons about
// RankNet training at the level of five kernel classes identified from the
// LSTM cell: MatMul, Mul (element-wise product), Add, Sigmoid, Tanh. Every
// kernel in this library reports its floating-point operation count, the
// bytes it moved, and (when profiling is enabled) its walltime, so the
// roofline (Fig. 11) and breakdown (Fig. 12) benches read real numbers from
// the same code the model trains with.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ranknet::tensor {

enum class Kernel : std::size_t {
  kMatMul = 0,
  kMul,
  kAdd,
  kSigmoid,
  kTanh,
  kSoftmax,
  kDataMove,  // explicit copies / host<->device stand-ins
  kOther,
  kCount,
};

const char* kernel_name(Kernel k);

struct KernelStats {
  std::uint64_t calls = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;

  /// Arithmetic intensity in flop/byte (0 if no bytes recorded).
  double intensity() const {
    return bytes == 0 ? 0.0
                      : static_cast<double>(flops) / static_cast<double>(bytes);
  }
  /// Achieved Gflop/s (0 if no time recorded).
  double gflops() const {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(flops) / seconds * 1e-9;
  }
};

/// Global accounting registry. Counting of flops/bytes is always on (cheap
/// relaxed atomic adds — kernels are booked concurrently by the parallel
/// forecast engine's worker threads); per-call timing is gated behind
/// set_profiling(true) because clock reads around microsecond kernels would
/// distort the measurement.
class OpCounters {
 public:
  static OpCounters& instance();

  void reset();
  void set_profiling(bool on) {
    profiling_.store(on, std::memory_order_relaxed);
  }
  bool profiling() const {
    return profiling_.load(std::memory_order_relaxed);
  }

  void record(Kernel k, std::uint64_t flops, std::uint64_t bytes,
              double seconds = 0.0) {
    auto& s = stats_[static_cast<std::size_t>(k)];
    s.calls.fetch_add(1, std::memory_order_relaxed);
    s.flops.fetch_add(flops, std::memory_order_relaxed);
    s.bytes.fetch_add(bytes, std::memory_order_relaxed);
    if (seconds != 0.0) add_double(s.seconds, seconds);
  }

  /// Snapshot of one kernel class (values may lag in-flight records by a
  /// relaxed-ordering window; exact once concurrent kernels have finished).
  KernelStats stats(Kernel k) const {
    const auto& s = stats_[static_cast<std::size_t>(k)];
    KernelStats out;
    out.calls = s.calls.load(std::memory_order_relaxed);
    out.flops = s.flops.load(std::memory_order_relaxed);
    out.bytes = s.bytes.load(std::memory_order_relaxed);
    out.seconds = s.seconds.load(std::memory_order_relaxed);
    return out;
  }

  KernelStats total() const;

  std::string report() const;

 private:
  struct AtomicKernelStats {
    std::atomic<std::uint64_t> calls{0}, flops{0}, bytes{0};
    std::atomic<double> seconds{0.0};
  };

  /// CAS add (atomic<double>::fetch_add is C++20 but not universally
  /// lock-free across toolchains; the loop is contention-rare anyway since
  /// timing is only on while profiling).
  static void add_double(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
  }

  OpCounters() = default;
  std::array<AtomicKernelStats, static_cast<std::size_t>(Kernel::kCount)>
      stats_{};
  std::atomic<bool> profiling_{false};
};

/// RAII scope that snapshots counters on entry and exposes the delta.
class OpCounterScope {
 public:
  OpCounterScope();
  KernelStats delta(Kernel k) const;

 private:
  std::array<KernelStats, static_cast<std::size_t>(Kernel::kCount)> start_{};
};

}  // namespace ranknet::tensor

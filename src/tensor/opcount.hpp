// Kernel-level operation accounting.
//
// The paper's efficiency study (Section IV-J, Figs. 10-12) reasons about
// RankNet training at the level of five kernel classes identified from the
// LSTM cell: MatMul, Mul (element-wise product), Add, Sigmoid, Tanh. Every
// kernel in this library reports its floating-point operation count, the
// bytes it moved, and (when profiling is enabled) its walltime, so the
// roofline (Fig. 11) and breakdown (Fig. 12) benches read real numbers from
// the same code the model trains with.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace ranknet::tensor {

enum class Kernel : std::size_t {
  kMatMul = 0,
  kMul,
  kAdd,
  kSigmoid,
  kTanh,
  kSoftmax,
  kDataMove,  // explicit copies / host<->device stand-ins
  kOther,
  kCount,
};

const char* kernel_name(Kernel k);

struct KernelStats {
  std::uint64_t calls = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;

  /// Arithmetic intensity in flop/byte (0 if no bytes recorded).
  double intensity() const {
    return bytes == 0 ? 0.0
                      : static_cast<double>(flops) / static_cast<double>(bytes);
  }
  /// Achieved Gflop/s (0 if no time recorded).
  double gflops() const {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(flops) / seconds * 1e-9;
  }
};

/// Kernel accounting API. Counting of flops/bytes is always on (cheap
/// relaxed atomic adds — kernels are booked concurrently by the parallel
/// forecast engine's worker threads); per-call timing is gated behind
/// set_profiling(true) because clock reads around microsecond kernels would
/// distort the measurement.
///
/// Storage lives in the obs::Registry ("tensor.op.<kernel>.{calls,flops,
/// bytes,seconds}") so kernel counts appear in every metrics snapshot; this
/// class is a shim that resolves the registry handles once and keeps the
/// historical accessor API. record() costs the same three relaxed adds it
/// always did.
class OpCounters {
 public:
  static OpCounters& instance();

  /// Zeroes this subsystem's metrics only (other registry metrics keep
  /// their values).
  void reset();
  void set_profiling(bool on) {
    profiling_.store(on, std::memory_order_relaxed);
  }
  bool profiling() const {
    return profiling_.load(std::memory_order_relaxed);
  }

  void record(Kernel k, std::uint64_t flops, std::uint64_t bytes,
              double seconds = 0.0) {
    auto& h = handles_[static_cast<std::size_t>(k)];
    h.calls->add(1);
    h.flops->add(flops);
    h.bytes->add(bytes);
    if (seconds != 0.0) h.seconds->add(seconds);
  }

  /// Snapshot of one kernel class (values may lag in-flight records by a
  /// relaxed-ordering window; exact once concurrent kernels have finished).
  KernelStats stats(Kernel k) const {
    const auto& h = handles_[static_cast<std::size_t>(k)];
    KernelStats out;
    out.calls = h.calls->value();
    out.flops = h.flops->value();
    out.bytes = h.bytes->value();
    out.seconds = h.seconds->value();
    return out;
  }

  KernelStats total() const;

  std::string report() const;

 private:
  struct KernelHandles {
    obs::Counter* calls = nullptr;
    obs::Counter* flops = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Gauge* seconds = nullptr;
  };

  OpCounters();
  std::array<KernelHandles, static_cast<std::size_t>(Kernel::kCount)>
      handles_{};
  std::atomic<bool> profiling_{false};
};

/// RAII scope that snapshots counters on entry and exposes the delta.
class OpCounterScope {
 public:
  OpCounterScope();
  KernelStats delta(Kernel k) const;

 private:
  std::array<KernelStats, static_cast<std::size_t>(Kernel::kCount)> start_{};
};

}  // namespace ranknet::tensor

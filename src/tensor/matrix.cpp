// Binary (de)serialization for Matrix — the model-cache format.
#include "tensor/matrix.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ranknet::tensor {

void write_matrix(std::ostream& out, const Matrix& m) {
  const std::uint64_t rows = m.rows(), cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(sizeof(double) * m.size()));
}

Matrix read_matrix(std::istream& in) {
  std::uint64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in) throw std::runtime_error("read_matrix: truncated header");
  // A corrupt header must not turn into a multi-gigabyte allocation (or a
  // rows*cols overflow) before the payload read catches the truncation.
  constexpr std::uint64_t kMaxElements = 1ULL << 26;  // 512 MB of doubles
  if (rows > kMaxElements || cols > kMaxElements ||
      (rows != 0 && cols > kMaxElements / rows)) {
    throw std::runtime_error("read_matrix: implausible shape (corrupt data)");
  }
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(sizeof(double) * m.size()));
  if (!in) throw std::runtime_error("read_matrix: truncated payload");
  return m;
}

}  // namespace ranknet::tensor

#include "tensor/opcount.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace ranknet::tensor {

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kMatMul: return "MatMul";
    case Kernel::kMul: return "Mul";
    case Kernel::kAdd: return "Add";
    case Kernel::kSigmoid: return "Sigmoid";
    case Kernel::kTanh: return "Tanh";
    case Kernel::kSoftmax: return "Softmax";
    case Kernel::kDataMove: return "DataMove";
    case Kernel::kOther: return "Other";
    case Kernel::kCount: break;
  }
  return "?";
}

OpCounters& OpCounters::instance() {
  static OpCounters counters;
  return counters;
}

OpCounters::OpCounters() {
  auto& reg = obs::Registry::instance();
  for (std::size_t k = 0; k < handles_.size(); ++k) {
    // Registry names are lowercase dotted: "tensor.op.matmul.calls".
    std::string base = util::lower(
        util::format("tensor.op.%s", kernel_name(static_cast<Kernel>(k))));
    auto& h = handles_[k];
    h.calls = &reg.counter(base + ".calls");
    h.flops = &reg.counter(base + ".flops");
    h.bytes = &reg.counter(base + ".bytes");
    h.seconds = &reg.gauge(base + ".seconds");
  }
}

void OpCounters::reset() {
  for (auto& h : handles_) {
    h.calls->reset();
    h.flops->reset();
    h.bytes->reset();
    h.seconds->reset();
  }
}

KernelStats OpCounters::total() const {
  KernelStats t;
  for (std::size_t k = 0; k < static_cast<std::size_t>(Kernel::kCount); ++k) {
    const auto s = stats(static_cast<Kernel>(k));
    t.calls += s.calls;
    t.flops += s.flops;
    t.bytes += s.bytes;
    t.seconds += s.seconds;
  }
  return t;
}

std::string OpCounters::report() const {
  std::ostringstream out;
  out << util::format("%-10s %12s %16s %16s %10s %10s\n", "kernel", "calls",
                      "flops", "bytes", "AI", "Gflop/s");
  for (std::size_t i = 0; i < static_cast<std::size_t>(Kernel::kCount); ++i) {
    const auto s = stats(static_cast<Kernel>(i));
    if (s.calls == 0) continue;
    out << util::format("%-10s %12llu %16llu %16llu %10.4f %10.3f\n",
                        kernel_name(static_cast<Kernel>(i)),
                        static_cast<unsigned long long>(s.calls),
                        static_cast<unsigned long long>(s.flops),
                        static_cast<unsigned long long>(s.bytes),
                        s.intensity(), s.gflops());
  }
  return out.str();
}

OpCounterScope::OpCounterScope() {
  for (std::size_t i = 0; i < start_.size(); ++i) {
    start_[i] = OpCounters::instance().stats(static_cast<Kernel>(i));
  }
}

KernelStats OpCounterScope::delta(Kernel k) const {
  const auto& now = OpCounters::instance().stats(k);
  const auto& then = start_[static_cast<std::size_t>(k)];
  KernelStats d;
  d.calls = now.calls - then.calls;
  d.flops = now.flops - then.flops;
  d.bytes = now.bytes - then.bytes;
  d.seconds = now.seconds - then.seconds;
  return d;
}

}  // namespace ranknet::tensor

// Dense row-major matrix of doubles — the storage type for all NN and ML
// code in this library. Kept deliberately small: owning storage, shape,
// element access and simple initializers; the compute kernels live in
// tensor/kernels.hpp so they can be instrumented in one place.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ranknet::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0);
  }

  /// i.i.d. normal entries, used by weight initializers.
  static Matrix randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                      double stddev = 1.0) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = rng.normal(0.0, stddev);
    return m;
  }

  /// Xavier/Glorot uniform initializer.
  static Matrix glorot(std::size_t rows, std::size_t cols, util::Rng& rng) {
    Matrix m(rows, cols);
    const double limit =
        std::sqrt(6.0 / static_cast<double>(rows + cols));
    for (auto& x : m.data_) x = rng.uniform(-limit, limit);
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return {data_.data(), data_.size()}; }
  std::span<const double> flat() const { return {data_.data(), data_.size()}; }

  void fill(double v) {
    for (auto& x : data_) x = v;
  }
  void set_zero() { fill(0.0); }

  /// Reshape without reallocation; total size must match.
  void reshape(std::size_t rows, std::size_t cols) {
    assert(rows * cols == data_.size());
    rows_ = rows;
    cols_ = cols;
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

using Vector = std::vector<double>;

}  // namespace ranknet::tensor

// Binary stream (de)serialization for Matrix, used by the model cache.
#pragma once

#include <iosfwd>

#include "tensor/matrix.hpp"

namespace ranknet::tensor {

void write_matrix(std::ostream& out, const Matrix& m);
Matrix read_matrix(std::istream& in);

}  // namespace ranknet::tensor

// Per-thread bump-allocated scratch memory for the inference runtime.
//
// A Workspace is a chunked arena of doubles. take() bump-allocates a
// MatrixView; begin() starts a new epoch, rewinding the cursor so the same
// blocks are reused. Exhausting the current blocks allocates a fresh block
// (never reallocating existing ones, so outstanding views stay valid within
// an epoch); after the first few epochs at a given problem size the arena
// reaches steady state and take() costs a pointer bump — zero heap
// allocations per decode step.
//
// Lifetime rules:
//   * Views returned by take() are valid until the next begin() on the same
//     workspace. begin() invalidates every outstanding view.
//   * Exactly one function owns an epoch at a time: a function that calls
//     begin() must not call another begin()-owning function while it still
//     holds views (sessions therefore never call begin(); only top-level
//     entry points such as sample_forward do).
//   * Workspaces are not thread-safe; use thread_local_instance() so every
//     worker thread of the parallel engine owns its own arena.
//
// All workspaces book into the global WorkspaceCounters (relaxed atomics,
// same pattern as OpCounters) so tests and benches can assert the
// steady-state zero-allocation property and the engine can export
// allocation/reuse health next to its degradation counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/view.hpp"

namespace ranknet::tensor {

/// Arena-health accounting. Storage lives in the obs::Registry
/// ("workspace.*") so a metrics snapshot covers allocator behaviour next to
/// the kernel and engine counters; this class is a shim holding resolved
/// handles, and record_take() — the hottest call — is still one relaxed add.
class WorkspaceCounters {
 public:
  static WorkspaceCounters& instance();

  struct Snapshot {
    std::uint64_t epochs = 0;        // begin() calls
    std::uint64_t reused_epochs = 0; // epochs served without a block alloc
    std::uint64_t takes = 0;         // take() calls
    std::uint64_t block_allocs = 0;  // heap blocks ever allocated
    std::uint64_t bytes_reserved = 0;   // heap bytes ever allocated
    std::uint64_t high_water_bytes = 0; // max bytes in use in any epoch
  };

  void record_epoch(bool reused) {
    epochs_->add(1);
    if (reused) reused_epochs_->add(1);
  }
  void record_take() { takes_->add(1); }
  void record_block_alloc(std::uint64_t bytes) {
    block_allocs_->add(1);
    bytes_reserved_->add(bytes);
  }
  void record_high_water(std::uint64_t bytes) {
    high_water_bytes_->record_max(static_cast<double>(bytes));
  }

  Snapshot snapshot() const {
    Snapshot s;
    s.epochs = epochs_->value();
    s.reused_epochs = reused_epochs_->value();
    s.takes = takes_->value();
    s.block_allocs = block_allocs_->value();
    s.bytes_reserved = bytes_reserved_->value();
    s.high_water_bytes =
        static_cast<std::uint64_t>(high_water_bytes_->value());
    return s;
  }
  /// Zeroes this subsystem's metrics only.
  void reset();

 private:
  WorkspaceCounters();
  obs::Counter* epochs_;
  obs::Counter* reused_epochs_;
  obs::Counter* takes_;
  obs::Counter* block_allocs_;
  obs::Counter* bytes_reserved_;
  obs::Gauge* high_water_bytes_;  // max, not sum
};

class Workspace {
 public:
  /// `initial_doubles` pre-reserves one block (0 = allocate lazily).
  explicit Workspace(std::size_t initial_doubles = 0);

  /// Start a new epoch: rewind the bump cursor over the existing blocks.
  /// Invalidates every view handed out since the previous begin().
  void begin();

  /// Bump-allocate an uninitialized (rows x cols) view whose storage starts
  /// on a 64-byte boundary (cache-line aligned, friendly to the vectorized
  /// kernels). The kernels the runtime feeds these into fully overwrite
  /// their output (gemm beta=0, copies) before any element is read.
  MatrixView take(std::size_t rows, std::size_t cols);
  /// As take(), but zero-filled (for accumulation targets).
  MatrixView take_zeroed(std::size_t rows, std::size_t cols);
  /// Bump-allocate a raw span of n doubles (uninitialized).
  std::span<double> take_span(std::size_t n);
  /// Bump-allocate a raw span of n size_t indices (uninitialized), aliased
  /// over double storage (both 8 bytes, 64-byte-aligned start). Used by the
  /// decode-tree expansion maps (branch-of-row, state row sources) so the
  /// per-forecast hot path stays heap-free once the arena is warm.
  std::span<std::size_t> take_indices(std::size_t n);

  /// Doubles handed out since the last begin().
  std::size_t doubles_in_use() const { return in_use_; }
  /// Heap blocks this workspace has allocated over its lifetime.
  std::size_t block_allocs() const { return block_allocs_; }
  /// Total capacity in doubles across all blocks.
  std::size_t capacity() const;

  /// One workspace per thread: the parallel engine's workers each get their
  /// own arena, preserving the partition-independence of results (scratch
  /// memory never crosses threads).
  static Workspace& thread_local_instance();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

 private:
  struct Block {
    std::vector<double> data;
    std::size_t used = 0;
  };

  double* bump(std::size_t n);

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;        // block currently bumping
  std::size_t in_use_ = 0;     // doubles handed out this epoch
  std::size_t block_allocs_ = 0;
  bool grew_this_epoch_ = false;
};

}  // namespace ranknet::tensor

// Dispatch-table plumbing for the SIMD microkernel layer: variant
// detection, RANKNET_KERNEL override handling, the scalar table, and the
// per-variant obs counters. The actual kernel bodies live in kernels.cpp
// (scalar) and simd_kernels_avx2.cpp (AVX2+FMA).
#include "tensor/simd_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "tensor/simd_kernels_detail.hpp"

namespace ranknet::tensor::kernels {

namespace {

std::atomic<const Dispatch*> g_active{nullptr};

struct VariantCounters {
  obs::Counter* scalar;
  obs::Counter* avx2;
  obs::Gauge* active;
  VariantCounters() {
    auto& reg = obs::Registry::instance();
    scalar = &reg.counter("tensor.kernel.scalar.calls");
    avx2 = &reg.counter("tensor.kernel.avx2.calls");
    active = &reg.gauge("tensor.kernel.active_variant");
  }
};

VariantCounters& counters() {
  static VariantCounters c;
  return c;
}

Variant best_supported() {
  return cpu_supports(Variant::kAvx2) ? Variant::kAvx2 : Variant::kScalar;
}

void activate(Variant v) {
  counters().active->set(static_cast<double>(static_cast<int>(v)));
  g_active.store(&table(v), std::memory_order_release);
}

/// First-use resolution: RANKNET_KERNEL wins; an invalid value is a
/// configuration error and must not be silently ignored, so it throws
/// (fail fast at process start rather than serving with an unintended
/// numerics variant).
const Dispatch* resolve_initial() {
  const util::Status st = apply_env_override(std::getenv("RANKNET_KERNEL"));
  if (!st.ok()) {
    throw std::runtime_error(st.to_string());
  }
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* variant_name(Variant v) {
  return v == Variant::kAvx2 ? "avx2" : "scalar";
}

bool cpu_supports(Variant v) {
  if (v == Variant::kScalar) return true;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const Dispatch& table(Variant v) {
  return v == Variant::kAvx2 ? detail::avx2_table() : detail::scalar_table();
}

const Dispatch& dispatch() {
  const Dispatch* d = g_active.load(std::memory_order_acquire);
  if (d != nullptr) return *d;
  // Magic-static init serializes concurrent first calls.
  static const Dispatch* resolved = resolve_initial();
  return *resolved;
}

Variant active_variant() { return dispatch().variant; }

util::Status set_variant(Variant v) {
  if (!cpu_supports(v)) {
    return util::Status::failed_precondition(
        std::string("RANKNET_KERNEL: variant '") + variant_name(v) +
        "' is not supported on this CPU");
  }
  activate(v);
  return {};
}

util::Result<Variant> parse_variant(std::string_view s) {
  if (s == "scalar") return Variant::kScalar;
  if (s == "avx2") return Variant::kAvx2;
  return util::Status::invalid_argument(
      "RANKNET_KERNEL: unknown kernel variant '" + std::string(s) +
      "' (expected 'scalar' or 'avx2')");
}

util::Status apply_env_override(const char* value) {
  if (value == nullptr || *value == '\0') {
    activate(best_supported());
    return {};
  }
  auto parsed = parse_variant(value);
  if (!parsed.ok()) return parsed.status();
  return set_variant(parsed.value());
}

void note_call(Variant v) {
  auto& c = counters();
  (v == Variant::kAvx2 ? c.avx2 : c.scalar)->add(1);
}

}  // namespace ranknet::tensor::kernels

namespace ranknet::tensor::detail {

const kernels::Dispatch& scalar_table() {
  // The fused entries stay null: the scalar variant runs the staged
  // reference sequence in kernels.cpp so its numerics remain byte-frozen.
  static const kernels::Dispatch t = [] {
    kernels::Dispatch d;
    d.variant = kernels::Variant::kScalar;
    d.gemm_nn = &gemm_nn_scalar;
    d.sigmoid = &sigmoid_scalar;
    d.tanh = &tanh_scalar;
    d.hadamard = &hadamard_scalar;
    d.hadamard_add = &hadamard_add_scalar;
    d.add_bias_rows = &add_bias_rows_scalar;
    d.lstm_gates = nullptr;
    d.dense_epilogue = nullptr;
    return d;
  }();
  return t;
}

}  // namespace ranknet::tensor::detail

// Dispatch-table plumbing for the SIMD microkernel layer: variant
// detection, RANKNET_KERNEL override handling, the scalar table, and the
// per-variant obs counters. The actual kernel bodies live in kernels.cpp
// (scalar) and simd_kernels_avx2.cpp (AVX2+FMA).
#include "tensor/simd_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "tensor/simd_kernels_detail.hpp"

namespace ranknet::tensor::kernels {

namespace {

std::atomic<const Dispatch*> g_active{nullptr};

struct VariantCounters {
  obs::Counter* calls[4];
  obs::Gauge* active;
  VariantCounters() {
    auto& reg = obs::Registry::instance();
    calls[0] = &reg.counter("tensor.kernel.scalar.calls");
    calls[1] = &reg.counter("tensor.kernel.avx2.calls");
    calls[2] = &reg.counter("tensor.kernel.bf16.calls");
    calls[3] = &reg.counter("tensor.kernel.int8.calls");
    active = &reg.gauge("tensor.kernel.active_variant");
  }
};

VariantCounters& counters() {
  static VariantCounters c;
  return c;
}

/// Auto-detection only ever picks a FULL-PRECISION variant: the reduced-
/// precision tables change numerics, so they are opt-in (RANKNET_KERNEL or
/// set_variant), never a silent default.
Variant best_supported() {
  return cpu_supports(Variant::kAvx2) ? Variant::kAvx2 : Variant::kScalar;
}

void activate(Variant v) {
  counters().active->set(static_cast<double>(static_cast<int>(v)));
  g_active.store(&table(v), std::memory_order_release);
}

/// First-use resolution: RANKNET_KERNEL wins; an invalid value is a
/// configuration error and must not be silently ignored, so it throws
/// (fail fast at process start rather than serving with an unintended
/// numerics variant).
const Dispatch* resolve_initial() {
  const util::Status st = apply_env_override(std::getenv("RANKNET_KERNEL"));
  if (!st.ok()) {
    throw std::runtime_error(st.to_string());
  }
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kAvx2:
      return "avx2";
    case Variant::kBf16:
      return "bf16";
    case Variant::kInt8:
      return "int8";
    case Variant::kScalar:
      break;
  }
  return "scalar";
}

bool cpu_supports(Variant v) {
  // The reduced-precision variants are portable emulations: their GEMMs
  // are plain C++ and their remaining entries inherit from whichever
  // full-precision table the CPU supports.
  if (v != Variant::kAvx2) return true;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const Dispatch& table(Variant v) {
  switch (v) {
    case Variant::kAvx2:
      return detail::avx2_table();
    case Variant::kBf16:
      return detail::bf16_table();
    case Variant::kInt8:
      return detail::int8_table();
    case Variant::kScalar:
      break;
  }
  return detail::scalar_table();
}

const Dispatch& dispatch() {
  const Dispatch* d = g_active.load(std::memory_order_acquire);
  if (d != nullptr) return *d;
  // Magic-static init serializes concurrent first calls.
  static const Dispatch* resolved = resolve_initial();
  return *resolved;
}

Variant active_variant() { return dispatch().variant; }

util::Status set_variant(Variant v) {
  if (!cpu_supports(v)) {
    return util::Status::failed_precondition(
        std::string("RANKNET_KERNEL: variant '") + variant_name(v) +
        "' is not supported on this CPU");
  }
  activate(v);
  return {};
}

util::Result<Variant> parse_variant(std::string_view s) {
  if (s == "scalar") return Variant::kScalar;
  if (s == "avx2") return Variant::kAvx2;
  if (s == "bf16") return Variant::kBf16;
  if (s == "int8") return Variant::kInt8;
  return util::Status::invalid_argument(
      "RANKNET_KERNEL: unknown kernel variant '" + std::string(s) +
      "' (expected 'scalar', 'avx2', 'bf16' or 'int8')");
}

util::Status apply_env_override(const char* value) {
  if (value == nullptr || *value == '\0') {
    activate(best_supported());
    return {};
  }
  auto parsed = parse_variant(value);
  if (!parsed.ok()) return parsed.status();
  return set_variant(parsed.value());
}

void note_call(Variant v) {
  counters().calls[static_cast<int>(v) & 3]->add(1);
}

}  // namespace ranknet::tensor::kernels

namespace ranknet::tensor::detail {

const kernels::Dispatch& scalar_table() {
  // The fused entries stay null: the scalar variant runs the staged
  // reference sequence in kernels.cpp so its numerics remain byte-frozen.
  static const kernels::Dispatch t = [] {
    kernels::Dispatch d;
    d.variant = kernels::Variant::kScalar;
    d.gemm_nn = &gemm_nn_scalar;
    d.sigmoid = &sigmoid_scalar;
    d.tanh = &tanh_scalar;
    d.hadamard = &hadamard_scalar;
    d.hadamard_add = &hadamard_add_scalar;
    d.add_bias_rows = &add_bias_rows_scalar;
    d.lstm_gates = nullptr;
    d.dense_epilogue = nullptr;
    return d;
  }();
  return t;
}

}  // namespace ranknet::tensor::detail

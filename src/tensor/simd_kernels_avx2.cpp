// AVX2+FMA microkernels (4-wide doubles) for the dispatched kernel layer.
// This translation unit is compiled with -mavx2 -mfma regardless of the
// global architecture flags; nothing here runs unless
// kernels::cpu_supports(kAvx2) said the CPU can execute it.
//
// Determinism rules every kernel below obeys (tests/test_kernel_equivalence
// enforces them):
//   * Row independence: output row i depends only on input row i (plus
//     shared read-only operands), so engine thread count and sample-batch
//     partitioning cannot change results.
//   * Fixed per-element operation order: the GEMM accumulates strictly
//     sequentially along k with one FMA per term, so a packed [x|h]*[wx;wh]
//     GEMM is bit-identical to the beta=0/beta=1 pair it fuses, and tile /
//     remainder shape never changes an element's rounding sequence.
//   * Lane-pure elementwise math: sigmoid/tanh are built from one shared
//     4-lane exp whose every operation is lane-wise, so gathering,
//     scattering, or fusing the gate nonlinearities cannot change a single
//     element's result. The fused LSTM gate kernel therefore matches the
//     staged avx2 sequence (add_bias_rows → sigmoid/tanh →
//     hadamard/hadamard_add, where hadamard is one multiply and
//     hadamard_add one FMA) bit for bit.
//   * Remainder columns use masked loads/stores (or a zero-padded lane
//     buffer) running the same full-lane arithmetic, never a different
//     scalar tail loop — non-multiple-of-4 hidden sizes round identically
//     to full lanes.
#include "tensor/simd_kernels_detail.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace ranknet::tensor::detail {

namespace {

// ---- lane helpers --------------------------------------------------------

/// All-ones in the first r lanes (1 <= r <= 4); used with maskload /
/// maskstore so remainder columns never read or write out of bounds.
inline __m256i tail_mask(std::size_t r) {
  alignas(32) static const std::int64_t kBits[8] = {-1, -1, -1, -1,
                                                    0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kBits + (4 - r)));
}

/// 4-lane clone of kernels.cpp's vec_exp: same Cephes split/Pade constants,
/// same operation shape, so scalar-vs-avx2 drift stays within a couple of
/// ulps. Operand order in min/max keeps NaN propagation identical to the
/// scalar clamp (NaN compares false, the input lane wins).
inline __m256d exp_clamp4(__m256d x) {
  x = _mm256_min_pd(_mm256_set1_pd(708.0), x);
  x = _mm256_max_pd(_mm256_set1_pd(-708.0), x);
  return x;
}

inline __m256d exp4(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.44269504088896340736);
  const __m256d ln2hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2lo = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, ln2hi, x);
  r = _mm256_fnmadd_pd(n, ln2lo, r);
  const __m256d z = _mm256_mul_pd(r, r);
  const __m256d px = _mm256_mul_pd(
      r, _mm256_fmadd_pd(
             z,
             _mm256_fmadd_pd(z, _mm256_set1_pd(1.26177193074810590878e-4),
                             _mm256_set1_pd(3.02994407707441961300e-2)),
             _mm256_set1_pd(9.99999999999999999910e-1)));
  const __m256d qx = _mm256_fmadd_pd(
      z,
      _mm256_fmadd_pd(
          z,
          _mm256_fmadd_pd(z, _mm256_set1_pd(3.00198505138664455042e-6),
                          _mm256_set1_pd(2.52448340349684104192e-3)),
          _mm256_set1_pd(2.27265548208155028766e-1)),
      _mm256_set1_pd(2.00000000000000000005e0));
  const __m256d e = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), px),
                    _mm256_sub_pd(qx, px)));
  // 2^n through the exponent bits; n is integral in [-1021, 1021] after the
  // clamp, so int32 conversion is exact and the biased exponent is normal.
  const __m128i ni = _mm256_cvtpd_epi32(n);
  const __m256i nl = _mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(ni), _mm256_set1_epi64x(1023)),
      52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(nl));
}

inline __m256d sigmoid4(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg = _mm256_xor_pd(x, _mm256_set1_pd(-0.0));
  return _mm256_div_pd(one, _mm256_add_pd(one, exp4(exp_clamp4(neg))));
}

inline __m256d tanh4(__m256d x) {
  // tanh(x) = sign(x) * (1 - 2/(exp(2|x|)+1)), like the scalar kernel; the
  // magnitude term is non-negative so copysign is a plain sign-bit OR.
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d a = _mm256_andnot_pd(sign_mask, x);
  const __m256d e = exp4(exp_clamp4(_mm256_mul_pd(two, a)));
  const __m256d t =
      _mm256_sub_pd(one, _mm256_div_pd(two, _mm256_add_pd(e, one)));
  return _mm256_or_pd(t, _mm256_and_pd(sign_mask, x));
}

/// In-place elementwise map; the tail runs the same full-lane math over a
/// zero-padded buffer so remainder elements round identically.
template <typename F>
inline void map_inplace(double* x, std::size_t n, F f) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, f(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = i; j < n; ++j) buf[j - i] = x[j];
    _mm256_store_pd(buf, f(_mm256_load_pd(buf)));
    for (std::size_t j = i; j < n; ++j) x[j] = buf[j - i];
  }
}

// ---- GEMM ----------------------------------------------------------------

// Register-blocked C = alpha*A*B + beta*C panels: MR rows x (NV*4) columns
// of C accumulate in ymm registers while the k loop streams B row panels —
// the B traffic that dominates the scalar kernel is amortized over MR rows.
// Every accumulator follows the strict sequential-k FMA chain of its
// element; alpha is pre-multiplied into the broadcast A scalar exactly as
// the scalar kernel does.

template <int MR, int NV>
inline void gemm_panel(double alpha, const double* const* arow,
                       const double* b, double beta, double* const* crow,
                       std::size_t k, std::size_t n, std::size_t j) {
  __m256d acc[MR][NV];
  for (int r = 0; r < MR; ++r) {
    for (int v = 0; v < NV; ++v) {
      if (beta == 0.0) {
        acc[r][v] = _mm256_setzero_pd();
      } else {
        const __m256d cv = _mm256_loadu_pd(crow[r] + j + 4 * v);
        acc[r][v] =
            beta == 1.0 ? cv : _mm256_mul_pd(_mm256_set1_pd(beta), cv);
      }
    }
  }
  for (std::size_t p = 0; p < k; ++p) {
    const double* bp = b + p * n + j;
    __m256d bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = _mm256_loadu_pd(bp + 4 * v);
    for (int r = 0; r < MR; ++r) {
      const __m256d av = _mm256_set1_pd(alpha * arow[r][p]);
      for (int v = 0; v < NV; ++v) {
        acc[r][v] = _mm256_fmadd_pd(av, bv[v], acc[r][v]);
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int v = 0; v < NV; ++v) {
      _mm256_storeu_pd(crow[r] + j + 4 * v, acc[r][v]);
    }
  }
}

template <int MR>
inline void gemm_panel_masked(double alpha, const double* const* arow,
                              const double* b, double beta,
                              double* const* crow, std::size_t k,
                              std::size_t n, std::size_t j, __m256i mask) {
  __m256d acc[MR];
  for (int r = 0; r < MR; ++r) {
    if (beta == 0.0) {
      acc[r] = _mm256_setzero_pd();
    } else {
      const __m256d cv = _mm256_maskload_pd(crow[r] + j, mask);
      acc[r] = beta == 1.0 ? cv : _mm256_mul_pd(_mm256_set1_pd(beta), cv);
    }
  }
  for (std::size_t p = 0; p < k; ++p) {
    const __m256d bv = _mm256_maskload_pd(b + p * n + j, mask);
    for (int r = 0; r < MR; ++r) {
      acc[r] = _mm256_fmadd_pd(_mm256_set1_pd(alpha * arow[r][p]), bv,
                               acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) _mm256_maskstore_pd(crow[r] + j, mask, acc[r]);
}

template <int MR>
inline void gemm_rows(double alpha, const double* a, const double* b,
                      double beta, double* c, std::size_t i, std::size_t k,
                      std::size_t n) {
  const double* arow[MR];
  double* crow[MR];
  for (int r = 0; r < MR; ++r) {
    arow[r] = a + (i + r) * k;
    crow[r] = c + (i + r) * n;
  }
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    gemm_panel<MR, 2>(alpha, arow, b, beta, crow, k, n, j);
  }
  if (j + 4 <= n) {
    gemm_panel<MR, 1>(alpha, arow, b, beta, crow, k, n, j);
    j += 4;
  }
  if (j < n) {
    gemm_panel_masked<MR>(alpha, arow, b, beta, crow, k, n, j,
                          tail_mask(n - j));
  }
}

/// n == 1 fast path: a strided GEMM degenerates into independent row dot
/// products (the Gaussian head's mu/sigma projections). The dot vectorizes
/// along k (4 parallel partial sums, fixed combine order), which
/// reassociates relative to the scalar chain — cross-variant drift only,
/// deterministic within the variant.
void gemv_n1(double alpha, const double* a, const double* b, double beta,
             double* c, std::size_t m, std::size_t k) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a + i * k;
    __m256d acc = _mm256_setzero_pd();
    std::size_t p = 0;
    for (; p + 4 <= k; p += 4) {
      acc = _mm256_fmadd_pd(_mm256_loadu_pd(ai + p), _mm256_loadu_pd(b + p),
                            acc);
    }
    if (p < k) {
      const __m256i mask = tail_mask(k - p);
      acc = _mm256_fmadd_pd(_mm256_maskload_pd(ai + p, mask),
                            _mm256_maskload_pd(b + p, mask), acc);
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    const double dot =
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    const double base = beta == 0.0 ? 0.0 : beta * c[i];
    c[i] = base + alpha * dot;
  }
}

void gemm_nn_avx2(double alpha, const double* a, const double* b, double beta,
                  double* c, std::size_t m, std::size_t k, std::size_t n) {
  if (n == 1) {
    gemv_n1(alpha, a, b, beta, c, m, k);
    return;
  }
  // Iterate over ceil(m/6) row blocks (not i += 6) so OpenMP's static
  // schedule partitions whole blocks and the remainder rows (m % 6) are
  // handled exactly once by the matching smaller kernel. MR=6 with NV=2
  // keeps 12 independent FMA chains live per panel — enough to cover the
  // 4-cycle FMA latency at 2 issues/cycle — while fitting in registers
  // (12 accumulators + 2 B vectors + 1 broadcast of 16 ymm).
  const std::size_t mblocks = (m + 5) / 6;
#pragma omp parallel for schedule(static)
  for (std::size_t ib = 0; ib < mblocks; ++ib) {
    const std::size_t i = ib * 6;
    switch (std::min<std::size_t>(6, m - i)) {
      case 6:
        gemm_rows<6>(alpha, a, b, beta, c, i, k, n);
        break;
      case 5:
        gemm_rows<5>(alpha, a, b, beta, c, i, k, n);
        break;
      case 4:
        gemm_rows<4>(alpha, a, b, beta, c, i, k, n);
        break;
      case 3:
        gemm_rows<3>(alpha, a, b, beta, c, i, k, n);
        break;
      case 2:
        gemm_rows<2>(alpha, a, b, beta, c, i, k, n);
        break;
      default:
        gemm_rows<1>(alpha, a, b, beta, c, i, k, n);
        break;
    }
  }
}

// ---- elementwise ---------------------------------------------------------

void sigmoid_avx2(double* x, std::size_t n) {
  map_inplace(x, n, [](__m256d v) { return sigmoid4(v); });
}

void tanh_avx2(double* x, std::size_t n) {
  map_inplace(x, n, [](__m256d v) { return tanh4(v); });
}

void hadamard_avx2(const double* x, const double* y, double* o,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        o + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  if (i < n) {
    const __m256i mask = tail_mask(n - i);
    _mm256_maskstore_pd(o + i, mask,
                        _mm256_mul_pd(_mm256_maskload_pd(x + i, mask),
                                      _mm256_maskload_pd(y + i, mask)));
  }
}

void hadamard_add_avx2(const double* x, const double* y, double* o,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(o + i,
                     _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                                     _mm256_loadu_pd(y + i),
                                     _mm256_loadu_pd(o + i)));
  }
  if (i < n) {
    const __m256i mask = tail_mask(n - i);
    _mm256_maskstore_pd(o + i, mask,
                        _mm256_fmadd_pd(_mm256_maskload_pd(x + i, mask),
                                        _mm256_maskload_pd(y + i, mask),
                                        _mm256_maskload_pd(o + i, mask)));
  }
}

void add_bias_rows_avx2(double* m, const double* bias, std::size_t rows,
                        std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = m + r * cols;
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      _mm256_storeu_pd(
          row + c,
          _mm256_add_pd(_mm256_loadu_pd(row + c), _mm256_loadu_pd(bias + c)));
    }
    if (c < cols) {
      const __m256i mask = tail_mask(cols - c);
      _mm256_maskstore_pd(
          row + c, mask,
          _mm256_add_pd(_mm256_maskload_pd(row + c, mask),
                        _mm256_maskload_pd(bias + c, mask)));
    }
  }
}

// ---- fused LSTM gate epilogue -------------------------------------------

/// One pass over the gate matrix: bias add, sigmoid on i/f/o, tanh on g,
/// c = f⊙c + i⊙g (multiply then FMA, matching the staged
/// hadamard/hadamard_add pair), h = o ⊙ tanh(c). Replaces ~8 memory sweeps
/// of the staged sequence with one read of gates and one read/write of c/h.
void lstm_gates_avx2(const double* gates, const double* bias, double* c,
                     double* h, std::size_t batch, std::size_t hidden) {
  const std::size_t h1 = hidden, h2 = 2 * hidden, h3 = 3 * hidden;
  for (std::size_t r = 0; r < batch; ++r) {
    const double* g = gates + r * 4 * hidden;
    double* cr = c + r * hidden;
    double* hr = h + r * hidden;
    std::size_t j = 0;
    for (; j + 4 <= hidden; j += 4) {
      const __m256d iv = sigmoid4(_mm256_add_pd(_mm256_loadu_pd(g + j),
                                                _mm256_loadu_pd(bias + j)));
      const __m256d fv =
          sigmoid4(_mm256_add_pd(_mm256_loadu_pd(g + h1 + j),
                                 _mm256_loadu_pd(bias + h1 + j)));
      const __m256d gv = tanh4(_mm256_add_pd(_mm256_loadu_pd(g + h2 + j),
                                             _mm256_loadu_pd(bias + h2 + j)));
      const __m256d ov =
          sigmoid4(_mm256_add_pd(_mm256_loadu_pd(g + h3 + j),
                                 _mm256_loadu_pd(bias + h3 + j)));
      __m256d cv = _mm256_loadu_pd(cr + j);
      cv = _mm256_fmadd_pd(iv, gv, _mm256_mul_pd(fv, cv));
      _mm256_storeu_pd(cr + j, cv);
      _mm256_storeu_pd(hr + j, _mm256_mul_pd(ov, tanh4(cv)));
    }
    if (j < hidden) {
      const __m256i mask = tail_mask(hidden - j);
      const __m256d iv =
          sigmoid4(_mm256_add_pd(_mm256_maskload_pd(g + j, mask),
                                 _mm256_maskload_pd(bias + j, mask)));
      const __m256d fv =
          sigmoid4(_mm256_add_pd(_mm256_maskload_pd(g + h1 + j, mask),
                                 _mm256_maskload_pd(bias + h1 + j, mask)));
      const __m256d gv =
          tanh4(_mm256_add_pd(_mm256_maskload_pd(g + h2 + j, mask),
                              _mm256_maskload_pd(bias + h2 + j, mask)));
      const __m256d ov =
          sigmoid4(_mm256_add_pd(_mm256_maskload_pd(g + h3 + j, mask),
                                 _mm256_maskload_pd(bias + h3 + j, mask)));
      __m256d cv = _mm256_maskload_pd(cr + j, mask);
      cv = _mm256_fmadd_pd(iv, gv, _mm256_mul_pd(fv, cv));
      _mm256_maskstore_pd(cr + j, mask, cv);
      _mm256_maskstore_pd(hr + j, mask, _mm256_mul_pd(ov, tanh4(cv)));
    }
  }
}

// ---- fused dense epilogue ------------------------------------------------

template <kernels::DenseAct A>
inline __m256d dense_act4(__m256d v) {
  if constexpr (A == kernels::DenseAct::kRelu) {
    // max(v, 0) with v as the first operand: v>0 ? v : 0, matching the
    // scalar ternary (NaN and -0.0 both map to +0.0 either way).
    return _mm256_max_pd(v, _mm256_setzero_pd());
  } else if constexpr (A == kernels::DenseAct::kTanh) {
    return tanh4(v);
  } else if constexpr (A == kernels::DenseAct::kSigmoid) {
    return sigmoid4(v);
  } else {
    return v;
  }
}

template <kernels::DenseAct A>
void dense_epilogue_impl(double* y, const double* bias, std::size_t rows,
                         std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = y + r * cols;
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m256d v = _mm256_add_pd(_mm256_loadu_pd(row + c),
                                      _mm256_loadu_pd(bias + c));
      _mm256_storeu_pd(row + c, dense_act4<A>(v));
    }
    if (c < cols) {
      const __m256i mask = tail_mask(cols - c);
      const __m256d v = _mm256_add_pd(_mm256_maskload_pd(row + c, mask),
                                      _mm256_maskload_pd(bias + c, mask));
      _mm256_maskstore_pd(row + c, mask, dense_act4<A>(v));
    }
  }
}

void dense_epilogue_avx2(double* y, const double* bias, std::size_t rows,
                         std::size_t cols, kernels::DenseAct act) {
  switch (act) {
    case kernels::DenseAct::kRelu:
      dense_epilogue_impl<kernels::DenseAct::kRelu>(y, bias, rows, cols);
      break;
    case kernels::DenseAct::kTanh:
      dense_epilogue_impl<kernels::DenseAct::kTanh>(y, bias, rows, cols);
      break;
    case kernels::DenseAct::kSigmoid:
      dense_epilogue_impl<kernels::DenseAct::kSigmoid>(y, bias, rows, cols);
      break;
    case kernels::DenseAct::kNone:
      dense_epilogue_impl<kernels::DenseAct::kNone>(y, bias, rows, cols);
      break;
  }
}

}  // namespace

const kernels::Dispatch& avx2_table() {
  static const kernels::Dispatch t = [] {
    kernels::Dispatch d;
    d.variant = kernels::Variant::kAvx2;
    d.gemm_nn = &gemm_nn_avx2;
    d.sigmoid = &sigmoid_avx2;
    d.tanh = &tanh_avx2;
    d.hadamard = &hadamard_avx2;
    d.hadamard_add = &hadamard_add_avx2;
    d.add_bias_rows = &add_bias_rows_avx2;
    d.lstm_gates = &lstm_gates_avx2;
    d.dense_epilogue = &dense_epilogue_avx2;
    return d;
  }();
  return t;
}

}  // namespace ranknet::tensor::detail

#else  // non-x86: the avx2 table aliases scalar; cpu_supports() gates it.

namespace ranknet::tensor::detail {
const kernels::Dispatch& avx2_table() { return scalar_table(); }
}  // namespace ranknet::tensor::detail

#endif

// Pack registry + calibration recorder for the reduced-precision variants.
// The GEMM inner loops that consume the packs live in
// simd_kernels_quant.cpp; this TU owns the (pointer -> pack) maps, the
// name annotations, and the process-wide calibration.
#include "tensor/quant.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace ranknet::tensor::quant {

namespace {

double absmax(const double* p, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = std::abs(p[i]);
    if (std::isfinite(a) && a > m) m = a;
  }
  return m;
}

/// Sampled FNV-1a fingerprint over <= 16 strided elements — cheap
/// defense-in-depth against a weight mutation that missed its
/// invalidate() call. Pure function of (pointer contents, size).
std::uint64_t sampled_fingerprint(const double* w, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  const std::size_t step = n <= 16 ? 1 : n / 16;
  for (std::size_t i = 0; i < n; i += step) {
    std::uint64_t bits;
    std::memcpy(&bits, &w[i], sizeof(bits));
    h = (h ^ bits) * 1099511628211ull;
  }
  return h;
}

struct Bf16Entry {
  std::uint64_t fingerprint = 0;
  std::shared_ptr<const PackedBf16> pack;
};
struct Int8Entry {
  std::uint64_t fingerprint = 0;
  std::shared_ptr<const PackedInt8> pack;
};

struct Registry {
  std::shared_mutex mu;
  std::unordered_map<const double*, Bf16Entry> bf16;
  std::unordered_map<const double*, Int8Entry> int8;
  std::unordered_map<const double*, std::string> names;
  Calibration calibration;

  obs::Counter* packs_built;
  obs::Counter* pack_hits;
  Registry() {
    auto& reg = obs::Registry::instance();
    packs_built = &reg.counter("tensor.quant.packs_built");
    pack_hits = &reg.counter("tensor.quant.pack_hits");
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

// A runaway caller packing unbounded distinct pointers (large training
// sweeps under a reduced variant) must not grow the maps without bound.
constexpr std::size_t kMaxEntriesPerFormat = 256;

// ---- calibration recorder -------------------------------------------------

std::atomic<bool> g_recording{false};
std::mutex g_record_mu;
Calibration g_recorded;

}  // namespace

std::shared_ptr<const PackedBf16> acquire_bf16(const double* w,
                                               std::size_t rows,
                                               std::size_t cols) {
  Registry& r = registry();
  const std::size_t n = rows * cols;
  const std::uint64_t fp = sampled_fingerprint(w, n);
  {
    std::shared_lock lock(r.mu);
    const auto it = r.bf16.find(w);
    if (it != r.bf16.end() && it->second.pack->rows == rows &&
        it->second.pack->cols == cols && it->second.fingerprint == fp) {
      r.pack_hits->add(1);
      return it->second.pack;
    }
  }
  auto pack = std::make_shared<PackedBf16>();
  pack->rows = rows;
  pack->cols = cols;
  pack->data.resize(n);
  for (std::size_t i = 0; i < n; ++i) pack->data[i] = to_bf16(w[i]);
  {
    std::unique_lock lock(r.mu);
    if (r.bf16.size() >= kMaxEntriesPerFormat) r.bf16.clear();
    r.bf16[w] = Bf16Entry{fp, pack};
  }
  r.packs_built->add(1);
  return pack;
}

std::shared_ptr<const PackedInt8> acquire_int8(const double* w,
                                               std::size_t rows,
                                               std::size_t cols) {
  Registry& r = registry();
  const std::size_t n = rows * cols;
  const std::uint64_t fp = sampled_fingerprint(w, n);
  {
    std::shared_lock lock(r.mu);
    const auto it = r.int8.find(w);
    if (it != r.int8.end() && it->second.pack->rows == rows &&
        it->second.pack->cols == cols && it->second.fingerprint == fp) {
      r.pack_hits->add(1);
      return it->second.pack;
    }
  }
  auto pack = std::make_shared<PackedInt8>();
  pack->rows = rows;
  pack->cols = cols;
  const double m = absmax(w, n);
  pack->scale = m > 0.0 ? m / 127.0 : 1.0;
  const double inv = 1.0 / pack->scale;
  pack->data.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pack->data[i] = quantize_int8(w[i], inv);
  }
  {
    std::unique_lock lock(r.mu);
    // Calibrated activation range, if this pointer has a name bound and the
    // installed calibration covers it.
    const auto nit = r.names.find(w);
    if (nit != r.names.end()) {
      const auto cit = r.calibration.find(nit->second);
      if (cit != r.calibration.end() && cit->second > 0.0 &&
          std::isfinite(cit->second)) {
        pack->act_absmax = cit->second;
      }
    }
    if (r.int8.size() >= kMaxEntriesPerFormat) r.int8.clear();
    r.int8[w] = Int8Entry{fp, pack};
  }
  r.packs_built->add(1);
  return pack;
}

void invalidate(const double* w) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  r.bf16.erase(w);
  r.int8.erase(w);
}

void clear_packs() {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  r.bf16.clear();
  r.int8.clear();
  r.names.clear();
}

std::size_t pack_count() {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  return r.bf16.size() + r.int8.size();
}

void annotate(const double* w, std::string_view name) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  auto it = r.names.find(w);
  if (it != r.names.end()) {
    if (it->second == name) return;
    // Pointer re-bound to a different tensor: its packs are stale.
    r.bf16.erase(w);
    r.int8.erase(w);
    it->second = std::string(name);
    return;
  }
  r.names.emplace(w, std::string(name));
}

bool recording_active() {
  return g_recording.load(std::memory_order_relaxed);
}

void recording_begin() {
  std::lock_guard lock(g_record_mu);
  g_recorded.clear();
  g_recording.store(true, std::memory_order_relaxed);
}

Calibration recording_end() {
  std::lock_guard lock(g_record_mu);
  g_recording.store(false, std::memory_order_relaxed);
  Calibration out = std::move(g_recorded);
  g_recorded.clear();
  return out;
}

void record_activation(std::string_view name, const double* a,
                       std::size_t n) {
  if (!recording_active()) return;
  const double m = absmax(a, n);
  std::lock_guard lock(g_record_mu);
  auto [it, inserted] = g_recorded.emplace(std::string(name), m);
  if (!inserted && m > it->second) it->second = m;
}

void set_activation_calibration(Calibration c) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  r.calibration = std::move(c);
  // New scales must take effect: packed int8 sidecars bake act_absmax in.
  r.int8.clear();
}

Calibration activation_calibration() {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  return r.calibration;
}

}  // namespace ranknet::tensor::quant

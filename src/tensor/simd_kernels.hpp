// Runtime-dispatched SIMD microkernels for the inference hot path.
//
// Every kernel in tensor/kernels.cpp that sits on the Monte-Carlo decode
// path (the packed-GEMM + gate-nonlinearity sequence of the LSTM cell, the
// dense/Gaussian head, and the elementwise Hadamard updates) routes through
// a per-process dispatch table selected here. Four variants exist:
//
//   * kScalar — the original portable loops in kernels.cpp. This is the
//     numerical reference: golden CSVs under tests/golden are regenerated
//     with this variant pinned, and its results are byte-frozen across
//     releases.
//   * kAvx2   — AVX2+FMA microkernels (simd_kernels_avx2.cpp): register-
//     blocked GEMM / GEMV, one shared 4-lane exp used by sigmoid/tanh, and
//     a fused LSTM gate kernel that runs bias + activations + state update
//     in one pass over the gate matrix.
//   * kBf16 / kInt8 — reduced-precision GEMMs (simd_kernels_quant.cpp +
//     quant.cpp): the weight operand of every dispatched GEMM streams from
//     a packed 16-bit (bf16 round-to-nearest-even) or 8-bit (symmetric
//     per-tensor int8, optionally activation-calibrated) sidecar and
//     up-converts into f64 accumulators; every non-GEMM entry and all
//     fused epilogues are inherited from the best-supported full-precision
//     table. These variants trade bounded numeric drift for bytes — the
//     decode GEMMs are memory-bandwidth-bound (DESIGN.md) — and are
//     OPT-IN only: auto-detection never selects them.
//
// Selection: the first call to dispatch() picks the best FULL-PRECISION
// variant the CPU supports (avx2 when available), unless the
// RANKNET_KERNEL environment variable overrides it ("scalar", "avx2",
// "bf16" or "int8"). Unknown values or requesting avx2 on a CPU without it
// fail fast with util::Status. Tests and benches may switch variants at
// runtime with set_variant(); switching while kernels are executing on
// other threads is not supported.
//
// Determinism contract (enforced by tests/test_kernel_equivalence.cpp):
//   * Within a variant, results are bit-identical run-to-run, across
//     engine thread counts, and across sample-batch partitionings: every
//     kernel is row-independent, and each output element's floating-point
//     operation sequence is fixed (the GEMM accumulates strictly
//     sequentially along k; lane grouping only varies along rows/columns).
//   * The fused avx2 LSTM gate kernel is bit-identical to the staged avx2
//     sequence (add_bias_rows → sigmoid/tanh → hadamard/hadamard_add),
//     because hadamard is defined as one vector multiply, hadamard_add as
//     one FMA, and both paths share the same 4-lane exp — this is what
//     keeps inference sessions bit-identical to the training-path layers
//     under either variant.
//   * Across the full-precision variants, results drift only by
//     reassociation/contraction: per-element ULP-bounded, never
//     structurally different. The reduced-precision variants drift by
//     their quantization error instead — bounded by the MAE fences in
//     tests/test_quant_kernels.cpp — while keeping every within-variant
//     bit-identity guarantee above (their int8 activation scales are
//     per-row or calibration-fixed, never per-batch, precisely so decode
//     tree == independent decode still holds bit-for-bit per variant).
#pragma once

#include <cstddef>
#include <string_view>

#include "util/status.hpp"

namespace ranknet::tensor::kernels {

enum class Variant { kScalar = 0, kAvx2 = 1, kBf16 = 2, kInt8 = 3 };

/// "scalar" / "avx2" / "bf16" / "int8".
const char* variant_name(Variant v);

/// True when the running CPU can execute the variant (kScalar: always;
/// kBf16/kInt8: always — they are portable emulations whose non-GEMM
/// entries fall back to scalar when AVX2 is absent).
bool cpu_supports(Variant v);

/// Activation codes for the fused dense epilogue (mirrors nn::Activation;
/// kept as a plain enum so tensor does not depend on nn).
enum class DenseAct { kNone = 0, kRelu = 1, kTanh = 2, kSigmoid = 3 };

/// Function-pointer table of the dispatched microkernels. Raw-pointer
/// signatures so the table is shared by the Matrix (training) and view
/// (inference) faces. Entries that are nullptr fall back to the staged
/// scalar sequence in kernels.cpp (the scalar table keeps the fused
/// entries null so the reference path stays byte-frozen).
struct Dispatch {
  Variant variant = Variant::kScalar;

  /// C = alpha*A*B + beta*C, A (m x k), B (k x n), all row-major dense.
  /// Contract: each C element accumulates strictly sequentially along k
  /// (one chained FMA per element), so a packed [x|h]*[wx;wh] GEMM stays
  /// bit-identical to the beta=0/beta=1 pair it fuses.
  void (*gemm_nn)(double alpha, const double* a, const double* b, double beta,
                  double* c, std::size_t m, std::size_t k, std::size_t n) =
      nullptr;
  /// In-place elementwise maps.
  void (*sigmoid)(double* x, std::size_t n) = nullptr;
  void (*tanh)(double* x, std::size_t n) = nullptr;
  /// o = x ⊙ y (one multiply per element).
  void (*hadamard)(const double* x, const double* y, double* o,
                   std::size_t n) = nullptr;
  /// o += x ⊙ y (one FMA per element in the avx2 variant).
  void (*hadamard_add)(const double* x, const double* y, double* o,
                       std::size_t n) = nullptr;
  /// m (rows x cols) += bias broadcast over rows.
  void (*add_bias_rows)(double* m, const double* bias, std::size_t rows,
                        std::size_t cols) = nullptr;

  /// Fused LSTM gate epilogue after the packed GEMM. gates is (batch x 4H),
  /// bias has 4H entries, gate column layout [i f g o]; c and h are
  /// (batch x hidden), c updated in place. nullptr = staged fallback.
  void (*lstm_gates)(const double* gates, const double* bias, double* c,
                     double* h, std::size_t batch, std::size_t hidden) =
      nullptr;
  /// Fused dense epilogue: y = act(y + bias) in one pass over y
  /// (rows x cols). nullptr = staged fallback.
  void (*dense_epilogue)(double* y, const double* bias, std::size_t rows,
                         std::size_t cols, DenseAct act) = nullptr;
};

/// The active table. First use resolves RANKNET_KERNEL (throwing
/// std::runtime_error on an invalid value — fail fast at startup) and
/// otherwise picks the best supported variant.
const Dispatch& dispatch();

/// Variant of the active table.
Variant active_variant();

/// Direct access to a variant's table (differential tests).
/// Requesting an unsupported variant's table is allowed (the pointers are
/// valid functions); executing it on an unsupported CPU is not.
const Dispatch& table(Variant v);

/// Switch the active table. Fails with kFailedPrecondition when the CPU
/// lacks the variant. Overrides any earlier RANKNET_KERNEL choice.
util::Status set_variant(Variant v);

/// "scalar" / "avx2" / "bf16" / "int8" → Variant; anything else is
/// kInvalidArgument.
util::Result<Variant> parse_variant(std::string_view s);

/// Apply an override as RANKNET_KERNEL would: nullptr or "" selects the
/// best supported variant; otherwise parse_variant + set_variant.
util::Status apply_env_override(const char* value);

/// Books one dispatched-kernel execution into the per-variant obs counters
/// ("tensor.kernel.<variant>.calls"). Called by the kernel wrappers in
/// kernels.cpp; exposed so tests can reason about it. Hot path: one
/// relaxed atomic add.
void note_call(Variant v);

}  // namespace ranknet::tensor::kernels

#include "tensor/workspace.hpp"

#include <algorithm>

namespace ranknet::tensor {

namespace {
/// Smallest block the arena will allocate, in doubles (128 KiB). Keeps the
/// warm-up phase from fragmenting into many tiny blocks.
constexpr std::size_t kMinBlockDoubles = 16384;
}  // namespace

WorkspaceCounters& WorkspaceCounters::instance() {
  static WorkspaceCounters counters;
  return counters;
}

void WorkspaceCounters::reset() {
  epochs_.store(0, std::memory_order_relaxed);
  reused_epochs_.store(0, std::memory_order_relaxed);
  takes_.store(0, std::memory_order_relaxed);
  block_allocs_.store(0, std::memory_order_relaxed);
  bytes_reserved_.store(0, std::memory_order_relaxed);
  high_water_bytes_.store(0, std::memory_order_relaxed);
}

Workspace::Workspace(std::size_t initial_doubles) {
  if (initial_doubles > 0) {
    blocks_.push_back(Block{std::vector<double>(initial_doubles), 0});
    ++block_allocs_;
    WorkspaceCounters::instance().record_block_alloc(8 * initial_doubles);
  }
}

void Workspace::begin() {
  WorkspaceCounters::instance().record_high_water(8 * in_use_);
  WorkspaceCounters::instance().record_epoch(/*reused=*/!grew_this_epoch_);
  for (auto& b : blocks_) b.used = 0;
  cur_ = 0;
  in_use_ = 0;
  grew_this_epoch_ = false;
}

double* Workspace::bump(std::size_t n) {
  WorkspaceCounters::instance().record_take();
  // Advance through existing blocks until one fits; partial blocks are
  // simply skipped (their tail stays unused this epoch).
  while (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    if (b.data.size() - b.used >= n) {
      double* p = b.data.data() + b.used;
      b.used += n;
      in_use_ += n;
      return p;
    }
    ++cur_;
  }
  // Grow: a fresh block, never touching existing ones, so views handed out
  // earlier in this epoch remain valid.
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().data.size();
  const std::size_t size = std::max({n, 2 * last, kMinBlockDoubles});
  blocks_.push_back(Block{std::vector<double>(size), n});
  ++block_allocs_;
  grew_this_epoch_ = true;
  WorkspaceCounters::instance().record_block_alloc(8 * size);
  in_use_ += n;
  return blocks_.back().data.data();
}

MatrixView Workspace::take(std::size_t rows, std::size_t cols) {
  return {bump(rows * cols), rows, cols};
}

MatrixView Workspace::take_zeroed(std::size_t rows, std::size_t cols) {
  MatrixView v = take(rows, cols);
  v.set_zero();
  return v;
}

std::span<double> Workspace::take_span(std::size_t n) {
  return {bump(n), n};
}

std::size_t Workspace::capacity() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.data.size();
  return total;
}

Workspace& Workspace::thread_local_instance() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace ranknet::tensor

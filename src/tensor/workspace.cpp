#include "tensor/workspace.hpp"

#include <algorithm>

namespace ranknet::tensor {

namespace {
/// Smallest block the arena will allocate, in doubles (128 KiB). Keeps the
/// warm-up phase from fragmenting into many tiny blocks.
constexpr std::size_t kMinBlockDoubles = 16384;

/// Every take() starts on a 64-byte (cache-line / ymm-friendly) boundary.
constexpr std::size_t kAlignBytes = 64;
constexpr std::size_t kAlignDoubles = kAlignBytes / sizeof(double);

/// Doubles of padding needed to bring `p` up to a 64-byte boundary.
std::size_t align_pad(const double* p) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  return (kAlignBytes - addr % kAlignBytes) % kAlignBytes / sizeof(double);
}
}  // namespace

WorkspaceCounters& WorkspaceCounters::instance() {
  static WorkspaceCounters counters;
  return counters;
}

WorkspaceCounters::WorkspaceCounters() {
  auto& reg = obs::Registry::instance();
  epochs_ = &reg.counter("workspace.epochs");
  reused_epochs_ = &reg.counter("workspace.reused_epochs");
  takes_ = &reg.counter("workspace.takes");
  block_allocs_ = &reg.counter("workspace.block_allocs");
  bytes_reserved_ = &reg.counter("workspace.bytes_reserved");
  high_water_bytes_ = &reg.gauge("workspace.high_water_bytes");
}

void WorkspaceCounters::reset() {
  epochs_->reset();
  reused_epochs_->reset();
  takes_->reset();
  block_allocs_->reset();
  bytes_reserved_->reset();
  high_water_bytes_->reset();
}

Workspace::Workspace(std::size_t initial_doubles) {
  if (initial_doubles > 0) {
    blocks_.push_back(Block{std::vector<double>(initial_doubles), 0});
    ++block_allocs_;
    WorkspaceCounters::instance().record_block_alloc(8 * initial_doubles);
  }
}

void Workspace::begin() {
  WorkspaceCounters::instance().record_high_water(8 * in_use_);
  WorkspaceCounters::instance().record_epoch(/*reused=*/!grew_this_epoch_);
  for (auto& b : blocks_) b.used = 0;
  cur_ = 0;
  in_use_ = 0;
  grew_this_epoch_ = false;
}

double* Workspace::bump(std::size_t n) {
  WorkspaceCounters::instance().record_take();
  // Advance through existing blocks until one fits; partial blocks are
  // simply skipped (their tail stays unused this epoch).
  while (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    const std::size_t pad = align_pad(b.data.data() + b.used);
    if (b.data.size() - b.used >= n + pad) {
      double* p = b.data.data() + b.used + pad;
      b.used += n + pad;
      in_use_ += n + pad;
      return p;
    }
    ++cur_;
  }
  // Grow: a fresh block, never touching existing ones, so views handed out
  // earlier in this epoch remain valid. Over-reserve by one alignment unit
  // so the aligned start always fits.
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().data.size();
  const std::size_t size =
      std::max({n + kAlignDoubles - 1, 2 * last, kMinBlockDoubles});
  blocks_.push_back(Block{std::vector<double>(size), 0});
  ++block_allocs_;
  grew_this_epoch_ = true;
  WorkspaceCounters::instance().record_block_alloc(8 * size);
  Block& nb = blocks_.back();
  const std::size_t pad = align_pad(nb.data.data());
  nb.used = pad + n;
  in_use_ += pad + n;
  return nb.data.data() + pad;
}

MatrixView Workspace::take(std::size_t rows, std::size_t cols) {
  return {bump(rows * cols), rows, cols};
}

MatrixView Workspace::take_zeroed(std::size_t rows, std::size_t cols) {
  MatrixView v = take(rows, cols);
  v.set_zero();
  return v;
}

std::span<double> Workspace::take_span(std::size_t n) {
  return {bump(n), n};
}

std::span<std::size_t> Workspace::take_indices(std::size_t n) {
  static_assert(sizeof(std::size_t) == sizeof(double),
                "index spans alias double storage 1:1");
  // bump() returns 64-byte-aligned storage, which satisfies
  // alignof(std::size_t); the span is fully overwritten before any read.
  return {reinterpret_cast<std::size_t*>(bump(n)), n};
}

std::size_t Workspace::capacity() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.data.size();
  return total;
}

Workspace& Workspace::thread_local_instance() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace ranknet::tensor

#include "tensor/kernels.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/timer.hpp"

namespace ranknet::tensor {

namespace {

/// Books a kernel invocation; times it only when profiling is enabled.
template <typename Fn>
void run_kernel(Kernel k, std::uint64_t flops, std::uint64_t bytes, Fn&& fn) {
  auto& counters = OpCounters::instance();
  if (counters.profiling()) {
    util::Timer t;
    fn();
    counters.record(k, flops, bytes, t.seconds());
  } else {
    fn();
    counters.record(k, flops, bytes);
  }
}

// C = alpha*A*B + beta*C with A (m x k), B (k x n): ikj loop, contiguous
// inner access on both B and C rows so the compiler vectorizes it.
void gemm_nn(double alpha, const Matrix& a, const Matrix& b, double beta,
             Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.data() + i * n;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    const double* ai = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = alpha * ai[p];
      if (aip == 0.0) continue;
      const double* bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C = alpha*A^T*B + beta*C with A (k x m), B (k x n).
void gemm_tn(double alpha, const Matrix& a, const Matrix& b, double beta,
             Matrix& c) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.data() + i * n;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = alpha * a(p, i);
      if (aip == 0.0) continue;
      const double* bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C = alpha*A*B^T + beta*C with A (m x k), B (n x k): dot products of rows.
void gemm_nt(double alpha, const Matrix& a, const Matrix& b, double beta,
             Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a.data() + i * k;
    double* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b.data() + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc + (beta == 0.0 ? 0.0 : beta * ci[j]);
    }
  }
}

// C = alpha*A^T*B^T + beta*C with A (k x m), B (n x k). Rare; simple loops.
void gemm_tt(double alpha, const Matrix& a, const Matrix& b, double beta,
             Matrix& c) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.rows();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a(p, i) * b(j, p);
      ci[j] = alpha * acc + (beta == 0.0 ? 0.0 : beta * ci[j]);
    }
  }
}

}  // namespace

void gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix& c) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t k = trans_a ? a.rows() : a.cols();
  const std::size_t kb = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  if (k != kb || c.rows() != m || c.cols() != n) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  const std::uint64_t flops = 2ULL * m * n * k;
  const std::uint64_t bytes =
      8ULL * (m * k + k * n + (beta == 0.0 ? 1ULL : 2ULL) * m * n);
  run_kernel(Kernel::kMatMul, flops, bytes, [&] {
    if (!trans_a && !trans_b) gemm_nn(alpha, a, b, beta, c);
    else if (trans_a && !trans_b) gemm_tn(alpha, a, b, beta, c);
    else if (!trans_a && trans_b) gemm_nt(alpha, a, b, beta, c);
    else gemm_tt(alpha, a, b, beta, c);
  });
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, false, b, false, 0.0, c);
  return c;
}

void add_inplace(Matrix& out, const Matrix& a) {
  assert(out.same_shape(a));
  const std::size_t n = out.size();
  run_kernel(Kernel::kAdd, n, 8ULL * 3 * n, [&] {
    double* o = out.data();
    const double* x = a.data();
    for (std::size_t i = 0; i < n; ++i) o[i] += x[i];
  });
}

void axpy(double alpha, const Matrix& a, Matrix& out) {
  assert(out.same_shape(a));
  const std::size_t n = out.size();
  run_kernel(Kernel::kAdd, 2ULL * n, 8ULL * 3 * n, [&] {
    double* o = out.data();
    const double* x = a.data();
    for (std::size_t i = 0; i < n; ++i) o[i] += alpha * x[i];
  });
}

void scale_inplace(Matrix& out, double s) {
  const std::size_t n = out.size();
  run_kernel(Kernel::kMul, n, 8ULL * 2 * n, [&] {
    double* o = out.data();
    for (std::size_t i = 0; i < n; ++i) o[i] *= s;
  });
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.same_shape(b));
  if (!out.same_shape(a)) out = Matrix(a.rows(), a.cols());
  const std::size_t n = out.size();
  run_kernel(Kernel::kMul, n, 8ULL * 3 * n, [&] {
    const double* x = a.data();
    const double* y = b.data();
    double* o = out.data();
    for (std::size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
  });
}

void hadamard_add(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.same_shape(b) && out.same_shape(a));
  const std::size_t n = out.size();
  run_kernel(Kernel::kMul, 2ULL * n, 8ULL * 4 * n, [&] {
    const double* x = a.data();
    const double* y = b.data();
    double* o = out.data();
    for (std::size_t i = 0; i < n; ++i) o[i] += x[i] * y[i];
  });
}

void add_bias_rows(Matrix& m, std::span<const double> bias) {
  assert(bias.size() == m.cols());
  const std::size_t n = m.size();
  run_kernel(Kernel::kAdd, n, 8ULL * (2 * n + bias.size()), [&] {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      double* row = m.data() + r * m.cols();
      for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
    }
  });
}

void sum_rows(const Matrix& m, std::span<double> bias_grad) {
  assert(bias_grad.size() == m.cols());
  const std::size_t n = m.size();
  run_kernel(Kernel::kAdd, n, 8ULL * (n + 2 * bias_grad.size()), [&] {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      const double* row = m.data() + r * m.cols();
      for (std::size_t c = 0; c < m.cols(); ++c) bias_grad[c] += row[c];
    }
  });
}

void sigmoid_inplace(Matrix& m) {
  const std::size_t n = m.size();
  // ~4 flops per element (exp approximated as one op plus add/div).
  run_kernel(Kernel::kSigmoid, 4ULL * n, 8ULL * 2 * n, [&] {
    double* x = m.data();
    for (std::size_t i = 0; i < n; ++i) x[i] = 1.0 / (1.0 + std::exp(-x[i]));
  });
}

void tanh_inplace(Matrix& m) {
  const std::size_t n = m.size();
  run_kernel(Kernel::kTanh, 4ULL * n, 8ULL * 2 * n, [&] {
    double* x = m.data();
    for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
  });
}

void softplus_inplace(Matrix& m) {
  const std::size_t n = m.size();
  run_kernel(Kernel::kSigmoid, 4ULL * n, 8ULL * 2 * n, [&] {
    double* x = m.data();
    for (std::size_t i = 0; i < n; ++i) {
      // Numerically stable softplus: max(x,0) + log1p(exp(-|x|)).
      x[i] = std::max(x[i], 0.0) + std::log1p(std::exp(-std::abs(x[i])));
    }
  });
}

void softmax_rows(Matrix& m) {
  const std::size_t n = m.size();
  run_kernel(Kernel::kSoftmax, 5ULL * n, 8ULL * 2 * n, [&] {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      double* row = m.data() + r * m.cols();
      double mx = row[0];
      for (std::size_t c = 1; c < m.cols(); ++c) mx = std::max(mx, row[c]);
      double total = 0.0;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        row[c] = std::exp(row[c] - mx);
        total += row[c];
      }
      const double inv = 1.0 / total;
      for (std::size_t c = 0; c < m.cols(); ++c) row[c] *= inv;
    }
  });
}

void copy(const Matrix& src, Matrix& dst) {
  run_kernel(Kernel::kDataMove, 0, 8ULL * 2 * src.size(), [&] { dst = src; });
}

double squared_norm(const Matrix& m) {
  double s = 0.0;
  const double* x = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) s += x[i] * x[i];
  return s;
}

}  // namespace ranknet::tensor

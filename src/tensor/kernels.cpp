#include "tensor/kernels.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "tensor/simd_kernels_detail.hpp"
#include "util/timer.hpp"

namespace ranknet::tensor {

namespace {

/// Branch-free double-precision exp, accurate to ~2 ulp over the clamped
/// domain [-708, 708]. The point is auto-vectorization: libm's exp is a
/// scalar call the compiler cannot vectorize, and the gate nonlinearities
/// (sigmoid/tanh over rows x 4H elements per LSTM step) are the dominant
/// non-GEMM cost of the MC decode path. Cephes-style: split x = n*ln2 + r,
/// evaluate a Pade approximant of exp(r) on [-ln2/2, ln2/2], scale by 2^n
/// through the exponent bits. Callers clamp the argument so n stays inside
/// the normal-exponent range.
inline double vec_exp(double x) {
  constexpr double kLog2e = 1.44269504088896340736;
  constexpr double kLn2Hi = 6.93145751953125e-1;
  constexpr double kLn2Lo = 1.42860682030941723212e-6;
  const double n = std::nearbyint(x * kLog2e);
  const double r = (x - n * kLn2Hi) - n * kLn2Lo;
  const double z = r * r;
  const double px =
      r * (9.99999999999999999910e-1 +
           z * (3.02994407707441961300e-2 + z * 1.26177193074810590878e-4));
  const double qx =
      2.00000000000000000005e0 +
      z * (2.27265548208155028766e-1 +
           z * (2.52448340349684104192e-3 + z * 3.00198505138664455042e-6));
  const double e = 1.0 + 2.0 * px / (qx - px);
  const auto biased = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(n) + 1023);
  return e * std::bit_cast<double>(biased << 52);
}

/// Clamp that keeps vec_exp's 2^n scale inside normal doubles; at the
/// boundary exp is already ~1e-308 / ~1e308, far past every activation's
/// saturation point.
inline double exp_clamp(double x) {
  return x < -708.0 ? -708.0 : (x > 708.0 ? 708.0 : x);
}

/// Books a kernel invocation; times it only when profiling is enabled.
template <typename Fn>
void run_kernel(Kernel k, std::uint64_t flops, std::uint64_t bytes, Fn&& fn) {
  auto& counters = OpCounters::instance();
  if (counters.profiling()) {
    util::Timer t;
    fn();
    counters.record(k, flops, bytes, t.seconds());
  } else {
    fn();
    counters.record(k, flops, bytes);
  }
}

}  // namespace

// The gemm inner loops below run over raw pointers so the Matrix (training)
// and view (inference) faces execute the same compiled code — that shared
// compilation is what guarantees both paths round identically. The loops
// that sit on the MC decode path live in tensor::detail (declared in
// simd_kernels_detail.hpp) so the dispatch layer can install them as the
// scalar reference variant; the rest stay file-local.
namespace detail {

// C = alpha*A*B + beta*C with A (m x k), B (k x n): ikj loop, contiguous
// inner access on both B and C rows so the compiler vectorizes it. The
// p-loop is unrolled by four with the partial sum chained through a
// register, which removes three of every four load/store round-trips on
// the C row — the bottleneck of the plain axpy form. Each `t += a*b` stays
// its own mul-add (one rounding), so the per-element accumulation sequence
// over p is unchanged: results are bit-identical to the unrolled-by-one
// loop, and in particular one packed [x|h]*[wx;wh] GEMM matches the
// beta=0/beta=1 pair it fuses (the chunk boundary only moves values
// through memory, which does not re-round doubles).
void gemm_nn_scalar(double alpha, const double* a, const double* b,
                    double beta, double* c, std::size_t m, std::size_t k,
                    std::size_t n) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c + i * n;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    const double* ai = a + i * k;
    std::size_t p = 0;
    for (; p + 4 <= k; p += 4) {
      const double a0 = alpha * ai[p];
      const double a1 = alpha * ai[p + 1];
      const double a2 = alpha * ai[p + 2];
      const double a3 = alpha * ai[p + 3];
      const double* b0 = b + p * n;
      const double* b1 = b0 + n;
      const double* b2 = b1 + n;
      const double* b3 = b2 + n;
      for (std::size_t j = 0; j < n; ++j) {
        double t = ci[j];
        t += a0 * b0[j];
        t += a1 * b1[j];
        t += a2 * b2[j];
        t += a3 * b3[j];
        ci[j] = t;
      }
    }
    for (; p < k; ++p) {
      const double aip = alpha * ai[p];
      const double* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void sigmoid_scalar(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.0 / (1.0 + vec_exp(exp_clamp(-x[i])));
  }
}

void tanh_scalar(double* x, std::size_t n) {
  // tanh(x) = sign(x) * (1 - 2/(exp(2|x|)+1)); using |x| keeps the exp
  // argument non-negative so the quotient stays in (0, 1] and the final
  // subtraction is exact (Sterbenz) — absolute error stays ~1 ulp of 1.
  for (std::size_t i = 0; i < n; ++i) {
    const double a = std::abs(x[i]);
    const double t = 1.0 - 2.0 / (vec_exp(exp_clamp(2.0 * a)) + 1.0);
    x[i] = std::copysign(t, x[i]);
  }
}

void hadamard_scalar(const double* x, const double* y, double* o,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
}

void hadamard_add_scalar(const double* x, const double* y, double* o,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] += x[i] * y[i];
}

void add_bias_rows_scalar(double* m, const double* bias, std::size_t rows,
                          std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = m + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

}  // namespace detail

namespace {

// C = alpha*A^T*B + beta*C with A (k x m), B (k x n).
void gemm_tn(double alpha, const double* a, const double* b, double beta,
             double* c, std::size_t m, std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c + i * n;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = alpha * a[p * m + i];
      if (aip == 0.0) continue;
      const double* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C = alpha*A*B^T + beta*C with A (m x k), B (n x k): dot products of rows.
void gemm_nt(double alpha, const double* a, const double* b, double beta,
             double* c, std::size_t m, std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a + i * k;
    double* ci = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc + (beta == 0.0 ? 0.0 : beta * ci[j]);
    }
  }
}

// C = alpha*A^T*B^T + beta*C with A (k x m), B (n x k). Rare; simple loops.
void gemm_tt(double alpha, const double* a, const double* b, double beta,
             double* c, std::size_t m, std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
      ci[j] = alpha * acc + (beta == 0.0 ? 0.0 : beta * ci[j]);
    }
  }
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, bool trans_a, ConstMatrixView b,
          bool trans_b, double beta, MatrixView c) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t k = trans_a ? a.rows() : a.cols();
  const std::size_t kb = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  if (k != kb || c.rows() != m || c.cols() != n) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  const std::uint64_t flops = 2ULL * m * n * k;
  const std::uint64_t bytes =
      8ULL * (m * k + k * n + (beta == 0.0 ? 1ULL : 2ULL) * m * n);
  run_kernel(Kernel::kMatMul, flops, bytes, [&] {
    if (!trans_a && !trans_b) {
      // The only gemm shape on the MC decode path — runtime-dispatched.
      // The transposed forms below are training-only (gradients) and stay
      // on the scalar reference loops.
      const auto& d = kernels::dispatch();
      kernels::note_call(d.variant);
      d.gemm_nn(alpha, a.data(), b.data(), beta, c.data(), m, k, n);
    } else if (trans_a && !trans_b) {
      gemm_tn(alpha, a.data(), b.data(), beta, c.data(), m, k, n);
    } else if (!trans_a && trans_b) {
      gemm_nt(alpha, a.data(), b.data(), beta, c.data(), m, k, n);
    } else {
      gemm_tt(alpha, a.data(), b.data(), beta, c.data(), m, k, n);
    }
  });
}

void gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix& c) {
  gemm(alpha, ConstMatrixView(a), trans_a, ConstMatrixView(b), trans_b, beta,
       MatrixView(c));
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, false, b, false, 0.0, c);
  return c;
}

void add_inplace(MatrixView out, ConstMatrixView a) {
  assert(same_shape(out, a));
  const std::size_t n = out.size();
  run_kernel(Kernel::kAdd, n, 8ULL * 3 * n, [&] {
    double* o = out.data();
    const double* x = a.data();
    for (std::size_t i = 0; i < n; ++i) o[i] += x[i];
  });
}

void add_inplace(Matrix& out, const Matrix& a) {
  add_inplace(MatrixView(out), ConstMatrixView(a));
}

void axpy(double alpha, ConstMatrixView a, MatrixView out) {
  assert(same_shape(out, a));
  const std::size_t n = out.size();
  run_kernel(Kernel::kAdd, 2ULL * n, 8ULL * 3 * n, [&] {
    double* o = out.data();
    const double* x = a.data();
    for (std::size_t i = 0; i < n; ++i) o[i] += alpha * x[i];
  });
}

void axpy(double alpha, const Matrix& a, Matrix& out) {
  axpy(alpha, ConstMatrixView(a), MatrixView(out));
}

void scale_inplace(MatrixView out, double s) {
  const std::size_t n = out.size();
  run_kernel(Kernel::kMul, n, 8ULL * 2 * n, [&] {
    double* o = out.data();
    for (std::size_t i = 0; i < n; ++i) o[i] *= s;
  });
}

void scale_inplace(Matrix& out, double s) {
  scale_inplace(MatrixView(out), s);
}

void hadamard(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  assert(same_shape(a, b) && same_shape(out, a));
  const std::size_t n = out.size();
  const auto& d = kernels::dispatch();
  kernels::note_call(d.variant);
  run_kernel(Kernel::kMul, n, 8ULL * 3 * n,
             [&] { d.hadamard(a.data(), b.data(), out.data(), n); });
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.same_shape(b));
  if (!out.same_shape(a)) out = Matrix(a.rows(), a.cols());
  hadamard(ConstMatrixView(a), ConstMatrixView(b), MatrixView(out));
}

void hadamard_add(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  assert(same_shape(a, b) && same_shape(out, a));
  const std::size_t n = out.size();
  const auto& d = kernels::dispatch();
  kernels::note_call(d.variant);
  run_kernel(Kernel::kMul, 2ULL * n, 8ULL * 4 * n,
             [&] { d.hadamard_add(a.data(), b.data(), out.data(), n); });
}

void hadamard_add(const Matrix& a, const Matrix& b, Matrix& out) {
  hadamard_add(ConstMatrixView(a), ConstMatrixView(b), MatrixView(out));
}

void add_bias_rows(MatrixView m, std::span<const double> bias) {
  assert(bias.size() == m.cols());
  const std::size_t n = m.size();
  const auto& d = kernels::dispatch();
  kernels::note_call(d.variant);
  run_kernel(Kernel::kAdd, n, 8ULL * (2 * n + bias.size()), [&] {
    d.add_bias_rows(m.data(), bias.data(), m.rows(), m.cols());
  });
}

void add_bias_rows(Matrix& m, std::span<const double> bias) {
  add_bias_rows(MatrixView(m), bias);
}

void sum_rows(const Matrix& m, std::span<double> bias_grad) {
  assert(bias_grad.size() == m.cols());
  const std::size_t n = m.size();
  run_kernel(Kernel::kAdd, n, 8ULL * (n + 2 * bias_grad.size()), [&] {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      const double* row = m.data() + r * m.cols();
      for (std::size_t c = 0; c < m.cols(); ++c) bias_grad[c] += row[c];
    }
  });
}

void sigmoid_inplace(MatrixView m) {
  const std::size_t n = m.size();
  // ~4 flops per element (exp approximated as one op plus add/div).
  const auto& d = kernels::dispatch();
  kernels::note_call(d.variant);
  run_kernel(Kernel::kSigmoid, 4ULL * n, 8ULL * 2 * n,
             [&] { d.sigmoid(m.data(), n); });
}

void sigmoid_inplace(Matrix& m) { sigmoid_inplace(MatrixView(m)); }

void tanh_inplace(MatrixView m) {
  const std::size_t n = m.size();
  const auto& d = kernels::dispatch();
  kernels::note_call(d.variant);
  run_kernel(Kernel::kTanh, 4ULL * n, 8ULL * 2 * n,
             [&] { d.tanh(m.data(), n); });
}

void tanh_inplace(Matrix& m) { tanh_inplace(MatrixView(m)); }

void softplus_inplace(MatrixView m) {
  const std::size_t n = m.size();
  run_kernel(Kernel::kSigmoid, 4ULL * n, 8ULL * 2 * n, [&] {
    double* x = m.data();
    for (std::size_t i = 0; i < n; ++i) {
      // Numerically stable softplus: max(x,0) + log1p(exp(-|x|)).
      x[i] = std::max(x[i], 0.0) + std::log1p(std::exp(-std::abs(x[i])));
    }
  });
}

void softplus_inplace(Matrix& m) { softplus_inplace(MatrixView(m)); }

void softmax_rows(MatrixView m) {
  const std::size_t n = m.size();
  run_kernel(Kernel::kSoftmax, 5ULL * n, 8ULL * 2 * n, [&] {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      double* row = m.data() + r * m.cols();
      double mx = row[0];
      for (std::size_t c = 1; c < m.cols(); ++c) mx = std::max(mx, row[c]);
      double total = 0.0;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        row[c] = std::exp(row[c] - mx);
        total += row[c];
      }
      const double inv = 1.0 / total;
      for (std::size_t c = 0; c < m.cols(); ++c) row[c] *= inv;
    }
  });
}

void softmax_rows(Matrix& m) { softmax_rows(MatrixView(m)); }

void copy(ConstMatrixView src, MatrixView dst) {
  assert(same_shape(src, dst));
  run_kernel(Kernel::kDataMove, 0, 8ULL * 2 * src.size(), [&] {
    const double* s = src.data();
    double* d = dst.data();
    for (std::size_t i = 0; i < src.size(); ++i) d[i] = s[i];
  });
}

void copy(const Matrix& src, Matrix& dst) {
  run_kernel(Kernel::kDataMove, 0, 8ULL * 2 * src.size(), [&] { dst = src; });
}

double squared_norm(const Matrix& m) {
  double s = 0.0;
  const double* x = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) s += x[i] * x[i];
  return s;
}

void lstm_cell_step(ConstMatrixView xh, ConstMatrixView w,
                    std::span<const double> bias, MatrixView c, MatrixView h,
                    const LstmStepScratch& scratch) {
  const std::size_t batch = xh.rows();
  const std::size_t hidden = c.cols();
  assert(w.rows() == xh.cols() && w.cols() == 4 * hidden);
  assert(bias.size() == 4 * hidden);
  assert(h.rows() == batch && h.cols() == hidden && c.rows() == batch);
  assert(scratch.gates.rows() == batch && scratch.gates.cols() == 4 * hidden);
  assert(scratch.sig.rows() == batch && scratch.sig.cols() == 3 * hidden);
  assert(scratch.tg.rows() == batch && scratch.tg.cols() == hidden);
  assert(scratch.tanh_c.rows() == batch && scratch.tanh_c.cols() == hidden);

  MatrixView gates = scratch.gates;
  gemm(1.0, xh, false, w, false, 0.0, gates);

  const auto& disp = kernels::dispatch();
  if (disp.lstm_gates != nullptr) {
    // Fused gate epilogue (avx2): bias + activations + state update in one
    // pass over the gate matrix. Bit-identical to the staged sequence below
    // under the same variant, because the staged kernels' avx2 lane math
    // (add, sigmoid/tanh, multiply, FMA) is exactly what the fused kernel
    // runs per element. Books the same seven records the staged sequence
    // would (fig11/fig12 breakdowns stay variant-invariant); when profiling,
    // the fused walltime is split across them in proportion to flops.
    kernels::note_call(disp.variant);
    auto& counters = OpCounters::instance();
    double secs = 0.0;
    if (counters.profiling()) {
      util::Timer t;
      disp.lstm_gates(gates.data(), bias.data(), c.data(), h.data(), batch,
                      hidden);
      secs = t.seconds();
    } else {
      disp.lstm_gates(gates.data(), bias.data(), c.data(), h.data(), batch,
                      hidden);
    }
    const std::uint64_t hb = batch * hidden;
    const std::uint64_t n4 = 4 * hb, n3 = 3 * hb;
    const Kernel kinds[7] = {Kernel::kAdd,  Kernel::kSigmoid, Kernel::kTanh,
                             Kernel::kMul,  Kernel::kMul,     Kernel::kTanh,
                             Kernel::kMul};
    const std::uint64_t flops[7] = {n4, 4 * n3, 4 * hb, hb, 2 * hb,
                                    4 * hb, hb};
    const std::uint64_t bytes[7] = {
        8 * (2 * n4 + 4 * hidden), 8 * 2 * n3, 8 * 2 * hb, 8 * 3 * hb,
        8 * 4 * hb,                8 * 2 * hb, 8 * 3 * hb};
    const double total = 28.0 * static_cast<double>(hb);
    for (int i = 0; i < 7; ++i) {
      const double share =
          total > 0.0 ? secs * static_cast<double>(flops[i]) / total : 0.0;
      counters.record(kinds[i], flops[i], bytes[i], share);
    }
    return;
  }

  add_bias_rows(gates, bias);

  // Split activation: sigmoid on [i f o], tanh on [g], via contiguous
  // gather/scatter — the same staging (and therefore the same kernel
  // bookings) as the training-path cell. Gate layout: [i (h), f, g, o].
  MatrixView sig = scratch.sig;
  MatrixView tg = scratch.tg;
  for (std::size_t r = 0; r < batch; ++r) {
    const double* g = gates.data() + r * 4 * hidden;
    double* s = sig.data() + r * 3 * hidden;
    double* t = tg.data() + r * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      s[j] = g[j];                            // i
      s[hidden + j] = g[hidden + j];          // f
      s[2 * hidden + j] = g[3 * hidden + j];  // o
      t[j] = g[2 * hidden + j];               // g
    }
  }
  sigmoid_inplace(sig);
  tanh_inplace(tg);
  for (std::size_t r = 0; r < batch; ++r) {
    double* g = gates.data() + r * 4 * hidden;
    const double* s = sig.data() + r * 3 * hidden;
    const double* t = tg.data() + r * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      g[j] = s[j];
      g[hidden + j] = s[hidden + j];
      g[3 * hidden + j] = s[2 * hidden + j];
      g[2 * hidden + j] = t[j];
    }
  }

  // c = f ⊙ c_prev + i ⊙ g, with c_prev living in (and overwritten by) c.
  MatrixView fgate = scratch.fgate, igate = scratch.igate,
             ggate = scratch.ggate, ogate = scratch.ogate;
  for (std::size_t r = 0; r < batch; ++r) {
    const double* g = gates.data() + r * 4 * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      igate(r, j) = g[j];
      fgate(r, j) = g[hidden + j];
      ggate(r, j) = g[2 * hidden + j];
      ogate(r, j) = g[3 * hidden + j];
    }
  }
  hadamard(fgate, c, c);
  hadamard_add(igate, ggate, c);
  {
    // Unbooked copy, mirroring the training cell's tanh_c = c assignment.
    const double* s = c.data();
    double* d = scratch.tanh_c.data();
    for (std::size_t i = 0; i < batch * hidden; ++i) d[i] = s[i];
  }
  tanh_inplace(scratch.tanh_c);
  hadamard(ogate, scratch.tanh_c, h);
}

void dense_forward(ConstMatrixView x, ConstMatrixView w,
                   std::span<const double> bias, kernels::DenseAct act,
                   MatrixView y) {
  assert(y.rows() == x.rows() && y.cols() == w.cols());
  assert(bias.size() == w.cols());
  gemm(1.0, x, false, w, false, 0.0, y);

  const auto& d = kernels::dispatch();
  if (d.dense_epilogue != nullptr) {
    // Fused bias + activation in one pass over y; per-element math matches
    // the staged add_bias_rows + activation sequence under the same
    // variant. Books the staged path's records (fused time, when profiling,
    // is attributed to the bias add).
    kernels::note_call(d.variant);
    auto& counters = OpCounters::instance();
    const std::size_t n = y.size();
    double secs = 0.0;
    if (counters.profiling()) {
      util::Timer t;
      d.dense_epilogue(y.data(), bias.data(), y.rows(), y.cols(), act);
      secs = t.seconds();
    } else {
      d.dense_epilogue(y.data(), bias.data(), y.rows(), y.cols(), act);
    }
    counters.record(Kernel::kAdd, n, 8ULL * (2 * n + bias.size()), secs);
    if (act == kernels::DenseAct::kTanh) {
      counters.record(Kernel::kTanh, 4ULL * n, 8ULL * 2 * n);
    } else if (act == kernels::DenseAct::kSigmoid) {
      counters.record(Kernel::kSigmoid, 4ULL * n, 8ULL * 2 * n);
    }
    return;
  }

  add_bias_rows(y, bias);
  switch (act) {
    case kernels::DenseAct::kNone:
      break;
    case kernels::DenseAct::kRelu:
      for (auto& v : y.flat()) v = v > 0.0 ? v : 0.0;
      break;
    case kernels::DenseAct::kTanh:
      tanh_inplace(y);
      break;
    case kernels::DenseAct::kSigmoid:
      sigmoid_inplace(y);
      break;
  }
}

void gaussian_head_forward(ConstMatrixView h, ConstMatrixView w_mu,
                           std::span<const double> b_mu,
                           ConstMatrixView w_sigma,
                           std::span<const double> b_sigma,
                           double sigma_floor, MatrixView mu,
                           MatrixView sigma) {
  // Two dispatched dense projections (n == 1 routes to the GEMV fast path
  // under avx2) plus the stable softplus and the floor add. The sequence is
  // exactly what GaussianHead::forward_inference runs, so head and session
  // stay bit-identical under either variant.
  dense_forward(h, w_mu, b_mu, kernels::DenseAct::kNone, mu);
  dense_forward(h, w_sigma, b_sigma, kernels::DenseAct::kNone, sigma);
  softplus_inplace(sigma);
  double* s = sigma.data();
  for (std::size_t i = 0; i < sigma.size(); ++i) s[i] += sigma_floor;
}

}  // namespace ranknet::tensor

// Instrumented compute kernels over tensor::Matrix.
//
// These five kernel classes (MatMul, Mul, Add, Sigmoid, Tanh — plus Softmax
// for the Transformer) are exactly the ones the paper's profiling section
// identifies inside the LSTM cell; every call books its flop/byte footprint
// into tensor::OpCounters so the Fig. 10-12 benches can reproduce the
// roofline and breakdown analysis from real counts.
#pragma once

#include <span>

#include "tensor/matrix.hpp"
#include "tensor/opcount.hpp"

namespace ranknet::tensor {

/// C = alpha * op(A) * op(B) + beta * C, where op is optional transpose.
/// Blocked and OpenMP-parallel over rows of C.
void gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix& c);

/// Convenience: returns A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// out += a (element-wise). Shapes must match.
void add_inplace(Matrix& out, const Matrix& a);
/// out += alpha * a.
void axpy(double alpha, const Matrix& a, Matrix& out);
/// out *= s (scalar).
void scale_inplace(Matrix& out, double s);
/// out = a ⊙ b (Hadamard product); out may alias a or b.
void hadamard(const Matrix& a, const Matrix& b, Matrix& out);
/// out += a ⊙ b.
void hadamard_add(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds a length-cols bias vector to every row.
void add_bias_rows(Matrix& m, std::span<const double> bias);
/// Accumulates column sums of m into bias_grad (length cols).
void sum_rows(const Matrix& m, std::span<double> bias_grad);

/// Element-wise logistic sigmoid, in place.
void sigmoid_inplace(Matrix& m);
/// Element-wise tanh, in place.
void tanh_inplace(Matrix& m);
/// softplus(x) = log(1 + exp(x)), in place; used for the σ head.
void softplus_inplace(Matrix& m);

/// Row-wise softmax (in place) — attention weights.
void softmax_rows(Matrix& m);

/// Explicit copy booked as data movement (stands in for host<->device
/// transfers in the hybrid-offload model of Fig. 12).
void copy(const Matrix& src, Matrix& dst);

/// Squared L2 norm of all elements.
double squared_norm(const Matrix& m);

}  // namespace ranknet::tensor

// Instrumented compute kernels over tensor::Matrix and tensor views.
//
// These five kernel classes (MatMul, Mul, Add, Sigmoid, Tanh — plus Softmax
// for the Transformer) are exactly the ones the paper's profiling section
// identifies inside the LSTM cell; every call books its flop/byte footprint
// into tensor::OpCounters so the Fig. 10-12 benches can reproduce the
// roofline and breakdown analysis from real counts.
//
// Every kernel has two faces over one implementation: a Matrix overload
// (training graph) and a view overload (inference runtime, caller-owned
// storage from a Workspace). The Matrix overloads forward into the view
// overloads, so both paths execute the same compiled inner loops and their
// floating-point results are bit-identical by construction.
//
// Runtime dispatch: the kernels on the Monte-Carlo decode path (gemm_nn,
// sigmoid/tanh, hadamard(+), add_bias_rows, and the fused LSTM/dense
// epilogues) execute through tensor::kernels::dispatch()
// (simd_kernels.hpp) — scalar reference loops or AVX2+FMA microkernels,
// chosen per process via CPU detection or the RANKNET_KERNEL override.
// Kernel bookings (flops/bytes/calls) are variant-invariant by design.
#pragma once

#include <span>

#include "tensor/matrix.hpp"
#include "tensor/opcount.hpp"
#include "tensor/simd_kernels.hpp"
#include "tensor/view.hpp"

namespace ranknet::tensor {

/// C = alpha * op(A) * op(B) + beta * C, where op is optional transpose.
/// Blocked and OpenMP-parallel over rows of C.
void gemm(double alpha, ConstMatrixView a, bool trans_a, ConstMatrixView b,
          bool trans_b, double beta, MatrixView c);
void gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix& c);

/// Convenience: returns A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// out += a (element-wise). Shapes must match.
void add_inplace(MatrixView out, ConstMatrixView a);
void add_inplace(Matrix& out, const Matrix& a);
/// out += alpha * a.
void axpy(double alpha, ConstMatrixView a, MatrixView out);
void axpy(double alpha, const Matrix& a, Matrix& out);
/// out *= s (scalar).
void scale_inplace(MatrixView out, double s);
void scale_inplace(Matrix& out, double s);
/// out = a ⊙ b (Hadamard product); out may alias a or b (exact alias only).
/// The view overload requires out pre-shaped to a's shape.
void hadamard(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void hadamard(const Matrix& a, const Matrix& b, Matrix& out);
/// out += a ⊙ b; out may alias a or b (exact alias only).
void hadamard_add(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void hadamard_add(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds a length-cols bias vector to every row.
void add_bias_rows(MatrixView m, std::span<const double> bias);
void add_bias_rows(Matrix& m, std::span<const double> bias);
/// Accumulates column sums of m into bias_grad (length cols).
void sum_rows(const Matrix& m, std::span<double> bias_grad);

/// Element-wise logistic sigmoid, in place.
void sigmoid_inplace(MatrixView m);
void sigmoid_inplace(Matrix& m);
/// Element-wise tanh, in place.
void tanh_inplace(MatrixView m);
void tanh_inplace(Matrix& m);
/// softplus(x) = log(1 + exp(x)), in place; used for the σ head.
void softplus_inplace(MatrixView m);
void softplus_inplace(Matrix& m);

/// Row-wise softmax (in place) — attention weights. In-place by design, so
/// trivially alias-safe.
void softmax_rows(MatrixView m);
void softmax_rows(Matrix& m);

/// Explicit copy booked as data movement (stands in for host<->device
/// transfers in the hybrid-offload model of Fig. 12). The view overload
/// requires matching shapes.
void copy(ConstMatrixView src, MatrixView dst);
void copy(const Matrix& src, Matrix& dst);

/// Squared L2 norm of all elements.
double squared_norm(const Matrix& m);

// ---- fused LSTM cell step (inference runtime) ---------------------------

/// Caller-owned scratch for lstm_cell_step; all views (batch B, hidden H)
/// typically come from a Workspace and are reused across decode steps.
struct LstmStepScratch {
  MatrixView gates;                        // B x 4H
  MatrixView sig;                          // B x 3H
  MatrixView tg;                           // B x H
  MatrixView fgate, igate, ggate, ogate;   // B x H each
  MatrixView tanh_c;                       // B x H
};

/// One fused LSTM cell step over caller-owned storage:
///   gates = [x | h_prev] * [wx ; wh] + b    (one packed GEMM)
///   i,f,o = sigmoid; g = tanh
///   c     = f ⊙ c + i ⊙ g                   (c updated in place)
///   h     = o ⊙ tanh(c)
/// xh is (B x in+H) with h_prev already packed into columns [in, in+H);
/// w is the row-concatenated (in+H x 4H) weight [wx ; wh], gate order
/// [i f g o]; bias has 4H entries.
///
/// Bit-identity: concatenating the two gate GEMMs into one packed GEMM
/// preserves the ikj per-element accumulation order of running x*wx (beta 0)
/// then h_prev*wh (beta 1), and the activation/Hadamard stages execute the
/// same inner loops as the unfused kernels, so the result is bit-identical
/// to LstmLayer's training-path cell. Books one kMatMul record (summed
/// flops of both halves) plus the same Add/Sigmoid/Tanh/Mul records as the
/// unfused sequence.
void lstm_cell_step(ConstMatrixView xh, ConstMatrixView w,
                    std::span<const double> bias, MatrixView c, MatrixView h,
                    const LstmStepScratch& scratch);

// ---- fused dense / Gaussian-head forward --------------------------------

/// y = act(x * W + b) as one dispatched op. Under the scalar variant this
/// runs the exact staged gemm → add_bias_rows → activation sequence the
/// Dense layer always ran; under avx2 the bias and activation fuse into a
/// single pass over y. Both Dense::apply (training/forward_inference) and
/// DenseInferenceSession::apply route here, which is what keeps layer and
/// session bit-identical per variant.
void dense_forward(ConstMatrixView x, ConstMatrixView w,
                   std::span<const double> bias, kernels::DenseAct act,
                   MatrixView y);

/// Gaussian head: mu = h*Wmu + bmu; sigma = softplus(h*Ws + bs) + floor.
/// Shared by GaussianHead::forward_inference and the inference session; the
/// target_dim == 1 projections hit the dispatched GEMV fast path.
void gaussian_head_forward(ConstMatrixView h, ConstMatrixView w_mu,
                           std::span<const double> b_mu,
                           ConstMatrixView w_sigma,
                           std::span<const double> b_sigma,
                           double sigma_floor, MatrixView mu,
                           MatrixView sigma);

}  // namespace ranknet::tensor

// Internal: the raw-pointer kernel implementations behind the dispatch
// tables. kernels.cpp defines the scalar reference loops (shared with the
// pre-dispatch code so the scalar variant stays byte-frozen),
// simd_kernels_avx2.cpp defines the AVX2+FMA variants, and
// simd_kernels.cpp assembles them into kernels::Dispatch tables. Not part
// of the public tensor API.
#pragma once

#include <cstddef>

#include "tensor/simd_kernels.hpp"

namespace ranknet::tensor::detail {

// Scalar reference loops (kernels.cpp). These are the exact inner loops the
// repo shipped before runtime dispatch existed; golden files are pinned to
// them.
void gemm_nn_scalar(double alpha, const double* a, const double* b,
                    double beta, double* c, std::size_t m, std::size_t k,
                    std::size_t n);
void sigmoid_scalar(double* x, std::size_t n);
void tanh_scalar(double* x, std::size_t n);
void hadamard_scalar(const double* x, const double* y, double* o,
                     std::size_t n);
void hadamard_add_scalar(const double* x, const double* y, double* o,
                         std::size_t n);
void add_bias_rows_scalar(double* m, const double* bias, std::size_t rows,
                          std::size_t cols);

// Variant tables. scalar_table() lives in simd_kernels.cpp; avx2_table()
// lives in simd_kernels_avx2.cpp (compiled with -mavx2 -mfma; on non-x86
// targets it aliases the scalar table and cpu_supports(kAvx2) is false).
// bf16_table()/int8_table() live in simd_kernels_quant.cpp: copies of the
// best-supported full-precision table with gemm_nn replaced by the
// packed reduced-precision GEMM.
const kernels::Dispatch& scalar_table();
const kernels::Dispatch& avx2_table();
const kernels::Dispatch& bf16_table();
const kernels::Dispatch& int8_table();

}  // namespace ranknet::tensor::detail

// Non-owning, contiguous row-major matrix views.
//
// The inference runtime runs every kernel over caller-owned storage (a
// Workspace arena, a Parameter's weight matrix, a Matrix) so the decode
// loop performs no heap allocation. A view is (pointer, rows, cols) with
// stride == cols; the compute kernels in tensor/kernels.hpp accept views
// and Matrix interchangeably — both paths dispatch into the same inner
// loops, which is what makes the inference runtime bit-identical to the
// training-path math.
//
// Aliasing contract: where a kernel documents that its output "may alias"
// an input, the alias must be exact (same pointer, same shape). Partially
// overlapping views are undefined behaviour.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

#include "tensor/matrix.hpp"

namespace ranknet::tensor {

class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  // Implicit: any Matrix is viewable.
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  const double* data() const { return data_; }

  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_ + r * cols_, cols_};
  }
  std::span<const double> flat() const { return {data_, size()}; }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  MatrixView(Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  double* data() const { return data_; }

  double& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  std::span<double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_ + r * cols_, cols_};
  }
  std::span<double> flat() const { return {data_, size()}; }

  void fill(double v) const {
    for (std::size_t i = 0; i < size(); ++i) data_[i] = v;
  }
  void set_zero() const { fill(0.0); }

  /// Copy all elements out into an owning Matrix.
  Matrix to_matrix() const {
    Matrix m(rows_, cols_);
    for (std::size_t i = 0; i < size(); ++i) m.data()[i] = data_[i];
    return m;
  }

  operator ConstMatrixView() const {  // NOLINT(google-explicit-constructor)
    return {data_, rows_, cols_};
  }

 private:
  double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

inline bool same_shape(ConstMatrixView a, ConstMatrixView b) {
  return a.rows() == b.rows() && a.cols() == b.cols();
}

}  // namespace ranknet::tensor

// Reduced-precision GEMM kernels behind the bf16/int8 dispatch variants.
//
// Both variants attack the memory-bandwidth bound of the MC-decode GEMMs
// (DESIGN.md roofline chapter): the weight operand streams as 2 bytes
// (bf16) or 1 byte (int8) per element instead of 8, through the pack
// registry in quant.cpp. Everything around the inner loop stays f64 — the
// C tile, alpha/beta handling, and the fused LSTM/dense epilogues
// inherited from the best-supported base table.
//
// Determinism (same contract as the scalar/avx2 variants, enforced by
// tests/test_quant_kernels.cpp):
//   * bf16: both operands are pre-rounded element-wise (a pure
//     per-element function) into f64 scratch, then the tuned
//     full-precision base GEMM runs on the rounded values. The base GEMM
//     is row-independent and batch-invariant (the decode-tree bit-identity
//     suite proves this for scalar/avx2), so batching/partitioning rows
//     cannot change any bit of the bf16 result either.
//   * int8: accumulation is EXACT int32 arithmetic (order-independent);
//     the activation scale is per-row (a pure function of that row) or
//     fixed by calibration — never per-batch — so the variant is
//     bit-stable across decode-tree vs independent batching by
//     construction. int32 is overflow-safe for k < 130000 (127*127*k <
//     2^31), far above any model dimension here.
//
// Performance shape: at decode sizes the weight tensors are cache-resident,
// so the f64 FMA kernels — not DRAM bandwidth — set the floor. The bf16
// path therefore pays O(m*k + k*n) pure up-conversion and reuses the
// fastest f64 GEMM for the O(m*k*n) part, instead of fusing a per-element
// decode into the inner loop (measured ~2.5x slower at LSTM-gate shapes).
// The 2-byte pack remains the storage format; the widened scratch is
// per-thread and steady-state allocation-free.
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/quant.hpp"
#include "tensor/simd_kernels.hpp"
#include "tensor/simd_kernels_detail.hpp"

namespace ranknet::tensor::detail {

namespace {

namespace kq = ::ranknet::tensor::quant;

/// Per-thread scratch: rounded/widened operand copies for bf16, quantized
/// activations and the int32 accumulator row for int8. Grows once per
/// thread to the largest shape seen; steady-state decode allocates nothing.
struct QuantScratch {
  std::vector<double> a_f64;       // bf16-rounded activations (m x k)
  std::vector<double> b_f64;       // widened bf16 weight pack (k x n)
  std::vector<std::int8_t> a_q8;   // quantized activation row (k)
  std::vector<std::int32_t> acc;   // int accumulator row (n)
};

QuantScratch& scratch() {
  thread_local QuantScratch s;
  return s;
}

/// Base table the reduced-precision variants delegate to for everything
/// but the operand treatment: avx2's GEMM and fused f64 epilogues when the
/// CPU has them, else the staged scalar reference.
const kernels::Dispatch& base_table() {
  return kernels::cpu_supports(kernels::Variant::kAvx2) ? avx2_table()
                                                        : scalar_table();
}

void gemm_nn_bf16(double alpha, const double* a, const double* b, double beta,
                  double* c, std::size_t m, std::size_t k, std::size_t n) {
  const auto pack = kq::acquire_bf16(b, k, n);
  const std::uint16_t* bq = pack->data.data();
  auto& s = scratch();
  const std::size_t mk = m * k, kn = k * n;
  if (s.a_f64.size() < mk) s.a_f64.resize(mk);
  if (s.b_f64.size() < kn) s.b_f64.resize(kn);

  // Pure element-wise operand treatment: round A through bf16, widen the
  // packed B. Rounding is per-element, so how rows are later batched or
  // partitioned cannot perturb any value.
  for (std::size_t i = 0; i < mk; ++i) {
    s.a_f64[i] = kq::from_bf16(kq::to_bf16(a[i]));
  }
  for (std::size_t i = 0; i < kn; ++i) {
    s.b_f64[i] = kq::from_bf16(bq[i]);
  }
  // The O(m*k*n) part runs on the tuned full-precision kernel, which is
  // row-independent and batch-invariant — bf16 inherits both.
  base_table().gemm_nn(alpha, s.a_f64.data(), s.b_f64.data(), beta, c, m, k,
                       n);
}

void gemm_nn_int8(double alpha, const double* a, const double* b, double beta,
                  double* c, std::size_t m, std::size_t k, std::size_t n) {
  const auto pack = kq::acquire_int8(b, k, n);
  const std::int8_t* bq = pack->data.data();
  auto& s = scratch();
  if (s.a_q8.size() < k) s.a_q8.resize(k);
  if (s.acc.size() < n) s.acc.resize(n);
  std::int8_t* aq = s.a_q8.data();
  std::int32_t* acc = s.acc.data();

  // Calibrated activation scale is fixed per tensor; otherwise each row
  // derives its own scale from its own absmax (never from the batch).
  const double calib_scale =
      pack->act_absmax > 0.0 ? pack->act_absmax / 127.0 : 0.0;

  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c + i * n;
    const double* ai = a + i * k;

    double sa = calib_scale;
    if (sa == 0.0) {
      double mrow = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double v = std::abs(ai[p]);
        if (v > mrow && v <= std::numeric_limits<double>::max()) mrow = v;
      }
      sa = mrow > 0.0 ? mrow / 127.0 : 1.0;
    }
    const double inv_sa = 1.0 / sa;
    for (std::size_t p = 0; p < k; ++p) {
      aq[p] = kq::quantize_int8(ai[p], inv_sa);
    }

    for (std::size_t j = 0; j < n; ++j) acc[j] = 0;
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t av = aq[p];
      const std::int8_t* bp = bq + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        acc[j] += av * static_cast<std::int32_t>(bp[j]);
      }
    }

    const double rescale = alpha * sa * pack->scale;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] = rescale * static_cast<double>(acc[j]);
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] = beta * ci[j] + rescale * static_cast<double>(acc[j]);
      }
    }
  }
}

}  // namespace

const kernels::Dispatch& bf16_table() {
  static const kernels::Dispatch t = [] {
    kernels::Dispatch d = base_table();
    d.variant = kernels::Variant::kBf16;
    d.gemm_nn = &gemm_nn_bf16;
    return d;
  }();
  return t;
}

const kernels::Dispatch& int8_table() {
  static const kernels::Dispatch t = [] {
    kernels::Dispatch d = base_table();
    d.variant = kernels::Variant::kInt8;
    d.gemm_nn = &gemm_nn_int8;
    return d;
  }();
  return t;
}

}  // namespace ranknet::tensor::detail

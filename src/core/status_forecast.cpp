#include "core/status_forecast.hpp"

#include "core/forecast_cache.hpp"
#include "tensor/workspace.hpp"

namespace ranknet::core {

std::uint64_t covariate_window_digest(
    std::span<const std::span<const double>> rows) {
  Fnv1a h;
  for (const auto& row : rows) {
    h.update_u64(static_cast<std::uint64_t>(row.size()));
    for (double v : row) h.update_double(v);
  }
  return h.digest();
}

PitFeatures current_pit_features(const features::StatusStreams& streams,
                                 std::size_t origin) {
  PitFeatures f;
  double caution = 0.0, age = 0.0;
  const std::size_t n = std::min(origin, streams.laps());
  for (std::size_t t = 0; t < n; ++t) {
    if (streams.lap_status[t] > 0.5) {
      caution = 0.0;
      age = 0.0;
    } else {
      if (streams.track_status[t] > 0.5) caution += 1.0;
      age += 1.0;
    }
  }
  f.caution_laps = caution;
  f.pit_age = age;
  return f;
}

std::map<int, std::vector<std::vector<double>>> sample_status_realization(
    const std::map<int, const features::StatusStreams*>& streams,
    const std::map<int, double>& origin_rank, const PitModel& pit_model,
    const features::CovariateConfig& config, std::size_t origin,
    std::size_t future_len, util::Rng& rng) {
  // Sample every car's future pit laps first (they couple through the
  // race-context features). One zero-allocation MLP session serves every
  // car; the sequential draw order matches PitModel::sample_future_lap_status
  // exactly.
  auto& ws = tensor::Workspace::thread_local_instance();
  ws.begin();
  const PitModel::InferenceSession pit(pit_model, ws);
  std::map<int, std::vector<double>> predicted;
  for (const auto& [car_id, s] : streams) {
    auto& dst = predicted[car_id];
    dst.assign(future_len, 0.0);
    pit.sample_future_into(current_pit_features(*s, origin), dst, rng);
  }
  std::vector<double> future_total(future_len, 0.0);
  for (const auto& [_, status] : predicted) {
    for (std::size_t t = 0; t < future_len; ++t) future_total[t] += status[t];
  }

  std::map<int, std::vector<std::vector<double>>> out;
  for (const auto& [car_id, s] : streams) {
    features::StatusStreams ext;
    const auto prefix = [origin](const std::vector<double>& src) {
      const auto n = std::min(origin, src.size());
      return std::vector<double>(src.begin(),
                                 src.begin() + static_cast<std::ptrdiff_t>(n));
    };
    ext.track_status = prefix(s->track_status);
    ext.lap_status = prefix(s->lap_status);
    ext.total_pit_count = prefix(s->total_pit_count);
    ext.leader_pit_count = prefix(s->leader_pit_count);
    const auto& mine = predicted.at(car_id);
    for (std::size_t t = 0; t < future_len; ++t) {
      ext.track_status.push_back(0.0);  // Algorithm 2: assume green
      ext.lap_status.push_back(mine[t]);
      ext.total_pit_count.push_back(future_total[t]);
      double leaders = 0.0;
      for (const auto& [other_id, status] : predicted) {
        if (other_id != car_id && status[t] > 0.5 &&
            origin_rank.at(other_id) < origin_rank.at(car_id)) {
          leaders += 1.0;
        }
      }
      ext.leader_pit_count.push_back(leaders);
    }
    out.emplace(car_id, features::build_covariates(ext, config));
  }
  return out;
}

}  // namespace ranknet::core

// The autoregressive stacked-LSTM sequence model with Gaussian likelihood —
// the shared network behind DeepAR, RankNet-MLP/-Oracle (covariates on) and
// RankNet-Joint (multivariate target, covariates off). Implements paper
// Algorithm 1 (teacher-forced likelihood training over the unrolled
// encoder+decoder window) and the network half of Algorithm 2 (stateful
// ancestral sampling).
//
// Step convention: input at step t is [z_{t-1}, x_t, embed(car)] and the
// hidden state h_t parameterizes p(z_t | θ(h_t)), matching Fig. 5(c).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "features/scaler.hpp"
#include "features/window.hpp"
#include "nn/adam.hpp"
#include "nn/embedding.hpp"
#include "nn/gaussian.hpp"
#include "nn/lstm.hpp"
#include "tensor/quant.hpp"
#include "util/rng.hpp"

namespace ranknet::core {

struct SeqModelConfig {
  std::size_t cov_dim = 9;    // 0 = no covariates (DeepAR / Joint)
  std::size_t target_dim = 1; // 3 for RankNet-Joint
  std::size_t hidden = 40;    // paper Table IV: 40 LSTM nodes
  std::size_t num_layers = 2; // paper Table IV: 2 LSTM layers
  std::size_t embed_dim = 4;  // CarId embedding; 0 disables
  int vocab = 1;              // embedding rows (CarVocab::size())
  std::uint64_t seed = 1234;

  std::size_t input_dim() const {
    return target_dim + cov_dim + embed_dim;
  }
  /// Stable string for the model-cache key.
  std::string cache_key() const;
};

class LstmSeqModel : public nn::Layer {
 public:
  explicit LstmSeqModel(SeqModelConfig config);

  const SeqModelConfig& config() const { return config_; }

  /// Target scaler (applied to target dim 0 = rank only); fitted by the
  /// trainer on training ranks.
  void set_scaler(const features::StandardScaler& scaler) { scaler_ = scaler; }
  const features::StandardScaler& scaler() const { return scaler_; }

  /// int8 activation calibration recorded by a probe pass (see
  /// core::calibrate_forecaster) or loaded from a v3 artifact. A non-empty
  /// calibration is installed process-wide for future int8 packs — the
  /// last calibrated model wins, which is fine for the one-serving-model
  /// processes this targets. Callers must bump the serving model_version:
  /// forecast-cache keys do not see calibration.
  void set_calibration(tensor::quant::Calibration calibration) {
    calibration_ = std::move(calibration);
    if (!calibration_.empty()) {
      tensor::quant::set_activation_calibration(calibration_);
    }
  }
  const tensor::quant::Calibration& calibration() const {
    return calibration_;
  }

  // ---- training (Algorithm 1) ----------------------------------------

  /// A packed minibatch of equal-length windows. xs_base excludes the car
  /// embedding columns (those are looked up inside train_step so the
  /// embedding table receives gradients).
  struct Batch {
    std::vector<tensor::Matrix> xs_base;  // time-major, (B x target+cov dim)
    tensor::Matrix z_dec;                 // (dec_len*B x target_dim), scaled
    std::vector<double> weights;          // per z_dec row
    std::vector<int> car_index;           // per example
    std::size_t batch = 0;
    std::size_t dec_len = 0;
  };

  /// Assemble a batch from windows (targets get scaled internally).
  /// All examples must have covariates/target of equal length.
  Batch make_batch(const std::vector<const features::SeqExample*>& examples,
                   std::size_t dec_len) const;

  /// Shared batch packer (also used by the Transformer model).
  static Batch pack_examples(
      const std::vector<const features::SeqExample*>& examples,
      std::size_t dec_len, const features::StandardScaler& scaler,
      std::size_t target_dim, std::size_t cov_dim);

  /// One forward+backward pass; gradients accumulate into params.
  /// Returns the weighted mean NLL of the batch.
  double train_step(const Batch& batch);

  /// NLL without touching gradients (validation).
  double evaluate(const Batch& batch);

  // ---- forecasting (Algorithm 2, network half) ------------------------

  /// LSTM states (one per layer) for a batch of sequences.
  using StackState = std::vector<nn::LstmState>;

  /// Consume an observed prefix for `rows` parallel sequences and return
  /// the state after each step. history[r] holds raw (unscaled) targets
  /// z_1..z_T per row; covs[r][t] the covariate vector of lap t+1 (0-based).
  /// Returned trace[t] is the state after consuming input
  /// [z_t, x_{t+1}], i.e. the state from which lap t+2 would be predicted;
  /// trace has T-1 entries.
  std::vector<StackState> trace(
      const std::vector<std::vector<double>>& history,
      const std::vector<std::vector<std::vector<double>>>& covs,
      const std::vector<int>& car_index) const;

  /// Select one row of a traced state and replicate it `copies` times.
  static StackState replicate_state(const StackState& state, std::size_t row,
                                    std::size_t copies);
  /// Concatenate states row-wise (used to batch all cars together).
  static StackState concat_states(const std::vector<StackState>& states);

  /// One teacher-forced step: consume [z_prev, cov] for each row and update
  /// `state` in place (no sampling). Used to re-run the last encoder laps
  /// with corrected (predicted) shift features before sampling.
  void advance(StackState& state,
               const std::vector<std::vector<double>>& z_prev,
               const std::vector<std::vector<double>>& covs,
               const std::vector<int>& car_index) const;

  /// Roll the sampler forward `horizon` steps from `state` (modified in
  /// place). z_prev[r] is the last observed raw target vector per row;
  /// future_covs[r][h] the covariate vector for horizon step h. Returns
  /// (rows x horizon) sampled raw target values (dim 0 = rank), plus all
  /// target dims via `all_dims` when non-null.
  ///
  /// All rows advance through the LSTM stack together: one decode step is
  /// one (rows x hidden) batch per layer, so all live cars' hidden states
  /// ride in a single GEMM instead of many per-car ones. Every row-level
  /// quantity (gates, head output, feedback) depends only on that row, so
  /// the batch may be any subset of cars/samples without changing results.
  tensor::Matrix sample_forward(
      StackState& state, std::vector<std::vector<double>> z_prev,
      const std::vector<std::vector<std::vector<double>>>& future_covs,
      const std::vector<int>& car_index, int horizon, util::Rng& rng,
      std::vector<tensor::Matrix>* all_dims = nullptr) const;

  /// Partition-invariant variant: row r draws its Gaussian noise from its
  /// own stream row_rngs[r] (derived via util::Rng::stream keyed by
  /// (car, sample)), so the sampled trajectory of a row is byte-identical
  /// no matter how rows are grouped into batches or threads.
  tensor::Matrix sample_forward(
      StackState& state, std::vector<std::vector<double>> z_prev,
      const std::vector<std::vector<std::vector<double>>>& future_covs,
      const std::vector<int>& car_index, int horizon,
      std::span<util::Rng> row_rngs,
      std::vector<tensor::Matrix>* all_dims = nullptr) const;

  /// Shared-prefix decode-tree variant (DESIGN.md "Decode tree & forecast
  /// cache"). Rows are partitioned into branches: every member of a branch
  /// must enter the decode with byte-identical state and byte-identical
  /// step-1 inputs (z_prev, future_covs[r][0], car_index). The first decode
  /// step then runs once per *branch* over `branch_state` (one state row
  /// per branch), rows fork by drawing their step-1 noise from their own
  /// row stream against the branch's (mu, sigma), and steps 2..horizon run
  /// at full row width exactly like sample_forward. Because the dispatched
  /// kernels are row-independent and the forked state is a plain row copy,
  /// the result is bit-identical to independent decode of the same rows —
  /// tests/test_decode_tree.cpp proves this differentially.
  ///
  /// branch_state is consumed (decode advances it; it is not stored back).
  /// branch_of_row[r] names row r's branch; branch b's step-1 inputs are
  /// read from its first member row.
  tensor::Matrix sample_forward_tree(
      StackState& branch_state, std::span<const std::size_t> branch_of_row,
      std::vector<std::vector<double>> z_prev,
      const std::vector<std::vector<std::vector<double>>>& future_covs,
      const std::vector<int>& car_index, int horizon,
      std::span<util::Rng> row_rngs) const;

  std::vector<nn::Parameter*> params() override;

 private:
  /// Shared decode loop over the zero-allocation inference runtime. Exactly
  /// one of (rng, row_rngs) supplies the Gaussian noise: rng != nullptr
  /// draws row-major from the single stream, otherwise row r draws from
  /// row_rngs[r].
  tensor::Matrix sample_forward_impl(
      StackState& state, std::vector<std::vector<double>>& z_prev,
      const std::vector<std::vector<std::vector<double>>>& future_covs,
      const std::vector<int>& car_index, int horizon, util::Rng* rng,
      std::span<util::Rng> row_rngs,
      std::vector<tensor::Matrix>* all_dims) const;

  SeqModelConfig config_;
  features::StandardScaler scaler_{0.0, 1.0};
  tensor::quant::Calibration calibration_;
  std::unique_ptr<nn::Embedding> embedding_;  // null when embed_dim == 0
  std::vector<std::unique_ptr<nn::LstmLayer>> layers_;
  std::unique_ptr<nn::GaussianHead> head_;
};

}  // namespace ranknet::core

// Evaluation metrics of the paper (Section IV-D): MAE, Top1Acc, SignAcc and
// the quantile ρ-risk of probabilistic forecasts.
#pragma once

#include <span>
#include <vector>

namespace ranknet::core {

/// Mean absolute error between point predictions and actuals.
double mae(std::span<const double> predicted, std::span<const double> actual);

/// ρ-risk: sum over points of 2(Ẑρ − Z)(1{Z < Ẑρ} − ρ), normalized by
/// Σ|Z|. Ẑρ is the model's ρ-quantile prediction per point.
double rho_risk(std::span<const double> quantile_predictions,
                std::span<const double> actual, double rho);

/// Fraction of cases where the predicted sign of the change matches the
/// actual sign (sign of zero counts as its own class).
double sign_accuracy(std::span<const double> predicted_change,
                     std::span<const double> actual_change);

/// Fraction of correct binary outcomes (used for Top1Acc).
double accuracy(const std::vector<bool>& correct);

}  // namespace ranknet::core

// ModelZoo: canonical model configurations (paper Table IV + the Fig. 7
// optimized feature set) and a disk-backed cache of trained weights so the
// bench suite trains each model once. Cache files live under
// $RANKNET_ARTIFACTS (default ./artifacts), keyed by event + full config
// hash; delete the directory to force retraining.
#pragma once

#include <memory>
#include <string>

#include "core/pit_model.hpp"
#include "core/ranknet.hpp"
#include "core/training.hpp"
#include "simulator/season.hpp"

namespace ranknet::core {

struct ZooConfig {
  std::string artifacts_dir;  // empty = $RANKNET_ARTIFACTS or "artifacts"
  TrainConfig train;          // default_train_config() when unset
  ZooConfig();
};

class ModelZoo {
 public:
  explicit ModelZoo(ZooConfig config = {});

  // Canonical configurations -------------------------------------------
  /// RankNet windows: encoder 60, decoder 2, loss weight 9, full covariates
  /// incl. context + shift features (paper Fig. 7 final model).
  static features::WindowConfig ranknet_window_config();
  /// DeepAR: same architecture without race-status covariates (Table III).
  static features::WindowConfig deepar_window_config();
  /// Joint: race status moves from covariates into the target vector.
  static features::WindowConfig joint_window_config();

  struct LstmBundle {
    std::shared_ptr<LstmSeqModel> model;
    features::CarVocab vocab;
    features::WindowConfig wcfg;
    TrainStats stats;  // empty when loaded from cache
  };
  struct TransformerBundle {
    std::shared_ptr<TransformerSeqModel> model;
    features::CarVocab vocab;
    features::WindowConfig wcfg;
    TrainStats stats;
  };

  /// Stable cache-key fragment for a window configuration.
  static std::string window_key(const features::WindowConfig& wcfg);

  // Trained building blocks (cached) ------------------------------------
  LstmBundle rank_model(const sim::EventDataset& ds);
  /// Rank model with a custom window configuration (Fig. 7 ablations).
  LstmBundle custom_rank_model(const sim::EventDataset& ds,
                               const features::WindowConfig& wcfg,
                               const TrainConfig& tcfg);
  LstmBundle deepar_model(const sim::EventDataset& ds);
  LstmBundle joint_model(const sim::EventDataset& ds);
  TransformerBundle transformer_model(const sim::EventDataset& ds);
  std::shared_ptr<PitModel> pit_model(const sim::EventDataset& ds);

  // Ready-made forecasters ----------------------------------------------
  std::unique_ptr<RankNetForecaster> ranknet_mlp(const sim::EventDataset& ds);
  std::unique_ptr<RankNetForecaster> ranknet_oracle(
      const sim::EventDataset& ds);
  std::unique_ptr<RankNetForecaster> ranknet_joint(
      const sim::EventDataset& ds);
  std::unique_ptr<RankNetForecaster> deepar(const sim::EventDataset& ds);
  std::unique_ptr<TransformerForecaster> transformer_mlp(
      const sim::EventDataset& ds);
  std::unique_ptr<TransformerForecaster> transformer_oracle(
      const sim::EventDataset& ds);

  const ZooConfig& config() const { return config_; }

 private:
  /// Validation races: the dataset's own, or the last training race held
  /// out when the event has no validation year (paper: only Indy500 does).
  static void split_validation(const sim::EventDataset& ds,
                               std::vector<telemetry::RaceLog>& train,
                               std::vector<telemetry::RaceLog>& val);

  std::string cache_path(const std::string& event,
                         const std::string& key) const;

  ZooConfig config_;
};

/// int8 calibration pass (tensor/quant.hpp): records per-tensor activation
/// absmax over one probe-race forecast, installs the result process-wide
/// (future int8 packs pick it up by tensor name) and returns it so callers
/// can stamp it onto the model (LstmSeqModel::set_calibration) and persist
/// it in the v3 artifact (nn::save_params calibration overload). Runs the
/// probe under whatever kernel variant is active — the recorded ranges are
/// f64 activation statistics either way.
tensor::quant::Calibration calibrate_forecaster(
    RaceForecaster& forecaster, const telemetry::RaceLog& probe,
    int origin_lap, int horizon, int num_samples, std::uint64_t seed = 2024);

}  // namespace ranknet::core

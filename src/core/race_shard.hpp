// RaceShard: the unit of per-race isolation in the fleet engine.
//
// Everything that used to be process-wide (or engine-wide) state when the
// stack served one race at a time is owned per shard here:
//   * its own forecaster instance (so PartitionableForecaster::prepare's
//     single-threaded per-race warm-up never races across shards),
//   * its own ParallelForecastEngine — and with it a private
//     util::ThreadPool for per-car fan-out and per-thread workspaces,
//   * its own ForecastCache slice (optional), so cache hits never cross a
//     shard lock,
//   * a single-threaded driver pool for whole-forecast jobs, which is what
//     lets N shards run N races concurrently while each shard's
//     policy/stats/cache stay single-writer.
//
// Bytes never depend on shard identity: forecast() takes an explicit rng
// stream base and routes through ParallelForecastEngine::forecast_with_base,
// so the output is a pure function of (model, race, request shape, base) —
// the invariant core/fleet_engine.hpp's reshard property tests pin down.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "core/forecast_cache.hpp"
#include "core/parallel_engine.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ranknet::core {

/// Per-shard sizing knobs; one copy shared by every shard in a fleet.
struct ShardConfig {
  /// Engine pool threads for per-car fan-out inside one forecast;
  /// 0 = inline (sequential) mode.
  std::size_t engine_threads = 0;
  std::size_t max_cars_per_task = 4;
  /// Per-shard forecast cache capacity; 0 = no shard-local cache (a shared
  /// cache may still be injected by the fleet).
  std::size_t cache_capacity = 0;
  /// Lock stripes of the shard-local cache (forecast_cache.hpp).
  std::size_t cache_stripes = 1;
  /// false = run driver jobs inline on the submitting thread. The default
  /// gives every shard one driver thread, so a fleet of N shards serves N
  /// races concurrently.
  bool driver_thread = true;
};

class RaceShard {
 public:
  /// `shared_cache`, when non-null, overrides the shard-local cache — the
  /// serving registry uses this so generations keep deduping through one
  /// (striped) cache across shards and hot-swaps.
  RaceShard(std::size_t index, std::shared_ptr<RaceForecaster> forecaster,
            const ShardConfig& config,
            std::shared_ptr<ForecastCache> shared_cache = nullptr);

  RaceShard(const RaceShard&) = delete;
  RaceShard& operator=(const RaceShard&) = delete;

  std::size_t index() const { return index_; }
  const std::shared_ptr<RaceForecaster>& forecaster() const {
    return forecaster_;
  }
  const std::shared_ptr<ParallelForecastEngine>& engine() const {
    return engine_;
  }
  const std::shared_ptr<ForecastCache>& cache() const { return cache_; }

  /// Keyed whole-forecast on the calling thread. Pure function of
  /// (model, race, origin, horizon, num_samples, base); books
  /// fleet.shard.<i>.forecasts.
  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, std::uint64_t base);

  /// Run a whole-forecast job (or any shard-affine work, e.g. a serving
  /// micro-batch) on the shard's driver. Jobs submitted to one shard run
  /// in FIFO order on a single thread, which is what makes per-shard
  /// engine policy mutation safe without a lock.
  ///
  /// Lifetime contract: the SUBMITTER must hold a reference (e.g. the
  /// shared_ptr it routed with) until the returned future completes. The
  /// job callable must NOT own the shard: the driver destroys the callable
  /// after fulfilling the future, so a job holding the last shared_ptr
  /// would run ~RaceShard — and join the driver thread — from the driver
  /// thread itself.
  template <typename Fn>
  auto submit(Fn&& fn) {
    jobs_->add(1);
    return driver_.submit(std::forward<Fn>(fn));
  }

  /// Driver jobs accepted but not yet running (load signal for routing).
  std::size_t queue_depth() const { return driver_.queue_depth(); }

 private:
  std::size_t index_;
  std::shared_ptr<RaceForecaster> forecaster_;
  std::shared_ptr<ForecastCache> cache_;  // null when caching is off
  std::shared_ptr<ParallelForecastEngine> engine_;
  util::ThreadPool driver_;
  obs::Counter* forecasts_;  // fleet.shard.<i>.forecasts
  obs::Counter* jobs_;       // fleet.shard.<i>.jobs
};

}  // namespace ranknet::core

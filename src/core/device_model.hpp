// Training-efficiency study substrate (paper Section IV-J, Figs. 10-12).
//
// The CPU series is *measured*: a RankNet-sized LSTM training step is run
// at each batch size with kernel-level instrumentation (tensor::OpCounters)
// recording calls / flops / bytes / walltime per kernel class.
//
// The GPU / GPU-cuDNN / NEC VE series are *modeled*: an analytic device
// model (peak flop rate, memory bandwidth, per-call offload overhead,
// fusion factors for cuDNN) is applied to the same measured kernel
// workload. This reproduces the paper's qualitative findings — large batch
// amortizes per-call overhead and raises arithmetic intensity, offload pays
// only once kernels are big enough — without the hardware. Parameters are
// documented in DESIGN.md; they come from the paper's Table VIII devices.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/opcount.hpp"

namespace ranknet::core {

/// Global wall-time accounting for the parallel forecast engine, kept next
/// to the kernel counters so the efficiency benches can report CPU-seconds
/// (summed per-task wall time across workers) against elapsed wall time —
/// without this split a parallel run would look like a flop-rate miracle on
/// the roofline. Booked by core::ParallelForecastEngine; storage lives in
/// the obs::Registry ("engine.*") and this class is a shim over resolved
/// handles.
class EngineCounters {
 public:
  static EngineCounters& instance();

  /// Zeroes this subsystem's metrics only.
  void reset();
  void record_task(double seconds) {
    tasks_->add(1);
    task_seconds_->add(seconds);
  }
  void record_forecast(double wall_seconds) {
    forecasts_->add(1);
    wall_seconds_->add(wall_seconds);
  }

  std::uint64_t tasks() const { return tasks_->value(); }
  std::uint64_t forecasts() const { return forecasts_->value(); }
  double task_seconds() const { return task_seconds_->value(); }
  double wall_seconds() const { return wall_seconds_->value(); }

 private:
  EngineCounters();
  obs::Counter* tasks_;
  obs::Counter* forecasts_;
  obs::Gauge* task_seconds_;
  obs::Gauge* wall_seconds_;
};

/// Health accounting for the forecast engine's degradation ladder, kept
/// next to EngineCounters so serving dashboards read throughput and
/// degradation from one place. Booked by core::ParallelForecastEngine; see
/// parallel_engine.hpp for the ladder. Storage lives in the obs::Registry
/// ("degradation.*"); this class is a shim over resolved handles.
class DegradationCounters {
 public:
  static DegradationCounters& instance();

  /// Zeroes this subsystem's metrics only.
  void reset();
  void record_full_cars(std::uint64_t n) { full_cars_->add(n); }
  void record_damaged_fallback(std::uint64_t n) {
    damaged_fallback_cars_->add(n);
  }
  void record_deadline_fallback(std::uint64_t n) {
    deadline_fallback_cars_->add(n);
  }
  void record_error_fallback(std::uint64_t n) {
    error_fallback_cars_->add(n);
  }
  void record_deadline_hit() { deadline_hits_->add(1); }
  void record_task_failures(std::uint64_t n) { task_failures_->add(n); }
  /// Inference-runtime memory health, mirrored by the engine from
  /// tensor::WorkspaceCounters deltas after each forecast: arena epochs
  /// begun, epochs fully served from warm blocks (no growth), and raw
  /// block allocations. In steady state reused == epochs and block
  /// allocations stay flat — any sustained growth is an allocation
  /// regression on the serving hot path.
  void record_workspace(std::uint64_t epochs, std::uint64_t reused_epochs,
                        std::uint64_t block_allocs) {
    workspace_epochs_->add(epochs);
    workspace_reused_epochs_->add(reused_epochs);
    workspace_block_allocs_->add(block_allocs);
  }

  std::uint64_t full_cars() const { return full_cars_->value(); }
  std::uint64_t damaged_fallback_cars() const {
    return damaged_fallback_cars_->value();
  }
  std::uint64_t deadline_fallback_cars() const {
    return deadline_fallback_cars_->value();
  }
  std::uint64_t error_fallback_cars() const {
    return error_fallback_cars_->value();
  }
  std::uint64_t deadline_hits() const { return deadline_hits_->value(); }
  std::uint64_t task_failures() const { return task_failures_->value(); }
  std::uint64_t fallback_cars() const {
    return damaged_fallback_cars() + deadline_fallback_cars() +
           error_fallback_cars();
  }
  std::uint64_t workspace_epochs() const {
    return workspace_epochs_->value();
  }
  std::uint64_t workspace_reused_epochs() const {
    return workspace_reused_epochs_->value();
  }
  std::uint64_t workspace_block_allocs() const {
    return workspace_block_allocs_->value();
  }

 private:
  DegradationCounters();
  obs::Counter* full_cars_;
  obs::Counter* damaged_fallback_cars_;
  obs::Counter* deadline_fallback_cars_;
  obs::Counter* error_fallback_cars_;
  obs::Counter* deadline_hits_;
  obs::Counter* task_failures_;
  obs::Counter* workspace_epochs_;
  obs::Counter* workspace_reused_epochs_;
  obs::Counter* workspace_block_allocs_;
};

/// Branch-reuse accounting for the shared-prefix MC decode tree (see
/// DESIGN.md "Decode tree & forecast cache"). Booked by RankNetForecaster
/// when decoding in tree mode; `shared_rows` counts row-steps of LSTM+head
/// work the tree skipped versus independent decode (rows × shared steps −
/// branches × shared steps), so branch-reuse health is exportable next to
/// the cache hit rate. Storage lives in the obs::Registry ("decode_tree.*");
/// this class is a shim over resolved handles.
class DecodeTreeCounters {
 public:
  static DecodeTreeCounters& instance();

  /// Zeroes this subsystem's metrics only.
  void reset();
  void record_decode(std::uint64_t rows, std::uint64_t branches,
                     std::uint64_t shared_rows) {
    decodes_->add(1);
    rows_->add(rows);
    branches_->add(branches);
    shared_rows_->add(shared_rows);
  }

  std::uint64_t decodes() const { return decodes_->value(); }
  std::uint64_t rows() const { return rows_->value(); }
  std::uint64_t branches() const { return branches_->value(); }
  std::uint64_t shared_rows() const { return shared_rows_->value(); }
  /// Mean rows per branch (1.0 = no sharing); 0 when idle.
  double rows_per_branch() const {
    const auto b = branches();
    return b == 0 ? 0.0
                  : static_cast<double>(rows()) / static_cast<double>(b);
  }

 private:
  DecodeTreeCounters();
  obs::Counter* decodes_;
  obs::Counter* rows_;
  obs::Counter* branches_;
  obs::Counter* shared_rows_;
};

struct KernelClassStats {
  std::uint64_t calls = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  double cpu_seconds = 0.0;
};

/// Per-kernel-class workload of one training step.
struct Workload {
  std::array<KernelClassStats, static_cast<std::size_t>(
                                   tensor::Kernel::kCount)>
      per_kernel{};
  std::size_t batch = 0;
  std::size_t samples = 0;  // batch (samples processed per step)
  double wall_seconds = 0.0;

  const KernelClassStats& kernel(tensor::Kernel k) const {
    return per_kernel[static_cast<std::size_t>(k)];
  }
  double cpu_us_per_sample() const {
    return samples == 0 ? 0.0
                        : wall_seconds * 1e6 / static_cast<double>(samples);
  }
};

/// Run `reps` instrumented training steps of a RankNet-sized LSTM
/// (2x40 hidden, encoder 60 / decoder 2) on synthetic data and return the
/// averaged per-step workload with CPU timings.
Workload measure_ranknet_workload(std::size_t batch_size, int reps = 3);

/// Analytic accelerator description.
struct DeviceSpec {
  std::string name;
  double peak_gflops = 50.0;      // dense-kernel (MatMul) peak
  double scalar_gflops = 5.0;     // pointwise-op peak
  double mem_bw_gbs = 50.0;       // memory bandwidth
  double overhead_us_per_call = 0.0;  // kernel launch / offload overhead
  double matmul_call_factor = 1.0;    // cuDNN fusion: fraction of calls left
  double pointwise_call_factor = 1.0;
  bool offload = false;  // hybrid: host runs what the device doesn't
};

/// Paper Table VIII devices (modeled).
DeviceSpec gpu_spec();
DeviceSpec gpu_cudnn_spec();
DeviceSpec ve_spec();

/// Predicted µs/sample of the workload on a modeled device.
double modeled_us_per_sample(const Workload& w, const DeviceSpec& spec);

/// Fig. 12 breakdown: fraction of walltime per category for a hybrid
/// host+device system (offload decided per kernel class by profitability).
struct HybridBreakdown {
  double matmul_mul_host = 0.0, matmul_mul_dev = 0.0;
  double pointwise_host = 0.0, pointwise_dev = 0.0;
  double other_host = 0.0, other_dev = 0.0;
  double data_move = 0.0;
  /// Fraction of the step's FLOPs executed on the accelerator (the paper's
  /// "work load offloaded").
  double offloaded_flop_fraction = 0.0;
  /// Total hybrid step time (seconds).
  double hybrid_seconds = 0.0;
  /// Fraction of hybrid walltime spent on the accelerator.
  double offloaded_fraction() const {
    return matmul_mul_dev + pointwise_dev + other_dev;
  }
};
HybridBreakdown hybrid_breakdown(const Workload& w, const DeviceSpec& spec);

/// Measured CPU roofline parameters of this machine (Fig. 11 ceilings).
struct CpuRoofline {
  double peak_gflops = 0.0;    // dense FMA peak (measured small dgemm)
  double scalar_gflops = 0.0;  // scalar add peak
  double dram_bw_gbs = 0.0;    // streaming triad bandwidth
};
CpuRoofline measure_cpu_roofline();

}  // namespace ranknet::core

// Training-efficiency study substrate (paper Section IV-J, Figs. 10-12).
//
// The CPU series is *measured*: a RankNet-sized LSTM training step is run
// at each batch size with kernel-level instrumentation (tensor::OpCounters)
// recording calls / flops / bytes / walltime per kernel class.
//
// The GPU / GPU-cuDNN / NEC VE series are *modeled*: an analytic device
// model (peak flop rate, memory bandwidth, per-call offload overhead,
// fusion factors for cuDNN) is applied to the same measured kernel
// workload. This reproduces the paper's qualitative findings — large batch
// amortizes per-call overhead and raises arithmetic intensity, offload pays
// only once kernels are big enough — without the hardware. Parameters are
// documented in DESIGN.md; they come from the paper's Table VIII devices.
#pragma once

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "tensor/opcount.hpp"

namespace ranknet::core {

/// Global wall-time accounting for the parallel forecast engine, kept next
/// to the kernel counters so the efficiency benches can report CPU-seconds
/// (summed per-task wall time across workers) against elapsed wall time —
/// without this split a parallel run would look like a flop-rate miracle on
/// the roofline. Booked by core::ParallelForecastEngine.
class EngineCounters {
 public:
  static EngineCounters& instance();

  void reset();
  void record_task(double seconds) {
    tasks_.fetch_add(1, std::memory_order_relaxed);
    add_double(task_seconds_, seconds);
  }
  void record_forecast(double wall_seconds) {
    forecasts_.fetch_add(1, std::memory_order_relaxed);
    add_double(wall_seconds_, wall_seconds);
  }

  std::uint64_t tasks() const {
    return tasks_.load(std::memory_order_relaxed);
  }
  std::uint64_t forecasts() const {
    return forecasts_.load(std::memory_order_relaxed);
  }
  double task_seconds() const {
    return task_seconds_.load(std::memory_order_relaxed);
  }
  double wall_seconds() const {
    return wall_seconds_.load(std::memory_order_relaxed);
  }

 private:
  static void add_double(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
  }

  EngineCounters() = default;
  std::atomic<std::uint64_t> tasks_{0}, forecasts_{0};
  std::atomic<double> task_seconds_{0.0}, wall_seconds_{0.0};
};

/// Health accounting for the forecast engine's degradation ladder, kept as
/// a global singleton next to EngineCounters so serving dashboards read
/// throughput and degradation from one place. Booked by
/// core::ParallelForecastEngine; see parallel_engine.hpp for the ladder.
class DegradationCounters {
 public:
  static DegradationCounters& instance();

  void reset();
  void record_full_cars(std::uint64_t n) {
    full_cars_.fetch_add(n, std::memory_order_relaxed);
  }
  void record_damaged_fallback(std::uint64_t n) {
    damaged_fallback_cars_.fetch_add(n, std::memory_order_relaxed);
  }
  void record_deadline_fallback(std::uint64_t n) {
    deadline_fallback_cars_.fetch_add(n, std::memory_order_relaxed);
  }
  void record_error_fallback(std::uint64_t n) {
    error_fallback_cars_.fetch_add(n, std::memory_order_relaxed);
  }
  void record_deadline_hit() {
    deadline_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_task_failures(std::uint64_t n) {
    task_failures_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Inference-runtime memory health, mirrored by the engine from
  /// tensor::WorkspaceCounters deltas after each forecast: arena epochs
  /// begun, epochs fully served from warm blocks (no growth), and raw
  /// block allocations. In steady state reused == epochs and block
  /// allocations stay flat — any sustained growth is an allocation
  /// regression on the serving hot path.
  void record_workspace(std::uint64_t epochs, std::uint64_t reused_epochs,
                        std::uint64_t block_allocs) {
    workspace_epochs_.fetch_add(epochs, std::memory_order_relaxed);
    workspace_reused_epochs_.fetch_add(reused_epochs,
                                       std::memory_order_relaxed);
    workspace_block_allocs_.fetch_add(block_allocs,
                                      std::memory_order_relaxed);
  }

  std::uint64_t full_cars() const {
    return full_cars_.load(std::memory_order_relaxed);
  }
  std::uint64_t damaged_fallback_cars() const {
    return damaged_fallback_cars_.load(std::memory_order_relaxed);
  }
  std::uint64_t deadline_fallback_cars() const {
    return deadline_fallback_cars_.load(std::memory_order_relaxed);
  }
  std::uint64_t error_fallback_cars() const {
    return error_fallback_cars_.load(std::memory_order_relaxed);
  }
  std::uint64_t deadline_hits() const {
    return deadline_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t task_failures() const {
    return task_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t fallback_cars() const {
    return damaged_fallback_cars() + deadline_fallback_cars() +
           error_fallback_cars();
  }
  std::uint64_t workspace_epochs() const {
    return workspace_epochs_.load(std::memory_order_relaxed);
  }
  std::uint64_t workspace_reused_epochs() const {
    return workspace_reused_epochs_.load(std::memory_order_relaxed);
  }
  std::uint64_t workspace_block_allocs() const {
    return workspace_block_allocs_.load(std::memory_order_relaxed);
  }

 private:
  DegradationCounters() = default;
  std::atomic<std::uint64_t> full_cars_{0}, damaged_fallback_cars_{0},
      deadline_fallback_cars_{0}, error_fallback_cars_{0}, deadline_hits_{0},
      task_failures_{0};
  std::atomic<std::uint64_t> workspace_epochs_{0},
      workspace_reused_epochs_{0}, workspace_block_allocs_{0};
};

struct KernelClassStats {
  std::uint64_t calls = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  double cpu_seconds = 0.0;
};

/// Per-kernel-class workload of one training step.
struct Workload {
  std::array<KernelClassStats, static_cast<std::size_t>(
                                   tensor::Kernel::kCount)>
      per_kernel{};
  std::size_t batch = 0;
  std::size_t samples = 0;  // batch (samples processed per step)
  double wall_seconds = 0.0;

  const KernelClassStats& kernel(tensor::Kernel k) const {
    return per_kernel[static_cast<std::size_t>(k)];
  }
  double cpu_us_per_sample() const {
    return samples == 0 ? 0.0
                        : wall_seconds * 1e6 / static_cast<double>(samples);
  }
};

/// Run `reps` instrumented training steps of a RankNet-sized LSTM
/// (2x40 hidden, encoder 60 / decoder 2) on synthetic data and return the
/// averaged per-step workload with CPU timings.
Workload measure_ranknet_workload(std::size_t batch_size, int reps = 3);

/// Analytic accelerator description.
struct DeviceSpec {
  std::string name;
  double peak_gflops = 50.0;      // dense-kernel (MatMul) peak
  double scalar_gflops = 5.0;     // pointwise-op peak
  double mem_bw_gbs = 50.0;       // memory bandwidth
  double overhead_us_per_call = 0.0;  // kernel launch / offload overhead
  double matmul_call_factor = 1.0;    // cuDNN fusion: fraction of calls left
  double pointwise_call_factor = 1.0;
  bool offload = false;  // hybrid: host runs what the device doesn't
};

/// Paper Table VIII devices (modeled).
DeviceSpec gpu_spec();
DeviceSpec gpu_cudnn_spec();
DeviceSpec ve_spec();

/// Predicted µs/sample of the workload on a modeled device.
double modeled_us_per_sample(const Workload& w, const DeviceSpec& spec);

/// Fig. 12 breakdown: fraction of walltime per category for a hybrid
/// host+device system (offload decided per kernel class by profitability).
struct HybridBreakdown {
  double matmul_mul_host = 0.0, matmul_mul_dev = 0.0;
  double pointwise_host = 0.0, pointwise_dev = 0.0;
  double other_host = 0.0, other_dev = 0.0;
  double data_move = 0.0;
  /// Fraction of the step's FLOPs executed on the accelerator (the paper's
  /// "work load offloaded").
  double offloaded_flop_fraction = 0.0;
  /// Total hybrid step time (seconds).
  double hybrid_seconds = 0.0;
  /// Fraction of hybrid walltime spent on the accelerator.
  double offloaded_fraction() const {
    return matmul_mul_dev + pointwise_dev + other_dev;
  }
};
HybridBreakdown hybrid_breakdown(const Workload& w, const DeviceSpec& spec);

/// Measured CPU roofline parameters of this machine (Fig. 11 ceilings).
struct CpuRoofline {
  double peak_gflops = 0.0;    // dense FMA peak (measured small dgemm)
  double scalar_gflops = 0.0;  // scalar add peak
  double dram_bw_gbs = 0.0;    // streaming triad bandwidth
};
CpuRoofline measure_cpu_roofline();

}  // namespace ranknet::core

#include "core/race_shard.hpp"

#include <stdexcept>
#include <string>

namespace ranknet::core {

RaceShard::RaceShard(std::size_t index,
                     std::shared_ptr<RaceForecaster> forecaster,
                     const ShardConfig& config,
                     std::shared_ptr<ForecastCache> shared_cache)
    : index_(index),
      forecaster_(std::move(forecaster)),
      driver_(config.driver_thread ? 1 : 0) {
  if (!forecaster_) {
    throw std::invalid_argument("RaceShard: null forecaster");
  }
  engine_ = std::make_shared<ParallelForecastEngine>(
      forecaster_, config.engine_threads, config.max_cars_per_task);
  if (shared_cache != nullptr) {
    cache_ = std::move(shared_cache);
  } else if (config.cache_capacity > 0) {
    cache_ = std::make_shared<ForecastCache>(config.cache_capacity,
                                             config.cache_stripes);
  }
  if (cache_ != nullptr) engine_->set_forecast_cache(cache_);

  const std::string prefix = "fleet.shard." + std::to_string(index_) + ".";
  auto& reg = obs::Registry::instance();
  forecasts_ = &reg.counter(prefix + "forecasts");
  jobs_ = &reg.counter(prefix + "jobs");
}

RaceSamples RaceShard::forecast(const telemetry::RaceLog& race, int origin_lap,
                                int horizon, int num_samples,
                                std::uint64_t base) {
  forecasts_->add(1);
  return engine_->forecast_with_base(race, origin_lap, horizon, num_samples,
                                     base);
}

}  // namespace ranknet::core

// Evaluation pipelines for the paper's two tasks (Section IV-D):
//   Task A — short-term rank forecasting (Table V, Figs. 2/8/9): forecast
//            `horizon` laps ahead from every origin; metrics per lap
//            category (All / Normal / PitStop-covered).
//   Task B — stint forecasting (Table VI): predict the change of rank
//            position between consecutive pit stops.
#pragma once

#include <memory>
#include <vector>

#include "core/baselines.hpp"
#include "core/forecaster.hpp"
#include "core/metrics.hpp"
#include "ml/regressor.hpp"

namespace ranknet::core {

struct TaskAConfig {
  int horizon = 2;
  int num_samples = 100;
  int origin_stride = 1;
  int min_origin = 10;
  /// "PitStop covered": the car pits within [origin+1-m, origin+horizon+m].
  int pit_margin = 1;
  std::uint64_t seed = 99;
  /// Worker threads for per-car sample fan-out (ParallelForecastEngine).
  /// 1 = run sequentially on the calling thread. Results are bit-identical
  /// for every value (see DESIGN.md "Parallel inference & determinism").
  int threads = 1;
};

struct MetricRow {
  double top1 = 0.0;
  double mae = 0.0;
  double risk50 = 0.0;
  double risk90 = 0.0;
  std::size_t count = 0;  // (car, origin) pairs
};

struct TaskAResult {
  MetricRow all;
  MetricRow normal;
  MetricRow pit_covered;
};

/// Evaluate one forecaster on one test race. Forecast quality is measured
/// at the final horizon lap of every origin, on jointly-sorted rank
/// positions (paper Section III-C).
TaskAResult evaluate_task_a(RaceForecaster& forecaster,
                            const telemetry::RaceLog& race,
                            const TaskAConfig& config);

/// Aggregate Task A over several races (weighted by pair counts).
TaskAResult evaluate_task_a(RaceForecaster& forecaster,
                            const std::vector<telemetry::RaceLog>& races,
                            const TaskAConfig& config);

// ---------------------------------------------------------------------
// Task B

/// Prediction of the rank-position change across one stint.
class StintPredictor {
 public:
  virtual ~StintPredictor() = default;
  virtual std::string name() const = 0;
  /// Sampled predictions of rank(p2) - rank(p1); deterministic predictors
  /// return one sample.
  virtual std::vector<double> predict_change(const telemetry::RaceLog& race,
                                             int car_id, int pit_lap,
                                             int next_pit_lap,
                                             util::Rng& rng) = 0;
};

/// Rolls a RaceForecaster across the stint (Algorithm 2 regressive
/// application) and reads the change at the next pit lap.
class ForecasterStintAdapter : public StintPredictor {
 public:
  ForecasterStintAdapter(RaceForecaster& forecaster, int num_samples);
  std::string name() const override { return forecaster_.name(); }
  std::vector<double> predict_change(const telemetry::RaceLog& race,
                                     int car_id, int pit_lap,
                                     int next_pit_lap,
                                     util::Rng& rng) override;

 private:
  RaceForecaster& forecaster_;
  int num_samples_;
  // One forecast serves every car of the same (race, origin, horizon).
  std::string cached_key_;
  RaceSamples cached_ranks_;
};

/// Pointwise ML regressor on stint features (the [30]-style baselines).
class RegressorStintPredictor : public StintPredictor {
 public:
  RegressorStintPredictor(std::string name,
                          std::shared_ptr<ml::Regressor> model);
  std::string name() const override { return name_; }

  /// Stint feature vector: [rank at pit, pit age, caution laps, lap/total,
  /// pit count so far, stint length].
  static constexpr std::size_t kFeatureDim = 6;
  static bool features_at(const telemetry::RaceLog& race, int car_id,
                          int pit_lap, int next_pit_lap,
                          std::span<double> out);

  /// Training rows (change targets) from a set of races.
  static MlDataset build_dataset(
      const std::vector<telemetry::RaceLog>& races, int min_stint);

  std::vector<double> predict_change(const telemetry::RaceLog& race,
                                     int car_id, int pit_lap,
                                     int next_pit_lap,
                                     util::Rng& rng) override;

 private:
  std::string name_;
  std::shared_ptr<ml::Regressor> model_;
};

/// CurRank for Task B: predicts zero change.
class ZeroChangeStintPredictor : public StintPredictor {
 public:
  std::string name() const override { return "CurRank"; }
  std::vector<double> predict_change(const telemetry::RaceLog&, int, int, int,
                                     util::Rng&) override {
    return {0.0};
  }
};

struct TaskBConfig {
  int num_samples = 32;
  int min_stint = 5;
  int min_origin = 10;
  std::uint64_t seed = 101;
};

struct TaskBResult {
  double sign_acc = 0.0;
  double mae = 0.0;
  double risk50 = 0.0;
  double risk90 = 0.0;
  std::size_t count = 0;
};

TaskBResult evaluate_task_b(StintPredictor& predictor,
                            const std::vector<telemetry::RaceLog>& races,
                            const TaskBConfig& config);

}  // namespace ranknet::core

// Shadow scoring and the champion/challenger promotion gate of the online
// learning loop (DESIGN.md "Online learning & promotion gates").
//
// A candidate model never reaches traffic on faith: the ShadowScorer runs
// champion and challenger over the same held-out probe window of recently
// ingested races and reduces each to a ShadowMetrics vector — NLL, MAE,
// prediction-failure rate, σ-saturation rate, probe latency. The
// ChampionChallengerGate is then a *pure function* of the two metric
// vectors: quality gates are deltas against the champion (promotion must be
// judged on the recent window, not all-time averages — model quality drifts
// as the underlying driver/car factors drift across a season), serving
// gates are absolute ceilings. Purity is what makes the gate property-
// testable: a challenger that dominates another on every axis can never be
// admitted less readily (tests/test_online_trainer.cpp hammers this).
//
// Latency is read through an injectable util::ClockFn so gate decisions are
// byte-reproducible under a scripted clock; with the production clock the
// latency gate defaults off (wall-clock gates flap on shared boxes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/forecaster.hpp"
#include "telemetry/replay_buffer.hpp"
#include "util/clock.hpp"

namespace ranknet::core {

/// One model's report card over a probe window. Every field is "lower is
/// better" except probe_points (the evidence count).
struct ShadowMetrics {
  std::size_t probe_points = 0;  // (car, step) pairs actually scored
  double nll = 0.0;   // mean Gaussian NLL of actuals under (μ̂, σ̂)
  double mae = 0.0;   // mean |median − actual|
  double prediction_failure_rate = 0.0;  // nonfinite / out-of-band medians
  double sigma_saturation_rate = 0.0;    // σ̂ blown past the saturation bound
  double latency_seconds = 0.0;          // clock delta across the probe

  /// Deterministic rendering (%.6g) for promote/rollback traces.
  std::string to_string() const;
};

struct ProbeConfig {
  /// Forecast origins tried per probe race; origins that do not fit the
  /// race (too early / past the end) are skipped.
  std::vector<int> origin_laps = {30, 45};
  int horizon = 5;
  int num_samples = 8;
  /// Base seed; the per-(race, origin) forecast rng derives from it via
  /// util::Rng::stream, so scores are independent of probe-window order.
  std::uint64_t seed = 0x0a11;
  /// Plausible rank band for the failure-rate gate.
  double min_rank = 0.0;
  double max_rank = 200.0;
  /// σ̂ floor used in the NLL (point forecasters have σ̂ = 0).
  double sigma_floor = 0.25;
  /// σ̂ at or above this counts as saturated — the forecast is too diffuse
  /// to rank cars with.
  double sigma_saturation = 64.0;
};

class ShadowScorer {
 public:
  explicit ShadowScorer(ProbeConfig config,
                        util::ClockFn clock = util::steady_clock_fn());

  /// Score one forecaster over the probe races. Scoring never throws: a
  /// forecaster that throws on a probe is reported as probe_points = 0 and
  /// prediction_failure_rate = 1 (the gate then refuses it).
  ShadowMetrics score(RaceForecaster& forecaster,
                      const telemetry::RaceWindow& probe) const;

  const ProbeConfig& config() const { return probe_; }

 private:
  ProbeConfig probe_;
  util::ClockFn clock_;
};

/// Promotion thresholds. Quality gates (nll/mae) are deltas challenger −
/// champion; serving gates (failure, saturation) are absolute; the latency
/// gate is a factor of the champion's probe latency (0 disables it).
struct OnlineGateConfig {
  double max_nll_delta = 0.0;
  double max_mae_delta = 0.0;
  double max_prediction_failure_rate = 0.0;
  double max_sigma_saturation_rate = 1.0;  // 1 = off
  double max_latency_factor = 0.0;         // 0 = off
  std::size_t min_probe_points = 1;
};

struct GateDecision {
  bool promote = false;
  /// First failing gate ("nll", "mae", "failure_rate", "saturation",
  /// "latency", "probe_points"), or "pass". Deterministic check order.
  std::string reason;
};

class ChampionChallengerGate {
 public:
  explicit ChampionChallengerGate(OnlineGateConfig config);

  /// Pure decision: no clocks, no RNG, no state. NaN in any challenger
  /// metric fails the corresponding gate (NaN never promotes).
  GateDecision evaluate(const ShadowMetrics& champion,
                        const ShadowMetrics& challenger) const;

  const OnlineGateConfig& config() const { return config_; }
  void set_config(OnlineGateConfig config) { config_ = config; }

 private:
  OnlineGateConfig config_;
};

}  // namespace ranknet::core

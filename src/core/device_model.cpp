#include "core/device_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/ar_model.hpp"
#include "tensor/kernels.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ranknet::core {

EngineCounters& EngineCounters::instance() {
  static EngineCounters counters;
  return counters;
}

EngineCounters::EngineCounters() {
  auto& reg = obs::Registry::instance();
  tasks_ = &reg.counter("engine.tasks");
  forecasts_ = &reg.counter("engine.forecasts");
  task_seconds_ = &reg.gauge("engine.task_seconds");
  wall_seconds_ = &reg.gauge("engine.wall_seconds");
}

void EngineCounters::reset() {
  tasks_->reset();
  forecasts_->reset();
  task_seconds_->reset();
  wall_seconds_->reset();
}

DegradationCounters& DegradationCounters::instance() {
  static DegradationCounters counters;
  return counters;
}

DegradationCounters::DegradationCounters() {
  auto& reg = obs::Registry::instance();
  full_cars_ = &reg.counter("degradation.full_cars");
  damaged_fallback_cars_ = &reg.counter("degradation.damaged_fallback_cars");
  deadline_fallback_cars_ =
      &reg.counter("degradation.deadline_fallback_cars");
  error_fallback_cars_ = &reg.counter("degradation.error_fallback_cars");
  deadline_hits_ = &reg.counter("degradation.deadline_hits");
  task_failures_ = &reg.counter("degradation.task_failures");
  workspace_epochs_ = &reg.counter("degradation.workspace_epochs");
  workspace_reused_epochs_ =
      &reg.counter("degradation.workspace_reused_epochs");
  workspace_block_allocs_ =
      &reg.counter("degradation.workspace_block_allocs");
}

void DegradationCounters::reset() {
  full_cars_->reset();
  damaged_fallback_cars_->reset();
  deadline_fallback_cars_->reset();
  error_fallback_cars_->reset();
  deadline_hits_->reset();
  task_failures_->reset();
  workspace_epochs_->reset();
  workspace_reused_epochs_->reset();
  workspace_block_allocs_->reset();
}

DecodeTreeCounters& DecodeTreeCounters::instance() {
  static DecodeTreeCounters counters;
  return counters;
}

DecodeTreeCounters::DecodeTreeCounters() {
  auto& reg = obs::Registry::instance();
  decodes_ = &reg.counter("decode_tree.decodes");
  rows_ = &reg.counter("decode_tree.rows");
  branches_ = &reg.counter("decode_tree.branches");
  shared_rows_ = &reg.counter("decode_tree.shared_rows");
}

void DecodeTreeCounters::reset() {
  decodes_->reset();
  rows_->reset();
  branches_->reset();
  shared_rows_->reset();
}

namespace {

using tensor::Kernel;

bool is_matmul_mul(Kernel k) {
  return k == Kernel::kMatMul || k == Kernel::kMul;
}
bool is_pointwise(Kernel k) {
  return k == Kernel::kAdd || k == Kernel::kSigmoid || k == Kernel::kTanh ||
         k == Kernel::kSoftmax;
}

/// Device time for one kernel class: roofline execution time plus
/// per-call overhead, with cuDNN-style call-count reduction.
double class_device_seconds(const KernelClassStats& s, Kernel k,
                            const DeviceSpec& spec) {
  if (s.calls == 0) return 0.0;
  const double peak =
      is_matmul_mul(k) ? spec.peak_gflops : spec.scalar_gflops;
  const double compute = static_cast<double>(s.flops) / (peak * 1e9);
  const double memory =
      static_cast<double>(s.bytes) / (spec.mem_bw_gbs * 1e9);
  const double call_factor = k == Kernel::kMatMul
                                 ? spec.matmul_call_factor
                                 : (is_pointwise(k) || k == Kernel::kMul
                                        ? spec.pointwise_call_factor
                                        : 1.0);
  const double calls = static_cast<double>(s.calls) * call_factor;
  return std::max(compute, memory) + calls * spec.overhead_us_per_call * 1e-6;
}

}  // namespace

Workload measure_ranknet_workload(std::size_t batch_size, int reps) {
  // RankNet-sized network on synthetic data (the real feature pipeline is
  // irrelevant for kernel accounting).
  SeqModelConfig config;
  config.cov_dim = 9;
  config.embed_dim = 4;
  config.vocab = 40;
  LstmSeqModel model(config);

  const std::size_t window = 62;  // encoder 60 + decoder 2
  util::Rng rng(42);
  std::vector<features::SeqExample> examples(batch_size);
  for (auto& ex : examples) {
    ex.car_index = static_cast<int>(rng.uniform_int(0, 39));
    ex.target.resize(window);
    ex.covariates.assign(window, std::vector<double>(config.cov_dim));
    for (std::size_t t = 0; t < window; ++t) {
      ex.target[t] = rng.uniform(1.0, 33.0);
      for (auto& c : ex.covariates[t]) c = rng.uniform(0.0, 1.0);
    }
  }
  std::vector<const features::SeqExample*> ptrs;
  for (const auto& ex : examples) ptrs.push_back(&ex);
  const auto batch = model.make_batch(ptrs, 2);

  auto& counters = tensor::OpCounters::instance();
  // Warm-up step (allocations, caches).
  model.train_step(batch);
  model.zero_grad();

  counters.reset();
  counters.set_profiling(true);
  util::Timer timer;
  for (int r = 0; r < reps; ++r) {
    model.train_step(batch);
    model.zero_grad();
  }
  const double wall = timer.seconds() / reps;
  counters.set_profiling(false);

  Workload w;
  w.batch = batch_size;
  w.samples = batch_size;
  w.wall_seconds = wall;
  for (std::size_t k = 0; k < w.per_kernel.size(); ++k) {
    const auto& s = counters.stats(static_cast<Kernel>(k));
    w.per_kernel[k].calls = s.calls / static_cast<std::uint64_t>(reps);
    w.per_kernel[k].flops = s.flops / static_cast<std::uint64_t>(reps);
    w.per_kernel[k].bytes = s.bytes / static_cast<std::uint64_t>(reps);
    w.per_kernel[k].cpu_seconds = s.seconds / reps;
  }
  counters.reset();
  return w;
}

DeviceSpec gpu_spec() {
  DeviceSpec s;
  s.name = "GPU";  // V100-SXM2: op-by-op LSTM implementation
  s.peak_gflops = 7800.0;
  s.scalar_gflops = 1200.0;
  s.mem_bw_gbs = 900.0;
  s.overhead_us_per_call = 9.0;  // kernel launch + host driver latency
  return s;
}

DeviceSpec gpu_cudnn_spec() {
  DeviceSpec s = gpu_spec();
  s.name = "GPU cuDNN";
  // Paper profiling: cuDNN leaves 39% of MatMul calls and 1% of the scalar
  // (product/sum/logistic/tanh) calls via fusion and streamed GEMMs.
  s.matmul_call_factor = 0.39;
  s.pointwise_call_factor = 0.01;
  s.overhead_us_per_call = 6.0;
  return s;
}

DeviceSpec ve_spec() {
  DeviceSpec s;
  s.name = "VE";  // NEC SX-Aurora Vector Engine
  s.peak_gflops = 2450.0;
  s.scalar_gflops = 300.0;
  s.mem_bw_gbs = 1200.0;
  s.overhead_us_per_call = 7.0;
  s.offload = true;
  return s;
}

double modeled_us_per_sample(const Workload& w, const DeviceSpec& spec) {
  if (spec.offload) {
    // Hybrid host+device execution with the size-threshold offload rule.
    const auto b = hybrid_breakdown(w, spec);
    return w.samples == 0
               ? 0.0
               : b.hybrid_seconds * 1e6 / static_cast<double>(w.samples);
  }
  double total = 0.0;
  for (std::size_t k = 0; k < w.per_kernel.size(); ++k) {
    const auto kernel = static_cast<Kernel>(k);
    const auto& s = w.per_kernel[k];
    if (s.calls == 0) continue;
    total += class_device_seconds(s, kernel, spec);
  }
  return w.samples == 0 ? 0.0
                        : total * 1e6 / static_cast<double>(w.samples);
}

HybridBreakdown hybrid_breakdown(const Workload& w, const DeviceSpec& spec) {
  // Offload rule modeled after NEC's TensorFlow-VE backend: a kernel class
  // moves to the accelerator only when its per-call operand set is large
  // enough for vector execution to amortize the offload overhead. Weights
  // stay resident on the device, so the PCIe transfer covers only a
  // fraction of the operand bytes (activations in/out).
  constexpr double kOffloadElemsPerCall = 1.0e5;  // operand elements
  constexpr double kTransferFraction = 0.05;      // non-resident bytes
  constexpr double kPcieGbs = 12.0;

  HybridBreakdown b;
  double total = 0.0;
  std::array<double, static_cast<std::size_t>(Kernel::kCount)> seconds{};
  std::array<bool, static_cast<std::size_t>(Kernel::kCount)> on_device{};
  double data_move = 0.0;
  double flops_total = 0.0, flops_dev = 0.0;
  for (std::size_t k = 0; k < w.per_kernel.size(); ++k) {
    const auto kernel = static_cast<Kernel>(k);
    const auto& s = w.per_kernel[k];
    if (s.calls == 0) continue;
    flops_total += static_cast<double>(s.flops);
    const double elems_per_call = static_cast<double>(s.bytes) / 8.0 /
                                  static_cast<double>(s.calls);
    const bool offloadable =
        (is_matmul_mul(kernel) || is_pointwise(kernel)) &&
        elems_per_call >= kOffloadElemsPerCall;
    if (offloadable) {
      on_device[k] = true;
      seconds[k] = class_device_seconds(s, kernel, spec);
      data_move += kTransferFraction * static_cast<double>(s.bytes) /
                   (kPcieGbs * 1e9);
      flops_dev += static_cast<double>(s.flops);
    } else {
      seconds[k] = s.cpu_seconds;
    }
    total += seconds[k];
  }
  total += data_move;
  if (total <= 0.0) return b;
  for (std::size_t k = 0; k < seconds.size(); ++k) {
    const auto kernel = static_cast<Kernel>(k);
    const double frac = seconds[k] / total;
    if (is_matmul_mul(kernel)) {
      (on_device[k] ? b.matmul_mul_dev : b.matmul_mul_host) += frac;
    } else if (is_pointwise(kernel)) {
      (on_device[k] ? b.pointwise_dev : b.pointwise_host) += frac;
    } else {
      (on_device[k] ? b.other_dev : b.other_host) += frac;
    }
  }
  b.data_move = data_move / total;
  b.offloaded_flop_fraction =
      flops_total > 0.0 ? flops_dev / flops_total : 0.0;
  b.hybrid_seconds = total;
  return b;
}

CpuRoofline measure_cpu_roofline() {
  CpuRoofline r;
  util::Rng rng(7);
  // Dense peak: repeated small GEMM that fits in cache.
  {
    tensor::Matrix a = tensor::Matrix::randn(128, 128, rng);
    tensor::Matrix b = tensor::Matrix::randn(128, 128, rng);
    tensor::Matrix c(128, 128);
    tensor::gemm(1.0, a, false, b, false, 0.0, c);  // warm-up
    util::Timer t;
    const int reps = 40;
    for (int i = 0; i < reps; ++i) {
      tensor::gemm(1.0, a, false, b, false, 0.0, c);
    }
    r.peak_gflops = 2.0 * 128.0 * 128.0 * 128.0 * reps / t.seconds() * 1e-9;
  }
  // Scalar add peak: dependent scalar chain is pessimal; use simple loop.
  {
    std::vector<double> x(4096, 1.0);
    double acc = 0.0;
    util::Timer t;
    const int reps = 2000;
    for (int i = 0; i < reps; ++i) {
      for (double v : x) acc += v;
    }
    r.scalar_gflops = 4096.0 * reps / t.seconds() * 1e-9;
    if (acc < 0) r.scalar_gflops = 0;  // keep `acc` alive
  }
  // DRAM bandwidth: triad over a buffer much larger than L3.
  {
    const std::size_t n = 1 << 24;  // 128 MiB per array (doubles)
    std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.0);
    util::Timer t;
    const int reps = 3;
    for (int i = 0; i < reps; ++i) {
      for (std::size_t j = 0; j < n; ++j) c[j] = a[j] + 0.5 * b[j];
    }
    r.dram_bw_gbs =
        3.0 * static_cast<double>(n) * 8.0 * reps / t.seconds() * 1e-9;
  }
  return r;
}

}  // namespace ranknet::core

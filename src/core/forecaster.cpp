#include "core/forecaster.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace ranknet::core {

RaceSamples sort_to_ranks(const RaceSamples& raw) {
  if (raw.empty()) return {};
  const std::size_t samples = raw.begin()->second.rows();
  const std::size_t horizon = raw.begin()->second.cols();

  std::vector<int> car_ids;
  for (const auto& [car, m] : raw) {
    // Cross-car sorting reads every matrix at (s, h): a ragged input would
    // index past the short matrices — unchecked in release builds, i.e.
    // silent garbage ranks. Refuse it loudly instead (the engine's
    // fallback merge broadcasts point forecasts to the full sample count).
    if (m.rows() != samples || m.cols() != horizon) {
      throw std::invalid_argument(
          "sort_to_ranks: all cars must have the same (samples x horizon) "
          "shape");
    }
    car_ids.push_back(car);
  }

  RaceSamples ranks;
  for (int car : car_ids) {
    ranks[car] = tensor::Matrix(samples, horizon);
  }

  std::vector<std::pair<double, std::size_t>> order(car_ids.size());
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t h = 0; h < horizon; ++h) {
      for (std::size_t c = 0; c < car_ids.size(); ++c) {
        order[c] = {raw.at(car_ids[c])(s, h), c};
      }
      std::stable_sort(order.begin(), order.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        ranks[car_ids[order[pos].second]](s, h) =
            static_cast<double>(pos) + 1.0;
      }
    }
  }
  return ranks;
}

std::vector<double> median_trajectory(const tensor::Matrix& samples) {
  std::vector<double> out(samples.cols());
  std::vector<double> column(samples.rows());
  for (std::size_t h = 0; h < samples.cols(); ++h) {
    for (std::size_t s = 0; s < samples.rows(); ++s) {
      column[s] = samples(s, h);
    }
    out[h] = util::median(column);
  }
  return out;
}

double sample_quantile(const tensor::Matrix& samples, std::size_t lap_idx,
                       double q) {
  std::vector<double> column(samples.rows());
  for (std::size_t s = 0; s < samples.rows(); ++s) {
    column[s] = samples(s, lap_idx);
  }
  return util::quantile(column, q);
}

}  // namespace ranknet::core

#include "core/registry.hpp"

#include <cstdlib>
#include <filesystem>

#include "nn/serialize.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace ranknet::core {

namespace {

std::vector<telemetry::RaceLog> all_train_races(const sim::EventDataset& ds) {
  return ds.train;
}

}  // namespace

ZooConfig::ZooConfig() : train(default_train_config()) {
  if (const char* env = std::getenv("RANKNET_ARTIFACTS");
      env != nullptr && env[0] != '\0') {
    artifacts_dir = env;
  } else {
    artifacts_dir = "artifacts";
  }
}

ModelZoo::ModelZoo(ZooConfig config) : config_(std::move(config)) {
  std::filesystem::create_directories(config_.artifacts_dir);
}

features::WindowConfig ModelZoo::ranknet_window_config() {
  features::WindowConfig w;
  w.encoder_length = 60;  // Fig. 7 step 2
  w.decoder_length = 2;
  w.change_weight = 9.0;  // Fig. 7 step 1
  w.covariates.race_status = true;
  w.covariates.age_features = true;
  w.covariates.context_features = true;  // Fig. 7 step 3
  w.covariates.shift_features = true;    // Fig. 7 step 4
  w.covariates.shift = 2;
  w.stride = 2;
  return w;
}

features::WindowConfig ModelZoo::deepar_window_config() {
  auto w = ranknet_window_config();
  w.covariates.race_status = false;
  w.covariates.age_features = false;
  w.covariates.context_features = false;
  w.covariates.shift_features = false;
  return w;
}

features::WindowConfig ModelZoo::joint_window_config() {
  auto w = ranknet_window_config();
  // Race status stays in the window rows (it becomes the aux target dims),
  // everything else is dropped: the Joint model gets no known-future inputs.
  w.covariates.race_status = true;
  w.covariates.age_features = false;
  w.covariates.context_features = false;
  w.covariates.shift_features = false;
  return w;
}

std::string ModelZoo::window_key(const features::WindowConfig& w) {
  return util::format("w%d-%d-%.1f-%d|%d%d%d%d-%d", w.encoder_length,
                      w.decoder_length, w.change_weight, w.stride,
                      w.covariates.race_status ? 1 : 0,
                      w.covariates.age_features ? 1 : 0,
                      w.covariates.context_features ? 1 : 0,
                      w.covariates.shift_features ? 1 : 0,
                      w.covariates.shift);
}

void ModelZoo::split_validation(const sim::EventDataset& ds,
                                std::vector<telemetry::RaceLog>& train,
                                std::vector<telemetry::RaceLog>& val) {
  train = ds.train;
  val = ds.validation;
  if (val.empty() && train.size() > 1) {
    val.push_back(train.back());
    train.pop_back();
  }
}

std::string ModelZoo::cache_path(const std::string& event,
                                 const std::string& key) const {
  // The simulator version ties cached weights to the data they were fitted
  // on; bumping it invalidates every stale model at once.
  const auto full_key =
      util::format("v%d|%llu|%s", sim::kSimulatorVersion,
                   static_cast<unsigned long long>(sim::kDefaultDatasetSeed),
                   key.c_str());
  return util::format("%s/%s-%016llx.bin", config_.artifacts_dir.c_str(),
                      event.c_str(),
                      static_cast<unsigned long long>(util::fnv1a(full_key)));
}

namespace {

/// Non-Indy500 events appear only in the generalization study (Table VII)
/// and carry less dynamic variety (fewer cautions and pit cycles), so their
/// models train on a reduced budget to keep the single-core bench suite
/// within minutes. Indy500 — the paper's primary benchmark — keeps the full
/// budget.
TrainConfig event_train_config(const TrainConfig& base,
                               const std::string& event) {
  TrainConfig cfg = base;
  if (event != "Indy500") {
    cfg.max_windows = std::min<std::size_t>(cfg.max_windows, 2500);
    cfg.max_epochs = std::min(cfg.max_epochs, 10);
  }
  return cfg;
}

/// Generic cached train-or-load for either sequence model type. Models
/// that carry an int8 activation calibration (LstmSeqModel) round-trip it
/// through the v3 artifact; others use the plain v2 format.
template <typename Model, typename TrainFn>
TrainStats load_or_train(Model& model, const std::string& path,
                         TrainFn&& train_fn) {
  if (std::filesystem::exists(path)) {
    tensor::quant::Calibration calib;
    if (util::Status s = nn::try_load_params(path, model.params(), &calib);
        !s.ok()) {
      throw std::runtime_error("load_params: " + s.to_string());
    }
    if constexpr (requires { model.set_calibration(std::move(calib)); }) {
      model.set_calibration(std::move(calib));
    }
    util::log_info("loaded cached model: " + path);
    return {};
  }
  TrainStats stats = train_fn();
  bool saved = false;
  if constexpr (requires { model.calibration(); }) {
    if (!model.calibration().empty()) {
      nn::save_params(path, model.params(), model.calibration());
      saved = true;
    }
  }
  if (!saved) nn::save_params(path, model.params());
  util::log_info(util::format("trained in %.1fs, cached to %s", stats.seconds,
                              path.c_str()));
  return stats;
}

}  // namespace

ModelZoo::LstmBundle ModelZoo::rank_model(const sim::EventDataset& ds) {
  LstmBundle b;
  b.wcfg = ranknet_window_config();
  std::vector<telemetry::RaceLog> train, val;
  split_validation(ds, train, val);
  b.vocab = features::CarVocab(all_train_races(ds));

  SeqModelConfig net;
  net.cov_dim = b.wcfg.covariates.dim();
  net.vocab = b.vocab.size();
  b.model = std::make_shared<LstmSeqModel>(net);
  b.model->set_scaler(fit_rank_scaler(train));

  const auto tcfg = event_train_config(config_.train, ds.event);
  const auto path = cache_path(
      ds.event, "rank|" + net.cache_key() + "|" + window_key(b.wcfg) + "|" +
                    tcfg.cache_key());
  b.stats = load_or_train(*b.model, path, [&] {
    return train_sequence_model(*b.model, train, val, b.vocab, b.wcfg, tcfg);
  });
  return b;
}

ModelZoo::LstmBundle ModelZoo::deepar_model(const sim::EventDataset& ds) {
  LstmBundle b;
  b.wcfg = deepar_window_config();
  std::vector<telemetry::RaceLog> train, val;
  split_validation(ds, train, val);
  b.vocab = features::CarVocab(all_train_races(ds));

  SeqModelConfig net;
  net.cov_dim = 0;
  net.vocab = b.vocab.size();
  b.model = std::make_shared<LstmSeqModel>(net);
  b.model->set_scaler(fit_rank_scaler(train));

  const auto path = cache_path(
      ds.event, "deepar|" + net.cache_key() + "|" + window_key(b.wcfg) + "|" +
                    config_.train.cache_key());
  b.stats = load_or_train(*b.model, path, [&] {
    return train_sequence_model(*b.model, train, val, b.vocab, b.wcfg,
                                config_.train);
  });
  return b;
}

ModelZoo::LstmBundle ModelZoo::joint_model(const sim::EventDataset& ds) {
  LstmBundle b;
  b.wcfg = joint_window_config();
  std::vector<telemetry::RaceLog> train, val;
  split_validation(ds, train, val);
  b.vocab = features::CarVocab(all_train_races(ds));

  SeqModelConfig net;
  net.cov_dim = 0;
  net.target_dim = 3;  // [Rank, TrackStatus, LapStatus]
  net.vocab = b.vocab.size();
  b.model = std::make_shared<LstmSeqModel>(net);
  b.model->set_scaler(fit_rank_scaler(train));

  const auto tcfg = event_train_config(config_.train, ds.event);
  const auto path = cache_path(
      ds.event, "joint|" + net.cache_key() + "|" + window_key(b.wcfg) + "|" +
                    tcfg.cache_key());
  b.stats = load_or_train(*b.model, path, [&] {
    return train_sequence_model(*b.model, train, val, b.vocab, b.wcfg, tcfg);
  });
  return b;
}

ModelZoo::TransformerBundle ModelZoo::transformer_model(
    const sim::EventDataset& ds) {
  TransformerBundle b;
  b.wcfg = ranknet_window_config();
  // Attention is O(T^2): a shorter encoder keeps the Transformer's training
  // budget comparable to the LSTM's (accuracy is insensitive; see Fig. 9).
  b.wcfg.encoder_length = 30;
  std::vector<telemetry::RaceLog> train, val;
  split_validation(ds, train, val);
  b.vocab = features::CarVocab(all_train_races(ds));

  TransformerConfig net;
  net.cov_dim = b.wcfg.covariates.dim();
  net.vocab = b.vocab.size();
  b.model = std::make_shared<TransformerSeqModel>(net);
  b.model->set_scaler(fit_rank_scaler(train));

  // The quadratic attention cost makes Transformer epochs several times
  // more expensive than LSTM ones; with the shorter context the model also
  // saturates on fewer windows, so its budget is capped separately.
  TrainConfig tf_train = event_train_config(config_.train, ds.event);
  tf_train.max_windows = std::min<std::size_t>(tf_train.max_windows, 2500);
  tf_train.max_epochs = std::min(tf_train.max_epochs, 10);

  const auto path = cache_path(
      ds.event, "tf|" + net.cache_key() + "|" + window_key(b.wcfg) + "|" +
                    tf_train.cache_key());
  b.stats = load_or_train(*b.model, path, [&] {
    return train_transformer_model(*b.model, train, val, b.vocab, b.wcfg,
                                   tf_train);
  });
  return b;
}

ModelZoo::LstmBundle ModelZoo::custom_rank_model(
    const sim::EventDataset& ds, const features::WindowConfig& wcfg,
    const TrainConfig& tcfg) {
  LstmBundle b;
  b.wcfg = wcfg;
  std::vector<telemetry::RaceLog> train, val;
  split_validation(ds, train, val);
  b.vocab = features::CarVocab(all_train_races(ds));

  SeqModelConfig net;
  net.cov_dim = wcfg.covariates.dim();
  net.vocab = b.vocab.size();
  b.model = std::make_shared<LstmSeqModel>(net);
  b.model->set_scaler(fit_rank_scaler(train));

  const auto path = cache_path(
      ds.event, "rank|" + net.cache_key() + "|" + window_key(wcfg) + "|" +
                    tcfg.cache_key());
  b.stats = load_or_train(*b.model, path, [&] {
    return train_sequence_model(*b.model, train, val, b.vocab, wcfg, tcfg);
  });
  return b;
}

std::shared_ptr<PitModel> ModelZoo::pit_model(const sim::EventDataset& ds) {
  PitModelConfig cfg;
  auto model = std::make_shared<PitModel>(cfg);
  const auto data = model->build_training_data(ds.train);
  // The target scaler is deterministic given the dataset; recompute it.
  features::StandardScaler scaler;
  scaler.fit(data.y);
  model->set_scaler(scaler);

  const auto path = cache_path(ds.event, "pit|" + cfg.cache_key());
  if (std::filesystem::exists(path)) {
    nn::load_params(path, model->params());
  } else {
    model->fit(data);
    nn::save_params(path, model->params());
  }
  return model;
}

std::unique_ptr<RankNetForecaster> ModelZoo::ranknet_mlp(
    const sim::EventDataset& ds) {
  auto bundle = rank_model(ds);
  return std::make_unique<RankNetForecaster>(
      bundle.model, pit_model(ds), bundle.vocab, bundle.wcfg.covariates,
      StatusSource::kPitModel, "RankNet-MLP");
}

std::unique_ptr<RankNetForecaster> ModelZoo::ranknet_oracle(
    const sim::EventDataset& ds) {
  auto bundle = rank_model(ds);
  return std::make_unique<RankNetForecaster>(
      bundle.model, nullptr, bundle.vocab, bundle.wcfg.covariates,
      StatusSource::kOracle, "RankNet-Oracle");
}

std::unique_ptr<RankNetForecaster> ModelZoo::ranknet_joint(
    const sim::EventDataset& ds) {
  auto bundle = joint_model(ds);
  return std::make_unique<RankNetForecaster>(
      bundle.model, nullptr, bundle.vocab, bundle.wcfg.covariates,
      StatusSource::kJoint, "RankNet-Joint");
}

std::unique_ptr<RankNetForecaster> ModelZoo::deepar(
    const sim::EventDataset& ds) {
  auto bundle = deepar_model(ds);
  return std::make_unique<RankNetForecaster>(
      bundle.model, nullptr, bundle.vocab, bundle.wcfg.covariates,
      StatusSource::kOracle, "DeepAR");
}

std::unique_ptr<TransformerForecaster> ModelZoo::transformer_mlp(
    const sim::EventDataset& ds) {
  auto bundle = transformer_model(ds);
  return std::make_unique<TransformerForecaster>(
      bundle.model, pit_model(ds), bundle.vocab, bundle.wcfg.covariates,
      StatusSource::kPitModel, "Transformer-MLP");
}

std::unique_ptr<TransformerForecaster> ModelZoo::transformer_oracle(
    const sim::EventDataset& ds) {
  auto bundle = transformer_model(ds);
  return std::make_unique<TransformerForecaster>(
      bundle.model, nullptr, bundle.vocab, bundle.wcfg.covariates,
      StatusSource::kOracle, "Transformer-Oracle");
}

tensor::quant::Calibration calibrate_forecaster(
    RaceForecaster& forecaster, const telemetry::RaceLog& probe,
    int origin_lap, int horizon, int num_samples, std::uint64_t seed) {
  tensor::quant::recording_begin();
  util::Rng rng(seed);
  try {
    forecaster.forecast(probe, origin_lap, horizon, num_samples, rng);
  } catch (...) {
    tensor::quant::recording_end();
    throw;
  }
  tensor::quant::Calibration calib = tensor::quant::recording_end();
  tensor::quant::set_activation_calibration(calib);
  return calib;
}

}  // namespace ranknet::core

// OnlineTrainer: the background champion/challenger training loop.
//
// Each step() pulls two disjoint windows from the replay buffer — the
// newest `train_window` races to fit on, and the `probe_window` races just
// before them as a held-out probe — fits a candidate through a pluggable
// CandidateFitter (affine refit, incremental LSTM update, ...), saves the
// candidate as a checksummed v3 artifact, shadow-scores champion and
// candidate on the probe, and asks the ChampionChallengerGate whether to
// promote. Promotion goes through an abstract PromotionTarget (in serving
// builds, serve::RegistryPromotionTarget wraps the ModelRegistry — core
// cannot link serve, so the dependency points this way). Every promotion
// opens a probation of `probation_steps` further steps during which the
// displaced champion is re-scored against the new one on each fresh probe
// window; if the displaced model is clearly better (MAE margin), the
// trainer rolls the target back.
//
// Determinism contract: with a seeded fitter, scripted clock, and a fixed
// ingest sequence, the full promote/rollback trace (trace_string()) is
// byte-identical across runs and across serving thread counts — the soak
// test (tests/test_online_soak.cpp) asserts exactly that. The trace
// therefore never embeds wall-clock times or filesystem paths.
//
// Threading: step() may be driven synchronously (tests) or from the
// background worker (start()/notify()/stop()). The worker runs the same
// step() under the same mutex, so an async run's trace equals the sync
// trace for the same notify count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/online_gate.hpp"
#include "telemetry/replay_buffer.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace ranknet::obs {
class Counter;
class Gauge;
}  // namespace ranknet::obs

namespace ranknet::core {

/// A fitted challenger: the in-memory forecaster to shadow-score, the v3
/// artifact it was serialized to (what the PromotionTarget installs), and a
/// deterministic one-line fit summary for the trace.
struct FittedCandidate {
  std::shared_ptr<RaceForecaster> forecaster;
  std::string artifact_path;
  std::string summary;
};

/// Fits one candidate on a train window. `seed` is derived per fit attempt
/// from the trainer seed; `artifact_path` is where the fitter must emit the
/// packed-weight artifact (nn::save_params v3). Returning a non-OK Result
/// books a fit failure and skips the step.
using CandidateFitter = std::function<util::Result<FittedCandidate>(
    const telemetry::RaceWindow& train, std::uint64_t seed,
    const std::string& artifact_path)>;

/// Where promoted candidates go. Implementations install the artifact into
/// serving (registry swap) and must be all-or-nothing: on a non-OK Result
/// the previous champion keeps serving. Returns the installed version.
class PromotionTarget {
 public:
  virtual ~PromotionTarget() = default;
  virtual util::Result<std::uint64_t> promote(
      const std::string& artifact_path) = 0;
  virtual util::Result<std::uint64_t> rollback(const std::string& reason) = 0;
};

struct OnlineTrainerConfig {
  /// Newest races fitted on; the `probe_window` races before them are the
  /// held-out probe. A step with fewer than train_window + probe_window
  /// races buffered is skipped (not an error — the feed is still warming).
  std::size_t train_window = 4;
  std::size_t probe_window = 2;
  ProbeConfig probe;
  OnlineGateConfig gate;
  /// Probation: steps after a promotion during which the displaced champion
  /// is re-scored; rollback fires when displaced MAE + margin < champion
  /// MAE on the fresh probe.
  std::size_t probation_steps = 2;
  double rollback_mae_margin = 0.5;
  /// Directory candidate artifacts are written into (must exist).
  std::string artifact_dir = ".";
  std::uint64_t seed = 0x70a1;
};

/// One trace line per step. `version` is the target's version after the
/// action (0 when the action installed nothing).
struct TraceEvent {
  enum class Action {
    kSkipped,        // not enough buffered races
    kFitFailed,      // fitter returned an error
    kRejectedGate,   // gate said no
    kRejectedTarget, // gate said yes, target.promote failed
    kPromoted,
    kRolledBack,
  };
  std::uint64_t step = 0;
  Action action = Action::kSkipped;
  std::uint64_t version = 0;
  std::string detail;
};

const char* trace_action_name(TraceEvent::Action action);

class OnlineTrainer {
 public:
  /// `champion_view` yields the forecaster currently serving (the probe
  /// opponent); in serving builds this is the registry's active engine, so
  /// champion scores inherit the engine's thread-count invariance.
  OnlineTrainer(OnlineTrainerConfig config, telemetry::ReplayBuffer& replay,
                CandidateFitter fitter, PromotionTarget& target,
                std::function<std::shared_ptr<RaceForecaster>()> champion_view);
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Swap the time source feeding both shadow scorers (tests script it).
  void set_clock(util::ClockFn clock);

  /// Run one synchronous train/score/gate step and return its trace event.
  TraceEvent step();

  /// Background mode: start() spawns the worker, notify() enqueues one
  /// step (steps never coalesce — N notifies run N steps, so async traces
  /// match a sync loop), stop() drains and joins.
  void start();
  void notify();
  void stop();

  std::vector<TraceEvent> trace() const;
  /// Deterministic rendering of the full trace, one line per step — the
  /// byte-exactness witness the soak test compares across thread counts.
  std::string trace_string() const;

  /// Steps remaining in the current probation window (0 = not on probation).
  std::size_t probation_remaining() const;

  const OnlineTrainerConfig& config() const { return config_; }
  /// Live gate handle (the soak test loosens/re-tightens thresholds).
  ChampionChallengerGate& gate() { return gate_; }

 private:
  TraceEvent step_locked();
  void worker_main();
  TraceEvent book(TraceEvent event);

  OnlineTrainerConfig config_;
  telemetry::ReplayBuffer& replay_;
  CandidateFitter fitter_;
  PromotionTarget& target_;
  std::function<std::shared_ptr<RaceForecaster>()> champion_view_;
  ChampionChallengerGate gate_;
  util::ClockFn clock_;

  mutable std::mutex mutex_;
  std::uint64_t steps_run_ = 0;
  std::uint64_t fits_attempted_ = 0;
  std::vector<TraceEvent> trace_;
  // Probation state: the forecaster displaced by the last promotion, kept
  // alive for re-scoring until probation closes or rollback restores it.
  std::shared_ptr<RaceForecaster> displaced_;
  std::size_t probation_remaining_ = 0;

  // Background worker: a pending-step count, not a flag, so notifies are
  // never lost or merged.
  std::thread worker_;
  std::condition_variable cv_;
  std::size_t pending_steps_ = 0;
  bool stopping_ = false;
  bool worker_running_ = false;

  // serve.online.* handles, resolved once at construction.
  obs::Counter* c_steps_;
  obs::Counter* c_skipped_;
  obs::Counter* c_fit_failures_;
  obs::Counter* c_fitted_;
  obs::Counter* c_rejected_gate_;
  obs::Counter* c_rejected_target_;
  obs::Counter* c_promoted_;
  obs::Counter* c_rolled_back_;
  obs::Counter* c_probation_checks_;
  obs::Counter* c_probe_points_;
  obs::Gauge* g_champion_version_;
};

}  // namespace ranknet::core

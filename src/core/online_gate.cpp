#include "core/online_gate.hpp"

#include <cmath>
#include <numbers>
#include <utility>

#include "util/string_util.hpp"

namespace ranknet::core {

std::string ShadowMetrics::to_string() const {
  return util::format(
      "points=%zu nll=%.6g mae=%.6g fail=%.6g sat=%.6g lat=%.6g",
      probe_points, nll, mae, prediction_failure_rate, sigma_saturation_rate,
      latency_seconds);
}

ShadowScorer::ShadowScorer(ProbeConfig config, util::ClockFn clock)
    : probe_(std::move(config)), clock_(std::move(clock)) {}

ShadowMetrics ShadowScorer::score(RaceForecaster& forecaster,
                                  const telemetry::RaceWindow& probe) const {
  // Exactly two clock reads per score, in every path — a scripted clock can
  // therefore assign candidate/champion latencies by call position.
  const double t0 = clock_();

  std::size_t points = 0, failures = 0, saturated = 0;
  double abs_err_sum = 0.0, nll_sum = 0.0;
  bool threw = false;

  for (std::size_t race_idx = 0; race_idx < probe.size() && !threw;
       ++race_idx) {
    const telemetry::RaceLog& race = *probe[race_idx];
    for (int origin : probe_.origin_laps) {
      if (origin < 1 || origin >= race.num_laps()) continue;
      RaceSamples samples;
      try {
        util::Rng rng = util::Rng::stream(
            probe_.seed, race_idx, static_cast<std::uint64_t>(origin));
        samples = forecaster.forecast(race, origin, probe_.horizon,
                                      probe_.num_samples, rng);
      } catch (const std::exception&) {
        threw = true;
        break;
      }
      for (const auto& [car_id, mat] : samples) {
        const auto& series = race.car(car_id).rank;
        const auto cols = static_cast<std::size_t>(mat.cols());
        const auto rows = static_cast<std::size_t>(mat.rows());
        for (std::size_t h = 0; h < cols; ++h) {
          // Step h predicts lap origin + h + 1 -> series index origin + h.
          const std::size_t lap_idx = static_cast<std::size_t>(origin) + h;
          if (lap_idx >= series.size()) continue;  // car retired: no truth
          const double actual = series[lap_idx];
          ++points;

          double mean = 0.0;
          for (std::size_t s = 0; s < rows; ++s) mean += mat(s, h);
          mean /= static_cast<double>(rows);
          double var = 0.0;
          for (std::size_t s = 0; s < rows; ++s) {
            const double d = mat(s, h) - mean;
            var += d * d;
          }
          var /= static_cast<double>(rows);
          const double sigma_raw = std::sqrt(var);
          const double median = sample_quantile(mat, h, 0.5);

          if (!std::isfinite(median) || median < probe_.min_rank ||
              median > probe_.max_rank || !std::isfinite(sigma_raw)) {
            ++failures;
            continue;  // a failed point contributes no quality signal
          }
          if (sigma_raw >= probe_.sigma_saturation) ++saturated;
          const double sigma = std::max(sigma_raw, probe_.sigma_floor);
          abs_err_sum += std::abs(median - actual);
          const double z = (actual - mean) / sigma;
          nll_sum += 0.5 * z * z + std::log(sigma) +
                     0.5 * std::log(2.0 * std::numbers::pi);
        }
      }
    }
  }

  ShadowMetrics m;
  if (threw) {
    // A forecaster that throws on the probe is unfit to serve, full stop.
    m.probe_points = 0;
    m.prediction_failure_rate = 1.0;
  } else {
    m.probe_points = points;
    const auto scored = static_cast<double>(points - failures);
    m.mae = scored > 0 ? abs_err_sum / scored : 0.0;
    m.nll = scored > 0 ? nll_sum / scored : 0.0;
    m.prediction_failure_rate =
        points > 0 ? static_cast<double>(failures) / points : 0.0;
    m.sigma_saturation_rate =
        points > 0 ? static_cast<double>(saturated) / points : 0.0;
  }
  m.latency_seconds = clock_() - t0;
  return m;
}

ChampionChallengerGate::ChampionChallengerGate(OnlineGateConfig config)
    : config_(config) {}

GateDecision ChampionChallengerGate::evaluate(
    const ShadowMetrics& champion, const ShadowMetrics& challenger) const {
  // Every gate has the form "challenger metric <= bound(champion, config)",
  // written as !(x <= bound) so NaN fails. Bounds never depend on the
  // challenger, which is what makes admission monotone: lowering any
  // challenger metric can only flip checks from fail to pass.
  if (challenger.probe_points < config_.min_probe_points) {
    return {false, "probe_points"};
  }
  if (!(challenger.prediction_failure_rate <=
        config_.max_prediction_failure_rate)) {
    return {false, "failure_rate"};
  }
  if (!(challenger.sigma_saturation_rate <=
        config_.max_sigma_saturation_rate)) {
    return {false, "saturation"};
  }
  if (!(challenger.nll <= champion.nll + config_.max_nll_delta)) {
    return {false, "nll"};
  }
  if (!(challenger.mae <= champion.mae + config_.max_mae_delta)) {
    return {false, "mae"};
  }
  if (config_.max_latency_factor > 0.0 &&
      !(challenger.latency_seconds <=
        config_.max_latency_factor * champion.latency_seconds)) {
    return {false, "latency"};
  }
  return {true, "pass"};
}

}  // namespace ranknet::core

// Bounded LRU cache over complete race forecasts, keyed by a compact
// race-state digest — the serving-side answer to "the same race state is
// forecast over and over" (every subscribed user asks for the same
// (race, origin) forecast within a cadence window; see ROADMAP).
//
// Correctness contract: a hit must return bytes identical to the cold
// compute it replaced. That is only sound because a forecast is a pure
// function of the cache key's fields:
//   * race digest   — FNV-1a over the full per-car telemetry series (rank,
//                     lap/track status, lap times). Covers both the encoder
//                     prefix and the oracle future covariates, so any
//                     telemetry change — past or future lap — changes the
//                     key.
//   * origin/horizon/num_samples — the forecast request itself.
//   * base          — the rng stream base the engine drew for this
//                     forecast; all sample noise is keyed from it.
//   * model_version — the serving layer's token for "these weights"; the
//                     engine defaults it to a digest of the forecaster
//                     name, and callers must bump it when weights change
//                     under the same name (ParallelForecastEngine::
//                     set_model_version).
//   * kernel_variant — tensor::kernels::active_variant(): scalar and avx2
//                     results differ by reassociation ULPs, so they must
//                     never share an entry.
//
// Thread safety: every method is safe to call concurrently (the engine
// pool's workers and multiple engines may share one cache). The store is
// lock-striped: keys are partitioned across `stripes` independent
// (mutex, LRU list, index) units by a remix of the key hash, so concurrent
// shards hitting different stripes never contend on one global mutex. With
// the default single stripe the semantics are exactly the pre-striping
// global LRU. Capacity is split evenly across stripes (eviction is
// per-stripe LRU — a globally-exact LRU order is traded for lock
// independence). Hits, misses, insertions and evictions are booked into
// the obs::Registry ("forecast_cache.*") via the CacheCounters shim below,
// same pattern as WorkspaceCounters; the accounting identity
//   insertions - evictions == size()   and   hits + misses == gets
// holds exactly even under fully concurrent mixed access
// (tests/test_forecast_cache.cpp, StripedAccountingExactUnderConcurrency).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/forecaster.hpp"
#include "obs/metrics.hpp"

namespace ranknet::core {

/// Incremental 64-bit FNV-1a. Small and header-inline so the digest of a
/// race, a covariate window, or a cache key all share one definition.
class Fnv1a {
 public:
  void update_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state_ ^= static_cast<std::uint64_t>(p[i]);
      state_ *= kPrime;
    }
  }
  void update_u64(std::uint64_t v) { update_bytes(&v, sizeof(v)); }
  /// Hashes the bit pattern of the CANONICALIZED value: -0.0 hashes as
  /// 0.0 and every NaN as one canonical quiet NaN, so numerically
  /// identical race states digest identically (raw-bit hashing silently
  /// split cache entries on sign-of-zero / NaN-payload noise). Digest
  /// consumers that need byte-level resolution — the decode tree's branch
  /// grouping — already confirm digest matches with an exact bit
  /// comparison, so a canonicalization-induced digest merge can only group
  /// candidates, never wrongly share them.
  void update_double(double v) {
    if (v == 0.0) {
      v = 0.0;  // +0.0 == -0.0 compares true; hash the +0.0 bits for both
    } else if (std::isnan(v)) {
      v = std::numeric_limits<double>::quiet_NaN();
    }
    update_bytes(&v, sizeof(v));
  }
  std::uint64_t digest() const { return state_; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t state_ = kOffsetBasis;
};

/// FNV-1a digest of everything a forecast reads from the race: id, lap
/// count, and every per-car series (rank, statuses, lap times) in ascending
/// car-id order. O(records); ~50k hash steps for a full 33-car race —
/// three orders of magnitude below one cold forecast.
std::uint64_t race_state_digest(const telemetry::RaceLog& race);

struct ForecastCacheKey {
  std::uint64_t race_digest = 0;
  std::uint64_t base = 0;           // engine's rng stream base
  std::uint64_t model_version = 0;  // weights token (see header comment)
  int origin_lap = 0;
  int horizon = 0;
  int num_samples = 0;
  int kernel_variant = 0;  // tensor::kernels::Variant as int

  bool operator==(const ForecastCacheKey&) const = default;
  std::uint64_t hash() const {
    Fnv1a h;
    h.update_u64(race_digest);
    h.update_u64(base);
    h.update_u64(model_version);
    h.update_u64(static_cast<std::uint64_t>(origin_lap));
    h.update_u64(static_cast<std::uint64_t>(horizon));
    h.update_u64(static_cast<std::uint64_t>(num_samples));
    h.update_u64(static_cast<std::uint64_t>(kernel_variant));
    return h.digest();
  }
};

/// Hit/miss/eviction accounting. Storage lives in the obs::Registry
/// ("forecast_cache.*"); this class is a shim over resolved handles, one
/// relaxed atomic per event.
class CacheCounters {
 public:
  static CacheCounters& instance();

  void record_hit() { hits_->add(1); }
  void record_miss() { misses_->add(1); }
  void record_insert() { insertions_->add(1); }
  void record_evict() { evictions_->add(1); }

  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  std::uint64_t insertions() const { return insertions_->value(); }
  std::uint64_t evictions() const { return evictions_->value(); }
  /// hits / (hits + misses); 0 when idle.
  double hit_rate() const {
    const auto h = hits(), m = misses();
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }
  /// Zeroes this subsystem's metrics only.
  void reset();

 private:
  CacheCounters();
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* insertions_;
  obs::Counter* evictions_;
};

class ForecastCache {
 public:
  /// `capacity` bounds the total number of cached forecasts (at least 1),
  /// distributed across `stripes` independent LRU partitions so the
  /// per-stripe bounds sum to `capacity`. Every stripe keeps at least one
  /// slot, so when capacity < stripes the total bound is `stripes` instead
  /// (a heavily-striped tiny cache still caches something on every
  /// stripe). `stripes` = 1 (the default) reproduces the original
  /// single-mutex global-LRU behaviour exactly.
  explicit ForecastCache(std::size_t capacity = 64, std::size_t stripes = 1);

  /// Deep copy out on hit (the cached bytes stay untouched, so every hit
  /// returns the exact bytes of the original cold compute); nullopt on
  /// miss. Refreshes the entry's LRU position within its stripe.
  std::optional<RaceSamples> get(const ForecastCacheKey& key);

  /// Insert (or refresh) a forecast; evicts the stripe's least-recently-
  /// used entry when the stripe is full. Values are deep-copied in.
  void put(const ForecastCacheKey& key, const RaceSamples& value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t stripes() const { return stripes_.size(); }
  /// Which stripe a key lives in — a pure function of the key, exposed so
  /// tests can prove partitioning is stable.
  std::size_t stripe_of(const ForecastCacheKey& key) const;
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const ForecastCacheKey& k) const {
      return static_cast<std::size_t>(k.hash());
    }
  };
  using Entry = std::pair<ForecastCacheKey, RaceSamples>;

  struct Stripe {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<ForecastCacheKey, std::list<Entry>::iterator, KeyHash>
        index;
  };

  Stripe& stripe_for(const ForecastCacheKey& key) {
    return *stripes_[stripe_of(key)];
  }

  std::size_t capacity_;  // total, across all stripes
  // Per-stripe bounds summing to capacity_ (floor/remainder split). Every
  // stripe keeps a >= 1 floor, so when capacity < stripes the effective
  // total is `stripes` — the documented exception to the total bound. The
  // previous ceil(capacity/stripes)-for-all split overshot the configured
  // capacity whenever capacity % stripes != 0 (capacity=10, stripes=8
  // admitted 16 entries).
  std::vector<std::size_t> stripe_capacity_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace ranknet::core

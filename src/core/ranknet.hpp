// RankNet: the paper's proposed forecaster (Fig. 5a) and its variants.
//
// Forecasting follows Algorithm 2 at race level:
//  1. future race status is obtained per variant —
//       Oracle    : ground-truth future TrackStatus/LapStatus (upper bound),
//       PitModel  : LapStatus sampled from the probabilistic MLP PitModel
//                   per sample realization, TrackStatus assumed green,
//       Joint     : no covariates; status dims are part of the sampled
//                   multivariate target,
//  2. the RankModel (stacked-LSTM, Gaussian output) rolls forward by
//     ancestral sampling, feeding each sampled rank back as the next lag,
//  3. per-sample sorting across cars converts values to rank positions.
//
// DeepAR is the same machinery with zero covariates (paper Table III).
//
// Per-race LSTM state traces are cached so that evaluating hundreds of
// forecast origins per race costs one encoder pass over the race instead of
// one per origin.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/ar_model.hpp"
#include "core/forecaster.hpp"
#include "core/pit_model.hpp"
#include "core/transformer_model.hpp"
#include "features/window.hpp"

namespace ranknet::core {

enum class StatusSource { kOracle, kPitModel, kJoint };

const char* status_source_name(StatusSource s);

/// MC decode strategy (DESIGN.md "Decode tree & forecast cache").
///  kIndependent — every (car, sample) row rolls through the whole decode
///                 at full row width (the historical path).
///  kTree        — rows with byte-identical prefix inputs share the
///                 encoder-tail replay and the first decode step at branch
///                 width, forking at their first noise draw. Bit-identical
///                 to kIndependent by construction (proved differentially
///                 in tests/test_decode_tree.cpp), strictly less work.
enum class DecodeMode { kIndependent, kTree };

/// Process default: kTree, overridable via RANKNET_DECODE=independent|tree
/// (read once at first call — same pattern as RANKNET_KERNEL).
DecodeMode default_decode_mode();

class RankNetForecaster : public RaceForecaster,
                          public PartitionableForecaster {
 public:
  RankNetForecaster(std::shared_ptr<const LstmSeqModel> model,
                    std::shared_ptr<const PitModel> pit_model,
                    features::CarVocab vocab,
                    features::CovariateConfig cov_config, StatusSource source,
                    std::string name);

  std::string name() const override { return name_; }

  /// Equivalent to forecast_partition over the full forecast_cars set with
  /// base = rng() — see the PartitionableForecaster contract.
  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, util::Rng& rng) override;

  // PartitionableForecaster -------------------------------------------
  void prepare(const telemetry::RaceLog& race) override;
  std::vector<int> forecast_cars(const telemetry::RaceLog& race,
                                 int origin_lap) override;
  /// Child streams: per-row noise from Rng::stream(base, car_id, sample+1);
  /// kPitModel's coupled status realization for sample s from
  /// Rng::stream(base, s, 0), always over the full active car set so the
  /// realization is the same in every partition.
  RaceSamples forecast_partition(const telemetry::RaceLog& race,
                                 int origin_lap, int horizon, int num_samples,
                                 std::uint64_t base,
                                 std::span<const int> cars) override;

  /// Drop cached traces (e.g. between races to bound memory).
  void clear_cache() { cache_.clear(); }

  /// Decode strategy; defaults to default_decode_mode(). The differential
  /// tests flip this to prove kTree bit-identical to kIndependent.
  void set_decode_mode(DecodeMode mode) { decode_mode_ = mode; }
  DecodeMode decode_mode() const { return decode_mode_; }

 private:
  struct CarCache {
    std::vector<double> history;  // observed ranks
    features::StatusStreams streams;
    std::vector<std::vector<double>> covariates;
    std::vector<LstmSeqModel::StackState> trace;
  };
  struct RaceCache {
    std::map<int, CarCache> cars;
  };

  const RaceCache& race_cache(const telemetry::RaceLog& race);
  /// Read-only lookup (no insertion) — the thread-safe path used by
  /// forecast_partition after prepare() has warmed the cache.
  const RaceCache* find_cache(const telemetry::RaceLog& race) const;

  std::shared_ptr<const LstmSeqModel> model_;
  std::shared_ptr<const PitModel> pit_model_;  // only for kPitModel
  features::CarVocab vocab_;
  features::CovariateConfig cov_config_;
  StatusSource source_;
  std::string name_;
  DecodeMode decode_mode_ = default_decode_mode();
  std::map<std::string, RaceCache> cache_;
};

/// Transformer-based RankNet (paper Section IV-I): same Algorithm-2
/// pipeline, attention stack instead of the LSTM. Supports the Oracle and
/// PitModel status sources.
class TransformerForecaster : public RaceForecaster {
 public:
  TransformerForecaster(std::shared_ptr<const TransformerSeqModel> model,
                        std::shared_ptr<const PitModel> pit_model,
                        features::CarVocab vocab,
                        features::CovariateConfig cov_config,
                        StatusSource source, std::string name);

  std::string name() const override { return name_; }

  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, util::Rng& rng) override;

 private:
  struct CarCache {
    std::vector<double> history;
    features::StatusStreams streams;
    std::vector<std::vector<double>> covariates;
  };
  struct RaceCache {
    std::map<int, CarCache> cars;
  };
  const RaceCache& race_cache(const telemetry::RaceLog& race);

  std::shared_ptr<const TransformerSeqModel> model_;
  std::shared_ptr<const PitModel> pit_model_;
  features::CarVocab vocab_;
  features::CovariateConfig cov_config_;
  StatusSource source_;
  std::string name_;
  std::map<std::string, RaceCache> cache_;
};

}  // namespace ranknet::core

#include "core/parallel_engine.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/device_model.hpp"
#include "util/timer.hpp"

namespace ranknet::core {

ParallelForecastEngine::ParallelForecastEngine(RaceForecaster& wrapped,
                                               std::size_t threads,
                                               std::size_t max_cars_per_task)
    : wrapped_(wrapped),
      partitioned_(dynamic_cast<PartitionableForecaster*>(&wrapped)),
      pool_(threads),
      max_cars_per_task_(max_cars_per_task == 0 ? 1 : max_cars_per_task) {}

ParallelForecastEngine::ParallelForecastEngine(
    std::shared_ptr<RaceForecaster> wrapped, std::size_t threads,
    std::size_t max_cars_per_task)
    : owned_(std::move(wrapped)),
      wrapped_(*owned_),
      partitioned_(dynamic_cast<PartitionableForecaster*>(owned_.get())),
      pool_(threads),
      max_cars_per_task_(max_cars_per_task == 0 ? 1 : max_cars_per_task) {
  if (!owned_) {
    throw std::invalid_argument("ParallelForecastEngine: null forecaster");
  }
}

RaceSamples ParallelForecastEngine::forecast(const telemetry::RaceLog& race,
                                             int origin_lap, int horizon,
                                             int num_samples, util::Rng& rng) {
  util::Timer wall;
  if (partitioned_ == nullptr) {
    // Not partitionable: plain delegation on the calling thread.
    auto out = wrapped_.forecast(race, origin_lap, horizon, num_samples, rng);
    const double secs = wall.seconds();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.forecasts;
      ++stats_.tasks;
      stats_.task_seconds += secs;
      stats_.wall_seconds += secs;
    }
    EngineCounters::instance().record_task(secs);
    EngineCounters::instance().record_forecast(secs);
    return out;
  }

  // Same rng protocol as the wrapped forecaster's own forecast(): warm the
  // per-race cache, then consume exactly one u64 as the stream base. This is
  // what makes engine output identical to a direct forecast() call.
  partitioned_->prepare(race);
  const std::uint64_t base = rng();
  const std::vector<int> cars = partitioned_->forecast_cars(race, origin_lap);

  // Chunk cars into contiguous blocks. Block composition cannot affect the
  // result (per-car child streams), only load balance.
  std::vector<std::pair<std::size_t, std::size_t>> blocks;  // [begin, end)
  for (std::size_t begin = 0; begin < cars.size();
       begin += max_cars_per_task_) {
    blocks.emplace_back(begin,
                        std::min(begin + max_cars_per_task_, cars.size()));
  }

  std::vector<std::future<std::pair<RaceSamples, double>>> futures;
  futures.reserve(blocks.size());
  for (const auto& [begin, end] : blocks) {
    futures.push_back(pool_.submit([&, begin = begin, end = end] {
      util::Timer task_timer;
      auto part = partitioned_->forecast_partition(
          race, origin_lap, horizon, num_samples, base,
          std::span<const int>(cars.data() + begin, end - begin));
      const double secs = task_timer.seconds();
      EngineCounters::instance().record_task(secs);
      return std::make_pair(std::move(part), secs);
    }));
  }

  RaceSamples out;
  double task_seconds = 0.0;
  for (auto& f : futures) {
    auto [part, secs] = f.get();
    task_seconds += secs;
    for (auto& [car_id, samples] : part) {
      out.insert_or_assign(car_id, std::move(samples));
    }
  }

  const double wall_seconds = wall.seconds();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.forecasts;
    stats_.tasks += futures.size();
    stats_.task_seconds += task_seconds;
    stats_.wall_seconds += wall_seconds;
  }
  EngineCounters::instance().record_forecast(wall_seconds);
  return out;
}

ParallelForecastEngine::Stats ParallelForecastEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void ParallelForecastEngine::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = Stats{};
}

}  // namespace ranknet::core

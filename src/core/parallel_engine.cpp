#include "core/parallel_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <future>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/device_model.hpp"
#include "obs/trace.hpp"
#include "tensor/simd_kernels.hpp"
#include "tensor/workspace.hpp"
#include "util/timer.hpp"

namespace ranknet::core {

namespace {

/// Default weights token for the forecast-cache key (see
/// set_model_version): a digest of the wrapped forecaster's name.
std::uint64_t name_digest(const std::string& name) {
  Fnv1a h;
  h.update_bytes(name.data(), name.size());
  return h.digest();
}

/// Broadcast a fallback partition's sample matrix to the engine-wide
/// num_samples row count (rows repeat cyclically; point forecasters like
/// CurRank return one row per car). Merging a short matrix verbatim next
/// to num_samples-row primary matrices used to hand sort_to_ranks a ragged
/// map whose per-sample loop read past the short matrix — unchecked in
/// release builds, hence the documented armed-active winner-line
/// nondeterminism. tests/test_fault_injection.cpp
/// (PartialFallbackOutputHasUniformSampleRows) regresses this.
tensor::Matrix broadcast_rows(tensor::Matrix m, std::size_t rows) {
  if (m.rows() == rows || m.rows() == 0) return m;
  tensor::Matrix out(rows, m.cols());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out(r, c) = m(r % m.rows(), c);
    }
  }
  return out;
}

/// Mirror the inference-runtime arena activity of one forecast into the
/// global degradation counters. WorkspaceCounters is process-global, so the
/// delta covers the calling thread and every pool worker that served this
/// forecast (concurrent engines blend together, which is fine for a health
/// signal: steady state is still reused == epochs, block_allocs flat).
void record_workspace_delta(const tensor::WorkspaceCounters::Snapshot& before) {
  const auto after = tensor::WorkspaceCounters::instance().snapshot();
  DegradationCounters::instance().record_workspace(
      after.epochs - before.epochs,
      after.reused_epochs - before.reused_epochs,
      after.block_allocs - before.block_allocs);
}

}  // namespace

ParallelForecastEngine::ParallelForecastEngine(RaceForecaster& wrapped,
                                               std::size_t threads,
                                               std::size_t max_cars_per_task)
    : wrapped_(wrapped),
      partitioned_(dynamic_cast<PartitionableForecaster*>(&wrapped)),
      pool_(threads),
      max_cars_per_task_(max_cars_per_task == 0 ? 1 : max_cars_per_task),
      model_version_(name_digest(wrapped.name())) {}

ParallelForecastEngine::ParallelForecastEngine(
    std::shared_ptr<RaceForecaster> wrapped, std::size_t threads,
    std::size_t max_cars_per_task)
    : owned_(std::move(wrapped)),
      wrapped_(*owned_),
      partitioned_(dynamic_cast<PartitionableForecaster*>(owned_.get())),
      pool_(threads),
      max_cars_per_task_(max_cars_per_task == 0 ? 1 : max_cars_per_task) {
  if (!owned_) {
    throw std::invalid_argument("ParallelForecastEngine: null forecaster");
  }
  model_version_ = name_digest(wrapped_.name());
}

util::Status ParallelForecastEngine::set_degradation_policy(
    DegradationPolicy policy) {
  // A NaN deadline fails every `deadline > 0.0` comparison in forecast(),
  // and a negative one is indistinguishable from "disabled": both would
  // silently turn the deadline tier off, so reject them here instead.
  if (!std::isfinite(policy.deadline_seconds) ||
      policy.deadline_seconds < 0.0) {
    return util::Status::invalid_argument(
        "ParallelForecastEngine: deadline_seconds must be a finite value "
        ">= 0 (0 disables the deadline tier), got " +
        std::to_string(policy.deadline_seconds));
  }
  PartitionableForecaster* fallback_part = nullptr;
  if (policy.fallback) {
    fallback_part =
        dynamic_cast<PartitionableForecaster*>(policy.fallback.get());
    if (fallback_part == nullptr) {
      return util::Status::invalid_argument(
          "ParallelForecastEngine: fallback forecaster must implement "
          "PartitionableForecaster");
    }
  }
  policy_ = std::move(policy);
  fallback_part_ = fallback_part;
  return {};
}

RaceSamples ParallelForecastEngine::delegate_forecast(
    const telemetry::RaceLog& race, int origin_lap, int horizon,
    int num_samples, util::Rng& rng) {
  util::Timer wall;
  const auto ws_before = tensor::WorkspaceCounters::instance().snapshot();
  auto out = wrapped_.forecast(race, origin_lap, horizon, num_samples, rng);
  const double secs = wall.seconds();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.forecasts;
    ++stats_.tasks;
    stats_.task_seconds += secs;
    stats_.wall_seconds += secs;
  }
  EngineCounters::instance().record_task(secs);
  EngineCounters::instance().record_forecast(secs);
  record_workspace_delta(ws_before);
  return out;
}

RaceSamples ParallelForecastEngine::forecast(const telemetry::RaceLog& race,
                                             int origin_lap, int horizon,
                                             int num_samples, util::Rng& rng) {
  if (partitioned_ == nullptr) {
    // Not partitionable: plain delegation on the calling thread, consuming
    // the caller's generator exactly as the wrapped forecaster would.
    return delegate_forecast(race, origin_lap, horizon, num_samples, rng);
  }
  // Same rng protocol as the wrapped forecaster's own forecast(): consume
  // exactly one u64 as the stream base (prepare(), which runs inside
  // forecast_with_base, never touches the caller's generator, so drawing
  // first is byte-equivalent to the historical prepare-then-draw order).
  // This is what makes engine output identical to a direct forecast() call
  // — and, because the fallback tiers derive from the same base, what
  // keeps degraded forecasts deterministic too.
  return forecast_with_base(race, origin_lap, horizon, num_samples, rng());
}

RaceSamples ParallelForecastEngine::forecast_with_base(
    const telemetry::RaceLog& race, int origin_lap, int horizon,
    int num_samples, std::uint64_t base) {
  util::Timer wall;
  const auto ws_before = tensor::WorkspaceCounters::instance().snapshot();
  if (partitioned_ == nullptr) {
    // Keyed delegation: derive a generator from the base so the result is
    // still a pure function of (model, race, request, base).
    util::Rng rng = util::Rng::stream(base, /*k1=*/0x666c6565756e70ULL);
    return delegate_forecast(race, origin_lap, horizon, num_samples, rng);
  }

  obs::SpanScope prepare_span(obs::Stage::kPrepare);
  partitioned_->prepare(race);

  // Forecast cache: the key covers every input the computation below is a
  // pure function of (see forecast_cache.hpp), so a hit can return the
  // cached bytes verbatim. The base draw above already happened — a hit
  // consumes exactly the rng state a cold compute would.
  ForecastCacheKey cache_key;
  if (cache_ != nullptr) {
    cache_key = ForecastCacheKey{
        race_state_digest(race),
        base,
        model_version_,
        origin_lap,
        horizon,
        num_samples,
        static_cast<int>(tensor::kernels::active_variant())};
    if (auto cached = cache_->get(cache_key)) {
      prepare_span.stop();
      const double secs = wall.seconds();
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.forecasts;
        stats_.wall_seconds += secs;
      }
      EngineCounters::instance().record_forecast(secs);
      record_workspace_delta(ws_before);
      return *std::move(cached);
    }
  }

  const std::vector<int> all_cars =
      partitioned_->forecast_cars(race, origin_lap);

  // Tier 1: cars whose telemetry is too damaged for the primary model go
  // straight to the fallback (only meaningful when a fallback exists).
  std::vector<int> cars, damaged;
  cars.reserve(all_cars.size());
  if (policy_.series_damaged && fallback_part_ != nullptr) {
    for (int car : all_cars) {
      (policy_.series_damaged(car, origin_lap) ? damaged : cars)
          .push_back(car);
    }
  } else {
    cars = all_cars;
  }

  // Chunk cars into contiguous blocks. Block composition cannot affect the
  // result (per-car child streams), only load balance.
  std::vector<std::pair<std::size_t, std::size_t>> blocks;  // [begin, end)
  for (std::size_t begin = 0; begin < cars.size();
       begin += max_cars_per_task_) {
    blocks.emplace_back(begin,
                        std::min(begin + max_cars_per_task_, cars.size()));
  }
  prepare_span.stop();

  // Tier 2 plumbing: tasks observe `expired` cooperatively — a task that
  // starts after the deadline returns unfinished immediately instead of
  // wedging the forecast behind a slow queue.
  auto expired = std::make_shared<std::atomic<bool>>(false);
  struct TaskResult {
    RaceSamples part;
    double secs = 0.0;
    bool completed = false;
  };
  obs::SpanScope partition_span(obs::Stage::kPartition);
  std::vector<std::future<TaskResult>> futures;
  futures.reserve(blocks.size());
  for (const auto& [begin, end] : blocks) {
    futures.push_back(pool_.submit([&, expired, begin = begin, end = end] {
      TaskResult result;
      if (expired->load(std::memory_order_relaxed)) return result;
      util::Timer task_timer;
      result.part = partitioned_->forecast_partition(
          race, origin_lap, horizon, num_samples, base,
          std::span<const int>(cars.data() + begin, end - begin));
      result.secs = task_timer.seconds();
      result.completed = true;
      EngineCounters::instance().record_task(result.secs);
      return result;
    }));
  }

  // Collect. Every future is drained even on error/deadline — tasks capture
  // the stack-local `cars` by reference, so abandoning a future here would
  // leave a worker reading freed stack memory.
  Degradation deg;
  std::vector<TaskResult> finished(futures.size());  // kept primary parts
  std::vector<int> rescue = damaged;  // cars the fallback must serve
  std::exception_ptr first_error;
  double task_seconds = 0.0;
  const double deadline = policy_.deadline_seconds;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    auto& f = futures[i];
    // A block whose wait times out is abandoned: even though the blocking
    // get() below may let it run to completion (the future must be drained
    // for `cars` lifetime), its result is discarded and its cars go to the
    // rescue tier. Counting a late-but-finished block as `full_cars` would
    // let a forecast report deadline_hits with zero deadline_fallback_cars.
    bool timed_out = false;
    if (deadline > 0.0 && !expired->load(std::memory_order_relaxed)) {
      const double remaining = deadline - wall.seconds();
      if (remaining <= 0.0 ||
          f.wait_for(std::chrono::duration<double>(remaining)) ==
              std::future_status::timeout) {
        expired->store(true, std::memory_order_relaxed);
        ++deg.deadline_hits;
        timed_out = true;
      }
    }
    const auto& [begin, end] = blocks[i];
    TaskResult result;
    try {
      result = f.get();
    } catch (...) {
      ++deg.task_failures;
      deg.error_fallback_cars += end - begin;
      if (!first_error) first_error = std::current_exception();
      rescue.insert(rescue.end(), cars.begin() + begin, cars.begin() + end);
      continue;
    }
    task_seconds += result.secs;
    if (result.completed && !timed_out) {
      deg.full_cars += end - begin;
      finished[i] = std::move(result);
    } else {
      deg.deadline_fallback_cars += end - begin;
      rescue.insert(rescue.end(), cars.begin() + begin, cars.begin() + end);
    }
  }
  deg.damaged_fallback_cars = damaged.size();
  partition_span.stop();

  if (first_error && fallback_part_ == nullptr) {
    // No fallback tier configured: propagate the primary model's failure
    // (all futures are drained above, so no task still references `cars`).
    std::rethrow_exception(first_error);
  }

  RaceSamples out;
  {
    obs::SpanScope merge_span(obs::Stage::kMerge);
    for (auto& result : finished) {
      for (auto& [car_id, samples] : result.part) {
        out.insert_or_assign(car_id, std::move(samples));
      }
    }
  }

  if (!rescue.empty() && fallback_part_ != nullptr) {
    obs::SpanScope fallback_span(obs::Stage::kFallback);
    std::sort(rescue.begin(), rescue.end());
    fallback_part_->prepare(race);
    auto fb = fallback_part_->forecast_partition(race, origin_lap, horizon,
                                                 num_samples, base, rescue);
    for (auto& [car_id, samples] : fb) {
      // Rescue matrices must match the primary sample count: point
      // forecasters return fewer rows, and a ragged merge is exactly the
      // old winner-line nondeterminism (see broadcast_rows).
      out.insert_or_assign(
          car_id, broadcast_rows(std::move(samples),
                                 static_cast<std::size_t>(num_samples)));
    }
  }

  // Only pristine results enter the cache: any fallback, deadline, or error
  // involvement means these bytes do not equal the healthy-system forecast
  // for this key, and must not be replayed once the system recovers.
  if (cache_ != nullptr && deg.fallback_cars() == 0 &&
      deg.deadline_hits == 0 && !first_error) {
    cache_->put(cache_key, out);
  }

  const double wall_seconds = wall.seconds();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.forecasts;
    stats_.tasks += futures.size();
    stats_.task_seconds += task_seconds;
    stats_.wall_seconds += wall_seconds;
    degradation_.full_cars += deg.full_cars;
    degradation_.damaged_fallback_cars += deg.damaged_fallback_cars;
    degradation_.deadline_fallback_cars += deg.deadline_fallback_cars;
    degradation_.error_fallback_cars += deg.error_fallback_cars;
    degradation_.deadline_hits += deg.deadline_hits;
    degradation_.task_failures += deg.task_failures;
  }
  auto& global = DegradationCounters::instance();
  global.record_full_cars(deg.full_cars);
  if (deg.damaged_fallback_cars > 0) {
    global.record_damaged_fallback(deg.damaged_fallback_cars);
  }
  if (deg.deadline_fallback_cars > 0) {
    global.record_deadline_fallback(deg.deadline_fallback_cars);
  }
  if (deg.error_fallback_cars > 0) {
    global.record_error_fallback(deg.error_fallback_cars);
  }
  for (std::uint64_t h = 0; h < deg.deadline_hits; ++h) {
    global.record_deadline_hit();
  }
  if (deg.task_failures > 0) global.record_task_failures(deg.task_failures);
  EngineCounters::instance().record_forecast(wall_seconds);
  record_workspace_delta(ws_before);
  return out;
}

ParallelForecastEngine::Stats ParallelForecastEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

ParallelForecastEngine::Degradation ParallelForecastEngine::degradation()
    const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return degradation_;
}

void ParallelForecastEngine::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = Stats{};
  degradation_ = Degradation{};
}

}  // namespace ranknet::core

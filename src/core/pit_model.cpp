#include "core/pit_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "features/transforms.hpp"
#include "nn/adam.hpp"
#include "util/string_util.hpp"

namespace ranknet::core {

namespace {
constexpr double kCautionScale = 10.0;
constexpr double kAgeScale = 40.0;
}  // namespace

std::string PitModelConfig::cache_key() const {
  return util::format("pit-h%zu-%zu-s%llu-m%d-n%d", hidden1, hidden2,
                      static_cast<unsigned long long>(seed), min_stint,
                      normal_pits_only ? 1 : 0);
}

PitModel::PitModel(PitModelConfig config) : config_(config) {
  util::Rng rng(config_.seed);
  fc1_ = std::make_unique<nn::Dense>(2, config_.hidden1, rng,
                                     nn::Activation::kRelu, "pit.fc1");
  fc2_ = std::make_unique<nn::Dense>(config_.hidden1, config_.hidden2, rng,
                                     nn::Activation::kRelu, "pit.fc2");
  head_ = std::make_unique<nn::GaussianHead>(config_.hidden2, 1, rng,
                                             "pit.head");
}

std::vector<nn::Parameter*> PitModel::params() {
  std::vector<nn::Parameter*> out;
  for (auto* p : fc1_->params()) out.push_back(p);
  for (auto* p : fc2_->params()) out.push_back(p);
  for (auto* p : head_->params()) out.push_back(p);
  return out;
}

PitModel::TrainingData PitModel::build_training_data(
    const std::vector<telemetry::RaceLog>& races) const {
  std::vector<double> caution, age, target;
  for (const auto& race : races) {
    for (int car_id : race.car_ids()) {
      const auto& car = race.car(car_id);
      const auto status = features::compute_status_features(car);
      const auto to_pit = features::laps_to_next_pit(car);
      for (std::size_t lap = 0; lap + 1 < car.laps(); ++lap) {
        const double dist = to_pit[lap];
        const auto next_pit =
            lap + static_cast<std::size_t>(dist);
        if (next_pit >= car.laps()) continue;  // no further stop observed
        if (!car.pit(next_pit)) continue;
        if (config_.normal_pits_only && car.yellow(next_pit)) continue;
        // Total stint length this row belongs to; short stints are the
        // anomaly section the paper removes.
        const double stint_total = status.pit_age[lap] + dist;
        if (stint_total < config_.min_stint) continue;
        caution.push_back(status.caution_laps[lap]);
        age.push_back(status.pit_age[lap]);
        target.push_back(dist);
      }
    }
  }
  TrainingData data;
  data.x = tensor::Matrix(caution.size(), 2);
  for (std::size_t i = 0; i < caution.size(); ++i) {
    data.x(i, 0) = caution[i] / kCautionScale;
    data.x(i, 1) = age[i] / kAgeScale;
  }
  data.y = std::move(target);
  return data;
}

void PitModel::fit(const TrainingData& data, int epochs,
                   std::size_t batch_size, double lr) {
  if (data.y.empty()) return;
  scaler_.fit(data.y);

  nn::AdamConfig adam_config;
  adam_config.lr = lr;
  nn::Adam adam(params(), adam_config);
  util::Rng rng(config_.seed ^ 0xfeed);

  std::vector<std::size_t> order(data.y.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += batch_size) {
      const std::size_t end = std::min(order.size(), start + batch_size);
      const std::size_t n = end - start;
      tensor::Matrix x(n, 2), z(n, 1);
      for (std::size_t i = 0; i < n; ++i) {
        const auto row = order[start + i];
        x(i, 0) = data.x(row, 0);
        x(i, 1) = data.x(row, 1);
        z(i, 0) = scaler_.transform(data.y[row]);
      }
      auto h = fc2_->forward(fc1_->forward(x));
      auto out = head_->forward(h);
      tensor::Matrix dh;
      head_->nll_backward(out, z, {}, dh);
      fc1_->backward(fc2_->backward(dh));
      adam.step();
    }
  }
}

tensor::Matrix PitModel::normalize(const PitFeatures& f) const {
  tensor::Matrix x(1, 2);
  x(0, 0) = f.caution_laps / kCautionScale;
  x(0, 1) = f.pit_age / kAgeScale;
  return x;
}

PitModel::Prediction PitModel::predict(const PitFeatures& f) const {
  const auto h =
      fc2_->forward_inference(fc1_->forward_inference(normalize(f)));
  const auto out = head_->forward_inference(h);
  Prediction p;
  p.mean = scaler_.inverse(out.mu(0, 0));
  p.stddev = scaler_.inverse_scale(out.sigma(0, 0));
  return p;
}

int PitModel::sample(const PitFeatures& f, util::Rng& rng) const {
  const auto p = predict(f);
  const double draw = rng.normal(p.mean, p.stddev);
  return std::max(1, static_cast<int>(std::lround(draw)));
}

std::vector<double> PitModel::sample_future_lap_status(const PitFeatures& now,
                                                       int horizon,
                                                       util::Rng& rng) const {
  std::vector<double> lap_status(static_cast<std::size_t>(horizon), 0.0);
  PitFeatures f = now;
  int lap = 0;  // horizon offset (0 = first future lap)
  while (lap < horizon) {
    // The model predicts laps-to-next-pit given the current (caution, age)
    // features, so the next stop is `to_pit` laps ahead of the current lap.
    const int to_pit = std::max(1, sample(f, rng));
    const int pit_offset = lap + to_pit;
    if (pit_offset > horizon) break;
    lap_status[static_cast<std::size_t>(pit_offset - 1)] = 1.0;
    lap = pit_offset;
    f = PitFeatures{};  // fresh stint: ages reset after the stop
  }
  return lap_status;
}

PitModel::InferenceSession::InferenceSession(const PitModel& model,
                                             tensor::Workspace& ws)
    : model_(&model),
      fc1_(*model.fc1_),
      fc2_(*model.fc2_),
      head_(*model.head_) {
  x_ = ws.take(1, 2);
  h1_ = ws.take(1, model.config_.hidden1);
  h2_ = ws.take(1, model.config_.hidden2);
  mu_ = ws.take(1, 1);
  sigma_ = ws.take(1, 1);
}

PitModel::Prediction PitModel::InferenceSession::predict(
    const PitFeatures& f) const {
  x_(0, 0) = f.caution_laps / kCautionScale;
  x_(0, 1) = f.pit_age / kAgeScale;
  fc1_.apply(x_, h1_);
  fc2_.apply(h1_, h2_);
  head_.forward(h2_, mu_, sigma_);
  Prediction p;
  p.mean = model_->scaler_.inverse(mu_(0, 0));
  p.stddev = model_->scaler_.inverse_scale(sigma_(0, 0));
  return p;
}

int PitModel::InferenceSession::sample(const PitFeatures& f,
                                       util::Rng& rng) const {
  const auto p = predict(f);
  const double draw = rng.normal(p.mean, p.stddev);
  return std::max(1, static_cast<int>(std::lround(draw)));
}

void PitModel::InferenceSession::sample_future_into(
    const PitFeatures& now, std::span<double> lap_status,
    util::Rng& rng) const {
  const int horizon = static_cast<int>(lap_status.size());
  for (auto& v : lap_status) v = 0.0;
  PitFeatures f = now;
  int lap = 0;
  while (lap < horizon) {
    const int to_pit = std::max(1, sample(f, rng));
    const int pit_offset = lap + to_pit;
    if (pit_offset > horizon) break;
    lap_status[static_cast<std::size_t>(pit_offset - 1)] = 1.0;
    lap = pit_offset;
    f = PitFeatures{};
  }
}

}  // namespace ranknet::core

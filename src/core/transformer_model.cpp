#include "core/transformer_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/inference.hpp"
#include "tensor/kernels.hpp"
#include "tensor/workspace.hpp"
#include "util/string_util.hpp"

namespace ranknet::core {

namespace {
constexpr double kMinRankFeedback = 1.0;
constexpr double kMaxRankFeedback = 45.0;
constexpr std::size_t kMaxPositions = 512;
}  // namespace

std::string TransformerConfig::cache_key() const {
  return util::format("tf-c%zu-t%zu-d%zu-h%zu-b%zu-f%zu-e%zu-v%d-s%llu",
                      cov_dim, target_dim, model_dim, heads, blocks, ffn_dim,
                      embed_dim, vocab, static_cast<unsigned long long>(seed));
}

TransformerSeqModel::TransformerSeqModel(TransformerConfig config)
    : config_(config) {
  util::Rng rng(config_.seed);
  if (config_.embed_dim > 0) {
    embedding_ = std::make_unique<nn::Embedding>(
        static_cast<std::size_t>(config_.vocab), config_.embed_dim, rng,
        "car_embed");
  }
  input_proj_ = std::make_unique<nn::Dense>(config_.input_dim(),
                                            config_.model_dim, rng,
                                            nn::Activation::kNone, "in_proj");
  for (std::size_t b = 0; b < config_.blocks; ++b) {
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        config_.model_dim, config_.heads, config_.ffn_dim, rng,
        util::format("block%zu", b)));
  }
  final_ln_ = std::make_unique<nn::LayerNorm>(config_.model_dim, "final_ln");
  head_ = std::make_unique<nn::GaussianHead>(config_.model_dim,
                                             config_.target_dim, rng, "head");
}

std::vector<nn::Parameter*> TransformerSeqModel::params() {
  std::vector<nn::Parameter*> out;
  if (embedding_ != nullptr) {
    for (auto* p : embedding_->params()) out.push_back(p);
  }
  for (auto* p : input_proj_->params()) out.push_back(p);
  for (auto& b : blocks_) {
    for (auto* p : b->params()) out.push_back(p);
  }
  for (auto* p : final_ln_->params()) out.push_back(p);
  for (auto* p : head_->params()) out.push_back(p);
  return out;
}

TransformerSeqModel::Batch TransformerSeqModel::make_batch(
    const std::vector<const features::SeqExample*>& examples,
    std::size_t dec_len) const {
  return LstmSeqModel::pack_examples(examples, dec_len, scaler_,
                                     config_.target_dim, config_.cov_dim);
}

tensor::Matrix TransformerSeqModel::pack_inputs(
    const Batch& batch, const tensor::Matrix& embed) const {
  const std::size_t steps = batch.xs_base.size();
  const std::size_t base_dim = config_.target_dim + config_.cov_dim;
  tensor::Matrix packed(batch.batch * steps, config_.input_dim());
  for (std::size_t e = 0; e < batch.batch; ++e) {
    for (std::size_t t = 0; t < steps; ++t) {
      const std::size_t row = e * steps + t;
      for (std::size_t c = 0; c < base_dim; ++c) {
        packed(row, c) = batch.xs_base[t](e, c);
      }
      for (std::size_t c = 0; c < config_.embed_dim; ++c) {
        packed(row, base_dim + c) = embed(e, c);
      }
    }
  }
  return packed;
}

tensor::Matrix TransformerSeqModel::run_stack(const tensor::Matrix& packed,
                                              std::size_t steps,
                                              bool training) {
  tensor::Matrix h = training ? input_proj_->forward(packed)
                              : input_proj_->forward_inference(packed);
  // Positional encoding, repeated per sequence.
  static thread_local tensor::Matrix pe;
  if (pe.rows() < std::min(steps, kMaxPositions) ||
      pe.cols() != config_.model_dim) {
    pe = nn::positional_encoding(kMaxPositions, config_.model_dim);
  }
  for (std::size_t row = 0; row < h.rows(); ++row) {
    const std::size_t t = row % steps;
    for (std::size_t c = 0; c < config_.model_dim; ++c) {
      h(row, c) += pe(std::min(t, kMaxPositions - 1), c);
    }
  }
  for (auto& block : blocks_) {
    h = training ? block->forward(h, steps)
                 : block->forward_inference(h, steps);
  }
  return training ? final_ln_->forward(h) : final_ln_->forward_inference(h);
}

double TransformerSeqModel::train_step(const Batch& batch) {
  const std::size_t steps = batch.xs_base.size();
  tensor::Matrix embed(batch.batch, config_.embed_dim);
  if (embedding_ != nullptr) embed = embedding_->forward(batch.car_index);
  const auto packed = pack_inputs(batch, embed);
  const auto h = run_stack(packed, steps, /*training=*/true);

  // Decoder rows: position t in [steps-dec_len, steps) of each sequence,
  // ordered (step-major) to match pack_examples' z_dec layout.
  tensor::Matrix h_dec(batch.dec_len * batch.batch, config_.model_dim);
  for (std::size_t d = 0; d < batch.dec_len; ++d) {
    const std::size_t t = steps - batch.dec_len + d;
    for (std::size_t e = 0; e < batch.batch; ++e) {
      for (std::size_t c = 0; c < config_.model_dim; ++c) {
        h_dec(d * batch.batch + e, c) = h(e * steps + t, c);
      }
    }
  }
  auto out = head_->forward(h_dec);
  tensor::Matrix dh_dec;
  const double loss =
      head_->nll_backward(out, batch.z_dec, batch.weights, dh_dec);

  tensor::Matrix dh(h.rows(), h.cols());
  for (std::size_t d = 0; d < batch.dec_len; ++d) {
    const std::size_t t = steps - batch.dec_len + d;
    for (std::size_t e = 0; e < batch.batch; ++e) {
      for (std::size_t c = 0; c < config_.model_dim; ++c) {
        dh(e * steps + t, c) = dh_dec(d * batch.batch + e, c);
      }
    }
  }

  tensor::Matrix dx = final_ln_->backward(dh);
  for (std::size_t b = blocks_.size(); b-- > 0;) {
    dx = blocks_[b]->backward(dx);
  }
  const auto dpacked = input_proj_->backward(dx);

  if (embedding_ != nullptr) {
    const std::size_t base_dim = config_.target_dim + config_.cov_dim;
    tensor::Matrix dembed(batch.batch, config_.embed_dim);
    for (std::size_t e = 0; e < batch.batch; ++e) {
      for (std::size_t c = 0; c < config_.embed_dim; ++c) {
        double acc = 0.0;
        for (std::size_t t = 0; t < steps; ++t) {
          acc += dpacked(e * steps + t, base_dim + c);
        }
        dembed(e, c) = acc;
      }
    }
    embedding_->backward(dembed);
  }
  return loss;
}

double TransformerSeqModel::evaluate(const Batch& batch) {
  const std::size_t steps = batch.xs_base.size();
  tensor::Matrix embed(batch.batch, config_.embed_dim);
  if (embedding_ != nullptr) {
    embed = embedding_->forward_inference(batch.car_index);
  }
  const auto packed = pack_inputs(batch, embed);
  const auto h = run_stack(packed, steps, /*training=*/false);
  tensor::Matrix h_dec(batch.dec_len * batch.batch, config_.model_dim);
  for (std::size_t d = 0; d < batch.dec_len; ++d) {
    const std::size_t t = steps - batch.dec_len + d;
    for (std::size_t e = 0; e < batch.batch; ++e) {
      for (std::size_t c = 0; c < config_.model_dim; ++c) {
        h_dec(d * batch.batch + e, c) = h(e * steps + t, c);
      }
    }
  }
  const auto out = head_->forward_inference(h_dec);
  return nn::GaussianHead::nll(out, batch.z_dec, batch.weights);
}

tensor::Matrix TransformerSeqModel::sample_forecast(
    const std::vector<std::vector<double>>& history,
    const std::vector<std::vector<std::vector<double>>>& covs,
    const std::vector<int>& car_index, int horizon, util::Rng& rng) const {
  const std::size_t rows = history.size();
  if (rows == 0) return {};
  const std::size_t ctx = history[0].size();
  const auto h_count = static_cast<std::size_t>(horizon);
  for (std::size_t r = 0; r < rows; ++r) {
    if (history[r].size() != ctx || covs[r].size() != ctx + h_count) {
      throw std::invalid_argument("sample_forecast: ragged inputs");
    }
  }

  tensor::Matrix embed(rows, config_.embed_dim);
  if (embedding_ != nullptr) {
    embed = embedding_->forward_inference(car_index);
  }

  // Rolling raw-rank sequence per row; grows by one each sampled step.
  std::vector<std::vector<double>> z(rows);
  for (std::size_t r = 0; r < rows; ++r) z[r] = history[r];

  tensor::Matrix out(rows, h_count);

  // Positional encoding cache (deterministic values, same as run_stack's).
  static thread_local tensor::Matrix pe;
  if (pe.rows() < kMaxPositions || pe.cols() != config_.model_dim) {
    pe = nn::positional_encoding(kMaxPositions, config_.model_dim);
  }

  // Each horizon step re-runs the causal stack over a one-lap-longer
  // context, so session shapes change per step: one workspace epoch per
  // step keeps the arena reused while the views are re-derived.
  auto& ws = tensor::Workspace::thread_local_instance();
  nn::DenseInferenceSession in_proj(*input_proj_);
  nn::GaussianInferenceSession head(*head_);
  for (std::size_t h = 1; h <= h_count; ++h) {
    // Inputs for positions t = 1 .. ctx-1+h: step t consumes
    // [z_{t-1}, cov_t]; the final position's hidden predicts the new lap.
    const std::size_t steps = ctx - 1 + h;
    const std::size_t n = rows * steps;
    ws.begin();
    tensor::MatrixView packed = ws.take(n, config_.input_dim());
    const std::size_t base_dim = config_.target_dim + config_.cov_dim;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t t = 0; t < steps; ++t) {
        const std::size_t row = r * steps + t;
        packed(row, 0) = scaler_.transform(z[r][t]);
        for (std::size_t c = 0; c < config_.cov_dim; ++c) {
          packed(row, config_.target_dim + c) = covs[r][t + 1][c];
        }
        for (std::size_t c = 0; c < config_.embed_dim; ++c) {
          packed(row, base_dim + c) = embed(r, c);
        }
      }
    }

    tensor::MatrixView ha = ws.take(n, config_.model_dim);
    tensor::MatrixView hb = ws.take(n, config_.model_dim);
    in_proj.apply(packed, ha);
    for (std::size_t row = 0; row < n; ++row) {
      const std::size_t t = row % steps;
      for (std::size_t c = 0; c < config_.model_dim; ++c) {
        ha(row, c) += pe(std::min(t, kMaxPositions - 1), c);
      }
    }
    tensor::MatrixView cur = ha, nxt = hb;
    for (const auto& block : blocks_) {
      nn::TransformerBlockSession session(*block, n, steps, ws);
      session.forward(cur, nxt);
      std::swap(cur, nxt);
    }
    final_ln_->apply_view(cur, cur);

    tensor::MatrixView h_last = ws.take(rows, config_.model_dim);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < config_.model_dim; ++c) {
        h_last(r, c) = cur(r * steps + steps - 1, c);
      }
    }
    tensor::MatrixView mu = ws.take(rows, config_.target_dim);
    tensor::MatrixView sigma = ws.take(rows, config_.target_dim);
    tensor::MatrixView sample = ws.take(rows, config_.target_dim);
    head.forward(h_last, mu, sigma);
    nn::GaussianInferenceSession::sample(mu, sigma, rng, sample);
    for (std::size_t r = 0; r < rows; ++r) {
      const double rank = std::clamp(scaler_.inverse(sample(r, 0)),
                                     kMinRankFeedback, kMaxRankFeedback);
      out(r, h - 1) = rank;
      z[r].push_back(rank);
    }
  }
  return out;
}

}  // namespace ranknet::core

// FleetEngine: N RaceShards serving thousands of races as one workload.
//
// The season-fleet coordinator the ROADMAP north star asks for: instead of
// one ParallelForecastEngine with one pool and one cache that every layer
// serializes on, the fleet owns N shards (core/race_shard.hpp) and routes
// every forecast to the shard picked by a stable hash of the race id. Each
// shard has its own forecaster instance, engine pool, cache slice and a
// single-threaded driver — so distinct races proceed fully concurrently
// while per-race state stays single-writer.
//
// The byte-identity contract (the hard part, and the point):
//   * routing never touches bytes — a forecast is a pure function of
//     (model, race, origin, horizon, num_samples, rng base), computed via
//     ParallelForecastEngine::forecast_with_base, so WHICH shard runs it
//     cannot matter;
//   * season batch bases are keyed, not drawn — run_season derives each
//     job's base as Rng::stream(season_seed, race_key, job_shape_key)'s
//     first draw, a pure function of the job tuple. Shard count, shard
//     assignment, execution order and live resharding are therefore all
//     invisible in the output bytes (tests/test_fleet_engine.cpp proves
//     {1, 2, 8} shards and a mid-workload reshard bit-identical, for both
//     kernel variants);
//   * the caller-rng surface stays protocol-compatible — forecast(rng)
//     consumes exactly one u64 regardless of shard count, so caller rng
//     end states are reshard-invariant too.
//
// Resharding is live: reshard(n) rebuilds the shard set under a writer
// lock while in-flight forecasts finish on the old shards (they hold
// shared_ptrs; old shards die when the last job drops its reference).
// Shard-local caches are discarded with their shards — byte-safe, because
// a cache hit replays exactly the bytes a cold compute would produce.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/race_shard.hpp"
#include "util/status.hpp"

namespace ranknet::core {

/// Builds one shard's forecaster instance. Called once per shard, in shard
/// index order, from the constructing/resharding thread (never
/// concurrently). Every invocation must yield a model with identical
/// weights — same artifact, same config — or byte identity across shard
/// counts is forfeit. Must return non-null; throw to abort construction.
using ForecasterFactory = std::function<std::shared_ptr<RaceForecaster>()>;

struct FleetConfig {
  std::size_t shards = 1;
  ShardConfig shard;
  /// Non-null: every shard uses this one (striped) cache instead of a
  /// shard-local slice — the serving registry's cross-generation dedup.
  std::shared_ptr<ForecastCache> shared_cache;
};

class FleetEngine {
 public:
  FleetEngine(ForecasterFactory factory, FleetConfig config);

  /// Stable route key for a race: FNV-1a of the race id. Pure function of
  /// the id string — survives process restarts and reshards.
  static std::uint64_t race_key(std::string_view race_id);

  /// Rng stream base for one season job — a pure function of
  /// (season_seed, race_key, origin, horizon, num_samples), derived via
  /// the keyed three-key Rng::stream so no generator state is consumed.
  static std::uint64_t job_base(std::uint64_t season_seed,
                                std::uint64_t race_key, int origin_lap,
                                int horizon, int num_samples);

  std::size_t num_shards() const;
  std::size_t shard_index(std::string_view race_id) const;
  /// Shards are handed out as shared_ptrs: holders keep a shard alive
  /// across a concurrent reshard (jobs drain on the old generation).
  std::shared_ptr<RaceShard> shard(std::size_t index) const;
  std::shared_ptr<RaceShard> shard_for(std::string_view race_id) const;

  /// Same surface and rng protocol as ParallelForecastEngine::forecast:
  /// consumes exactly one u64 from `rng`, routes by race id.
  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, util::Rng& rng);

  /// Keyed single forecast (no caller generator): routes by race id and
  /// computes on the target shard's driver-free calling thread.
  RaceSamples forecast_keyed(const telemetry::RaceLog& race, int origin_lap,
                             int horizon, int num_samples,
                             std::uint64_t base);

  struct SeasonJob {
    std::shared_ptr<const telemetry::RaceLog> race;
    int origin_lap = 0;
    int horizon = 10;
    int num_samples = 16;
  };

  /// Run a whole season (any mix of races/origins) as one workload: jobs
  /// are grouped by shard and each shard drains its group on its own
  /// driver thread, so wall clock scales with min(shards, distinct races).
  /// results[i] corresponds to jobs[i]. Bases are job-keyed (see job_base),
  /// so the result bytes are invariant to shard count and resharding.
  std::vector<RaceSamples> run_season(std::span<const SeasonJob> jobs,
                                      std::uint64_t season_seed);

  /// Live reshard: rebuild the shard set with `new_shards` shards (new
  /// forecaster instances from the factory, fresh pools, fresh shard-local
  /// caches). Concurrent forecasts drain on the shards they already hold.
  /// Model version and degradation policy are re-applied to the new set.
  void reshard(std::size_t new_shards);

  /// Forwarded to every shard engine (and re-applied after reshard).
  void set_model_version(std::uint64_t version);
  [[nodiscard]] util::Status set_degradation_policy(
      ParallelForecastEngine::DegradationPolicy policy);

  /// Aggregated engine stats across current shards.
  ParallelForecastEngine::Stats stats() const;
  ParallelForecastEngine::Degradation degradation() const;

 private:
  std::vector<std::shared_ptr<RaceShard>> build_shards(std::size_t n) const;

  ForecasterFactory factory_;
  FleetConfig config_;
  std::optional<std::uint64_t> model_version_;  // re-applied on reshard
  std::optional<ParallelForecastEngine::DegradationPolicy> policy_;

  mutable std::shared_mutex mutex_;  // guards shards_ (reshard = writer)
  std::vector<std::shared_ptr<RaceShard>> shards_;

  obs::Counter* reshards_;       // fleet.reshards
  obs::Counter* season_jobs_;    // fleet.season.jobs
  obs::Counter* season_runs_;    // fleet.season.runs
};

}  // namespace ranknet::core

#include "core/ar_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/string_util.hpp"

namespace ranknet::core {

namespace {
/// Feedback clamp: sampled ranks are fed back as the next lag input;
/// clamping keeps a rare extreme draw from destabilizing the rollout.
constexpr double kMinRankFeedback = 1.0;
constexpr double kMaxRankFeedback = 45.0;
}  // namespace

std::string SeqModelConfig::cache_key() const {
  return util::format("lstm-c%zu-t%zu-h%zu-l%zu-e%zu-v%d-s%llu", cov_dim,
                      target_dim, hidden, num_layers, embed_dim, vocab,
                      static_cast<unsigned long long>(seed));
}

LstmSeqModel::LstmSeqModel(SeqModelConfig config) : config_(config) {
  util::Rng rng(config_.seed);
  if (config_.embed_dim > 0) {
    embedding_ = std::make_unique<nn::Embedding>(
        static_cast<std::size_t>(config_.vocab), config_.embed_dim, rng,
        "car_embed");
  }
  layers_.clear();
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const std::size_t in = l == 0 ? config_.input_dim() : config_.hidden;
    layers_.push_back(std::make_unique<nn::LstmLayer>(
        in, config_.hidden, rng, util::format("lstm%zu", l)));
  }
  head_ = std::make_unique<nn::GaussianHead>(config_.hidden,
                                              config_.target_dim, rng, "head");
}

std::vector<nn::Parameter*> LstmSeqModel::params() {
  std::vector<nn::Parameter*> out;
  if (embedding_ != nullptr) {
    for (auto* p : embedding_->params()) out.push_back(p);
  }
  for (auto& layer : layers_) {
    for (auto* p : layer->params()) out.push_back(p);
  }
  for (auto* p : head_->params()) out.push_back(p);
  return out;
}

LstmSeqModel::Batch LstmSeqModel::make_batch(
    const std::vector<const features::SeqExample*>& examples,
    std::size_t dec_len) const {
  return pack_examples(examples, dec_len, scaler_, config_.target_dim,
                       config_.cov_dim);
}

LstmSeqModel::Batch LstmSeqModel::pack_examples(
    const std::vector<const features::SeqExample*>& examples,
    std::size_t dec_len, const features::StandardScaler& scaler,
    std::size_t target_dim, std::size_t cov_dim) {
  if (examples.empty()) throw std::invalid_argument("make_batch: empty");
  const std::size_t batch = examples.size();
  const std::size_t window = examples[0]->target.size();
  if (window < dec_len + 2) {
    throw std::invalid_argument("make_batch: window too short");
  }
  const std::size_t steps = window - 1;
  const std::size_t base_dim = target_dim + cov_dim;

  Batch b;
  b.batch = batch;
  b.dec_len = dec_len;
  b.car_index.resize(batch);
  b.xs_base.assign(steps, tensor::Matrix(batch, base_dim));
  b.z_dec = tensor::Matrix(dec_len * batch, target_dim);
  b.weights.assign(dec_len * batch, 1.0);

  for (std::size_t e = 0; e < batch; ++e) {
    const auto& ex = *examples[e];
    if (ex.target.size() != window) {
      throw std::invalid_argument("make_batch: ragged windows");
    }
    b.car_index[e] = ex.car_index;
    for (std::size_t t = 0; t < steps; ++t) {
      auto row = b.xs_base[t].row(e);
      // Lagged target z_t (dim 0 is the scaled rank). For multivariate
      // targets (Joint), dims 1.. are the raw auxiliary statuses at lap t,
      // taken from the leading covariate slots of the window builder.
      row[0] = scaler.transform(ex.target[t]);
      for (std::size_t j = 1; j < target_dim; ++j) {
        row[j] = ex.covariates[t][j - 1];
      }
      for (std::size_t c = 0; c < cov_dim; ++c) {
        row[target_dim + c] = ex.covariates[t + 1][c];
      }
    }
    for (std::size_t d = 0; d < dec_len; ++d) {
      const std::size_t lap = window - dec_len + d;  // target lap index
      const std::size_t out_row = d * batch + e;
      b.z_dec(out_row, 0) = scaler.transform(ex.target[lap]);
      for (std::size_t j = 1; j < target_dim; ++j) {
        b.z_dec(out_row, j) = ex.covariates[lap][j - 1];
      }
      b.weights[out_row] = ex.weight;
    }
  }
  return b;
}

namespace {

tensor::Matrix concat_cols(const tensor::Matrix& a, const tensor::Matrix& b) {
  tensor::Matrix out(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b(r, c);
  }
  return out;
}

}  // namespace

double LstmSeqModel::train_step(const Batch& batch) {
  const std::size_t steps = batch.xs_base.size();
  tensor::Matrix embed;
  if (embedding_ != nullptr) embed = embedding_->forward(batch.car_index);

  std::vector<tensor::Matrix> xs(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    xs[t] = embedding_ != nullptr ? concat_cols(batch.xs_base[t], embed)
                                  : batch.xs_base[t];
  }

  std::vector<tensor::Matrix> hs = layers_[0]->forward(xs);
  for (std::size_t l = 1; l < layers_.size(); ++l) {
    hs = layers_[l]->forward(hs);
  }

  // Gather decoder-step hidden states: rows grouped by step.
  tensor::Matrix h_dec(batch.dec_len * batch.batch, config_.hidden);
  for (std::size_t d = 0; d < batch.dec_len; ++d) {
    const std::size_t t = steps - batch.dec_len + d;
    for (std::size_t e = 0; e < batch.batch; ++e) {
      for (std::size_t c = 0; c < config_.hidden; ++c) {
        h_dec(d * batch.batch + e, c) = hs[t](e, c);
      }
    }
  }

  auto out = head_->forward(h_dec);
  tensor::Matrix dh_dec;
  const double loss =
      head_->nll_backward(out, batch.z_dec, batch.weights, dh_dec);

  // Scatter head gradients back to their timesteps.
  std::vector<tensor::Matrix> dhs(steps,
                                  tensor::Matrix(batch.batch, config_.hidden));
  for (std::size_t d = 0; d < batch.dec_len; ++d) {
    const std::size_t t = steps - batch.dec_len + d;
    for (std::size_t e = 0; e < batch.batch; ++e) {
      for (std::size_t c = 0; c < config_.hidden; ++c) {
        dhs[t](e, c) = dh_dec(d * batch.batch + e, c);
      }
    }
  }

  for (std::size_t l = layers_.size(); l-- > 0;) {
    dhs = layers_[l]->backward(dhs);
  }

  if (embedding_ != nullptr) {
    const std::size_t base_dim = config_.target_dim + config_.cov_dim;
    tensor::Matrix dembed(batch.batch, config_.embed_dim);
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t e = 0; e < batch.batch; ++e) {
        for (std::size_t c = 0; c < config_.embed_dim; ++c) {
          dembed(e, c) = dhs[t](e, base_dim + c);
        }
      }
      embedding_->backward(dembed);
    }
  }
  return loss;
}

double LstmSeqModel::evaluate(const Batch& batch) {
  const std::size_t steps = batch.xs_base.size();
  tensor::Matrix embed;
  if (embedding_ != nullptr) {
    embed = embedding_->forward_inference(batch.car_index);
  }
  std::vector<nn::LstmState> states(layers_.size());
  tensor::Matrix h_dec(batch.dec_len * batch.batch, config_.hidden);
  for (std::size_t t = 0; t < steps; ++t) {
    tensor::Matrix x = embedding_ != nullptr
                           ? concat_cols(batch.xs_base[t], embed)
                           : batch.xs_base[t];
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      x = layers_[l]->step(x, states[l]);
    }
    if (t + batch.dec_len >= steps) {
      const std::size_t d = t - (steps - batch.dec_len);
      for (std::size_t e = 0; e < batch.batch; ++e) {
        for (std::size_t c = 0; c < config_.hidden; ++c) {
          h_dec(d * batch.batch + e, c) = x(e, c);
        }
      }
    }
  }
  const auto out = head_->forward_inference(h_dec);
  return nn::GaussianHead::nll(out, batch.z_dec, batch.weights);
}

tensor::Matrix LstmSeqModel::assemble_step(
    const std::vector<std::vector<double>>& z_prev_scaled,
    const std::vector<std::vector<double>>& cov_rows,
    const tensor::Matrix& embed_rows) const {
  const std::size_t rows = z_prev_scaled.size();
  tensor::Matrix x(rows, config_.input_dim());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < config_.target_dim; ++j) {
      x(r, j) = z_prev_scaled[r][j];
    }
    for (std::size_t c = 0; c < config_.cov_dim; ++c) {
      x(r, config_.target_dim + c) = cov_rows[r][c];
    }
    for (std::size_t c = 0; c < config_.embed_dim; ++c) {
      x(r, config_.target_dim + config_.cov_dim + c) = embed_rows(r, c);
    }
  }
  return x;
}

std::vector<LstmSeqModel::StackState> LstmSeqModel::trace(
    const std::vector<std::vector<double>>& history,
    const std::vector<std::vector<std::vector<double>>>& covs,
    const std::vector<int>& car_index) const {
  const std::size_t rows = history.size();
  if (rows == 0) return {};
  const std::size_t laps = history[0].size();
  for (const auto& h : history) {
    if (h.size() != laps) {
      throw std::invalid_argument("trace: ragged history");
    }
  }
  tensor::Matrix embed(rows, config_.embed_dim);
  if (embedding_ != nullptr) {
    embed = embedding_->forward_inference(car_index);
  }

  std::vector<StackState> out;
  if (laps < 2) return out;
  out.reserve(laps - 1);
  StackState state(layers_.size());
  std::vector<std::vector<double>> z_prev(rows);
  std::vector<std::vector<double>> cov_rows(rows);
  for (std::size_t t = 0; t + 1 < laps; ++t) {
    for (std::size_t r = 0; r < rows; ++r) {
      // Multivariate targets carry their aux dims in leading covariates
      // (same convention as make_batch); univariate is just the rank.
      z_prev[r].assign(config_.target_dim, 0.0);
      z_prev[r][0] = scaler_.transform(history[r][t]);
      for (std::size_t j = 1; j < config_.target_dim; ++j) {
        z_prev[r][j] = covs[r][t][j - 1];
      }
      cov_rows[r] = std::vector<double>(covs[r][t + 1].begin(),
                                        covs[r][t + 1].end());
      cov_rows[r].resize(config_.cov_dim);
    }
    tensor::Matrix x = assemble_step(z_prev, cov_rows, embed);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      x = layers_[l]->step(x, state[l]);
    }
    out.push_back(state);
  }
  return out;
}

LstmSeqModel::StackState LstmSeqModel::replicate_state(const StackState& state,
                                                       std::size_t row,
                                                       std::size_t copies) {
  StackState out(state.size());
  for (std::size_t l = 0; l < state.size(); ++l) {
    const std::size_t hidden = state[l].h.cols();
    out[l] = nn::LstmState(copies, hidden);
    for (std::size_t r = 0; r < copies; ++r) {
      for (std::size_t c = 0; c < hidden; ++c) {
        out[l].h(r, c) = state[l].h(row, c);
        out[l].c(r, c) = state[l].c(row, c);
      }
    }
  }
  return out;
}

LstmSeqModel::StackState LstmSeqModel::concat_states(
    const std::vector<StackState>& states) {
  if (states.empty()) return {};
  const std::size_t layers = states[0].size();
  StackState out(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    std::size_t rows = 0;
    const std::size_t hidden = states[0][l].h.cols();
    for (const auto& s : states) rows += s[l].h.rows();
    out[l] = nn::LstmState(rows, hidden);
    std::size_t r0 = 0;
    for (const auto& s : states) {
      for (std::size_t r = 0; r < s[l].h.rows(); ++r, ++r0) {
        for (std::size_t c = 0; c < hidden; ++c) {
          out[l].h(r0, c) = s[l].h(r, c);
          out[l].c(r0, c) = s[l].c(r, c);
        }
      }
    }
  }
  return out;
}

void LstmSeqModel::advance(StackState& state,
                           const std::vector<std::vector<double>>& z_prev,
                           const std::vector<std::vector<double>>& covs,
                           const std::vector<int>& car_index) const {
  const std::size_t rows = z_prev.size();
  tensor::Matrix embed(rows, config_.embed_dim);
  if (embedding_ != nullptr) {
    embed = embedding_->forward_inference(car_index);
  }
  std::vector<std::vector<double>> z_scaled(rows);
  std::vector<std::vector<double>> cov_rows(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    z_scaled[r].assign(config_.target_dim, 0.0);
    z_scaled[r][0] = scaler_.transform(z_prev[r][0]);
    for (std::size_t j = 1; j < config_.target_dim; ++j) {
      z_scaled[r][j] = z_prev[r][j];
    }
    cov_rows[r] = covs[r];
    cov_rows[r].resize(config_.cov_dim);
  }
  tensor::Matrix x = assemble_step(z_scaled, cov_rows, embed);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    x = layers_[l]->step(x, state[l]);
  }
}

tensor::Matrix LstmSeqModel::sample_forward_impl(
    StackState& state, std::vector<std::vector<double>>& z_prev,
    const std::vector<std::vector<std::vector<double>>>& future_covs,
    const std::vector<int>& car_index, int horizon,
    const std::function<tensor::Matrix(const nn::GaussianHead::Output&)>&
        sampler,
    std::vector<tensor::Matrix>* all_dims) const {
  const std::size_t rows = z_prev.size();
  tensor::Matrix embed(rows, config_.embed_dim);
  if (embedding_ != nullptr) {
    embed = embedding_->forward_inference(car_index);
  }
  tensor::Matrix out(rows, static_cast<std::size_t>(horizon));
  if (all_dims != nullptr) all_dims->clear();

  std::vector<std::vector<double>> z_scaled(rows);
  std::vector<std::vector<double>> cov_rows(rows);
  for (int h = 0; h < horizon; ++h) {
    for (std::size_t r = 0; r < rows; ++r) {
      z_scaled[r].assign(config_.target_dim, 0.0);
      z_scaled[r][0] = scaler_.transform(z_prev[r][0]);
      for (std::size_t j = 1; j < config_.target_dim; ++j) {
        z_scaled[r][j] = z_prev[r][j];
      }
      cov_rows[r] = future_covs[r][static_cast<std::size_t>(h)];
      cov_rows[r].resize(config_.cov_dim);
    }
    tensor::Matrix x = assemble_step(z_scaled, cov_rows, embed);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      x = layers_[l]->step(x, state[l]);
    }
    const auto dist = head_->forward_inference(x);
    const auto sample = sampler(dist);
    tensor::Matrix raw(rows, config_.target_dim);
    for (std::size_t r = 0; r < rows; ++r) {
      const double rank = std::clamp(scaler_.inverse(sample(r, 0)),
                                     kMinRankFeedback, kMaxRankFeedback);
      raw(r, 0) = rank;
      out(r, static_cast<std::size_t>(h)) = rank;
      z_prev[r][0] = rank;
      for (std::size_t j = 1; j < config_.target_dim; ++j) {
        raw(r, j) = sample(r, j);
        z_prev[r][j] = sample(r, j);
      }
    }
    if (all_dims != nullptr) all_dims->push_back(std::move(raw));
  }
  return out;
}

tensor::Matrix LstmSeqModel::sample_forward(
    StackState& state, std::vector<std::vector<double>> z_prev,
    const std::vector<std::vector<std::vector<double>>>& future_covs,
    const std::vector<int>& car_index, int horizon, util::Rng& rng,
    std::vector<tensor::Matrix>* all_dims) const {
  return sample_forward_impl(
      state, z_prev, future_covs, car_index, horizon,
      [&rng](const nn::GaussianHead::Output& dist) {
        return nn::GaussianHead::sample(dist, rng);
      },
      all_dims);
}

tensor::Matrix LstmSeqModel::sample_forward(
    StackState& state, std::vector<std::vector<double>> z_prev,
    const std::vector<std::vector<std::vector<double>>>& future_covs,
    const std::vector<int>& car_index, int horizon,
    std::span<util::Rng> row_rngs,
    std::vector<tensor::Matrix>* all_dims) const {
  if (row_rngs.size() != z_prev.size()) {
    throw std::invalid_argument("sample_forward: one rng stream per row");
  }
  return sample_forward_impl(
      state, z_prev, future_covs, car_index, horizon,
      [row_rngs](const nn::GaussianHead::Output& dist) {
        return nn::GaussianHead::sample(dist, row_rngs);
      },
      all_dims);
}

}  // namespace ranknet::core

#include "core/ar_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/inference.hpp"
#include "tensor/workspace.hpp"
#include "util/string_util.hpp"

namespace ranknet::core {

namespace {
/// Feedback clamp: sampled ranks are fed back as the next lag input;
/// clamping keeps a rare extreme draw from destabilizing the rollout.
constexpr double kMinRankFeedback = 1.0;
constexpr double kMaxRankFeedback = 45.0;

/// One inference session per LSTM layer, all scratch from `ws`.
std::vector<nn::LstmInferenceSession> make_stack_sessions(
    const std::vector<std::unique_ptr<nn::LstmLayer>>& layers,
    std::size_t rows, tensor::Workspace& ws) {
  std::vector<nn::LstmInferenceSession> out;
  out.reserve(layers.size());
  for (const auto& layer : layers) out.emplace_back(*layer, rows, ws);
  return out;
}

/// Advance the whole stack one decode step; layer l > 0 consumes layer
/// l-1's fresh hidden state.
void run_stack_step(std::vector<nn::LstmInferenceSession>& stack) {
  stack[0].step();
  for (std::size_t l = 1; l < stack.size(); ++l) {
    stack[l].set_input(stack[l - 1].h());
    stack[l].step();
  }
}

}  // namespace

std::string SeqModelConfig::cache_key() const {
  return util::format("lstm-c%zu-t%zu-h%zu-l%zu-e%zu-v%d-s%llu", cov_dim,
                      target_dim, hidden, num_layers, embed_dim, vocab,
                      static_cast<unsigned long long>(seed));
}

LstmSeqModel::LstmSeqModel(SeqModelConfig config) : config_(config) {
  util::Rng rng(config_.seed);
  if (config_.embed_dim > 0) {
    embedding_ = std::make_unique<nn::Embedding>(
        static_cast<std::size_t>(config_.vocab), config_.embed_dim, rng,
        "car_embed");
  }
  layers_.clear();
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const std::size_t in = l == 0 ? config_.input_dim() : config_.hidden;
    layers_.push_back(std::make_unique<nn::LstmLayer>(
        in, config_.hidden, rng, util::format("lstm%zu", l)));
  }
  head_ = std::make_unique<nn::GaussianHead>(config_.hidden,
                                              config_.target_dim, rng, "head");
}

std::vector<nn::Parameter*> LstmSeqModel::params() {
  std::vector<nn::Parameter*> out;
  if (embedding_ != nullptr) {
    for (auto* p : embedding_->params()) out.push_back(p);
  }
  for (auto& layer : layers_) {
    for (auto* p : layer->params()) out.push_back(p);
  }
  for (auto* p : head_->params()) out.push_back(p);
  return out;
}

LstmSeqModel::Batch LstmSeqModel::make_batch(
    const std::vector<const features::SeqExample*>& examples,
    std::size_t dec_len) const {
  return pack_examples(examples, dec_len, scaler_, config_.target_dim,
                       config_.cov_dim);
}

LstmSeqModel::Batch LstmSeqModel::pack_examples(
    const std::vector<const features::SeqExample*>& examples,
    std::size_t dec_len, const features::StandardScaler& scaler,
    std::size_t target_dim, std::size_t cov_dim) {
  if (examples.empty()) throw std::invalid_argument("make_batch: empty");
  const std::size_t batch = examples.size();
  const std::size_t window = examples[0]->target.size();
  if (window < dec_len + 2) {
    throw std::invalid_argument("make_batch: window too short");
  }
  const std::size_t steps = window - 1;
  const std::size_t base_dim = target_dim + cov_dim;

  Batch b;
  b.batch = batch;
  b.dec_len = dec_len;
  b.car_index.resize(batch);
  b.xs_base.assign(steps, tensor::Matrix(batch, base_dim));
  b.z_dec = tensor::Matrix(dec_len * batch, target_dim);
  b.weights.assign(dec_len * batch, 1.0);

  for (std::size_t e = 0; e < batch; ++e) {
    const auto& ex = *examples[e];
    if (ex.target.size() != window) {
      throw std::invalid_argument("make_batch: ragged windows");
    }
    b.car_index[e] = ex.car_index;
    for (std::size_t t = 0; t < steps; ++t) {
      auto row = b.xs_base[t].row(e);
      // Lagged target z_t (dim 0 is the scaled rank). For multivariate
      // targets (Joint), dims 1.. are the raw auxiliary statuses at lap t,
      // taken from the leading covariate slots of the window builder.
      row[0] = scaler.transform(ex.target[t]);
      for (std::size_t j = 1; j < target_dim; ++j) {
        row[j] = ex.covariates[t][j - 1];
      }
      for (std::size_t c = 0; c < cov_dim; ++c) {
        row[target_dim + c] = ex.covariates[t + 1][c];
      }
    }
    for (std::size_t d = 0; d < dec_len; ++d) {
      const std::size_t lap = window - dec_len + d;  // target lap index
      const std::size_t out_row = d * batch + e;
      b.z_dec(out_row, 0) = scaler.transform(ex.target[lap]);
      for (std::size_t j = 1; j < target_dim; ++j) {
        b.z_dec(out_row, j) = ex.covariates[lap][j - 1];
      }
      b.weights[out_row] = ex.weight;
    }
  }
  return b;
}

namespace {

tensor::Matrix concat_cols(const tensor::Matrix& a, const tensor::Matrix& b) {
  tensor::Matrix out(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b(r, c);
  }
  return out;
}

}  // namespace

double LstmSeqModel::train_step(const Batch& batch) {
  const std::size_t steps = batch.xs_base.size();
  tensor::Matrix embed;
  if (embedding_ != nullptr) embed = embedding_->forward(batch.car_index);

  std::vector<tensor::Matrix> xs(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    xs[t] = embedding_ != nullptr ? concat_cols(batch.xs_base[t], embed)
                                  : batch.xs_base[t];
  }

  std::vector<tensor::Matrix> hs = layers_[0]->forward(xs);
  for (std::size_t l = 1; l < layers_.size(); ++l) {
    hs = layers_[l]->forward(hs);
  }

  // Gather decoder-step hidden states: rows grouped by step.
  tensor::Matrix h_dec(batch.dec_len * batch.batch, config_.hidden);
  for (std::size_t d = 0; d < batch.dec_len; ++d) {
    const std::size_t t = steps - batch.dec_len + d;
    for (std::size_t e = 0; e < batch.batch; ++e) {
      for (std::size_t c = 0; c < config_.hidden; ++c) {
        h_dec(d * batch.batch + e, c) = hs[t](e, c);
      }
    }
  }

  auto out = head_->forward(h_dec);
  tensor::Matrix dh_dec;
  const double loss =
      head_->nll_backward(out, batch.z_dec, batch.weights, dh_dec);

  // Scatter head gradients back to their timesteps.
  std::vector<tensor::Matrix> dhs(steps,
                                  tensor::Matrix(batch.batch, config_.hidden));
  for (std::size_t d = 0; d < batch.dec_len; ++d) {
    const std::size_t t = steps - batch.dec_len + d;
    for (std::size_t e = 0; e < batch.batch; ++e) {
      for (std::size_t c = 0; c < config_.hidden; ++c) {
        dhs[t](e, c) = dh_dec(d * batch.batch + e, c);
      }
    }
  }

  for (std::size_t l = layers_.size(); l-- > 0;) {
    dhs = layers_[l]->backward(dhs);
  }

  if (embedding_ != nullptr) {
    const std::size_t base_dim = config_.target_dim + config_.cov_dim;
    tensor::Matrix dembed(batch.batch, config_.embed_dim);
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t e = 0; e < batch.batch; ++e) {
        for (std::size_t c = 0; c < config_.embed_dim; ++c) {
          dembed(e, c) = dhs[t](e, base_dim + c);
        }
      }
      embedding_->backward(dembed);
    }
  }
  return loss;
}

double LstmSeqModel::evaluate(const Batch& batch) {
  const std::size_t steps = batch.xs_base.size();
  tensor::Matrix embed;
  if (embedding_ != nullptr) {
    embed = embedding_->forward_inference(batch.car_index);
  }
  std::vector<nn::LstmState> states(layers_.size());
  tensor::Matrix h_dec(batch.dec_len * batch.batch, config_.hidden);
  for (std::size_t t = 0; t < steps; ++t) {
    tensor::Matrix x = embedding_ != nullptr
                           ? concat_cols(batch.xs_base[t], embed)
                           : batch.xs_base[t];
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      x = layers_[l]->step(x, states[l]);
    }
    if (t + batch.dec_len >= steps) {
      const std::size_t d = t - (steps - batch.dec_len);
      for (std::size_t e = 0; e < batch.batch; ++e) {
        for (std::size_t c = 0; c < config_.hidden; ++c) {
          h_dec(d * batch.batch + e, c) = x(e, c);
        }
      }
    }
  }
  const auto out = head_->forward_inference(h_dec);
  return nn::GaussianHead::nll(out, batch.z_dec, batch.weights);
}

std::vector<LstmSeqModel::StackState> LstmSeqModel::trace(
    const std::vector<std::vector<double>>& history,
    const std::vector<std::vector<std::vector<double>>>& covs,
    const std::vector<int>& car_index) const {
  const std::size_t rows = history.size();
  if (rows == 0) return {};
  const std::size_t laps = history[0].size();
  for (const auto& h : history) {
    if (h.size() != laps) {
      throw std::invalid_argument("trace: ragged history");
    }
  }
  std::vector<StackState> out;
  if (laps < 2) return out;
  out.reserve(laps - 1);

  auto& ws = tensor::Workspace::thread_local_instance();
  ws.begin();
  auto stack = make_stack_sessions(layers_, rows, ws);
  tensor::MatrixView embed;
  if (config_.embed_dim > 0) {
    embed = ws.take_zeroed(rows, config_.embed_dim);
    if (embedding_ != nullptr) {
      nn::EmbeddingInferenceSession(*embedding_).gather(car_index, embed);
    }
  }

  const std::size_t td = config_.target_dim;
  StackState cur(layers_.size());
  for (std::size_t t = 0; t + 1 < laps; ++t) {
    for (std::size_t r = 0; r < rows; ++r) {
      // Multivariate targets carry their aux dims in leading covariates
      // (same convention as make_batch); univariate is just the rank.
      auto row = stack[0].x_row(r);
      row[0] = scaler_.transform(history[r][t]);
      for (std::size_t j = 1; j < td; ++j) {
        // Zero-fill short rows, same as the covariate packing below — a
        // multivariate model over a thin covariate config must not read
        // past the row.
        row[j] = j - 1 < covs[r][t].size() ? covs[r][t][j - 1] : 0.0;
      }
      const auto& cov = covs[r][t + 1];
      for (std::size_t c = 0; c < config_.cov_dim; ++c) {
        row[td + c] = c < cov.size() ? cov[c] : 0.0;
      }
      for (std::size_t c = 0; c < config_.embed_dim; ++c) {
        row[td + config_.cov_dim + c] = embed(r, c);
      }
    }
    run_stack_step(stack);
    for (std::size_t l = 0; l < stack.size(); ++l) {
      stack[l].store_state(cur[l]);
    }
    out.push_back(cur);
  }
  return out;
}

LstmSeqModel::StackState LstmSeqModel::replicate_state(const StackState& state,
                                                       std::size_t row,
                                                       std::size_t copies) {
  StackState out(state.size());
  for (std::size_t l = 0; l < state.size(); ++l) {
    const std::size_t hidden = state[l].h.cols();
    out[l] = nn::LstmState(copies, hidden);
    for (std::size_t r = 0; r < copies; ++r) {
      for (std::size_t c = 0; c < hidden; ++c) {
        out[l].h(r, c) = state[l].h(row, c);
        out[l].c(r, c) = state[l].c(row, c);
      }
    }
  }
  return out;
}

LstmSeqModel::StackState LstmSeqModel::concat_states(
    const std::vector<StackState>& states) {
  if (states.empty()) return {};
  const std::size_t layers = states[0].size();
  StackState out(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    std::size_t rows = 0;
    const std::size_t hidden = states[0][l].h.cols();
    for (const auto& s : states) rows += s[l].h.rows();
    out[l] = nn::LstmState(rows, hidden);
    std::size_t r0 = 0;
    for (const auto& s : states) {
      for (std::size_t r = 0; r < s[l].h.rows(); ++r, ++r0) {
        for (std::size_t c = 0; c < hidden; ++c) {
          out[l].h(r0, c) = s[l].h(r, c);
          out[l].c(r0, c) = s[l].c(r, c);
        }
      }
    }
  }
  return out;
}

void LstmSeqModel::advance(StackState& state,
                           const std::vector<std::vector<double>>& z_prev,
                           const std::vector<std::vector<double>>& covs,
                           const std::vector<int>& car_index) const {
  const std::size_t rows = z_prev.size();
  auto& ws = tensor::Workspace::thread_local_instance();
  ws.begin();
  auto stack = make_stack_sessions(layers_, rows, ws);
  tensor::MatrixView embed;
  if (config_.embed_dim > 0) {
    embed = ws.take_zeroed(rows, config_.embed_dim);
    if (embedding_ != nullptr) {
      nn::EmbeddingInferenceSession(*embedding_).gather(car_index, embed);
    }
  }
  const std::size_t td = config_.target_dim;
  for (std::size_t l = 0; l < stack.size(); ++l) stack[l].load_state(state[l]);
  for (std::size_t r = 0; r < rows; ++r) {
    auto row = stack[0].x_row(r);
    row[0] = scaler_.transform(z_prev[r][0]);
    for (std::size_t j = 1; j < td; ++j) row[j] = z_prev[r][j];
    const auto& cov = covs[r];
    for (std::size_t c = 0; c < config_.cov_dim; ++c) {
      row[td + c] = c < cov.size() ? cov[c] : 0.0;
    }
    for (std::size_t c = 0; c < config_.embed_dim; ++c) {
      row[td + config_.cov_dim + c] = embed(r, c);
    }
  }
  run_stack_step(stack);
  for (std::size_t l = 0; l < stack.size(); ++l) stack[l].store_state(state[l]);
}

tensor::Matrix LstmSeqModel::sample_forward_impl(
    StackState& state, std::vector<std::vector<double>>& z_prev,
    const std::vector<std::vector<std::vector<double>>>& future_covs,
    const std::vector<int>& car_index, int horizon, util::Rng* rng,
    std::span<util::Rng> row_rngs,
    std::vector<tensor::Matrix>* all_dims) const {
  const std::size_t rows = z_prev.size();
  const std::size_t td = config_.target_dim;

  // The decode loop is the serving hot path: all per-step storage comes
  // from the thread-local workspace, so after the first call on a thread
  // (and absent batch-shape growth) steps perform zero heap allocations.
  // The `rows` MC samples advance lockstep through each timestep as one
  // [rows x hidden] batch, so every LSTM/dense/head call below lands in
  // the dispatched microkernels (tensor::kernels) at full batch width —
  // and because those kernels are row-independent, the sampled bits are
  // invariant to how rows are batched or partitioned across engine tasks.
  auto& ws = tensor::Workspace::thread_local_instance();
  ws.begin();
  auto stack = make_stack_sessions(layers_, rows, ws);
  tensor::MatrixView embed;
  if (config_.embed_dim > 0) {
    embed = ws.take_zeroed(rows, config_.embed_dim);
    if (embedding_ != nullptr) {
      nn::EmbeddingInferenceSession(*embedding_).gather(car_index, embed);
    }
  }
  nn::GaussianInferenceSession head(*head_);
  tensor::MatrixView mu = ws.take(rows, td);
  tensor::MatrixView sigma = ws.take(rows, td);
  tensor::MatrixView sample = ws.take(rows, td);

  for (std::size_t l = 0; l < stack.size(); ++l) stack[l].load_state(state[l]);

  tensor::Matrix out(rows, static_cast<std::size_t>(horizon));
  if (all_dims != nullptr) all_dims->clear();

  for (int h = 0; h < horizon; ++h) {
    for (std::size_t r = 0; r < rows; ++r) {
      auto row = stack[0].x_row(r);
      row[0] = scaler_.transform(z_prev[r][0]);
      for (std::size_t j = 1; j < td; ++j) row[j] = z_prev[r][j];
      const auto& cov = future_covs[r][static_cast<std::size_t>(h)];
      for (std::size_t c = 0; c < config_.cov_dim; ++c) {
        row[td + c] = c < cov.size() ? cov[c] : 0.0;
      }
      for (std::size_t c = 0; c < config_.embed_dim; ++c) {
        row[td + config_.cov_dim + c] = embed(r, c);
      }
    }
    run_stack_step(stack);
    head.forward(stack.back().h(), mu, sigma);
    if (rng != nullptr) {
      nn::GaussianInferenceSession::sample(mu, sigma, *rng, sample);
    } else {
      nn::GaussianInferenceSession::sample(mu, sigma, row_rngs, sample);
    }
    tensor::Matrix raw;
    if (all_dims != nullptr) raw = tensor::Matrix(rows, td);
    for (std::size_t r = 0; r < rows; ++r) {
      const double rank = std::clamp(scaler_.inverse(sample(r, 0)),
                                     kMinRankFeedback, kMaxRankFeedback);
      out(r, static_cast<std::size_t>(h)) = rank;
      z_prev[r][0] = rank;
      if (all_dims != nullptr) raw(r, 0) = rank;
      for (std::size_t j = 1; j < td; ++j) {
        z_prev[r][j] = sample(r, j);
        if (all_dims != nullptr) raw(r, j) = sample(r, j);
      }
    }
    if (all_dims != nullptr) all_dims->push_back(std::move(raw));
  }
  for (std::size_t l = 0; l < stack.size(); ++l) {
    stack[l].store_state(state[l]);
  }
  return out;
}

tensor::Matrix LstmSeqModel::sample_forward_tree(
    StackState& branch_state, std::span<const std::size_t> branch_of_row,
    std::vector<std::vector<double>> z_prev,
    const std::vector<std::vector<std::vector<double>>>& future_covs,
    const std::vector<int>& car_index, int horizon,
    std::span<util::Rng> row_rngs) const {
  const std::size_t rows = z_prev.size();
  const std::size_t td = config_.target_dim;
  if (branch_of_row.size() != rows || row_rngs.size() != rows) {
    throw std::invalid_argument(
        "sample_forward_tree: one branch id and one rng stream per row");
  }
  if (rows == 0 || horizon < 1 || branch_state.empty()) {
    throw std::invalid_argument("sample_forward_tree: empty decode");
  }
  const std::size_t branches = branch_state[0].h.rows();

  // Branch b's step-1 inputs come from its first member row; the caller
  // guarantees all members carry byte-identical copies.
  std::vector<std::size_t> rep(branches, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t b = branch_of_row[r];
    if (b >= branches) {
      throw std::invalid_argument(
          "sample_forward_tree: branch id out of range");
    }
    if (rep[b] == rows) rep[b] = r;
  }
  for (std::size_t b = 0; b < branches; ++b) {
    if (rep[b] == rows) {
      throw std::invalid_argument(
          "sample_forward_tree: branch with no member rows");
    }
  }

  // One workspace epoch holds BOTH session sets: the branch-width stack
  // runs the shared step, the full-width stack the divergent suffix. Views
  // from the first set stay valid while the second runs (no begin()
  // between), per the workspace lifetime rules.
  auto& ws = tensor::Workspace::thread_local_instance();
  ws.begin();
  auto bstack = make_stack_sessions(layers_, branches, ws);
  tensor::MatrixView bembed;
  std::vector<int> branch_car(branches);
  for (std::size_t b = 0; b < branches; ++b) branch_car[b] = car_index[rep[b]];
  if (config_.embed_dim > 0) {
    bembed = ws.take_zeroed(branches, config_.embed_dim);
    if (embedding_ != nullptr) {
      nn::EmbeddingInferenceSession(*embedding_).gather(branch_car, bembed);
    }
  }
  nn::GaussianInferenceSession head(*head_);
  tensor::MatrixView bmu = ws.take(branches, td);
  tensor::MatrixView bsigma = ws.take(branches, td);

  // ---- shared prefix: decode step 1 at branch width -------------------
  for (std::size_t l = 0; l < bstack.size(); ++l) {
    bstack[l].load_state(branch_state[l]);
  }
  for (std::size_t b = 0; b < branches; ++b) {
    const std::size_t r = rep[b];
    auto row = bstack[0].x_row(b);
    row[0] = scaler_.transform(z_prev[r][0]);
    for (std::size_t j = 1; j < td; ++j) row[j] = z_prev[r][j];
    const auto& cov = future_covs[r][0];
    for (std::size_t c = 0; c < config_.cov_dim; ++c) {
      row[td + c] = c < cov.size() ? cov[c] : 0.0;
    }
    for (std::size_t c = 0; c < config_.embed_dim; ++c) {
      row[td + config_.cov_dim + c] = bembed(b, c);
    }
  }
  run_stack_step(bstack);
  head.forward(bstack.back().h(), bmu, bsigma);

  // ---- fork: expand branches to member rows ---------------------------
  auto stack = make_stack_sessions(layers_, rows, ws);
  tensor::MatrixView embed;
  if (config_.embed_dim > 0) {
    embed = ws.take_zeroed(rows, config_.embed_dim);
    if (embedding_ != nullptr) {
      nn::EmbeddingInferenceSession(*embedding_).gather(car_index, embed);
    }
  }
  tensor::MatrixView mu = ws.take(rows, td);
  tensor::MatrixView sigma = ws.take(rows, td);
  tensor::MatrixView sample = ws.take(rows, td);
  for (std::size_t l = 0; l < stack.size(); ++l) {
    stack[l].load_state_rows(bstack[l], branch_of_row);
  }

  tensor::Matrix out(rows, static_cast<std::size_t>(horizon));
  // Step-1 sampling: row r draws from its own stream against its branch's
  // (mu, sigma) — the same values independent decode would have computed
  // for that row, so the drawn bits coincide.
  nn::GaussianInferenceSession::sample_rows(bmu, bsigma, branch_of_row,
                                            row_rngs, sample);
  for (std::size_t r = 0; r < rows; ++r) {
    const double rank = std::clamp(scaler_.inverse(sample(r, 0)),
                                   kMinRankFeedback, kMaxRankFeedback);
    out(r, 0) = rank;
    z_prev[r][0] = rank;
    for (std::size_t j = 1; j < td; ++j) z_prev[r][j] = sample(r, j);
  }

  // ---- divergent suffix: steps 2..horizon at full width ---------------
  // Identical, statement for statement, to the sample_forward_impl loop.
  for (int h = 1; h < horizon; ++h) {
    for (std::size_t r = 0; r < rows; ++r) {
      auto row = stack[0].x_row(r);
      row[0] = scaler_.transform(z_prev[r][0]);
      for (std::size_t j = 1; j < td; ++j) row[j] = z_prev[r][j];
      const auto& cov = future_covs[r][static_cast<std::size_t>(h)];
      for (std::size_t c = 0; c < config_.cov_dim; ++c) {
        row[td + c] = c < cov.size() ? cov[c] : 0.0;
      }
      for (std::size_t c = 0; c < config_.embed_dim; ++c) {
        row[td + config_.cov_dim + c] = embed(r, c);
      }
    }
    run_stack_step(stack);
    head.forward(stack.back().h(), mu, sigma);
    nn::GaussianInferenceSession::sample(mu, sigma, row_rngs, sample);
    for (std::size_t r = 0; r < rows; ++r) {
      const double rank = std::clamp(scaler_.inverse(sample(r, 0)),
                                     kMinRankFeedback, kMaxRankFeedback);
      out(r, static_cast<std::size_t>(h)) = rank;
      z_prev[r][0] = rank;
      for (std::size_t j = 1; j < td; ++j) z_prev[r][j] = sample(r, j);
    }
  }
  return out;
}

tensor::Matrix LstmSeqModel::sample_forward(
    StackState& state, std::vector<std::vector<double>> z_prev,
    const std::vector<std::vector<std::vector<double>>>& future_covs,
    const std::vector<int>& car_index, int horizon, util::Rng& rng,
    std::vector<tensor::Matrix>* all_dims) const {
  return sample_forward_impl(state, z_prev, future_covs, car_index, horizon,
                             &rng, {}, all_dims);
}

tensor::Matrix LstmSeqModel::sample_forward(
    StackState& state, std::vector<std::vector<double>> z_prev,
    const std::vector<std::vector<std::vector<double>>>& future_covs,
    const std::vector<int>& car_index, int horizon,
    std::span<util::Rng> row_rngs,
    std::vector<tensor::Matrix>* all_dims) const {
  if (row_rngs.size() != z_prev.size()) {
    throw std::invalid_argument("sample_forward: one rng stream per row");
  }
  return sample_forward_impl(state, z_prev, future_covs, car_index, horizon,
                             nullptr, row_rngs, all_dims);
}

}  // namespace ranknet::core

// Baseline forecasters of the paper's Table III:
//   CurRank      — naive persistence (rank never changes),
//   ARIMA        — per-series statistical model with Gaussian intervals,
//   ML regressors— RandomForest / SVM / XGBoost on lag+status features,
//                  pointwise forecasts in the style of [30].
#pragma once

#include <functional>
#include <memory>

#include "core/forecaster.hpp"
#include "ml/arima.hpp"
#include "ml/regressor.hpp"
#include "telemetry/race_log.hpp"

namespace ranknet::core {

/// Cars a baseline emits at an origin: everyone still running at that lap.
std::vector<int> running_cars(const telemetry::RaceLog& race, int origin_lap);

/// Naive baseline: the future rank equals the rank at the origin lap.
class CurRankForecaster : public RaceForecaster,
                          public PartitionableForecaster {
 public:
  std::string name() const override { return "CurRank"; }
  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, util::Rng& rng) override;

  void prepare(const telemetry::RaceLog&) override {}
  std::vector<int> forecast_cars(const telemetry::RaceLog& race,
                                 int origin_lap) override {
    return running_cars(race, origin_lap);
  }
  RaceSamples forecast_partition(const telemetry::RaceLog& race,
                                 int origin_lap, int horizon, int num_samples,
                                 std::uint64_t base,
                                 std::span<const int> cars) override;
};

/// Per-car ARIMA fitted on the rank history up to the origin at every call.
/// Sampling draws each car's paths from its own child stream keyed by the
/// car id, so per-car forecasts are independent of the car subset.
class ArimaForecaster : public RaceForecaster,
                        public PartitionableForecaster {
 public:
  explicit ArimaForecaster(ml::ArimaConfig config = {});
  std::string name() const override { return "ARIMA"; }
  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, util::Rng& rng) override;

  void prepare(const telemetry::RaceLog&) override {}
  std::vector<int> forecast_cars(const telemetry::RaceLog& race,
                                 int origin_lap) override {
    return running_cars(race, origin_lap);
  }
  RaceSamples forecast_partition(const telemetry::RaceLog& race,
                                 int origin_lap, int horizon, int num_samples,
                                 std::uint64_t base,
                                 std::span<const int> cars) override;

 private:
  ml::ArimaConfig config_;
};

/// Feature extraction shared by the ML regression baselines: a lag window
/// of recent ranks plus current race-status features, predicting the rank
/// `horizon` laps ahead (pointwise, per [30]).
struct MlFeatureConfig {
  int lag = 5;  // number of recent ranks
  std::size_t dim() const { return static_cast<std::size_t>(lag) + 5; }
};

/// Builds (x, y) rows for a fixed horizon from a set of races.
struct MlDataset {
  tensor::Matrix x;
  std::vector<double> y;
};
MlDataset build_ml_dataset(const std::vector<telemetry::RaceLog>& races,
                           int horizon, const MlFeatureConfig& config,
                           std::size_t max_rows = 0, std::uint64_t seed = 3);

/// Wraps any ml::Regressor as a (deterministic) race forecaster. The
/// regressor must have been trained for the same horizon; intermediate
/// horizon laps are linearly interpolated from the current rank.
class MlRegressorForecaster : public RaceForecaster,
                              public PartitionableForecaster {
 public:
  MlRegressorForecaster(std::string name, std::shared_ptr<ml::Regressor> model,
                        MlFeatureConfig config, int trained_horizon);
  std::string name() const override { return name_; }
  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, util::Rng& rng) override;

  void prepare(const telemetry::RaceLog&) override {}
  std::vector<int> forecast_cars(const telemetry::RaceLog& race,
                                 int origin_lap) override {
    return running_cars(race, origin_lap);
  }
  RaceSamples forecast_partition(const telemetry::RaceLog& race,
                                 int origin_lap, int horizon, int num_samples,
                                 std::uint64_t base,
                                 std::span<const int> cars) override;

  /// Feature row for (car, origin); returns false when history is too short.
  static bool features_at(const telemetry::CarSeries& car,
                          const telemetry::RaceLog& race, int origin_lap,
                          const MlFeatureConfig& config,
                          std::span<double> out);

 private:
  std::string name_;
  std::shared_ptr<ml::Regressor> model_;
  MlFeatureConfig config_;
  int trained_horizon_;
};

}  // namespace ranknet::core

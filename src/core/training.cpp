#include "core/training.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "nn/adam.hpp"
#include "nn/serialize.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace ranknet::core {

std::string TrainConfig::cache_key() const {
  return util::format("tr-e%d-b%zu-w%zu-s%llu", max_epochs, batch_size,
                      max_windows, static_cast<unsigned long long>(seed));
}

TrainConfig default_train_config() {
  TrainConfig cfg;
  if (const char* fast = std::getenv("RANKNET_FAST");
      fast != nullptr && fast[0] != '\0') {
    cfg.max_epochs = 4;
    cfg.max_windows = 1200;
    cfg.max_val_windows = 300;
  }
  return cfg;
}

features::StandardScaler fit_rank_scaler(
    const std::vector<telemetry::RaceLog>& races) {
  std::vector<double> ranks;
  for (const auto& race : races) {
    for (const auto& rec : race.records()) {
      ranks.push_back(static_cast<double>(rec.rank));
    }
  }
  features::StandardScaler scaler;
  scaler.fit(ranks);
  return scaler;
}

namespace {

std::vector<features::SeqExample> subsample(
    std::vector<features::SeqExample> windows, std::size_t max_count,
    util::Rng& rng) {
  if (windows.size() <= max_count) return windows;
  rng.shuffle(windows);
  windows.resize(max_count);
  return windows;
}

/// Generic epoch loop shared by the LSTM and Transformer trainers.
template <typename Model>
TrainStats run_training(Model& model,
                        const std::vector<telemetry::RaceLog>& train_races,
                        const std::vector<telemetry::RaceLog>& val_races,
                        const features::CarVocab& vocab,
                        const features::WindowConfig& wcfg,
                        const TrainConfig& tcfg) {
  util::Timer timer;
  util::Rng rng(tcfg.seed);
  model.set_scaler(fit_rank_scaler(train_races));

  auto train_windows =
      subsample(features::build_windows(train_races, vocab, wcfg),
                tcfg.max_windows, rng);
  auto val_windows = subsample(features::build_windows(val_races, vocab, wcfg),
                               tcfg.max_val_windows, rng);
  if (train_windows.empty()) {
    throw std::runtime_error("train: no training windows (races too short?)");
  }
  util::log_info(util::format("training %s: %zu train / %zu val windows",
                              typeid(Model).name(), train_windows.size(),
                              val_windows.size()));

  const auto dec_len = static_cast<std::size_t>(wcfg.decoder_length);
  typename Model::Batch val_batch;
  if (!val_windows.empty()) {
    std::vector<const features::SeqExample*> ptrs;
    for (const auto& w : val_windows) ptrs.push_back(&w);
    val_batch = model.make_batch(ptrs, dec_len);
  }

  nn::AdamConfig adam_config;
  adam_config.lr = tcfg.lr;
  nn::Adam adam(model.params(), adam_config);

  TrainStats stats;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<tensor::Matrix> best_params;
  int stall = 0;
  double lr = tcfg.lr;

  std::vector<std::size_t> order(train_windows.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < tcfg.max_epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += tcfg.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + tcfg.batch_size);
      if (end - start < 2) continue;
      std::vector<const features::SeqExample*> ptrs;
      ptrs.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        ptrs.push_back(&train_windows[order[i]]);
      }
      const auto batch = model.make_batch(ptrs, dec_len);
      epoch_loss += model.train_step(batch);
      adam.step();
      ++batches;
    }
    epoch_loss /= std::max<std::size_t>(1, batches);
    stats.train_loss.push_back(epoch_loss);

    double val_loss = std::numeric_limits<double>::quiet_NaN();
    if (!val_windows.empty()) {
      val_loss = model.evaluate(val_batch);
    } else {
      val_loss = epoch_loss;  // fall back to training loss
    }
    stats.val_loss.push_back(val_loss);
    util::log_info(util::format("  epoch %2d: train %.4f val %.4f lr %.2e",
                                epoch, epoch_loss, val_loss, lr));

    if (val_loss < best_val - 1e-4) {
      best_val = val_loss;
      stall = 0;
      best_params.clear();
      for (auto* p : model.params()) best_params.push_back(p->value);
    } else if (++stall >= tcfg.patience) {
      // Paper's scheme: decay the learning rate 0.5x on plateau; stop once
      // it reaches the minimum.
      lr *= tcfg.lr_decay;
      stall = 0;
      if (lr < tcfg.min_lr) break;
      adam.set_lr(lr);
    }
  }

  if (!best_params.empty()) {
    auto params = model.params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_params[i];
      params[i]->zero_grad();
    }
  }
  stats.best_val = best_val;
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace

TrainStats train_sequence_model(
    LstmSeqModel& model, const std::vector<telemetry::RaceLog>& train_races,
    const std::vector<telemetry::RaceLog>& val_races,
    const features::CarVocab& vocab, const features::WindowConfig& wcfg,
    const TrainConfig& tcfg) {
  return run_training(model, train_races, val_races, vocab, wcfg, tcfg);
}

IncrementalStats incremental_update_sequence_model(
    LstmSeqModel& model, const std::vector<telemetry::RaceLog>& fresh_races,
    const features::CarVocab& vocab, const features::WindowConfig& wcfg,
    const IncrementalConfig& icfg) {
  IncrementalStats stats;
  util::Rng rng(icfg.seed);
  // Deliberately no set_scaler here: the fresh window is small and recent,
  // and re-normalizing under already-trained weights would look like a
  // distribution shift to the network.
  auto windows = subsample(features::build_windows(fresh_races, vocab, wcfg),
                           icfg.max_windows, rng);
  stats.windows = windows.size();
  if (windows.empty()) return stats;

  const auto dec_len = static_cast<std::size_t>(wcfg.decoder_length);
  std::vector<const features::SeqExample*> all_ptrs;
  all_ptrs.reserve(windows.size());
  for (const auto& w : windows) all_ptrs.push_back(&w);
  const auto full_batch = model.make_batch(all_ptrs, dec_len);
  stats.nll_before = model.evaluate(full_batch);

  nn::AdamConfig adam_config;
  adam_config.lr = icfg.lr;
  nn::Adam adam(model.params(), adam_config);

  std::vector<std::size_t> order(windows.size());
  std::iota(order.begin(), order.end(), 0);
  std::size_t cursor = 0;
  for (int step = 0; step < icfg.steps; ++step) {
    if (cursor >= order.size()) cursor = 0;
    if (cursor == 0) rng.shuffle(order);
    const std::size_t end =
        std::min(order.size(), cursor + icfg.batch_size);
    std::vector<const features::SeqExample*> ptrs;
    ptrs.reserve(end - cursor);
    for (std::size_t i = cursor; i < end; ++i) {
      ptrs.push_back(&windows[order[i]]);
    }
    cursor = end;
    if (ptrs.size() < 2) continue;  // a 1-row batch destabilizes the stats
    const auto batch = model.make_batch(ptrs, dec_len);
    model.train_step(batch);
    adam.step();
    ++stats.steps_run;
  }
  stats.nll_after = model.evaluate(full_batch);
  return stats;
}

CandidateFitter make_incremental_lstm_fitter(
    std::shared_ptr<LstmSeqModel> base, features::CarVocab vocab,
    features::WindowConfig wcfg, IncrementalConfig icfg, StatusSource source) {
  return [base = std::move(base), vocab = std::move(vocab),
          wcfg = std::move(wcfg), icfg,
          source](const telemetry::RaceWindow& train, std::uint64_t seed,
                  const std::string& artifact_path)
             -> util::Result<FittedCandidate> {
    // Clone the champion weights into a fresh model; the candidate must
    // never mutate what is serving.
    auto candidate = std::make_shared<LstmSeqModel>(base->config());
    const auto src = base->params();
    auto dst = candidate->params();
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i]->value = src[i]->value;
    }
    candidate->set_scaler(base->scaler());
    candidate->set_calibration(base->calibration());

    std::vector<telemetry::RaceLog> fresh;
    fresh.reserve(train.size());
    for (const auto& race : train) fresh.push_back(*race);

    IncrementalConfig run_cfg = icfg;
    run_cfg.seed = seed;
    const IncrementalStats stats = incremental_update_sequence_model(
        *candidate, fresh, vocab, wcfg, run_cfg);
    if (stats.windows == 0) {
      return util::Status::failed_precondition(
          "incremental fit: no windows from the train races");
    }
    nn::save_params(artifact_path, candidate->params(),
                    candidate->calibration());

    FittedCandidate out;
    out.forecaster = std::make_shared<RankNetForecaster>(
        candidate, nullptr, vocab, wcfg.covariates, source, "online-lstm");
    out.artifact_path = artifact_path;
    out.summary =
        util::format("lstm nll %.4f->%.4f windows=%zu steps=%d",
                     stats.nll_before, stats.nll_after, stats.windows,
                     stats.steps_run);
    return out;
  };
}

TrainStats train_transformer_model(
    TransformerSeqModel& model,
    const std::vector<telemetry::RaceLog>& train_races,
    const std::vector<telemetry::RaceLog>& val_races,
    const features::CarVocab& vocab, const features::WindowConfig& wcfg,
    const TrainConfig& tcfg) {
  return run_training(model, train_races, val_races, vocab, wcfg, tcfg);
}

}  // namespace ranknet::core

#include "core/online_trainer.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/string_util.hpp"

namespace ranknet::core {

const char* trace_action_name(TraceEvent::Action action) {
  switch (action) {
    case TraceEvent::Action::kSkipped: return "skipped";
    case TraceEvent::Action::kFitFailed: return "fit_failed";
    case TraceEvent::Action::kRejectedGate: return "rejected_gate";
    case TraceEvent::Action::kRejectedTarget: return "rejected_target";
    case TraceEvent::Action::kPromoted: return "promoted";
    case TraceEvent::Action::kRolledBack: return "rolled_back";
  }
  return "unknown";
}

OnlineTrainer::OnlineTrainer(
    OnlineTrainerConfig config, telemetry::ReplayBuffer& replay,
    CandidateFitter fitter, PromotionTarget& target,
    std::function<std::shared_ptr<RaceForecaster>()> champion_view)
    : config_(std::move(config)),
      replay_(replay),
      fitter_(std::move(fitter)),
      target_(target),
      champion_view_(std::move(champion_view)),
      gate_(config_.gate),
      clock_(util::steady_clock_fn()) {
  auto& reg = obs::Registry::instance();
  c_steps_ = &reg.counter("serve.online.steps");
  c_skipped_ = &reg.counter("serve.online.skipped");
  c_fit_failures_ = &reg.counter("serve.online.fit_failures");
  c_fitted_ = &reg.counter("serve.online.candidates_fitted");
  c_rejected_gate_ = &reg.counter("serve.online.rejected_gate");
  c_rejected_target_ = &reg.counter("serve.online.rejected_target");
  c_promoted_ = &reg.counter("serve.online.promoted");
  c_rolled_back_ = &reg.counter("serve.online.rolled_back");
  c_probation_checks_ = &reg.counter("serve.online.probation_checks");
  c_probe_points_ = &reg.counter("serve.online.probe_points");
  g_champion_version_ = &reg.gauge("serve.online.champion_version");
}

OnlineTrainer::~OnlineTrainer() { stop(); }

void OnlineTrainer::set_clock(util::ClockFn clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

TraceEvent OnlineTrainer::book(TraceEvent event) {
  switch (event.action) {
    case TraceEvent::Action::kSkipped: c_skipped_->add(); break;
    case TraceEvent::Action::kFitFailed: c_fit_failures_->add(); break;
    case TraceEvent::Action::kRejectedGate: c_rejected_gate_->add(); break;
    case TraceEvent::Action::kRejectedTarget: c_rejected_target_->add(); break;
    case TraceEvent::Action::kPromoted:
      c_promoted_->add();
      g_champion_version_->set(static_cast<double>(event.version));
      break;
    case TraceEvent::Action::kRolledBack:
      c_rolled_back_->add();
      g_champion_version_->set(static_cast<double>(event.version));
      break;
  }
  trace_.push_back(event);
  return event;
}

TraceEvent OnlineTrainer::step() {
  std::lock_guard<std::mutex> lock(mutex_);
  return step_locked();
}

TraceEvent OnlineTrainer::step_locked() {
  c_steps_->add();
  TraceEvent event;
  event.step = ++steps_run_;

  const telemetry::RaceWindow probe =
      replay_.window(config_.train_window, config_.probe_window);

  // Probation check first: a bad promotion must be reversible before the
  // trainer spends a fit on the next candidate.
  if (probation_remaining_ > 0 && displaced_ && !probe.empty()) {
    c_probation_checks_->add();
    ShadowScorer scorer(config_.probe, clock_);
    auto champion = champion_view_();
    const ShadowMetrics now = scorer.score(*champion, probe);
    const ShadowMetrics before = scorer.score(*displaced_, probe);
    c_probe_points_->add(now.probe_points + before.probe_points);
    if (before.probe_points > 0 &&
        before.mae + config_.rollback_mae_margin < now.mae) {
      const std::string why = util::format(
          "probation: displaced mae=%.6g beats champion mae=%.6g", before.mae,
          now.mae);
      auto restored = target_.rollback(why);
      if (restored.ok()) {
        event.action = TraceEvent::Action::kRolledBack;
        event.version = restored.value();
        event.detail = why;
        displaced_.reset();
        probation_remaining_ = 0;
        return book(event);
      }
      // A failed rollback leaves the (suspect) champion serving; keep
      // probation open so the next step retries.
      event.action = TraceEvent::Action::kRejectedTarget;
      event.detail = "rollback failed: " + restored.status().message();
      return book(event);
    }
    if (--probation_remaining_ == 0) displaced_.reset();
  }

  const telemetry::RaceWindow train = replay_.newest(config_.train_window);
  if (train.size() < config_.train_window ||
      probe.size() < config_.probe_window) {
    event.action = TraceEvent::Action::kSkipped;
    event.detail = util::format("buffered=%zu need=%zu", replay_.size(),
                                config_.train_window + config_.probe_window);
    return book(event);
  }

  const std::uint64_t fit_idx = ++fits_attempted_;
  const std::string artifact_path =
      config_.artifact_dir +
      util::format("/candidate_%llu.bin",
                   static_cast<unsigned long long>(fit_idx));
  auto fitted = fitter_(train, util::Rng::stream(config_.seed, fit_idx)(),
                        artifact_path);
  if (!fitted.ok()) {
    event.action = TraceEvent::Action::kFitFailed;
    event.detail = fitted.status().message();
    return book(event);
  }
  c_fitted_->add();

  ShadowScorer scorer(config_.probe, clock_);
  auto champion = champion_view_();
  const ShadowMetrics champ = scorer.score(*champion, probe);
  const ShadowMetrics cand = scorer.score(*fitted.value().forecaster, probe);
  c_probe_points_->add(champ.probe_points + cand.probe_points);

  const GateDecision decision = gate_.evaluate(champ, cand);
  if (!decision.promote) {
    event.action = TraceEvent::Action::kRejectedGate;
    event.detail = decision.reason + " | champ " + champ.to_string() +
                   " | cand " + cand.to_string();
    return book(event);
  }

  auto installed = target_.promote(fitted.value().artifact_path);
  if (!installed.ok()) {
    event.action = TraceEvent::Action::kRejectedTarget;
    event.detail = installed.status().message();
    return book(event);
  }
  // Pin the pre-swap champion for probation re-scoring: `champion` was
  // captured before promote(), so it still views the displaced model.
  displaced_ = std::move(champion);
  probation_remaining_ = config_.probation_steps;
  event.action = TraceEvent::Action::kPromoted;
  event.version = installed.value();
  event.detail = fitted.value().summary + " | champ " + champ.to_string() +
                 " | cand " + cand.to_string();
  return book(event);
}

void OnlineTrainer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (worker_running_) return;
  stopping_ = false;
  pending_steps_ = 0;
  worker_running_ = true;
  worker_ = std::thread([this] { worker_main(); });
}

void OnlineTrainer::notify() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_steps_;
  }
  cv_.notify_one();
}

void OnlineTrainer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!worker_running_) return;
    stopping_ = true;
  }
  cv_.notify_one();
  worker_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  worker_running_ = false;
}

void OnlineTrainer::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return pending_steps_ > 0 || stopping_; });
    // Drain every enqueued step before honoring stop, so stop() after N
    // notifies always observes N steps (async trace == sync trace).
    if (pending_steps_ == 0 && stopping_) return;
    --pending_steps_;
    step_locked();
  }
}

std::vector<TraceEvent> OnlineTrainer::trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trace_;
}

std::string OnlineTrainer::trace_string() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& e : trace_) {
    out += util::format("step=%llu action=%s version=%llu detail=%s\n",
                        static_cast<unsigned long long>(e.step),
                        trace_action_name(e.action),
                        static_cast<unsigned long long>(e.version),
                        e.detail.c_str());
  }
  return out;
}

std::size_t OnlineTrainer::probation_remaining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return probation_remaining_;
}

}  // namespace ranknet::core

#include "core/metrics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ranknet::core {

double mae(std::span<const double> predicted, std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("mae: size mismatch");
  }
  if (predicted.empty()) return std::numeric_limits<double>::quiet_NaN();
  double total = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    total += std::abs(predicted[i] - actual[i]);
  }
  return total / static_cast<double>(predicted.size());
}

double rho_risk(std::span<const double> quantile_predictions,
                std::span<const double> actual, double rho) {
  if (quantile_predictions.size() != actual.size()) {
    throw std::invalid_argument("rho_risk: size mismatch");
  }
  if (actual.empty()) return std::numeric_limits<double>::quiet_NaN();
  double loss = 0.0, denom = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double zhat = quantile_predictions[i];
    const double z = actual[i];
    const double indicator = z < zhat ? 1.0 : 0.0;
    loss += 2.0 * (zhat - z) * (indicator - rho);
    denom += std::abs(z);
  }
  return denom > 0.0 ? loss / denom
                     : std::numeric_limits<double>::quiet_NaN();
}

double sign_accuracy(std::span<const double> predicted_change,
                     std::span<const double> actual_change) {
  if (predicted_change.size() != actual_change.size()) {
    throw std::invalid_argument("sign_accuracy: size mismatch");
  }
  if (actual_change.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::size_t correct = 0;
  const auto sign = [](double v) { return v > 0.0 ? 1 : (v < 0.0 ? -1 : 0); };
  for (std::size_t i = 0; i < actual_change.size(); ++i) {
    if (sign(predicted_change[i]) == sign(actual_change[i])) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(actual_change.size());
}

double accuracy(const std::vector<bool>& correct) {
  if (correct.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::size_t n = 0;
  for (bool c : correct) {
    if (c) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(correct.size());
}

}  // namespace ranknet::core

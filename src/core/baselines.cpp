#include "core/baselines.hpp"

#include <algorithm>

#include "features/transforms.hpp"
#include "util/rng.hpp"

namespace ranknet::core {

std::vector<int> running_cars(const telemetry::RaceLog& race, int origin_lap) {
  std::vector<int> cars;
  const auto origin = static_cast<std::size_t>(origin_lap);
  for (int car_id : race.car_ids()) {
    if (race.car(car_id).laps() >= origin) cars.push_back(car_id);
  }
  return cars;
}

RaceSamples CurRankForecaster::forecast(const telemetry::RaceLog& race,
                                        int origin_lap, int horizon,
                                        int num_samples, util::Rng& rng) {
  const std::uint64_t base = rng();
  return forecast_partition(race, origin_lap, horizon, num_samples, base,
                            forecast_cars(race, origin_lap));
}

RaceSamples CurRankForecaster::forecast_partition(
    const telemetry::RaceLog& race, int origin_lap, int horizon,
    int /*num_samples*/, std::uint64_t /*base*/, std::span<const int> cars) {
  RaceSamples out;
  const auto origin = static_cast<std::size_t>(origin_lap);
  for (int car_id : cars) {
    const auto& car = race.car(car_id);
    if (car.laps() < origin) continue;
    tensor::Matrix m(1, static_cast<std::size_t>(horizon));
    for (std::size_t h = 0; h < m.cols(); ++h) {
      m(0, h) = car.rank[origin - 1];
    }
    out.emplace(car_id, std::move(m));
  }
  return out;
}

ArimaForecaster::ArimaForecaster(ml::ArimaConfig config) : config_(config) {}

RaceSamples ArimaForecaster::forecast(const telemetry::RaceLog& race,
                                      int origin_lap, int horizon,
                                      int num_samples, util::Rng& rng) {
  const std::uint64_t base = rng();
  return forecast_partition(race, origin_lap, horizon, num_samples, base,
                            forecast_cars(race, origin_lap));
}

RaceSamples ArimaForecaster::forecast_partition(const telemetry::RaceLog& race,
                                                int origin_lap, int horizon,
                                                int num_samples,
                                                std::uint64_t base,
                                                std::span<const int> cars) {
  RaceSamples out;
  const auto origin = static_cast<std::size_t>(origin_lap);
  for (int car_id : cars) {
    const auto& car = race.car(car_id);
    if (car.laps() < origin) continue;
    ml::Arima model(config_);
    model.fit(std::span<const double>(car.rank.data(), origin));
    // Child stream keyed by the car id: the paths a car draws are the same
    // whichever partition (or thread) computes them.
    util::Rng car_rng =
        util::Rng::stream(base, static_cast<std::uint64_t>(car_id));
    const auto paths = model.sample_paths(horizon, num_samples, car_rng);
    tensor::Matrix m(paths.size(), static_cast<std::size_t>(horizon));
    for (std::size_t s = 0; s < paths.size(); ++s) {
      for (std::size_t h = 0; h < m.cols(); ++h) {
        m(s, h) = std::clamp(paths[s][h], 1.0, 45.0);
      }
    }
    out.emplace(car_id, std::move(m));
  }
  return out;
}

bool MlRegressorForecaster::features_at(const telemetry::CarSeries& car,
                                        const telemetry::RaceLog& race,
                                        int origin_lap,
                                        const MlFeatureConfig& config,
                                        std::span<double> out) {
  const auto origin = static_cast<std::size_t>(origin_lap);
  if (car.laps() < origin || origin < static_cast<std::size_t>(config.lag)) {
    return false;
  }
  // Lag window of ranks, most recent last.
  for (int i = 0; i < config.lag; ++i) {
    out[static_cast<std::size_t>(i)] =
        car.rank[origin - static_cast<std::size_t>(config.lag - i)];
  }
  const auto status = features::compute_status_features(car);
  const std::size_t idx = origin - 1;
  std::size_t j = static_cast<std::size_t>(config.lag);
  out[j++] = status.track_status[idx];
  out[j++] = status.lap_status[idx];
  out[j++] = status.caution_laps[idx] / 10.0;
  out[j++] = status.pit_age[idx] / 40.0;
  out[j++] = static_cast<double>(origin) /
             static_cast<double>(std::max(1, race.info().total_laps));
  return true;
}

MlDataset build_ml_dataset(const std::vector<telemetry::RaceLog>& races,
                           int horizon, const MlFeatureConfig& config,
                           std::size_t max_rows, std::uint64_t seed) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (const auto& race : races) {
    for (int car_id : race.car_ids()) {
      const auto& car = race.car(car_id);
      for (std::size_t origin = static_cast<std::size_t>(config.lag);
           origin + static_cast<std::size_t>(horizon) <= car.laps();
           ++origin) {
        std::vector<double> x(config.dim());
        if (!MlRegressorForecaster::features_at(
                car, race, static_cast<int>(origin), config, x)) {
          continue;
        }
        rows.push_back(std::move(x));
        targets.push_back(
            car.rank[origin - 1 + static_cast<std::size_t>(horizon)]);
      }
    }
  }
  if (max_rows > 0 && rows.size() > max_rows) {
    util::Rng rng(seed);
    // Deterministic downsample: shuffle an index list and keep a prefix.
    std::vector<std::size_t> keep(rows.size());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
    rng.shuffle(keep);
    keep.resize(max_rows);
    std::vector<std::vector<double>> r2;
    std::vector<double> t2;
    r2.reserve(max_rows);
    t2.reserve(max_rows);
    for (auto i : keep) {
      r2.push_back(std::move(rows[i]));
      t2.push_back(targets[i]);
    }
    rows = std::move(r2);
    targets = std::move(t2);
  }
  MlDataset ds;
  ds.x = tensor::Matrix(rows.size(), config.dim());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < config.dim(); ++c) ds.x(r, c) = rows[r][c];
  }
  ds.y = std::move(targets);
  return ds;
}

MlRegressorForecaster::MlRegressorForecaster(
    std::string name, std::shared_ptr<ml::Regressor> model,
    MlFeatureConfig config, int trained_horizon)
    : name_(std::move(name)),
      model_(std::move(model)),
      config_(config),
      trained_horizon_(trained_horizon) {}

RaceSamples MlRegressorForecaster::forecast(const telemetry::RaceLog& race,
                                            int origin_lap, int horizon,
                                            int num_samples, util::Rng& rng) {
  const std::uint64_t base = rng();
  return forecast_partition(race, origin_lap, horizon, num_samples, base,
                            forecast_cars(race, origin_lap));
}

RaceSamples MlRegressorForecaster::forecast_partition(
    const telemetry::RaceLog& race, int origin_lap, int horizon,
    int /*num_samples*/, std::uint64_t /*base*/, std::span<const int> cars) {
  RaceSamples out;
  std::vector<double> x(config_.dim());
  for (int car_id : cars) {
    const auto& car = race.car(car_id);
    if (car.laps() < static_cast<std::size_t>(origin_lap)) continue;
    tensor::Matrix m(1, static_cast<std::size_t>(horizon));
    const double current = car.rank[static_cast<std::size_t>(origin_lap) - 1];
    double endpoint = current;
    if (features_at(car, race, origin_lap, config_, x)) {
      endpoint = std::clamp(model_->predict_one(x), 1.0, 45.0);
    }
    // The regressor is trained for its fixed horizon; intermediate laps are
    // interpolated toward its endpoint prediction (deterministic model).
    for (int h = 1; h <= horizon; ++h) {
      const double frac =
          std::min(1.0, static_cast<double>(h) /
                            static_cast<double>(trained_horizon_));
      m(0, static_cast<std::size_t>(h - 1)) =
          current + frac * (endpoint - current);
    }
    out.emplace(car_id, std::move(m));
  }
  return out;
}

}  // namespace ranknet::core

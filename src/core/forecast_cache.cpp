#include "core/forecast_cache.hpp"

#include <algorithm>
#include <string>

namespace ranknet::core {

std::uint64_t race_state_digest(const telemetry::RaceLog& race) {
  Fnv1a h;
  const std::string id = race.id();
  h.update_bytes(id.data(), id.size());
  h.update_u64(static_cast<std::uint64_t>(race.num_laps()));
  for (int car_id : race.car_ids()) {
    const auto& car = race.car(car_id);
    h.update_u64(static_cast<std::uint64_t>(car_id));
    h.update_u64(static_cast<std::uint64_t>(car.laps()));
    for (std::size_t t = 0; t < car.laps(); ++t) {
      h.update_double(car.rank[t]);
      h.update_double(car.lap_time[t]);
      h.update_u64(static_cast<std::uint64_t>(car.lap_status[t]));
      h.update_u64(static_cast<std::uint64_t>(car.track_status[t]));
    }
  }
  return h.digest();
}

CacheCounters& CacheCounters::instance() {
  static CacheCounters inst;
  return inst;
}

CacheCounters::CacheCounters() {
  auto& reg = obs::Registry::instance();
  hits_ = &reg.counter("forecast_cache.hits");
  misses_ = &reg.counter("forecast_cache.misses");
  insertions_ = &reg.counter("forecast_cache.insertions");
  evictions_ = &reg.counter("forecast_cache.evictions");
}

void CacheCounters::reset() {
  hits_->reset();
  misses_->reset();
  insertions_->reset();
  evictions_->reset();
}

ForecastCache::ForecastCache(std::size_t capacity, std::size_t stripes)
    : capacity_(capacity == 0 ? 1 : capacity) {
  const std::size_t n = stripes == 0 ? 1 : stripes;
  // Distribute capacity so the per-stripe bounds SUM to the configured
  // total: the first (capacity % n) stripes get one extra slot. Every
  // stripe keeps a >= 1 floor — the documented capacity < stripes
  // exception where the total bound becomes n (see header).
  stripe_capacity_.resize(n);
  const std::size_t base = capacity_ / n;
  const std::size_t extra = capacity_ % n;
  for (std::size_t i = 0; i < n; ++i) {
    stripe_capacity_[i] = std::max<std::size_t>(1, base + (i < extra ? 1 : 0));
  }
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

std::size_t ForecastCache::stripe_of(const ForecastCacheKey& key) const {
  // Remix the key hash before taking the modulus: the unordered_map inside
  // each stripe buckets by the same hash, and reusing the low bits for both
  // decisions would correlate stripe choice with bucket occupancy.
  std::uint64_t h = key.hash();
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::size_t>(h % stripes_.size());
}

std::optional<RaceSamples> ForecastCache::get(const ForecastCacheKey& key) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    CacheCounters::instance().record_miss();
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  CacheCounters::instance().record_hit();
  return it->second->second;  // deep copy out
}

void ForecastCache::put(const ForecastCacheKey& key, const RaceSamples& value) {
  const std::size_t idx = stripe_of(key);
  Stripe& s = *stripes_[idx];
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = value;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  while (s.lru.size() >= stripe_capacity_[idx]) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    CacheCounters::instance().record_evict();
  }
  s.lru.emplace_front(key, value);
  s.index.emplace(key, s.lru.begin());
  CacheCounters::instance().record_insert();
}

std::size_t ForecastCache::size() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->lru.size();
  }
  return total;
}

void ForecastCache::clear() {
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    s->lru.clear();
    s->index.clear();
  }
}

}  // namespace ranknet::core

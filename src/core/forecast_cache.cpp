#include "core/forecast_cache.hpp"

#include <string>

namespace ranknet::core {

std::uint64_t race_state_digest(const telemetry::RaceLog& race) {
  Fnv1a h;
  const std::string id = race.id();
  h.update_bytes(id.data(), id.size());
  h.update_u64(static_cast<std::uint64_t>(race.num_laps()));
  for (int car_id : race.car_ids()) {
    const auto& car = race.car(car_id);
    h.update_u64(static_cast<std::uint64_t>(car_id));
    h.update_u64(static_cast<std::uint64_t>(car.laps()));
    for (std::size_t t = 0; t < car.laps(); ++t) {
      h.update_double(car.rank[t]);
      h.update_double(car.lap_time[t]);
      h.update_u64(static_cast<std::uint64_t>(car.lap_status[t]));
      h.update_u64(static_cast<std::uint64_t>(car.track_status[t]));
    }
  }
  return h.digest();
}

CacheCounters& CacheCounters::instance() {
  static CacheCounters inst;
  return inst;
}

CacheCounters::CacheCounters() {
  auto& reg = obs::Registry::instance();
  hits_ = &reg.counter("forecast_cache.hits");
  misses_ = &reg.counter("forecast_cache.misses");
  insertions_ = &reg.counter("forecast_cache.insertions");
  evictions_ = &reg.counter("forecast_cache.evictions");
}

void CacheCounters::reset() {
  hits_->reset();
  misses_->reset();
  insertions_->reset();
  evictions_->reset();
}

ForecastCache::ForecastCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<RaceSamples> ForecastCache::get(const ForecastCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    CacheCounters::instance().record_miss();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  CacheCounters::instance().record_hit();
  return it->second->second;  // deep copy out
}

void ForecastCache::put(const ForecastCacheKey& key, const RaceSamples& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    CacheCounters::instance().record_evict();
  }
  lru_.emplace_front(key, value);
  index_.emplace(key, lru_.begin());
  CacheCounters::instance().record_insert();
}

std::size_t ForecastCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ForecastCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace ranknet::core

// Deterministic parallel Monte-Carlo forecast engine.
//
// Wraps any RaceForecaster and fans the per-car sample generation out
// across a fixed-size util::ThreadPool. Correctness rests on the
// PartitionableForecaster contract (core/forecaster.hpp): every source of
// randomness is a child stream derived from one base draw via
// util::Rng::stream keyed by (car id, sample), so each car's trajectory
// matrix is a pure function of (model, race, origin, base) — never of which
// thread computed it, how cars were grouped into tasks, or in what order
// tasks ran. Results are therefore bit-identical for any thread count,
// including 1, and identical to calling the wrapped forecaster directly.
//
// This holds under SIMD kernel dispatch (tensor::kernels) because
// partitioning stays per-car: a car's K-sample lockstep batch is decoded
// whole inside one task, and every dispatched kernel is row-independent
// with a fixed per-element operation order, so batch width and task
// grouping never change any sample's bits (tests/test_kernel_equivalence
// re-proves engine output at threads {1,2,8} under the avx2 variant).
//
// Forecasters that do not implement PartitionableForecaster (e.g. the
// Transformer) are delegated to unchanged on the calling thread.
//
// Degradation ladder (serving robustness): an optional DegradationPolicy
// arms three graceful-degradation tiers instead of crashing or stalling —
//   tier 0  full primary model (the wrapped forecaster),
//   tier 1  per-car fallback when the car's telemetry is too damaged
//           (policy.series_damaged, fed by telemetry::StreamIngestor),
//   tier 2  fallback for every car whose task missed the per-forecast
//           deadline (cooperative cancellation + partial-sample merge:
//           finished primary partitions are kept) or whose task threw.
// The fallback must itself be a PartitionableForecaster (CurRank is the
// canonical choice) and is driven from the same `base` draw, so degraded
// forecasts stay deterministic. With a default-constructed policy the
// engine is bit-identical to the pre-ladder behaviour. Health is booked in
// per-engine Degradation stats and the global core::DegradationCounters,
// next to EngineCounters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "core/forecast_cache.hpp"
#include "core/forecaster.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace ranknet::core {

class ParallelForecastEngine : public RaceForecaster {
 public:
  /// Policy for the degradation ladder; default-constructed = disabled.
  struct DegradationPolicy {
    /// Per-forecast wall-clock budget; 0 disables the deadline tier.
    double deadline_seconds = 0.0;
    /// Tier-1/2 model (must implement PartitionableForecaster to engage).
    std::shared_ptr<RaceForecaster> fallback;
    /// Cars whose series is too damaged for the primary model at this
    /// origin; null = no damage tier.
    std::function<bool(int car_id, int origin_lap)> series_damaged;
  };

  /// Per-engine degradation tallies (mirrored into DegradationCounters).
  struct Degradation {
    std::uint64_t full_cars = 0;               // served by the primary
    std::uint64_t damaged_fallback_cars = 0;   // tier 1
    std::uint64_t deadline_fallback_cars = 0;  // tier 2 (deadline)
    std::uint64_t error_fallback_cars = 0;     // tier 2 (task threw)
    std::uint64_t deadline_hits = 0;           // forecasts that hit deadline
    std::uint64_t task_failures = 0;           // primary tasks that threw
    std::uint64_t fallback_cars() const {
      return damaged_fallback_cars + deadline_fallback_cars +
             error_fallback_cars;
    }
  };
  /// Wall-time bookkeeping (also mirrored into the global
  /// core::EngineCounters, see device_model.hpp).
  struct Stats {
    std::uint64_t forecasts = 0;  // forecast() calls served
    std::uint64_t tasks = 0;      // partition tasks executed
    double task_seconds = 0.0;    // summed per-task wall time
    double wall_seconds = 0.0;    // summed end-to-end forecast() wall time
    /// task_seconds / wall_seconds: ~thread count when scaling is perfect,
    /// ~1 when the workload is serialized.
    double concurrency() const {
      return wall_seconds > 0.0 ? task_seconds / wall_seconds : 0.0;
    }
  };

  /// Non-owning wrap. `threads` == 0 runs every task inline on the calling
  /// thread (sequential mode, same code path). `max_cars_per_task` bounds
  /// task granularity so many small tasks can load-balance across workers.
  explicit ParallelForecastEngine(RaceForecaster& wrapped,
                                  std::size_t threads,
                                  std::size_t max_cars_per_task = 4);
  /// Owning wrap (keeps the forecaster alive alongside the engine).
  ParallelForecastEngine(std::shared_ptr<RaceForecaster> wrapped,
                         std::size_t threads,
                         std::size_t max_cars_per_task = 4);

  std::string name() const override { return wrapped_.name(); }

  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, util::Rng& rng) override;

  /// Keyed entry point: forecast from an explicit rng stream base instead
  /// of drawing one from a caller generator. For a partitionable wrapped
  /// forecaster, `forecast(rng)` is exactly `forecast_with_base(rng())` —
  /// so any caller that derives `base` as a pure function of a job key
  /// (race, origin, shape, season seed) gets bytes that are independent of
  /// which engine/shard/thread runs the job, which is the contract the
  /// fleet's reshard invariance rests on (core/fleet_engine.hpp).
  /// Non-partitionable forecasters are delegated to with a generator
  /// derived from `base` via util::Rng::stream (documented divergence from
  /// forecast(rng), which hands them the caller's generator).
  RaceSamples forecast_with_base(const telemetry::RaceLog& race,
                                 int origin_lap, int horizon, int num_samples,
                                 std::uint64_t base);

  std::size_t threads() const { return pool_.size(); }
  /// True when the wrapped forecaster supports partitioned fan-out.
  bool partitioned() const { return partitioned_ != nullptr; }

  /// Arm (or disarm, with a default-constructed policy) the degradation
  /// ladder. Fails fast — leaving the current policy untouched — when the
  /// fallback is not a PartitionableForecaster or when deadline_seconds is
  /// not a finite value >= 0 (a NaN or negative deadline would otherwise
  /// silently disable the deadline tier: every `deadline > 0.0` comparison
  /// in the forecast path is false for them).
  [[nodiscard]] util::Status set_degradation_policy(DegradationPolicy policy);

  /// Attach (or detach, with nullptr) a forecast cache. Only fully-primary
  /// partitioned forecasts are cached (no fallback, deadline, or error
  /// involvement — degraded results must not be replayed once the system
  /// recovers; non-partitioned delegation consumes an unknown amount of rng
  /// state, so it cannot be keyed). A hit consumes the same single base
  /// draw a cold forecast would, then returns the cached bytes verbatim —
  /// byte-identical by the purity argument in forecast_cache.hpp. The
  /// cache may be shared across engines (it is thread-safe).
  void set_forecast_cache(std::shared_ptr<ForecastCache> cache) {
    cache_ = std::move(cache);
  }
  const std::shared_ptr<ForecastCache>& forecast_cache() const {
    return cache_;
  }
  /// Weights token for the cache key. Defaults to a digest of the wrapped
  /// forecaster's name; callers MUST bump it when the wrapped model's
  /// weights change under the same name, or stale forecasts will be served.
  void set_model_version(std::uint64_t version) { model_version_ = version; }
  std::uint64_t model_version() const { return model_version_; }

  Stats stats() const;
  Degradation degradation() const;
  void reset_stats();

 private:
  /// Plain delegation for non-partitionable forecasters (calling thread,
  /// caller-supplied generator).
  RaceSamples delegate_forecast(const telemetry::RaceLog& race, int origin_lap,
                                int horizon, int num_samples, util::Rng& rng);

  std::shared_ptr<RaceForecaster> owned_;  // null for the non-owning ctor
  RaceForecaster& wrapped_;
  PartitionableForecaster* partitioned_;  // null -> sequential delegation
  util::ThreadPool pool_;
  std::size_t max_cars_per_task_;
  DegradationPolicy policy_;
  PartitionableForecaster* fallback_part_ = nullptr;  // view into policy_
  std::shared_ptr<ForecastCache> cache_;  // null = caching off
  std::uint64_t model_version_ = 0;
  mutable std::mutex stats_mutex_;
  Stats stats_;
  Degradation degradation_;
};

}  // namespace ranknet::core

// Deterministic parallel Monte-Carlo forecast engine.
//
// Wraps any RaceForecaster and fans the per-car sample generation out
// across a fixed-size util::ThreadPool. Correctness rests on the
// PartitionableForecaster contract (core/forecaster.hpp): every source of
// randomness is a child stream derived from one base draw via
// util::Rng::stream keyed by (car id, sample), so each car's trajectory
// matrix is a pure function of (model, race, origin, base) — never of which
// thread computed it, how cars were grouped into tasks, or in what order
// tasks ran. Results are therefore bit-identical for any thread count,
// including 1, and identical to calling the wrapped forecaster directly.
//
// Forecasters that do not implement PartitionableForecaster (e.g. the
// Transformer) are delegated to unchanged on the calling thread.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/forecaster.hpp"
#include "util/thread_pool.hpp"

namespace ranknet::core {

class ParallelForecastEngine : public RaceForecaster {
 public:
  /// Wall-time bookkeeping (also mirrored into the global
  /// core::EngineCounters, see device_model.hpp).
  struct Stats {
    std::uint64_t forecasts = 0;  // forecast() calls served
    std::uint64_t tasks = 0;      // partition tasks executed
    double task_seconds = 0.0;    // summed per-task wall time
    double wall_seconds = 0.0;    // summed end-to-end forecast() wall time
    /// task_seconds / wall_seconds: ~thread count when scaling is perfect,
    /// ~1 when the workload is serialized.
    double concurrency() const {
      return wall_seconds > 0.0 ? task_seconds / wall_seconds : 0.0;
    }
  };

  /// Non-owning wrap. `threads` == 0 runs every task inline on the calling
  /// thread (sequential mode, same code path). `max_cars_per_task` bounds
  /// task granularity so many small tasks can load-balance across workers.
  explicit ParallelForecastEngine(RaceForecaster& wrapped,
                                  std::size_t threads,
                                  std::size_t max_cars_per_task = 4);
  /// Owning wrap (keeps the forecaster alive alongside the engine).
  ParallelForecastEngine(std::shared_ptr<RaceForecaster> wrapped,
                         std::size_t threads,
                         std::size_t max_cars_per_task = 4);

  std::string name() const override { return wrapped_.name(); }

  RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                       int horizon, int num_samples, util::Rng& rng) override;

  std::size_t threads() const { return pool_.size(); }
  /// True when the wrapped forecaster supports partitioned fan-out.
  bool partitioned() const { return partitioned_ != nullptr; }

  Stats stats() const;
  void reset_stats();

 private:
  std::shared_ptr<RaceForecaster> owned_;  // null for the non-owning ctor
  RaceForecaster& wrapped_;
  PartitionableForecaster* partitioned_;  // null -> sequential delegation
  util::ThreadPool pool_;
  std::size_t max_cars_per_task_;
  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace ranknet::core

#include "core/ranknet.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "core/device_model.hpp"
#include "core/status_forecast.hpp"
#include "util/string_util.hpp"

namespace ranknet::core {

const char* status_source_name(StatusSource s) {
  switch (s) {
    case StatusSource::kOracle: return "Oracle";
    case StatusSource::kPitModel: return "PitModel";
    case StatusSource::kJoint: return "Joint";
  }
  return "?";
}

DecodeMode default_decode_mode() {
  static const DecodeMode mode = [] {
    const char* env = std::getenv("RANKNET_DECODE");
    if (env != nullptr && std::string_view(env) == "independent") {
      return DecodeMode::kIndependent;
    }
    return DecodeMode::kTree;
  }();
  return mode;
}

RankNetForecaster::RankNetForecaster(
    std::shared_ptr<const LstmSeqModel> model,
    std::shared_ptr<const PitModel> pit_model, features::CarVocab vocab,
    features::CovariateConfig cov_config, StatusSource source,
    std::string name)
    : model_(std::move(model)),
      pit_model_(std::move(pit_model)),
      vocab_(std::move(vocab)),
      cov_config_(cov_config),
      source_(source),
      name_(std::move(name)) {
  if (source_ == StatusSource::kPitModel && pit_model_ == nullptr) {
    throw std::invalid_argument("RankNetForecaster: PitModel source needs a pit model");
  }
}

const RankNetForecaster::RaceCache& RankNetForecaster::race_cache(
    const telemetry::RaceLog& race) {
  auto it = cache_.find(race.id());
  if (it != cache_.end()) return it->second;

  RaceCache rc;
  for (int car_id : race.car_ids()) {
    const auto& car = race.car(car_id);
    if (car.laps() < 3) continue;
    CarCache cc;
    cc.history = car.rank;
    cc.streams = features::StatusStreams::from_race(race, car_id);
    cc.covariates = features::build_covariates(cc.streams, cov_config_);
    cc.trace = model_->trace({cc.history}, {cc.covariates},
                             {vocab_.index(car_id)});
    rc.cars.emplace(car_id, std::move(cc));
  }
  return cache_.emplace(race.id(), std::move(rc)).first->second;
}

void RankNetForecaster::prepare(const telemetry::RaceLog& race) {
  race_cache(race);
}

const RankNetForecaster::RaceCache* RankNetForecaster::find_cache(
    const telemetry::RaceLog& race) const {
  const auto it = cache_.find(race.id());
  return it == cache_.end() ? nullptr : &it->second;
}

std::vector<int> RankNetForecaster::forecast_cars(
    const telemetry::RaceLog& race, int origin_lap) {
  const auto& rc = race_cache(race);
  const auto origin = static_cast<std::size_t>(origin_lap);
  // Cars with a trace entry at the forecast origin.
  std::vector<int> cars;
  for (const auto& [car_id, cc] : rc.cars) {
    if (cc.history.size() >= origin && cc.trace.size() >= origin - 1) {
      cars.push_back(car_id);
    }
  }
  return cars;
}

RaceSamples RankNetForecaster::forecast(const telemetry::RaceLog& race,
                                        int origin_lap, int horizon,
                                        int num_samples, util::Rng& rng) {
  if (origin_lap < 2 || horizon < 1 || num_samples < 1) {
    throw std::invalid_argument("RankNetForecaster::forecast: bad arguments");
  }
  prepare(race);
  const std::uint64_t base = rng();
  const auto cars = forecast_cars(race, origin_lap);
  return forecast_partition(race, origin_lap, horizon, num_samples, base,
                            cars);
}

RaceSamples RankNetForecaster::forecast_partition(
    const telemetry::RaceLog& race, int origin_lap, int horizon,
    int num_samples, std::uint64_t base, std::span<const int> cars_span) {
  if (origin_lap < 2 || horizon < 1 || num_samples < 1) {
    throw std::invalid_argument("RankNetForecaster::forecast: bad arguments");
  }
  const RaceCache* rc_ptr = find_cache(race);
  if (rc_ptr == nullptr) {
    prepare(race);  // single-threaded caller without prior prepare()
    rc_ptr = find_cache(race);
  }
  const RaceCache& rc = *rc_ptr;
  const auto origin = static_cast<std::size_t>(origin_lap);
  const auto h_count = static_cast<std::size_t>(horizon);
  const auto s_count = static_cast<std::size_t>(num_samples);

  const std::vector<int> cars(cars_span.begin(), cars_span.end());
  if (cars.empty()) return {};

  // Encoder-tail correction: with predicted status, the shift features of
  // the last `shift` encoder laps must not peek at the true future.
  const int tail_wanted =
      source_ == StatusSource::kPitModel && cov_config_.shift_features
          ? cov_config_.shift
          : 0;
  const int tail = std::min<int>(tail_wanted, origin_lap - 2);

  const std::size_t rows = cars.size() * s_count;
  std::vector<int> car_index(rows);
  std::vector<std::vector<double>> z_prev(rows);
  std::vector<std::vector<std::vector<double>>> future_covs(rows);
  // Per-row covariates of the tail laps (teacher-forced replay window).
  std::vector<std::vector<std::vector<double>>> tail_covs(
      static_cast<std::size_t>(tail));
  for (auto& step : tail_covs) step.resize(rows);
  std::vector<std::vector<std::vector<double>>> tail_z(
      static_cast<std::size_t>(tail));
  for (auto& step : tail_z) step.resize(rows);

  const auto trace_idx = origin - 2 - static_cast<std::size_t>(tail);

  if (source_ == StatusSource::kPitModel) {
    // Predicted status must cover the horizon plus the shift look-ahead.
    const auto future_len =
        h_count + static_cast<std::size_t>(cov_config_.shift);
    // The status realization couples every active car (LeaderPitCount sees
    // the whole field), so it is always drawn over the full car set — a
    // partition holding a subset of cars replays the identical realization.
    const auto all_cars = forecast_cars(race, origin_lap);
    // Rank order at the origin, for LeaderPitCount of future laps.
    std::map<int, double> origin_rank;
    std::map<int, const features::StatusStreams*> stream_ptrs;
    for (int car_id : all_cars) {
      origin_rank[car_id] = rc.cars.at(car_id).history[origin - 1];
      stream_ptrs[car_id] = &rc.cars.at(car_id).streams;
    }
    for (std::size_t s = 0; s < s_count; ++s) {
      // One coupled race-status realization across all cars, from a child
      // stream keyed by the sample index alone (k2 = 0 keeps the status
      // keys disjoint from the per-row keys below, which use k2 >= 1).
      util::Rng status_rng = util::Rng::stream(base, s, 0);
      const auto realization = sample_status_realization(
          stream_ptrs, origin_rank, *pit_model_, cov_config_, origin,
          future_len, status_rng);

      for (std::size_t c = 0; c < cars.size(); ++c) {
        const int car_id = cars[c];
        const auto& cc = rc.cars.at(car_id);
        const std::size_t row = c * s_count + s;
        const auto& covs = realization.at(car_id);

        car_index[row] = vocab_.index(car_id);
        z_prev[row] = {cc.history[origin - 1]};
        auto& fc = future_covs[row];
        fc.resize(h_count);
        for (std::size_t h = 0; h < h_count; ++h) {
          fc[h] = covs[origin + h];
        }
        for (int t = 0; t < tail; ++t) {
          // Tail step t replays lap (origin - tail + t): input is
          // [z at that lap - 1, cov at that lap].
          const auto lap0 =
              origin - static_cast<std::size_t>(tail) + static_cast<std::size_t>(t);
          tail_z[static_cast<std::size_t>(t)][row] = {cc.history[lap0 - 1]};
          tail_covs[static_cast<std::size_t>(t)][row] = covs[lap0];
        }
      }
    }
  } else {
    // Oracle / Joint / DeepAR: covariates straight from the cached
    // (ground-truth) streams; rows for the same car share them.
    for (std::size_t c = 0; c < cars.size(); ++c) {
      const int car_id = cars[c];
      const auto& cc = rc.cars.at(car_id);
      for (std::size_t s = 0; s < s_count; ++s) {
        const std::size_t row = c * s_count + s;
        car_index[row] = vocab_.index(car_id);
        if (source_ == StatusSource::kJoint) {
          // Multivariate target: [rank, aux status dims from covariates].
          z_prev[row] = {cc.history[origin - 1]};
          const auto& aux = cc.covariates[origin - 1];
          for (std::size_t j = 0; j + 1 < model_->config().target_dim; ++j) {
            z_prev[row].push_back(j < aux.size() ? aux[j] : 0.0);
          }
        } else {
          z_prev[row] = {cc.history[origin - 1]};
        }
        auto& fc = future_covs[row];
        fc.resize(h_count);
        for (std::size_t h = 0; h < h_count; ++h) {
          const std::size_t idx = origin + h;
          fc[h] = idx < cc.covariates.size()
                      ? cc.covariates[idx]
                      : std::vector<double>(cov_config_.dim(), 0.0);
        }
      }
    }
  }

  // One independent noise stream per (car, sample) row, keyed so the draw
  // for a row never depends on which other rows share the batch.
  std::vector<util::Rng> row_rngs;
  row_rngs.reserve(rows);
  for (std::size_t c = 0; c < cars.size(); ++c) {
    for (std::size_t s = 0; s < s_count; ++s) {
      row_rngs.push_back(util::Rng::stream(
          base, static_cast<std::uint64_t>(cars[c]), s + 1));
    }
  }

  tensor::Matrix out;
  if (decode_mode_ == DecodeMode::kTree) {
    // ---- shared-prefix decode tree ------------------------------------
    // A branch is a set of same-car rows whose prefix inputs (tail-lap and
    // first-decode-lap covariates; z_prev and tail targets are per-car by
    // construction) coincide bit-for-bit. Oracle/Joint/DeepAR rows of a car
    // always coincide (ground-truth covariates): one branch per car.
    // PitModel rows fork where their sampled pit/caution realizations
    // diverge inside the prefix window: grouped by covariate_window_digest,
    // then confirmed by exact bit comparison (digest collisions must not
    // merge distinct branches).
    const auto windows_equal = [&](std::size_t a, std::size_t b) {
      const auto bits_equal = [](const std::vector<double>& x,
                                 const std::vector<double>& y) {
        return x.size() == y.size() &&
               (x.empty() || std::memcmp(x.data(), y.data(),
                                         x.size() * sizeof(double)) == 0);
      };
      for (int t = 0; t < tail; ++t) {
        const auto& step = tail_covs[static_cast<std::size_t>(t)];
        if (!bits_equal(step[a], step[b])) return false;
      }
      return bits_equal(future_covs[a][0], future_covs[b][0]);
    };

    std::vector<std::size_t> branch_of_row(rows);
    std::vector<std::size_t> branch_rep;  // first member row per branch
    for (std::size_t c = 0; c < cars.size(); ++c) {
      if (source_ != StatusSource::kPitModel) {
        const std::size_t b = branch_rep.size();
        branch_rep.push_back(c * s_count);
        for (std::size_t s = 0; s < s_count; ++s) {
          branch_of_row[c * s_count + s] = b;
        }
        continue;
      }
      // digest -> branch ids of this car (usually one; more on collision)
      std::map<std::uint64_t, std::vector<std::size_t>> groups;
      std::vector<std::span<const double>> window(
          static_cast<std::size_t>(tail) + 1);
      for (std::size_t s = 0; s < s_count; ++s) {
        const std::size_t row = c * s_count + s;
        for (int t = 0; t < tail; ++t) {
          window[static_cast<std::size_t>(t)] =
              tail_covs[static_cast<std::size_t>(t)][row];
        }
        window[static_cast<std::size_t>(tail)] = future_covs[row][0];
        auto& bucket = groups[covariate_window_digest(window)];
        std::size_t found = rows;
        for (std::size_t b : bucket) {
          if (windows_equal(branch_rep[b], row)) {
            found = b;
            break;
          }
        }
        if (found == rows) {
          found = branch_rep.size();
          branch_rep.push_back(row);
          bucket.push_back(found);
        }
        branch_of_row[row] = found;
      }
    }

    // Branch-width start state + teacher-forced tail replay: the whole
    // shared prefix runs at branch width instead of row width.
    const std::size_t n_branches = branch_rep.size();
    std::vector<LstmSeqModel::StackState> per_branch_states;
    per_branch_states.reserve(n_branches);
    std::vector<int> branch_car_index(n_branches);
    std::vector<std::vector<std::vector<double>>> btail_z(
        static_cast<std::size_t>(tail));
    std::vector<std::vector<std::vector<double>>> btail_covs(
        static_cast<std::size_t>(tail));
    for (auto& step : btail_z) step.resize(n_branches);
    for (auto& step : btail_covs) step.resize(n_branches);
    for (std::size_t b = 0; b < n_branches; ++b) {
      const std::size_t row = branch_rep[b];
      const auto& cc = rc.cars.at(cars[row / s_count]);
      per_branch_states.push_back(
          LstmSeqModel::replicate_state(cc.trace[trace_idx], 0, 1));
      branch_car_index[b] = car_index[row];
      for (int t = 0; t < tail; ++t) {
        btail_z[static_cast<std::size_t>(t)][b] =
            tail_z[static_cast<std::size_t>(t)][row];
        btail_covs[static_cast<std::size_t>(t)][b] =
            tail_covs[static_cast<std::size_t>(t)][row];
      }
    }
    auto branch_state = LstmSeqModel::concat_states(per_branch_states);
    per_branch_states.clear();
    for (int t = 0; t < tail; ++t) {
      model_->advance(branch_state, btail_z[static_cast<std::size_t>(t)],
                      btail_covs[static_cast<std::size_t>(t)],
                      branch_car_index);
    }
    out = model_->sample_forward_tree(branch_state, branch_of_row, z_prev,
                                      future_covs, car_index, horizon,
                                      row_rngs);
    // shared_rows = row-steps of LSTM+head work skipped vs independent
    // decode (tail replay + decode step 1 ran at branch width).
    DecodeTreeCounters::instance().record_decode(
        rows, n_branches,
        (rows - n_branches) * (static_cast<std::size_t>(tail) + 1));
  } else {
    // ---- independent decode (historical path) -------------------------
    std::vector<LstmSeqModel::StackState> per_car_states;
    per_car_states.reserve(cars.size());
    for (std::size_t c = 0; c < cars.size(); ++c) {
      const auto& cc = rc.cars.at(cars[c]);
      per_car_states.push_back(
          LstmSeqModel::replicate_state(cc.trace[trace_idx], 0, s_count));
    }
    auto state = LstmSeqModel::concat_states(per_car_states);
    per_car_states.clear();

    // Teacher-forced tail replay (PitModel mode only; tail == 0 otherwise).
    for (int t = 0; t < tail; ++t) {
      model_->advance(state, tail_z[static_cast<std::size_t>(t)],
                      tail_covs[static_cast<std::size_t>(t)], car_index);
    }
    out = model_->sample_forward(state, z_prev, future_covs, car_index,
                                 horizon, row_rngs);
  }

  RaceSamples samples;
  for (std::size_t c = 0; c < cars.size(); ++c) {
    tensor::Matrix m(s_count, h_count);
    for (std::size_t s = 0; s < s_count; ++s) {
      for (std::size_t h = 0; h < h_count; ++h) {
        m(s, h) = out(c * s_count + s, h);
      }
    }
    samples.emplace(cars[c], std::move(m));
  }
  return samples;
}

TransformerForecaster::TransformerForecaster(
    std::shared_ptr<const TransformerSeqModel> model,
    std::shared_ptr<const PitModel> pit_model, features::CarVocab vocab,
    features::CovariateConfig cov_config, StatusSource source,
    std::string name)
    : model_(std::move(model)),
      pit_model_(std::move(pit_model)),
      vocab_(std::move(vocab)),
      cov_config_(cov_config),
      source_(source),
      name_(std::move(name)) {
  if (source_ == StatusSource::kPitModel && pit_model_ == nullptr) {
    throw std::invalid_argument(
        "TransformerForecaster: PitModel source needs a pit model");
  }
  if (source_ == StatusSource::kJoint) {
    throw std::invalid_argument(
        "TransformerForecaster: Joint variant is LSTM-only in this repo");
  }
}

const TransformerForecaster::RaceCache& TransformerForecaster::race_cache(
    const telemetry::RaceLog& race) {
  auto it = cache_.find(race.id());
  if (it != cache_.end()) return it->second;
  RaceCache rc;
  for (int car_id : race.car_ids()) {
    const auto& car = race.car(car_id);
    if (car.laps() < 3) continue;
    CarCache cc;
    cc.history = car.rank;
    cc.streams = features::StatusStreams::from_race(race, car_id);
    cc.covariates = features::build_covariates(cc.streams, cov_config_);
    rc.cars.emplace(car_id, std::move(cc));
  }
  return cache_.emplace(race.id(), std::move(rc)).first->second;
}

RaceSamples TransformerForecaster::forecast(const telemetry::RaceLog& race,
                                            int origin_lap, int horizon,
                                            int num_samples, util::Rng& rng) {
  if (origin_lap < 3 || horizon < 1 || num_samples < 1) {
    throw std::invalid_argument("TransformerForecaster: bad arguments");
  }
  const auto& rc = race_cache(race);
  const auto origin = static_cast<std::size_t>(origin_lap);
  const auto h_count = static_cast<std::size_t>(horizon);
  const auto s_count = static_cast<std::size_t>(num_samples);

  std::vector<int> cars;
  for (const auto& [car_id, cc] : rc.cars) {
    if (cc.history.size() >= origin) cars.push_back(car_id);
  }
  if (cars.empty()) return {};

  const std::size_t ctx =
      std::min<std::size_t>(model_->config().infer_context, origin);
  const std::size_t first_lap = origin - ctx;  // 0-based index of first lap

  const std::size_t rows = cars.size() * s_count;
  std::vector<int> car_index(rows);
  std::vector<std::vector<double>> history(rows);
  std::vector<std::vector<std::vector<double>>> covs(rows);

  const auto fill_row = [&](std::size_t row, int car_id,
                            const std::vector<std::vector<double>>& full_covs,
                            const std::vector<double>& ranks) {
    car_index[row] = vocab_.index(car_id);
    history[row].assign(ranks.begin() + static_cast<std::ptrdiff_t>(first_lap),
                        ranks.begin() + static_cast<std::ptrdiff_t>(origin));
    auto& cv = covs[row];
    cv.resize(ctx + h_count);
    for (std::size_t t = 0; t < ctx + h_count; ++t) {
      const std::size_t idx = first_lap + t;
      cv[t] = idx < full_covs.size()
                  ? full_covs[idx]
                  : std::vector<double>(cov_config_.dim(), 0.0);
    }
  };

  if (source_ == StatusSource::kPitModel) {
    const auto future_len =
        h_count + static_cast<std::size_t>(cov_config_.shift);
    std::map<int, double> origin_rank;
    std::map<int, const features::StatusStreams*> stream_ptrs;
    for (int car_id : cars) {
      origin_rank[car_id] = rc.cars.at(car_id).history[origin - 1];
      stream_ptrs[car_id] = &rc.cars.at(car_id).streams;
    }
    for (std::size_t s = 0; s < s_count; ++s) {
      const auto realization = sample_status_realization(
          stream_ptrs, origin_rank, *pit_model_, cov_config_, origin,
          future_len, rng);
      for (std::size_t c = 0; c < cars.size(); ++c) {
        fill_row(c * s_count + s, cars[c], realization.at(cars[c]),
                 rc.cars.at(cars[c]).history);
      }
    }
  } else {
    for (std::size_t c = 0; c < cars.size(); ++c) {
      const auto& cc = rc.cars.at(cars[c]);
      for (std::size_t s = 0; s < s_count; ++s) {
        fill_row(c * s_count + s, cars[c], cc.covariates, cc.history);
      }
    }
  }

  const auto out = model_->sample_forecast(history, covs, car_index, horizon,
                                           rng);
  RaceSamples samples;
  for (std::size_t c = 0; c < cars.size(); ++c) {
    tensor::Matrix m(s_count, h_count);
    for (std::size_t s = 0; s < s_count; ++s) {
      for (std::size_t h = 0; h < h_count; ++h) {
        m(s, h) = out(c * s_count + s, h);
      }
    }
    samples.emplace(cars[c], std::move(m));
  }
  return samples;
}

}  // namespace ranknet::core

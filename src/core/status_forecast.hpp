// Shared Algorithm-2 step 1: sampling one coupled future race-status
// realization for every car from the PitModel, and assembling full-length
// covariate rows (ground truth through the origin lap, predictions after).
// Used by both the LSTM and the Transformer RankNet forecasters.
#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "core/pit_model.hpp"
#include "features/window.hpp"

namespace ranknet::core {

/// FNV-1a digest (core::Fnv1a) over the bit patterns of a sequence of
/// covariate rows. The decode tree uses it as the fork signature: MC
/// samples whose realized pit/caution covariates coincide bit-for-bit over
/// the shared-prefix window (encoder-tail laps + the first decode lap) land
/// in the same branch. Hashing bit patterns — not values — keeps the
/// grouping aligned with the byte-identity contract (0.0 and -0.0 differ).
std::uint64_t covariate_window_digest(
    std::span<const std::span<const double>> rows);

/// Accumulation features (CautionLaps, PitAge) at the end of `origin` laps.
PitFeatures current_pit_features(const features::StatusStreams& streams,
                                 std::size_t origin);

/// One sampled race-status realization: per-car covariate rows covering
/// laps 1..origin+future_len (0-based rows 0..origin+future_len-1).
/// TrackStatus is assumed green in the future; LeaderPitCount uses the
/// rank order frozen at the origin.
std::map<int, std::vector<std::vector<double>>> sample_status_realization(
    const std::map<int, const features::StatusStreams*>& streams,
    const std::map<int, double>& origin_rank, const PitModel& pit_model,
    const features::CovariateConfig& config, std::size_t origin,
    std::size_t future_len, util::Rng& rng);

}  // namespace ranknet::core

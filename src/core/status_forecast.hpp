// Shared Algorithm-2 step 1: sampling one coupled future race-status
// realization for every car from the PitModel, and assembling full-length
// covariate rows (ground truth through the origin lap, predictions after).
// Used by both the LSTM and the Transformer RankNet forecasters.
#pragma once

#include <map>

#include "core/pit_model.hpp"
#include "features/window.hpp"

namespace ranknet::core {

/// Accumulation features (CautionLaps, PitAge) at the end of `origin` laps.
PitFeatures current_pit_features(const features::StatusStreams& streams,
                                 std::size_t origin);

/// One sampled race-status realization: per-car covariate rows covering
/// laps 1..origin+future_len (0-based rows 0..origin+future_len-1).
/// TrackStatus is assumed green in the future; LeaderPitCount uses the
/// rank order frozen at the origin.
std::map<int, std::vector<std::vector<double>>> sample_status_realization(
    const std::map<int, const features::StatusStreams*>& streams,
    const std::map<int, double>& origin_rank, const PitModel& pit_model,
    const features::CovariateConfig& config, std::size_t origin,
    std::size_t future_len, util::Rng& rng);

}  // namespace ranknet::core

#include "core/fleet_engine.hpp"

#include <future>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace ranknet::core {

FleetEngine::FleetEngine(ForecasterFactory factory, FleetConfig config)
    : factory_(std::move(factory)), config_(std::move(config)) {
  if (!factory_) {
    throw std::invalid_argument("FleetEngine: null forecaster factory");
  }
  if (config_.shards == 0) config_.shards = 1;
  shards_ = build_shards(config_.shards);

  auto& reg = obs::Registry::instance();
  reshards_ = &reg.counter("fleet.reshards");
  season_jobs_ = &reg.counter("fleet.season.jobs");
  season_runs_ = &reg.counter("fleet.season.runs");
}

std::vector<std::shared_ptr<RaceShard>> FleetEngine::build_shards(
    std::size_t n) const {
  std::vector<std::shared_ptr<RaceShard>> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto forecaster = factory_();
    if (!forecaster) {
      throw std::invalid_argument(
          "FleetEngine: forecaster factory returned null for shard " +
          std::to_string(i));
    }
    shards.push_back(std::make_shared<RaceShard>(
        i, std::move(forecaster), config_.shard, config_.shared_cache));
  }
  return shards;
}

std::uint64_t FleetEngine::race_key(std::string_view race_id) {
  Fnv1a h;
  h.update_bytes(race_id.data(), race_id.size());
  return h.digest();
}

std::uint64_t FleetEngine::job_base(std::uint64_t season_seed,
                                    std::uint64_t race_key, int origin_lap,
                                    int horizon, int num_samples) {
  // Fold the job shape into one key so the three-key stream covers the
  // whole tuple. First draw of the keyed stream = the job's engine base.
  Fnv1a shape;
  shape.update_u64(static_cast<std::uint64_t>(origin_lap));
  shape.update_u64(static_cast<std::uint64_t>(horizon));
  shape.update_u64(static_cast<std::uint64_t>(num_samples));
  return util::Rng::stream(season_seed, race_key, shape.digest(),
                           /*k3=*/0x73686172645f6aULL)();
}

std::size_t FleetEngine::num_shards() const {
  std::shared_lock lock(mutex_);
  return shards_.size();
}

std::size_t FleetEngine::shard_index(std::string_view race_id) const {
  std::shared_lock lock(mutex_);
  return static_cast<std::size_t>(race_key(race_id) % shards_.size());
}

std::shared_ptr<RaceShard> FleetEngine::shard(std::size_t index) const {
  std::shared_lock lock(mutex_);
  if (index >= shards_.size()) {
    throw std::out_of_range("FleetEngine: shard index " +
                            std::to_string(index) + " >= " +
                            std::to_string(shards_.size()));
  }
  return shards_[index];
}

std::shared_ptr<RaceShard> FleetEngine::shard_for(
    std::string_view race_id) const {
  std::shared_lock lock(mutex_);
  return shards_[static_cast<std::size_t>(race_key(race_id) %
                                          shards_.size())];
}

RaceSamples FleetEngine::forecast(const telemetry::RaceLog& race,
                                  int origin_lap, int horizon,
                                  int num_samples, util::Rng& rng) {
  // One base draw, exactly like ParallelForecastEngine::forecast — the
  // caller's generator state never depends on the shard count.
  return forecast_keyed(race, origin_lap, horizon, num_samples, rng());
}

RaceSamples FleetEngine::forecast_keyed(const telemetry::RaceLog& race,
                                        int origin_lap, int horizon,
                                        int num_samples, std::uint64_t base) {
  // Route, then compute on the shard's driver: every job for one shard is
  // serialized on one thread, which is what makes the per-shard
  // forecaster's prepare() cache safe without locks. `target` stays alive
  // in THIS frame until the future completes, which keeps the generation
  // alive across a concurrent reshard — the job itself must not own the
  // shard (see RaceShard::submit).
  auto target = shard_for(race.id());
  RaceShard* const s = target.get();
  return target
      ->submit([&race, origin_lap, horizon, num_samples, base, s] {
        return s->forecast(race, origin_lap, horizon, num_samples, base);
      })
      .get();
}

std::vector<RaceSamples> FleetEngine::run_season(
    std::span<const SeasonJob> jobs, std::uint64_t season_seed) {
  season_runs_->add(1);
  season_jobs_->add(jobs.size());

  // Snapshot the shard set once: a reshard mid-season affects the NEXT
  // run_season, never this one (bytes would be identical either way; the
  // snapshot just keeps the grouping coherent).
  std::vector<std::shared_ptr<RaceShard>> shards;
  {
    std::shared_lock lock(mutex_);
    shards = shards_;
  }

  // Group job indices by shard. Job bases are keyed by (season_seed, race,
  // shape) — never by position or shard — so this grouping is pure load
  // placement.
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_shard;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!jobs[i].race) {
      throw std::invalid_argument("FleetEngine::run_season: job " +
                                  std::to_string(i) + " has a null race");
    }
    by_shard[static_cast<std::size_t>(race_key(jobs[i].race->id()) %
                                      shards.size())]
        .push_back(i);
  }

  std::vector<RaceSamples> results(jobs.size());
  std::vector<std::future<void>> inflight;
  inflight.reserve(by_shard.size());
  // The `shards` snapshot above outlives the futures-drain below, so jobs
  // hold only raw shard pointers (see RaceShard::submit for why they must
  // not own the shard).
  for (auto& [shard_idx, indices] : by_shard) {
    RaceShard* const target = shards[shard_idx].get();
    inflight.push_back(target->submit(
        [&jobs, &results, season_seed, target,
         indices = std::move(indices)] {
          for (const std::size_t i : indices) {
            const SeasonJob& job = jobs[i];
            const std::uint64_t base =
                job_base(season_seed, race_key(job.race->id()),
                         job.origin_lap, job.horizon, job.num_samples);
            results[i] = target->forecast(*job.race, job.origin_lap,
                                          job.horizon, job.num_samples, base);
          }
        }));
  }
  for (auto& f : inflight) f.get();
  return results;
}

void FleetEngine::reshard(std::size_t new_shards) {
  if (new_shards == 0) new_shards = 1;
  std::unique_lock lock(mutex_);
  auto fresh = build_shards(new_shards);
  // Re-apply engine-level settings so the new generation is
  // indistinguishable (bytes and policy) from a fleet constructed at this
  // size — the reshard-invariance contract.
  if (model_version_) {
    for (auto& s : fresh) s->engine()->set_model_version(*model_version_);
  }
  if (policy_) {
    for (auto& s : fresh) {
      // Re-validation cannot fail: the policy was accepted once already.
      (void)s->engine()->set_degradation_policy(*policy_);
    }
  }
  shards_.swap(fresh);
  reshards_->add(1);
  // `fresh` (the old generation) unwinds after the lock: shards with
  // in-flight jobs survive via the shared_ptrs those jobs hold.
}

void FleetEngine::set_model_version(std::uint64_t version) {
  std::unique_lock lock(mutex_);
  model_version_ = version;
  for (auto& s : shards_) s->engine()->set_model_version(version);
}

util::Status FleetEngine::set_degradation_policy(
    ParallelForecastEngine::DegradationPolicy policy) {
  std::unique_lock lock(mutex_);
  // Validation is deterministic in the policy contents, so applying in
  // order cannot leave the fleet half-armed: shard 0 rejects exactly when
  // every shard would.
  for (auto& s : shards_) {
    if (auto st = s->engine()->set_degradation_policy(policy); !st.ok()) {
      return st;
    }
  }
  policy_ = std::move(policy);
  return {};
}

ParallelForecastEngine::Stats FleetEngine::stats() const {
  std::shared_lock lock(mutex_);
  ParallelForecastEngine::Stats total;
  for (const auto& s : shards_) {
    const auto one = s->engine()->stats();
    total.forecasts += one.forecasts;
    total.tasks += one.tasks;
    total.task_seconds += one.task_seconds;
    total.wall_seconds += one.wall_seconds;
  }
  return total;
}

ParallelForecastEngine::Degradation FleetEngine::degradation() const {
  std::shared_lock lock(mutex_);
  ParallelForecastEngine::Degradation total;
  for (const auto& s : shards_) {
    const auto one = s->engine()->degradation();
    total.full_cars += one.full_cars;
    total.damaged_fallback_cars += one.damaged_fallback_cars;
    total.deadline_fallback_cars += one.deadline_fallback_cars;
    total.error_fallback_cars += one.error_fallback_cars;
    total.deadline_hits += one.deadline_hits;
    total.task_failures += one.task_failures;
  }
  return total;
}

}  // namespace ranknet::core

// PitModel (paper Fig. 5b): a multilayer perceptron with probabilistic
// output that predicts the number of laps until a car's next pit stop from
// the accumulation features CautionLaps and PitAge. Used by RankNet-MLP to
// sample future race status (Algorithm 2 step 1). Following the paper's
// pit-stop analysis, training can be restricted to "normal" pit data with
// the short-distance anomaly section removed, which stabilizes the model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "features/scaler.hpp"
#include "nn/dense.hpp"
#include "nn/gaussian.hpp"
#include "nn/inference.hpp"
#include "telemetry/race_log.hpp"
#include "tensor/workspace.hpp"
#include "util/rng.hpp"

namespace ranknet::core {

struct PitModelConfig {
  std::size_t hidden1 = 32;
  std::size_t hidden2 = 16;
  std::uint64_t seed = 77;
  /// Drop training rows whose stint ends in fewer than this many laps
  /// (the unexpected-mechanical short section of Fig. 4b).
  int min_stint = 8;
  /// Only learn from stints that end with a green-flag (normal) pit.
  bool normal_pits_only = true;

  std::string cache_key() const;
};

/// One PitModel training/inference input row.
struct PitFeatures {
  double caution_laps = 0.0;  // caution laps since the last pit
  double pit_age = 0.0;       // laps since the last pit
};

class PitModel : public nn::Layer {
 public:
  explicit PitModel(PitModelConfig config = {});

  const PitModelConfig& config() const { return config_; }

  /// Build training rows from races: every lap with a following pit stop
  /// becomes (features at lap -> laps until the next stop), filtered per
  /// config.
  struct TrainingData {
    tensor::Matrix x;          // (n x 2) normalized features
    std::vector<double> y;     // laps-to-pit (raw)
  };
  TrainingData build_training_data(
      const std::vector<telemetry::RaceLog>& races) const;

  /// Fit with Adam on Gaussian NLL; scales the target internally.
  void fit(const TrainingData& data, int epochs = 60,
           std::size_t batch_size = 256, double lr = 1e-3);

  /// Predictive distribution of laps-to-next-pit.
  struct Prediction {
    double mean = 0.0;
    double stddev = 1.0;
  };
  Prediction predict(const PitFeatures& f) const;

  /// Sample laps-to-next-pit (>= 1, rounded).
  int sample(const PitFeatures& f, util::Rng& rng) const;

  /// Sample a full future pit-status vector for the next `horizon` laps,
  /// starting from current features (Algorithm 2 step 1: successive stints
  /// sampled until the horizon is covered; TrackStatus assumed green).
  std::vector<double> sample_future_lap_status(const PitFeatures& now,
                                               int horizon,
                                               util::Rng& rng) const;

  std::vector<nn::Parameter*> params() override;

  void set_scaler(const features::StandardScaler& s) { scaler_ = s; }
  const features::StandardScaler& scaler() const { return scaler_; }

  /// Zero-allocation serving face of the MLP: all scratch comes from `ws`
  /// at construction, so predict()/sample() allocate nothing. Bit-identical
  /// to PitModel::predict/sample (same kernels, same draw order). Views
  /// live until the next ws.begin(); the stint-loop draws are sequential
  /// and data-dependent, so they are never batched or reordered.
  class InferenceSession {
   public:
    InferenceSession(const PitModel& model, tensor::Workspace& ws);

    Prediction predict(const PitFeatures& f) const;
    int sample(const PitFeatures& f, util::Rng& rng) const;
    /// Writes 0/1 pit flags for the next lap_status.size() laps (the span
    /// is zeroed first); same draws as sample_future_lap_status.
    void sample_future_into(const PitFeatures& now,
                            std::span<double> lap_status,
                            util::Rng& rng) const;

   private:
    const PitModel* model_;
    nn::DenseInferenceSession fc1_, fc2_;
    nn::GaussianInferenceSession head_;
    tensor::MatrixView x_, h1_, h2_, mu_, sigma_;
  };

 private:
  tensor::Matrix normalize(const PitFeatures& f) const;

  PitModelConfig config_;
  std::unique_ptr<nn::Dense> fc1_, fc2_;
  std::unique_ptr<nn::GaussianHead> head_;
  features::StandardScaler scaler_{0.0, 1.0};
};

}  // namespace ranknet::core

// Transformer implementation of the RankNet sequence model (paper
// Section IV-I): the same autoregressive input assembly and Gaussian
// likelihood as the LSTM variant, with a causal pre-LN Transformer encoder
// (GluonTS-style: model dim 32, multi-head attention) in place of the
// stacked LSTM. Forecasting re-runs the causal stack over a sliding context
// window, appending each sampled value (no recurrent state to cache).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ar_model.hpp"
#include "nn/attention.hpp"

namespace ranknet::core {

struct TransformerConfig {
  std::size_t cov_dim = 9;
  std::size_t target_dim = 1;
  std::size_t model_dim = 32;  // paper: transformer dimension 32
  std::size_t heads = 8;       // paper: 8 attention heads
  std::size_t blocks = 2;
  std::size_t ffn_dim = 64;
  std::size_t embed_dim = 4;
  int vocab = 1;
  std::uint64_t seed = 4321;
  /// Context laps used at inference (kept short: attention is O(T^2)).
  std::size_t infer_context = 24;

  std::size_t input_dim() const { return target_dim + cov_dim + embed_dim; }
  std::string cache_key() const;
};

class TransformerSeqModel : public nn::Layer {
 public:
  explicit TransformerSeqModel(TransformerConfig config);

  const TransformerConfig& config() const { return config_; }

  void set_scaler(const features::StandardScaler& s) { scaler_ = s; }
  const features::StandardScaler& scaler() const { return scaler_; }

  using Batch = LstmSeqModel::Batch;

  /// Same packing as the LSTM model (shared convention).
  Batch make_batch(const std::vector<const features::SeqExample*>& examples,
                   std::size_t dec_len) const;

  double train_step(const Batch& batch);
  double evaluate(const Batch& batch);

  /// Ancestral sampling over a sliding context window. history[r] holds the
  /// last C observed raw ranks of row r (C = infer_context, shorter is
  /// fine); covs[r] holds covariate rows for those C laps plus the horizon
  /// (length C + horizon). Returns (rows x horizon) sampled rank values.
  tensor::Matrix sample_forecast(
      const std::vector<std::vector<double>>& history,
      const std::vector<std::vector<std::vector<double>>>& covs,
      const std::vector<int>& car_index, int horizon, util::Rng& rng) const;

  std::vector<nn::Parameter*> params() override;

 private:
  /// Pack rows (b, t) -> b*steps + t of assembled inputs.
  tensor::Matrix pack_inputs(const Batch& batch,
                             const tensor::Matrix& embed) const;
  /// Causal stack over packed inputs (training caches enabled when
  /// `training` is true).
  tensor::Matrix run_stack(const tensor::Matrix& packed, std::size_t steps,
                           bool training);

  TransformerConfig config_;
  features::StandardScaler scaler_{0.0, 1.0};
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Dense> input_proj_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  std::unique_ptr<nn::LayerNorm> final_ln_;
  std::unique_ptr<nn::GaussianHead> head_;
};

}  // namespace ranknet::core

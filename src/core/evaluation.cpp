#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/parallel_engine.hpp"
#include "features/transforms.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace ranknet::core {

namespace {

struct Accumulator {
  std::vector<double> med, q50, q90, actual;
  std::vector<bool> top1;

  MetricRow finish() const {
    MetricRow row;
    row.count = actual.size();
    if (actual.empty()) return row;
    row.mae = mae(med, actual);
    row.risk50 = rho_risk(q50, actual, 0.5);
    row.risk90 = rho_risk(q90, actual, 0.9);
    row.top1 = accuracy(top1);
    return row;
  }
};

}  // namespace

TaskAResult evaluate_task_a(RaceForecaster& forecaster,
                            const telemetry::RaceLog& race,
                            const TaskAConfig& config) {
  obs::SpanScope evaluate_span(obs::Stage::kEvaluate);
  util::Rng rng(config.seed);
  Accumulator all, normal, pit;

  // threads > 1 fans per-car sampling across a pool; the engine's
  // determinism contract keeps the metrics bit-identical to threads == 1.
  std::optional<ParallelForecastEngine> engine;
  if (config.threads > 1) {
    engine.emplace(forecaster, static_cast<std::size_t>(config.threads));
  }
  RaceForecaster& runner = engine ? *engine : forecaster;

  const int last_origin = race.num_laps() - config.horizon;
  for (int origin = config.min_origin; origin <= last_origin;
       origin += config.origin_stride) {
    auto raw = runner.forecast(race, origin, config.horizon,
                               config.num_samples, rng);
    if (raw.empty()) continue;
    const auto ranks = sort_to_ranks(raw);
    const auto target_lap = static_cast<std::size_t>(origin + config.horizon);

    // Predicted leader: the car with the smallest median predicted rank.
    int predicted_leader = -1;
    double best_median = 1e18;
    int actual_leader = -1;
    bool any_pit_this_window = false;

    struct PairResult {
      int car_id;
      double med, q50, q90, actual;
      bool pit_covered;
    };
    std::vector<PairResult> pairs;

    for (const auto& [car_id, samples] : ranks) {
      const auto& car = race.car(car_id);
      if (car.laps() < target_lap) continue;  // retired inside the window
      const std::size_t h = samples.cols() - 1;
      PairResult p;
      p.car_id = car_id;
      p.med = sample_quantile(samples, h, 0.5);
      p.q50 = p.med;
      p.q90 = sample_quantile(samples, h, 0.9);
      p.actual = car.rank[target_lap - 1];
      // Pit-covered: the car pits near the forecast window.
      p.pit_covered = false;
      const int lo = std::max(1, origin + 1 - config.pit_margin);
      const int hi = std::min<int>(static_cast<int>(car.laps()),
                                   origin + config.horizon + config.pit_margin);
      for (int lap = lo; lap <= hi; ++lap) {
        if (car.pit(static_cast<std::size_t>(lap - 1))) p.pit_covered = true;
      }
      any_pit_this_window = any_pit_this_window || p.pit_covered;
      if (p.med < best_median ||
          (p.med == best_median && car_id < predicted_leader)) {
        best_median = p.med;
        predicted_leader = car_id;
      }
      if (p.actual == 1.0) actual_leader = car_id;
      pairs.push_back(p);
    }
    if (pairs.empty() || actual_leader < 0) continue;

    const bool leader_correct = predicted_leader == actual_leader;
    all.top1.push_back(leader_correct);
    (any_pit_this_window ? pit : normal).top1.push_back(leader_correct);

    for (const auto& p : pairs) {
      auto& bucket = p.pit_covered ? pit : normal;
      for (Accumulator* acc : {&all, &bucket}) {
        acc->med.push_back(p.med);
        acc->q50.push_back(p.q50);
        acc->q90.push_back(p.q90);
        acc->actual.push_back(p.actual);
      }
    }
  }

  TaskAResult result;
  result.all = all.finish();
  result.normal = normal.finish();
  result.pit_covered = pit.finish();
  return result;
}

TaskAResult evaluate_task_a(RaceForecaster& forecaster,
                            const std::vector<telemetry::RaceLog>& races,
                            const TaskAConfig& config) {
  // Aggregate by re-running per race and pooling the per-pair errors via
  // count-weighted averages of the category metrics.
  TaskAResult total;
  auto merge = [](MetricRow& into, const MetricRow& from) {
    const double n0 = static_cast<double>(into.count);
    const double n1 = static_cast<double>(from.count);
    if (n0 + n1 == 0.0) return;
    into.top1 = (into.top1 * n0 + from.top1 * n1) / (n0 + n1);
    into.mae = (into.mae * n0 + from.mae * n1) / (n0 + n1);
    into.risk50 = (into.risk50 * n0 + from.risk50 * n1) / (n0 + n1);
    into.risk90 = (into.risk90 * n0 + from.risk90 * n1) / (n0 + n1);
    into.count += from.count;
  };
  for (const auto& race : races) {
    const auto r = evaluate_task_a(forecaster, race, config);
    merge(total.all, r.all);
    merge(total.normal, r.normal);
    merge(total.pit_covered, r.pit_covered);
  }
  return total;
}

ForecasterStintAdapter::ForecasterStintAdapter(RaceForecaster& forecaster,
                                               int num_samples)
    : forecaster_(forecaster), num_samples_(num_samples) {}

std::vector<double> ForecasterStintAdapter::predict_change(
    const telemetry::RaceLog& race, int car_id, int pit_lap, int next_pit_lap,
    util::Rng& rng) {
  const int horizon = next_pit_lap - pit_lap;
  const auto key =
      util::format("%s|%d|%d", race.id().c_str(), pit_lap, horizon);
  if (key != cached_key_) {
    cached_ranks_ = sort_to_ranks(
        forecaster_.forecast(race, pit_lap, horizon, num_samples_, rng));
    cached_key_ = key;
  }
  const auto it = cached_ranks_.find(car_id);
  if (it == cached_ranks_.end()) return {};
  const auto& samples = it->second;
  const double current =
      race.car(car_id).rank[static_cast<std::size_t>(pit_lap) - 1];
  std::vector<double> out(samples.rows());
  for (std::size_t s = 0; s < samples.rows(); ++s) {
    out[s] = samples(s, samples.cols() - 1) - current;
  }
  return out;
}

RegressorStintPredictor::RegressorStintPredictor(
    std::string name, std::shared_ptr<ml::Regressor> model)
    : name_(std::move(name)), model_(std::move(model)) {}

bool RegressorStintPredictor::features_at(const telemetry::RaceLog& race,
                                          int car_id, int pit_lap,
                                          int next_pit_lap,
                                          std::span<double> out) {
  const auto& car = race.car(car_id);
  const auto idx = static_cast<std::size_t>(pit_lap) - 1;
  if (car.laps() <= idx) return false;
  const auto status = features::compute_status_features(car);
  int pits_so_far = 0;
  for (std::size_t i = 0; i <= idx; ++i) {
    if (car.pit(i)) ++pits_so_far;
  }
  out[0] = car.rank[idx];
  out[1] = status.pit_age[idx] / 40.0;
  out[2] = status.caution_laps[idx] / 10.0;
  out[3] = static_cast<double>(pit_lap) /
           static_cast<double>(std::max(1, race.info().total_laps));
  out[4] = static_cast<double>(pits_so_far);
  out[5] = static_cast<double>(next_pit_lap - pit_lap) / 40.0;
  return true;
}

MlDataset RegressorStintPredictor::build_dataset(
    const std::vector<telemetry::RaceLog>& races, int min_stint) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (const auto& race : races) {
    for (int car_id : race.car_ids()) {
      const auto& car = race.car(car_id);
      const auto pits = car.pit_laps();
      for (std::size_t i = 0; i + 1 < pits.size(); ++i) {
        const int p1 = static_cast<int>(pits[i]) + 1;
        const int p2 = static_cast<int>(pits[i + 1]) + 1;
        if (p2 - p1 < min_stint) continue;
        std::vector<double> x(kFeatureDim);
        if (!features_at(race, car_id, p1, p2, x)) continue;
        rows.push_back(std::move(x));
        targets.push_back(car.rank[pits[i + 1]] - car.rank[pits[i]]);
      }
    }
  }
  MlDataset ds;
  ds.x = tensor::Matrix(rows.size(), kFeatureDim);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < kFeatureDim; ++c) ds.x(r, c) = rows[r][c];
  }
  ds.y = std::move(targets);
  return ds;
}

std::vector<double> RegressorStintPredictor::predict_change(
    const telemetry::RaceLog& race, int car_id, int pit_lap, int next_pit_lap,
    util::Rng& /*rng*/) {
  std::vector<double> x(kFeatureDim);
  if (!features_at(race, car_id, pit_lap, next_pit_lap, x)) return {};
  return {model_->predict_one(x)};
}

TaskBResult evaluate_task_b(StintPredictor& predictor,
                            const std::vector<telemetry::RaceLog>& races,
                            const TaskBConfig& config) {
  util::Rng rng(config.seed);
  std::vector<double> med, q50, q90, actual;
  for (const auto& race : races) {
    for (int car_id : race.car_ids()) {
      const auto& car = race.car(car_id);
      const auto pits = car.pit_laps();
      for (std::size_t i = 0; i + 1 < pits.size(); ++i) {
        const int p1 = static_cast<int>(pits[i]) + 1;
        const int p2 = static_cast<int>(pits[i + 1]) + 1;
        if (p2 - p1 < config.min_stint || p1 < config.min_origin) continue;
        auto samples = predictor.predict_change(race, car_id, p1, p2, rng);
        if (samples.empty()) continue;
        med.push_back(util::median(samples));
        q50.push_back(util::quantile(samples, 0.5));
        q90.push_back(util::quantile(samples, 0.9));
        actual.push_back(car.rank[pits[i + 1]] - car.rank[pits[i]]);
      }
    }
  }
  TaskBResult result;
  result.count = actual.size();
  if (actual.empty()) return result;
  result.sign_acc = sign_accuracy(med, actual);
  result.mae = mae(med, actual);
  result.risk50 = rho_risk(q50, actual, 0.5);
  result.risk90 = rho_risk(q90, actual, 0.9);
  return result;
}

}  // namespace ranknet::core

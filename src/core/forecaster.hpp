// The forecasting interface every model implements.
//
// A race-level forecast at origin lap t0 with horizon H produces, for every
// car still running at t0, a (num_samples x H) matrix of sampled rank
// trajectories for laps t0+1 .. t0+H. Deterministic models return a single
// repeated row. The evaluation pipeline computes medians / quantiles /
// ρ-risk from the samples, and joint per-sample sorting converts raw sampled
// values into integer rank positions (paper Section III-C: "the final rank
// positions of the cars are calculated by sorting the sampled outputs").
#pragma once

#include <map>
#include <string>

#include "tensor/matrix.hpp"
#include "telemetry/race_log.hpp"
#include "util/rng.hpp"

namespace ranknet::core {

/// car id -> (num_samples x horizon) sampled rank values.
using RaceSamples = std::map<int, tensor::Matrix>;

class RaceForecaster {
 public:
  virtual ~RaceForecaster() = default;

  virtual std::string name() const = 0;

  /// Forecast ranks for laps (origin_lap, origin_lap + horizon] for every
  /// car that has completed origin_lap. origin_lap is 1-based.
  virtual RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                               int horizon, int num_samples,
                               util::Rng& rng) = 0;
};

/// Convert raw sampled values into integer ranks by sorting each
/// (sample, lap) slice across cars (ties broken by car id order).
RaceSamples sort_to_ranks(const RaceSamples& raw);

/// Per-car median trajectory of a sample matrix (length = horizon).
std::vector<double> median_trajectory(const tensor::Matrix& samples);

/// Quantile of the sampled values at one horizon step.
double sample_quantile(const tensor::Matrix& samples, std::size_t lap_idx,
                       double q);

}  // namespace ranknet::core

// The forecasting interface every model implements.
//
// A race-level forecast at origin lap t0 with horizon H produces, for every
// car still running at t0, a (num_samples x H) matrix of sampled rank
// trajectories for laps t0+1 .. t0+H. Deterministic models return a single
// repeated row. The evaluation pipeline computes medians / quantiles /
// ρ-risk from the samples, and joint per-sample sorting converts raw sampled
// values into integer rank positions (paper Section III-C: "the final rank
// positions of the cars are calculated by sorting the sampled outputs").
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"
#include "telemetry/race_log.hpp"
#include "util/rng.hpp"

namespace ranknet::core {

/// car id -> (num_samples x horizon) sampled rank values.
using RaceSamples = std::map<int, tensor::Matrix>;

class RaceForecaster {
 public:
  virtual ~RaceForecaster() = default;

  virtual std::string name() const = 0;

  /// Forecast ranks for laps (origin_lap, origin_lap + horizon] for every
  /// car that has completed origin_lap. origin_lap is 1-based.
  virtual RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                               int horizon, int num_samples,
                               util::Rng& rng) = 0;
};

/// Mixin for forecasters whose per-car sample generation can be computed on
/// any subset of cars without changing per-car results — the contract the
/// parallel forecast engine (core/parallel_engine.hpp) fans out over.
///
/// The determinism contract:
///  * `forecast(rng)` must be exactly `prepare(race); base = rng();
///    forecast_partition(..., base, forecast_cars(...))` — so wrapping a
///    forecaster in the engine changes neither its output nor how it
///    consumes the caller's rng.
///  * `forecast_partition` must derive all randomness from `base` via
///    util::Rng::stream keyed by stable ids (car id, sample index), never
///    from shared mutable generator state. Per-car output must be
///    byte-identical for any car subset containing that car.
///  * After `prepare(race)` has run, `forecast_partition` must be safe to
///    call concurrently from multiple threads (read-only on caches).
class PartitionableForecaster {
 public:
  virtual ~PartitionableForecaster() = default;

  /// Warm per-race caches; called once, single-threaded, before fan-out.
  virtual void prepare(const telemetry::RaceLog& race) = 0;

  /// Car ids the forecaster would emit at this origin (ascending order).
  virtual std::vector<int> forecast_cars(const telemetry::RaceLog& race,
                                         int origin_lap) = 0;

  /// Forecast only `cars` (a subset of forecast_cars) from seed material
  /// `base`. Keys child rng streams by (car id, sample) so the result for
  /// each car does not depend on which other cars share the call.
  virtual RaceSamples forecast_partition(const telemetry::RaceLog& race,
                                         int origin_lap, int horizon,
                                         int num_samples, std::uint64_t base,
                                         std::span<const int> cars) = 0;
};

/// Convert raw sampled values into integer ranks by sorting each
/// (sample, lap) slice across cars (ties broken by car id order). Every
/// car's matrix must share one (samples x horizon) shape; a ragged input
/// throws std::invalid_argument.
RaceSamples sort_to_ranks(const RaceSamples& raw);

/// Per-car median trajectory of a sample matrix (length = horizon).
std::vector<double> median_trajectory(const tensor::Matrix& samples);

/// Quantile of the sampled values at one horizon step.
double sample_quantile(const tensor::Matrix& samples, std::size_t lap_idx,
                       double q);

}  // namespace ranknet::core

// Training drivers: minibatch likelihood training (paper Algorithm 1) with
// the paper's early-stopping scheme — decay the learning rate by 0.5 when
// the validation loss stops improving, until a minimum rate is reached
// (Table IV: ADAM, lr 1e-3, decay factor 0.5).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ar_model.hpp"
#include "core/online_trainer.hpp"
#include "core/ranknet.hpp"
#include "core/transformer_model.hpp"
#include "features/window.hpp"
#include "telemetry/race_log.hpp"

namespace ranknet::core {

struct TrainConfig {
  int max_epochs = 16;
  std::size_t batch_size = 64;
  double lr = 1e-3;
  double lr_decay = 0.5;   // multiplied in when validation stalls
  int patience = 2;        // epochs without improvement before decay
  double min_lr = 2e-4;    // stop once decayed below this
  std::size_t max_windows = 4500;      // training windows (subsampled)
  std::size_t max_val_windows = 1200;  // validation windows (subsampled)
  std::uint64_t seed = 5;

  std::string cache_key() const;
};

/// Scaled-down defaults driven by the RANKNET_FAST env var (any non-empty
/// value): fewer windows and epochs for CI-speed runs.
TrainConfig default_train_config();

struct TrainStats {
  std::vector<double> train_loss;  // per epoch
  std::vector<double> val_loss;    // per epoch (NaN if no validation set)
  double best_val = 0.0;
  double seconds = 0.0;
};

/// Train an LstmSeqModel in place. Fits the target scaler on training
/// ranks, subsamples windows, runs Algorithm 1 to convergence, and restores
/// the best-validation parameters.
TrainStats train_sequence_model(
    LstmSeqModel& model, const std::vector<telemetry::RaceLog>& train_races,
    const std::vector<telemetry::RaceLog>& val_races,
    const features::CarVocab& vocab, const features::WindowConfig& wcfg,
    const TrainConfig& tcfg);

/// Rank scaler fitted on all records of the given races (deterministic, so
/// the model cache recomputes it instead of persisting it).
features::StandardScaler fit_rank_scaler(
    const std::vector<telemetry::RaceLog>& races);

/// Small-step refinement of an already-trained model on freshly ingested
/// races — the fit the online loop runs per candidate. Unlike full
/// training it keeps the existing target scaler (refitting on a few fresh
/// races would shift the input distribution under the trained weights) and
/// runs a fixed number of Adam steps instead of epochs-to-convergence, so
/// one call is bounded and deterministic.
struct IncrementalConfig {
  int steps = 8;
  std::size_t batch_size = 32;
  double lr = 2e-4;
  std::size_t max_windows = 256;  // subsampled, seeded
  std::uint64_t seed = 11;
};

struct IncrementalStats {
  double nll_before = 0.0;  // on the fresh windows, pre-update
  double nll_after = 0.0;
  std::size_t windows = 0;
  int steps_run = 0;
};

IncrementalStats incremental_update_sequence_model(
    LstmSeqModel& model, const std::vector<telemetry::RaceLog>& fresh_races,
    const features::CarVocab& vocab, const features::WindowConfig& wcfg,
    const IncrementalConfig& icfg);

/// CandidateFitter for the online trainer: clone `base`, refine the clone
/// on the train window via incremental_update_sequence_model (seeded by the
/// trainer's per-attempt seed), emit it as a v3 artifact, and return a
/// RankNetForecaster over the clone. `base` itself is never mutated.
CandidateFitter make_incremental_lstm_fitter(
    std::shared_ptr<LstmSeqModel> base, features::CarVocab vocab,
    features::WindowConfig wcfg, IncrementalConfig icfg, StatusSource source);

/// Transformer counterpart (same loop; different batch type).
TrainStats train_transformer_model(
    TransformerSeqModel& model,
    const std::vector<telemetry::RaceLog>& train_races,
    const std::vector<telemetry::RaceLog>& val_races,
    const features::CarVocab& vocab, const features::WindowConfig& wcfg,
    const TrainConfig& tcfg);

}  // namespace ranknet::core

// AffineRankModel: the serving layer's hot-swap vehicle — a point
// forecaster whose prediction is an affine map of the origin rank,
//   pred(car, step) = scale * rank_at_origin(car) + offset,
// with both coefficients living in one nn::Parameter ("affine", 1x2). That
// makes it a real checksummed v2 artifact citizen (nn::save_params /
// try_load_params) at microsecond load cost, so registry swap / rollback /
// corruption tests and the soak bench exercise the exact staged-commit +
// shadow-gate path a heavyweight model would take. Identity coefficients
// (scale=1, offset=0) reproduce CurRank bit-for-bit.
#pragma once

#include <cstdint>
#include <string>

#include "core/forecaster.hpp"
#include "nn/param.hpp"
#include "util/status.hpp"

namespace ranknet::serve {

class AffineRankModel : public core::RaceForecaster,
                        public core::PartitionableForecaster,
                        public nn::Layer {
 public:
  explicit AffineRankModel(double scale = 1.0, double offset = 0.0);

  std::string name() const override { return "AffineRank"; }
  core::RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                             int horizon, int num_samples,
                             util::Rng& rng) override;

  void prepare(const telemetry::RaceLog&) override {}
  std::vector<int> forecast_cars(const telemetry::RaceLog& race,
                                 int origin_lap) override;
  core::RaceSamples forecast_partition(const telemetry::RaceLog& race,
                                       int origin_lap, int horizon,
                                       int num_samples, std::uint64_t base,
                                       std::span<const int> cars) override;

  std::vector<nn::Parameter*> params() override { return {&affine_}; }

  double scale() const { return affine_.value(0, 0); }
  double offset() const { return affine_.value(0, 1); }

  /// Staged-commit load of a v2 artifact; on error the current
  /// coefficients are untouched (nn::try_load_params contract).
  util::Status load_artifact(const std::string& path);

  /// Write a v2 checksummed artifact holding the given coefficients —
  /// the one-liner the registry tests and the soak bench build candidate
  /// (and deliberately-broken) artifacts from.
  static void save_artifact(const std::string& path, double scale,
                            double offset);

  /// Artificial per-partition-call delay, for deadline/latency-gate tests
  /// (0 = none). Not part of the artifact.
  void set_partition_delay_us(int delay_us) { partition_delay_us_ = delay_us; }

 private:
  nn::Parameter affine_;  // 1x2: [scale, offset]
  int partition_delay_us_ = 0;
};

}  // namespace ranknet::serve

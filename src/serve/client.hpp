// ForecastClient: the serving front end's client library — one persistent
// connection, synchronous request/response, and retry with exponential
// backoff + jitter (util::ExponentialBackoff) around every transient
// transport failure: connection refused while the server (re)starts, a
// response that never arrives because the request frame was dropped or
// corrupted in flight, a connection reset mid-exchange.
//
// Retry correctness: a retried forecast resends the SAME request (same
// request_id, same seed). The server's answer is a pure function of
// (race state, seed, model version), so the retry either hits the forecast
// cache (the first attempt computed it) or recomputes identical bytes —
// at-least-once delivery with idempotent requests. Responses are matched by
// request_id, so a late response from a timed-out earlier attempt is
// skipped, never mis-delivered.
//
// Fault-injection seam: set_send_filter routes every outgoing frame through
// a caller hook (tests plug in sim::WireFaultInjector) and set_stall_hook
// lets tests emulate a stalled client — the adversary the server's
// slow-client guard is proven against.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/wire.hpp"
#include "telemetry/race_log.hpp"
#include "util/backoff.hpp"
#include "util/socket.hpp"
#include "util/status.hpp"

namespace ranknet::serve {

struct ClientConfig {
  std::string socket_path;
  double connect_timeout_seconds = 1.0;
  double send_timeout_seconds = 1.0;
  /// Per-attempt wait for the matching response; a drop/ignore surfaces
  /// here as kUnavailable and triggers the retry path.
  double recv_timeout_seconds = 1.0;
  util::BackoffConfig backoff;
  std::uint64_t backoff_seed = 0xb0ff;
};

class ForecastClient {
 public:
  explicit ForecastClient(ClientConfig config);

  /// Mutate/drop outgoing frames (nullopt = frame never sent). The client
  /// behaves as if the network did it: it still waits for the reply and
  /// retries on timeout.
  using SendFilter = std::function<std::optional<std::vector<std::uint8_t>>(
      std::span<const std::uint8_t>)>;
  /// Milliseconds to stall before each send (0 = none).
  using StallHook = std::function<int()>;
  void set_send_filter(SendFilter filter) { filter_ = std::move(filter); }
  void set_stall_hook(StallHook hook) { stall_ = std::move(hook); }

  util::Status connect();
  void disconnect() { stream_.close(); }
  bool connected() const { return stream_.valid(); }

  util::Result<wire::ForecastResponse> forecast(
      const wire::ForecastRequest& request);
  util::Status load_race(const telemetry::RaceLog& race);
  util::Result<wire::SwapAck> swap_model(const std::string& artifact_path);
  util::Status shutdown_server();

  /// Transport attempts beyond the first, summed over this client's life.
  std::uint64_t retries() const { return retries_; }

 private:
  /// One request/response exchange with the full retry loop. `want_id`
  /// filters kForecastResponse frames by request id; acks match on type.
  util::Result<std::vector<std::uint8_t>> transact(
      wire::FrameType request_type, std::span<const std::uint8_t> payload,
      wire::FrameType response_type, std::optional<std::uint64_t> want_id);

  util::Status send_frame(wire::FrameType type,
                          std::span<const std::uint8_t> payload);
  /// Read one whole verified frame off the stream.
  util::Result<std::pair<wire::FrameHeader, std::vector<std::uint8_t>>>
  recv_frame(double timeout_seconds);

  ClientConfig config_;
  util::UnixStream stream_;
  SendFilter filter_;
  StallHook stall_;
  std::uint64_t backoff_nonce_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace ranknet::serve

// Length-prefixed binary wire protocol of the forecast-serving front end.
//
// Frame layout (little-endian, local-socket hop only):
//   u32 magic 'RNKS' | u8 version | u8 type | u32 payload_len
//   | u64 payload FNV-1a checksum | payload bytes
// The checksum catches in-flight corruption (sim::WireFaultInjector's
// bit flips) before any payload field is trusted; the length prefix keeps
// framing recoverable, so one corrupt payload costs one request, not the
// connection. Decoding follows the PR-2 artifact-loader discipline: every
// size is bounds-checked against a hard cap *before* allocation, every
// read is range-checked, and all failures surface as util::Status — the
// peer is untrusted bytes, never a trusted caller.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "telemetry/race_log.hpp"
#include "util/status.hpp"

namespace ranknet::serve::wire {

inline constexpr std::uint32_t kMagic = 0x534B4E52u;  // "RNKS" little-endian
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 4 + 8;
/// Hard cap on one frame's payload; a race upload of ~100k records fits
/// with an order of magnitude to spare.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;

enum class FrameType : std::uint8_t {
  kForecastRequest = 1,
  kForecastResponse = 2,
  kLoadRace = 3,
  kLoadRaceAck = 4,
  kSwapModel = 5,
  kSwapAck = 6,
  kShutdown = 7,
  kShutdownAck = 8,
};

struct FrameHeader {
  FrameType type = FrameType::kForecastRequest;
  std::uint32_t payload_len = 0;
  std::uint64_t checksum = 0;
};

/// Admission/service tier a request was answered at (the degradation
/// ladder's serving-side vocabulary; see DESIGN.md "Serving & overload
/// policy").
enum class Tier : std::uint8_t {
  kRejected = 0,  // explicit shed: queue full or deadline unmeetable
  kFull = 1,      // primary model, full sample budget
  kCached = 2,    // byte-identical replay from the forecast cache
  kPartial = 3,   // primary, deadline partial-merge (some cars fallback)
  kFallback = 4,  // fallback model (overload or primary failure)
};

const char* tier_name(Tier tier);

struct ForecastRequest {
  std::uint64_t request_id = 0;
  /// Rng seed for the forecast; the sample noise is a pure function of it
  /// (same seed + same race state => byte-identical response), so clients
  /// that share a seed share cache entries and micro-batch slots.
  std::uint64_t seed = 0;
  std::string race_id;
  std::int32_t origin_lap = 0;
  std::int32_t horizon = 0;
  std::int32_t num_samples = 0;
  /// Per-request budget; 0 = server default. The server spends it across
  /// queue wait + decode via the engine's deadline tier.
  std::uint32_t deadline_us = 0;
};

struct CarForecast {
  std::int32_t car_id = 0;
  std::vector<double> median;  // per-horizon-step median rank value
};

struct ForecastResponse {
  std::uint64_t request_id = 0;
  std::uint8_t status_code = 0;  // util::StatusCode
  Tier tier = Tier::kRejected;
  std::uint64_t model_version = 0;
  std::vector<CarForecast> cars;
  std::string message;  // failure detail when status_code != kOk

  bool ok() const { return status_code == 0; }
};

struct SwapRequest {
  std::string artifact_path;
};

enum class SwapAction : std::uint8_t {
  kPromoted = 1,    // candidate passed checksum + gates, now active
  kRejected = 2,    // candidate never became active (stage/gate failure)
  kRolledBack = 3,  // active reverted to the previous version
};

struct SwapAck {
  std::uint8_t status_code = 0;
  SwapAction action = SwapAction::kRejected;
  std::uint64_t active_version = 0;
  std::string message;
};

// --- frame level -----------------------------------------------------------

/// Header + checksummed payload, ready to write to a stream.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload);

/// Parse the fixed-size header. Rejects bad magic/version (unrecoverable:
/// drop the connection) and payloads above kMaxPayload.
util::Result<FrameHeader> decode_header(std::span<const std::uint8_t> bytes);

/// Checksum the payload against its header. kCorruptData on mismatch
/// (recoverable: skip this frame, keep the connection).
util::Status verify_payload(const FrameHeader& header,
                            std::span<const std::uint8_t> payload);

// --- payload codecs --------------------------------------------------------

std::vector<std::uint8_t> encode_forecast_request(const ForecastRequest& req);
util::Result<ForecastRequest> decode_forecast_request(
    std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_forecast_response(
    const ForecastResponse& res);
util::Result<ForecastResponse> decode_forecast_response(
    std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_race(const telemetry::RaceLog& race);
/// Rebuilds the RaceLog (structural invariant violations — e.g.
/// non-contiguous laps — surface as Status, not exceptions).
util::Result<telemetry::RaceLog> decode_race(
    std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_swap_request(const SwapRequest& req);
util::Result<SwapRequest> decode_swap_request(
    std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_swap_ack(const SwapAck& ack);
util::Result<SwapAck> decode_swap_ack(std::span<const std::uint8_t> payload);

/// LoadRaceAck / ShutdownAck share one tiny codec: status code + message.
std::vector<std::uint8_t> encode_status_ack(std::uint8_t status_code,
                                            const std::string& message);
util::Result<std::pair<std::uint8_t, std::string>> decode_status_ack(
    std::span<const std::uint8_t> payload);

}  // namespace ranknet::serve::wire

// RaceTable: the server's race store, sharded by race key.
//
// The PR-7 server kept one `races_mutex_` over one map, taken on EVERY
// request — once at admission and once again on the worker hot path. With
// per-race shard routing that global lock is the last process-wide
// serialization point, so it is replaced here by hash-sharded buckets
// (same FNV-1a race key the fleet routes by) and by snapshot semantics:
// find() returns a shared_ptr to an immutable RaceEntry, resolved ONCE at
// admission and pinned in the queued request. The worker never looks a
// race up again — a concurrent add_race replacing the entry produces a new
// snapshot for new admissions while in-flight requests keep the state they
// were admitted against (and with it a digest that still matches their
// cached/deduped bytes).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/race_log.hpp"

namespace ranknet::serve {

/// One loaded race, immutable after insertion (replaced wholesale by a
/// newer add_race).
struct RaceEntry {
  std::shared_ptr<const telemetry::RaceLog> race;
  std::uint64_t digest = 0;  // core::race_state_digest, computed at load
};

class RaceTable {
 public:
  explicit RaceTable(std::size_t buckets = 16);

  RaceTable(const RaceTable&) = delete;
  RaceTable& operator=(const RaceTable&) = delete;

  /// Insert or replace the entry for `race.id()`. Digest is computed here,
  /// off the request path.
  void insert(telemetry::RaceLog race);

  /// Snapshot lookup: the returned entry is immutable and safe to hold for
  /// the life of a request regardless of concurrent inserts. Null on miss.
  std::shared_ptr<const RaceEntry> find(const std::string& race_id) const;

  std::size_t size() const;
  std::size_t buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<const RaceEntry>> map;
  };

  Bucket& bucket_for(const std::string& race_id) const;

  std::vector<std::unique_ptr<Bucket>> buckets_;
};

}  // namespace ranknet::serve

#include "serve/online_loop.hpp"

#include <cmath>
#include <utility>

#include "ml/online_linear.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "serve/affine_model.hpp"
#include "util/string_util.hpp"

namespace ranknet::serve {

util::Result<std::uint64_t> RegistryPromotionTarget::promote(
    const std::string& artifact_path) {
  const auto outcome = registry_.swap(artifact_path);
  if (outcome.action != wire::SwapAction::kPromoted) {
    if (!outcome.status.ok()) return outcome.status;
    return util::Status::failed_precondition(
        "registry refused the swap without a status");
  }
  return outcome.active_version;
}

util::Result<std::uint64_t> RegistryPromotionTarget::rollback(
    const std::string& reason) {
  const auto outcome = registry_.rollback(reason);
  if (outcome.action != wire::SwapAction::kRolledBack) {
    if (!outcome.status.ok()) return outcome.status;
    return util::Status::failed_precondition(
        "registry refused the rollback without a status");
  }
  return outcome.active_version;
}

std::function<std::shared_ptr<core::RaceForecaster>()> registry_champion_view(
    ModelRegistry& registry) {
  return [&registry]() -> std::shared_ptr<core::RaceForecaster> {
    auto model = registry.active();
    if (!model) return registry.fallback();
    // Aliasing constructor: the view exposes the engine but owns the whole
    // generation, so an in-flight shadow score keeps it alive even if the
    // registry publishes a successor mid-probe.
    return {model, model->engine.get()};
  };
}

core::CandidateFitter make_affine_fitter(AffineFitterConfig config) {
  return [config](const telemetry::RaceWindow& train, std::uint64_t /*seed*/,
                  const std::string& artifact_path)
             -> util::Result<core::FittedCandidate> {
    ml::OnlineLinearFit fit;
    double absmax = 0.0;
    const auto h = static_cast<std::size_t>(config.horizon);
    for (const auto& race : train) {
      // Oldest race decays the most: one decay per boundary *before* its
      // successor's samples land.
      fit.decay(config.decay);
      for (const auto& [car_id, series] : race->cars()) {
        const auto& rank = series.rank;
        if (rank.size() <= h) continue;
        for (std::size_t i = 0; i + h < rank.size(); ++i) {
          fit.add(rank[i], rank[i + h]);
          absmax = std::max(absmax, std::abs(rank[i]));
        }
      }
    }
    if (fit.observations() == 0) {
      return util::Status::failed_precondition(
          "affine fit: no (origin, horizon) rank pairs in the train window");
    }
    const auto coeffs = fit.fit(config.ridge);

    AffineRankModel model(coeffs.slope, coeffs.intercept);
    // v3 artifact with a genuine calibration entry — the parser fuzz tests
    // corrupt exactly this section on trainer-emitted artifacts.
    tensor::quant::Calibration calibration;
    calibration["affine"] = absmax;
    nn::save_params(artifact_path, model.params(), calibration);

    core::FittedCandidate out;
    out.forecaster =
        std::make_shared<AffineRankModel>(coeffs.slope, coeffs.intercept);
    out.artifact_path = artifact_path;
    out.summary = util::format(
        "affine scale=%.6g offset=%.6g n=%llu", coeffs.slope, coeffs.intercept,
        static_cast<unsigned long long>(fit.observations()));
    return out;
  };
}

OnlineLoop::OnlineLoop(ModelRegistry& registry, core::CandidateFitter fitter,
                       OnlineLoopConfig config)
    : ingestor_(config.ingest),
      replay_(config.replay),
      target_(registry) {
  trainer_ = std::make_unique<core::OnlineTrainer>(
      config.trainer, replay_, std::move(fitter), target_,
      registry_champion_view(registry));
  auto& reg = obs::Registry::instance();
  races_ingested_ = &reg.counter("serve.online.races_ingested");
  races_rejected_ = &reg.counter("serve.online.races_rejected");
  records_accepted_ = &reg.counter("serve.online.records_accepted");
  records_quarantined_ = &reg.counter("serve.online.records_quarantined");
}

util::Status OnlineLoop::ingest_race(
    const telemetry::EventInfo& info,
    const std::vector<telemetry::LapRecord>& records) {
  ingestor_.begin_race();
  for (const auto& rec : records) {
    // Per-record rejections are quarantine business as usual — already
    // tallied by the ingestor; only finalize decides the race's fate.
    (void)ingestor_.push(rec);
  }
  auto finalized = ingestor_.finalize(info);
  const auto& counters = ingestor_.counters();
  records_accepted_->add(counters.accepted);
  records_quarantined_->add(counters.quarantined());
  if (!finalized.ok()) {
    races_rejected_->add();
    return finalized.status();
  }
  races_ingested_->add();
  replay_.push(std::move(finalized).value());
  return {};
}

core::TraceEvent OnlineLoop::step() { return trainer_->step(); }

}  // namespace ranknet::serve

#include "serve/wire.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/forecast_cache.hpp"  // Fnv1a

namespace ranknet::serve::wire {

namespace {

using util::Result;
using util::Status;

// Decode-side caps: reject before allocating, the artifact-loader rule.
constexpr std::size_t kMaxString = 4096;
constexpr std::size_t kMaxRecords = 1u << 20;
constexpr std::size_t kMaxCars = 4096;
constexpr std::size_t kMaxHorizon = 4096;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  core::Fnv1a h;
  h.update_bytes(bytes.data(), bytes.size());
  return h.digest();
}

/// Append-only little-endian byte writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader; every accessor returns false once the payload is
/// exhausted, and the caller converts that into one kParseError.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) { return raw(&v, sizeof(v)); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof(v)); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof(v)); }
  bool i32(std::int32_t& v) { return raw(&v, sizeof(v)); }
  bool f64(double& v) { return raw(&v, sizeof(v)); }
  bool str(std::string& s, std::size_t cap = kMaxString) {
    std::uint32_t n = 0;
    if (!u32(n) || n > cap || n > remaining()) return false;
    s.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  bool raw(void* p, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

Status parse_error(const char* what) {
  return Status::parse_error(std::string("wire: malformed ") + what);
}

/// Strict-decode epilogue: trailing bytes mean the payload is not what the
/// type says it is.
Status finish(const Reader& r, const char* what) {
  if (!r.done()) {
    return Status::parse_error(std::string("wire: ") +
                               std::to_string(r.remaining()) +
                               " trailing bytes after " + what);
  }
  return {};
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kRejected: return "rejected";
    case Tier::kFull: return "full";
    case Tier::kCached: return "cached";
    case Tier::kPartial: return "partial";
    case Tier::kFallback: return "fallback";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayload) {
    throw std::invalid_argument("wire: payload exceeds kMaxPayload");
  }
  Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(fnv1a(payload));
  auto out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<FrameHeader> decode_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::corrupt_data("wire: short frame header");
  }
  Reader r(bytes.first(kHeaderSize));
  std::uint32_t magic = 0, len = 0;
  std::uint8_t version = 0, type = 0;
  std::uint64_t checksum = 0;
  if (!r.u32(magic) || !r.u8(version) || !r.u8(type) || !r.u32(len) ||
      !r.u64(checksum)) {
    return Status::corrupt_data("wire: short frame header");
  }
  if (magic != kMagic) {
    return Status::corrupt_data("wire: bad magic (not a RNKS stream)");
  }
  if (version != kVersion) {
    return Status::corrupt_data("wire: unsupported protocol version " +
                                std::to_string(version));
  }
  if (type < static_cast<std::uint8_t>(FrameType::kForecastRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kShutdownAck)) {
    return Status::corrupt_data("wire: unknown frame type " +
                                std::to_string(type));
  }
  if (len > kMaxPayload) {
    return Status::corrupt_data("wire: payload length " +
                                std::to_string(len) + " exceeds cap");
  }
  FrameHeader h;
  h.type = static_cast<FrameType>(type);
  h.payload_len = len;
  h.checksum = checksum;
  return h;
}

Status verify_payload(const FrameHeader& header,
                      std::span<const std::uint8_t> payload) {
  if (payload.size() != header.payload_len) {
    return Status::corrupt_data("wire: payload size mismatch");
  }
  if (fnv1a(payload) != header.checksum) {
    return Status::corrupt_data("wire: payload checksum mismatch");
  }
  return {};
}

// --- ForecastRequest -------------------------------------------------------

std::vector<std::uint8_t> encode_forecast_request(const ForecastRequest& req) {
  Writer w;
  w.u64(req.request_id);
  w.u64(req.seed);
  w.str(req.race_id);
  w.i32(req.origin_lap);
  w.i32(req.horizon);
  w.i32(req.num_samples);
  w.u32(req.deadline_us);
  return w.take();
}

Result<ForecastRequest> decode_forecast_request(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ForecastRequest req;
  if (!r.u64(req.request_id) || !r.u64(req.seed) || !r.str(req.race_id) ||
      !r.i32(req.origin_lap) || !r.i32(req.horizon) ||
      !r.i32(req.num_samples) || !r.u32(req.deadline_us)) {
    return parse_error("ForecastRequest");
  }
  if (auto s = finish(r, "ForecastRequest"); !s.ok()) return s;
  if (req.origin_lap < 1 || req.horizon < 1 ||
      req.horizon > static_cast<std::int32_t>(kMaxHorizon) ||
      req.num_samples < 1 || req.num_samples > 65536) {
    return Status::out_of_range(
        "wire: ForecastRequest origin/horizon/samples out of range");
  }
  return req;
}

// --- ForecastResponse ------------------------------------------------------

std::vector<std::uint8_t> encode_forecast_response(
    const ForecastResponse& res) {
  Writer w;
  w.u64(res.request_id);
  w.u8(res.status_code);
  w.u8(static_cast<std::uint8_t>(res.tier));
  w.u64(res.model_version);
  w.u32(static_cast<std::uint32_t>(res.cars.size()));
  for (const auto& car : res.cars) {
    w.i32(car.car_id);
    w.u32(static_cast<std::uint32_t>(car.median.size()));
    for (double v : car.median) w.f64(v);
  }
  w.str(res.message);
  return w.take();
}

Result<ForecastResponse> decode_forecast_response(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ForecastResponse res;
  std::uint8_t tier = 0;
  std::uint32_t n_cars = 0;
  if (!r.u64(res.request_id) || !r.u8(res.status_code) || !r.u8(tier) ||
      !r.u64(res.model_version) || !r.u32(n_cars)) {
    return parse_error("ForecastResponse");
  }
  if (tier > static_cast<std::uint8_t>(Tier::kFallback) || n_cars > kMaxCars) {
    return Status::out_of_range("wire: ForecastResponse tier/cars invalid");
  }
  res.tier = static_cast<Tier>(tier);
  res.cars.reserve(n_cars);
  for (std::uint32_t i = 0; i < n_cars; ++i) {
    CarForecast car;
    std::uint32_t len = 0;
    if (!r.i32(car.car_id) || !r.u32(len) || len > kMaxHorizon ||
        len * sizeof(double) > r.remaining()) {
      return parse_error("ForecastResponse car");
    }
    car.median.resize(len);
    for (auto& v : car.median) {
      if (!r.f64(v)) return parse_error("ForecastResponse car");
    }
    res.cars.push_back(std::move(car));
  }
  if (!r.str(res.message)) return parse_error("ForecastResponse message");
  if (auto s = finish(r, "ForecastResponse"); !s.ok()) return s;
  return res;
}

// --- RaceLog ---------------------------------------------------------------

std::vector<std::uint8_t> encode_race(const telemetry::RaceLog& race) {
  const auto& info = race.info();
  Writer w;
  w.str(info.name);
  w.i32(info.year);
  w.f64(info.track_length_miles);
  w.str(info.track_shape);
  w.i32(info.total_laps);
  w.f64(info.avg_speed_mph);
  w.u32(static_cast<std::uint32_t>(race.records().size()));
  for (const auto& rec : race.records()) {
    w.i32(rec.rank);
    w.i32(rec.car_id);
    w.i32(rec.lap);
    w.f64(rec.lap_time);
    w.f64(rec.time_behind_leader);
    w.u8(static_cast<std::uint8_t>(rec.lap_status));
    w.u8(static_cast<std::uint8_t>(rec.track_status));
  }
  return w.take();
}

Result<telemetry::RaceLog> decode_race(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  telemetry::EventInfo info;
  std::uint32_t n_records = 0;
  if (!r.str(info.name) || !r.i32(info.year) ||
      !r.f64(info.track_length_miles) || !r.str(info.track_shape) ||
      !r.i32(info.total_laps) || !r.f64(info.avg_speed_mph) ||
      !r.u32(n_records)) {
    return parse_error("RaceLog header");
  }
  if (n_records > kMaxRecords) {
    return Status::out_of_range("wire: race has too many records");
  }
  std::vector<telemetry::LapRecord> records;
  records.reserve(n_records);
  for (std::uint32_t i = 0; i < n_records; ++i) {
    telemetry::LapRecord rec;
    std::uint8_t lap_status = 0, track_status = 0;
    if (!r.i32(rec.rank) || !r.i32(rec.car_id) || !r.i32(rec.lap) ||
        !r.f64(rec.lap_time) || !r.f64(rec.time_behind_leader) ||
        !r.u8(lap_status) || !r.u8(track_status)) {
      return parse_error("RaceLog record");
    }
    if (lap_status > 1 || track_status > 1) {
      return Status::out_of_range("wire: race record status byte invalid");
    }
    rec.lap_status = static_cast<telemetry::LapStatus>(lap_status);
    rec.track_status = static_cast<telemetry::TrackStatus>(track_status);
    records.push_back(rec);
  }
  if (auto s = finish(r, "RaceLog"); !s.ok()) return s;
  // RaceLog's constructor enforces structural invariants with exceptions
  // (it normally guards trusted in-process callers); over the wire those
  // violations are just another corrupt input.
  try {
    return telemetry::RaceLog(std::move(info), std::move(records));
  } catch (const std::exception& e) {
    return Status::out_of_range(std::string("wire: race rejected: ") +
                                e.what());
  }
}

// --- SwapRequest / SwapAck -------------------------------------------------

std::vector<std::uint8_t> encode_swap_request(const SwapRequest& req) {
  Writer w;
  w.str(req.artifact_path);
  return w.take();
}

Result<SwapRequest> decode_swap_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  SwapRequest req;
  if (!r.str(req.artifact_path)) return parse_error("SwapRequest");
  if (auto s = finish(r, "SwapRequest"); !s.ok()) return s;
  return req;
}

std::vector<std::uint8_t> encode_swap_ack(const SwapAck& ack) {
  Writer w;
  w.u8(ack.status_code);
  w.u8(static_cast<std::uint8_t>(ack.action));
  w.u64(ack.active_version);
  w.str(ack.message);
  return w.take();
}

Result<SwapAck> decode_swap_ack(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  SwapAck ack;
  std::uint8_t action = 0;
  if (!r.u8(ack.status_code) || !r.u8(action) || !r.u64(ack.active_version) ||
      !r.str(ack.message)) {
    return parse_error("SwapAck");
  }
  if (action < static_cast<std::uint8_t>(SwapAction::kPromoted) ||
      action > static_cast<std::uint8_t>(SwapAction::kRolledBack)) {
    return Status::out_of_range("wire: SwapAck action invalid");
  }
  ack.action = static_cast<SwapAction>(action);
  if (auto s = finish(r, "SwapAck"); !s.ok()) return s;
  return ack;
}

// --- status ack ------------------------------------------------------------

std::vector<std::uint8_t> encode_status_ack(std::uint8_t status_code,
                                            const std::string& message) {
  Writer w;
  w.u8(status_code);
  w.str(message);
  return w.take();
}

Result<std::pair<std::uint8_t, std::string>> decode_status_ack(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  std::uint8_t code = 0;
  std::string message;
  if (!r.u8(code) || !r.str(message)) return parse_error("StatusAck");
  if (auto s = finish(r, "StatusAck"); !s.ok()) return s;
  return std::make_pair(code, message);
}

}  // namespace ranknet::serve::wire

#include "serve/race_table.hpp"

#include <utility>

#include "core/fleet_engine.hpp"
#include "core/forecast_cache.hpp"

namespace ranknet::serve {

RaceTable::RaceTable(std::size_t buckets) {
  const std::size_t n = buckets == 0 ? 1 : buckets;
  buckets_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    buckets_.push_back(std::make_unique<Bucket>());
  }
}

RaceTable::Bucket& RaceTable::bucket_for(const std::string& race_id) const {
  // Same stable route key the fleet shards by, so one race's admission
  // lookups and forecasts contend with (at most) their own shard's traffic.
  return *buckets_[static_cast<std::size_t>(
      core::FleetEngine::race_key(race_id) % buckets_.size())];
}

void RaceTable::insert(telemetry::RaceLog race) {
  auto entry = std::make_shared<RaceEntry>();
  entry->digest = core::race_state_digest(race);
  auto id = race.id();
  entry->race = std::make_shared<const telemetry::RaceLog>(std::move(race));
  Bucket& b = bucket_for(id);
  std::lock_guard<std::mutex> lock(b.mutex);
  b.map[std::move(id)] = std::move(entry);
}

std::shared_ptr<const RaceEntry> RaceTable::find(
    const std::string& race_id) const {
  Bucket& b = bucket_for(race_id);
  std::lock_guard<std::mutex> lock(b.mutex);
  const auto it = b.map.find(race_id);
  return it == b.map.end() ? nullptr : it->second;
}

std::size_t RaceTable::size() const {
  std::size_t total = 0;
  for (const auto& b : buckets_) {
    std::lock_guard<std::mutex> lock(b->mutex);
    total += b->map.size();
  }
  return total;
}

}  // namespace ranknet::serve

#include "serve/affine_model.hpp"

#include <chrono>
#include <thread>

#include "core/baselines.hpp"
#include "nn/serialize.hpp"
#include "tensor/matrix.hpp"

namespace ranknet::serve {

AffineRankModel::AffineRankModel(double scale, double offset)
    : affine_("affine", tensor::Matrix(1, 2)) {
  affine_.value(0, 0) = scale;
  affine_.value(0, 1) = offset;
}

std::vector<int> AffineRankModel::forecast_cars(
    const telemetry::RaceLog& race, int origin_lap) {
  return core::running_cars(race, origin_lap);
}

core::RaceSamples AffineRankModel::forecast(const telemetry::RaceLog& race,
                                            int origin_lap, int horizon,
                                            int num_samples, util::Rng& rng) {
  prepare(race);
  const std::uint64_t base = rng();
  const auto cars = forecast_cars(race, origin_lap);
  return forecast_partition(race, origin_lap, horizon, num_samples, base,
                            cars);
}

core::RaceSamples AffineRankModel::forecast_partition(
    const telemetry::RaceLog& race, int origin_lap, int horizon,
    int num_samples, std::uint64_t /*base*/, std::span<const int> cars) {
  if (partition_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(partition_delay_us_));
  }
  (void)num_samples;  // point forecast: one row, engine broadcasts
  core::RaceSamples out;
  const auto idx = static_cast<std::size_t>(origin_lap - 1);
  for (int car_id : cars) {
    const auto& series = race.car(car_id);
    const double pred = scale() * series.rank[idx] + offset();
    tensor::Matrix m(1, static_cast<std::size_t>(horizon), pred);
    out.emplace(car_id, std::move(m));
  }
  return out;
}

util::Status AffineRankModel::load_artifact(const std::string& path) {
  return nn::try_load_params(path, params());
}

void AffineRankModel::save_artifact(const std::string& path, double scale,
                                    double offset) {
  AffineRankModel model(scale, offset);
  nn::save_params(path, model.params());
}

}  // namespace ranknet::serve

// ForecastServer: the overload-hardened serving front end.
//
// Two threads, each with one job:
//   * I/O thread — accept, per-connection frame reassembly, and *admission
//     control*: every incoming forecast request is admitted (possibly at a
//     degraded tier), explicitly rejected, or its whole connection dropped
//     (slow-client guard) the moment it is parsed. Nothing unbounded ever
//     reaches the compute side.
//   * worker thread — pops up to batch_max admitted requests, groups the
//     compatible ones (same race/origin/horizon/samples/seed) into one
//     engine call each (cross-request micro-batching; duplicates ride the
//     PR-6 forecast cache for free), routes each group to the active
//     model's RaceShard by race id (core/fleet_engine.hpp) and runs it on
//     that shard's driver — so groups for different races compute
//     concurrently, each armed with its group's tightest remaining budget,
//     while per-shard engine state stays single-writer. The worker joins
//     every dispatched group before taking the next batch, which keeps
//     swap-vs-serve ordering deterministic.
//
// Race lookups are admission-time only: the io thread resolves the race to
// an immutable RaceEntry snapshot from the bucket-sharded RaceTable and
// pins it in the queued request, so the worker hot path takes no race-table
// lock at all (serve/race_table.hpp).
//
// Overload policy (the degradation ladder, serving-side):
//   queue full            -> Tier::kRejected   (kUnavailable, immediate)
//   queue over watermark  -> degraded admission: answered from the forecast
//                            cache if possible, else the fallback model
//                            (Tier::kCached / Tier::kFallback)
//   deadline gone in queue-> Tier::kRejected   (kDeadlineExceeded)
//   normal                -> engine ladder: kFull, or kPartial when the
//                            per-request budget ran out mid-forecast
// Degradation is monotone in load and every shed is an explicit response —
// the soak test's core assertions.
//
// Frame-level robustness: a checksum-corrupt payload skips one frame and
// keeps the connection; a bad magic/version kills the connection; a
// connection holding a partial frame with no progress for
// slow_client_timeout_seconds is dropped. All booked in "serve.*" metrics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/model_registry.hpp"
#include "serve/race_table.hpp"
#include "serve/wire.hpp"
#include "telemetry/race_log.hpp"
#include "util/socket.hpp"
#include "util/status.hpp"

namespace ranknet::serve {

struct ServerConfig {
  std::string socket_path;
  /// Admitted-but-unserved requests the queue will hold; arrivals beyond
  /// this are shed with an explicit rejection.
  std::size_t queue_capacity = 128;
  /// Queue depth at which admission degrades to cache/fallback-only.
  std::size_t overload_watermark = 96;
  /// Max requests one worker iteration coalesces.
  std::size_t batch_max = 16;
  /// Deadline applied when a request carries none (microseconds).
  std::uint32_t default_deadline_us = 100000;
  /// Hard ceiling on any requested deadline.
  std::uint32_t max_deadline_us = 2000000;
  /// A connection holding a partial frame with no progress for this long
  /// is dropped (stalled-client guard).
  double slow_client_timeout_seconds = 0.25;
  /// Budget for writing one response before the client is declared slow.
  double write_timeout_seconds = 0.5;
  std::size_t max_connections = 64;
};

class ForecastServer {
 public:
  /// The registry must outlive the server and have been init()ed before
  /// requests arrive (requests before that are rejected, not crashed).
  ForecastServer(ModelRegistry& registry, ServerConfig config);
  ~ForecastServer();

  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  /// Bind the socket and start both threads.
  util::Status start();
  /// Stop, drain the queue with explicit rejections, join, unlink.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Server-side race preload (tests/benches); clients use kLoadRace.
  void add_race(telemetry::RaceLog race);

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    util::UnixStream stream;
    std::vector<std::uint8_t> buf;  // frame reassembly
    Clock::time_point last_progress;
    std::mutex write_mutex;  // io thread (acks) vs worker (responses)
    std::atomic<bool> dead{false};
  };

  struct Pending {
    std::shared_ptr<Conn> conn;
    wire::ForecastRequest req;
    /// Race snapshot pinned at admission: the worker never re-locks the
    /// race table, and a concurrent add_race cannot change the state this
    /// request is answered against.
    std::shared_ptr<const RaceEntry> race;
    Clock::time_point arrival;
    Clock::time_point deadline;
    bool degraded = false;  // admitted above the watermark
  };

  struct AdminOp {
    std::shared_ptr<Conn> conn;
    wire::SwapRequest swap;
  };

  void io_loop();
  void worker_loop();

  /// Parse every complete frame in conn->buf; returns false when the
  /// connection must be dropped (framing no longer trustworthy).
  bool drain_frames(const std::shared_ptr<Conn>& conn);
  void handle_forecast_frame(const std::shared_ptr<Conn>& conn,
                             std::span<const std::uint8_t> payload);
  void handle_load_race(const std::shared_ptr<Conn>& conn,
                        std::span<const std::uint8_t> payload);

  /// Serve one micro-batch group (identical request parameters) with one
  /// engine call on `shard`; `members` all receive the same payload under
  /// their own request ids. Runs on the shard's driver thread (or the
  /// worker thread itself when no model/shard is available to route to —
  /// then `shard` is null). The worker loop pins the shard shared_ptrs for
  /// the whole batch, so a raw pointer is safe here and the job never owns
  /// the shard (RaceShard::submit's lifetime contract).
  void process_group(std::vector<Pending>& members,
                     const std::shared_ptr<const ServingModel>& model,
                     core::RaceShard* shard);
  void respond(const std::shared_ptr<Conn>& conn,
               const wire::ForecastResponse& response);
  void send_frame(const std::shared_ptr<Conn>& conn, wire::FrameType type,
                  std::span<const std::uint8_t> payload);
  void reject(const Pending& item, util::Status status);
  void finish(const Pending& item, wire::Tier tier);

  ModelRegistry& registry_;
  ServerConfig config_;

  util::UnixListener listener_;
  std::thread io_thread_;
  std::thread worker_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::vector<std::shared_ptr<Conn>> conns_;  // io thread only

  RaceTable races_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::deque<AdminOp> admin_;

  // serve.* metric handles, resolved once in the constructor.
  struct Metrics {
    obs::Counter* conns_accepted;
    obs::Counter* conns_rejected;
    obs::Counter* conns_slow_dropped;
    obs::Counter* frames_received;
    obs::Counter* frames_corrupt_skipped;
    obs::Counter* frames_bad_header;
    obs::Counter* requests_received;
    obs::Counter* requests_bad;
    obs::Counter* shed_queue_full;
    obs::Counter* admitted_degraded;
    obs::Counter* unknown_race;
    obs::Counter* expired_in_queue;
    obs::Counter* tier_full;
    obs::Counter* tier_cached;
    obs::Counter* tier_partial;
    obs::Counter* tier_fallback;
    obs::Counter* tier_rejected;
    obs::Counter* batch_groups;
    obs::Counter* batch_dedup_hits;
    obs::Counter* write_failures;
    obs::Histogram* request_latency;  // seconds, admission -> response sent
    obs::Histogram* batch_size;       // requests per worker iteration
  } m_;
};

}  // namespace ranknet::serve

#include "serve/client.hpp"

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace ranknet::serve {

using util::Result;
using util::Status;

ForecastClient::ForecastClient(ClientConfig config)
    : config_(std::move(config)) {}

Status ForecastClient::connect() {
  auto stream = util::UnixStream::connect(config_.socket_path,
                                          config_.connect_timeout_seconds);
  if (!stream.ok()) return stream.status();
  stream_ = std::move(stream).value();
  return {};
}

Status ForecastClient::send_frame(wire::FrameType type,
                                  std::span<const std::uint8_t> payload) {
  auto frame = wire::encode_frame(type, payload);
  std::optional<std::vector<std::uint8_t>> to_send(std::move(frame));
  if (filter_) to_send = filter_(*to_send);
  if (stall_) {
    if (const int ms = stall_(); ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
  if (!to_send) return {};  // "sent" into the void; the reply wait times out
  return stream_.send_all(to_send->data(), to_send->size(),
                          config_.send_timeout_seconds);
}

Result<std::pair<wire::FrameHeader, std::vector<std::uint8_t>>>
ForecastClient::recv_frame(double timeout_seconds) {
  std::uint8_t header_bytes[wire::kHeaderSize];
  if (auto st = stream_.recv_all(header_bytes, sizeof(header_bytes),
                                 timeout_seconds);
      !st.ok()) {
    return st;
  }
  auto header = wire::decode_header(header_bytes);
  if (!header.ok()) return header.status();
  std::vector<std::uint8_t> payload(header.value().payload_len);
  if (!payload.empty()) {
    if (auto st = stream_.recv_all(payload.data(), payload.size(),
                                   timeout_seconds);
        !st.ok()) {
      return st;
    }
  }
  if (auto st = wire::verify_payload(header.value(), payload); !st.ok()) {
    return st;
  }
  return std::make_pair(header.value(), std::move(payload));
}

Result<std::vector<std::uint8_t>> ForecastClient::transact(
    wire::FrameType request_type, std::span<const std::uint8_t> payload,
    wire::FrameType response_type, std::optional<std::uint64_t> want_id) {
  util::ExponentialBackoff backoff(config_.backoff,
                                   config_.backoff_seed + backoff_nonce_++);
  Status last = Status::unavailable("no attempt made");
  for (;;) {
    // (Re)connect + send + await the matching reply; any transport-level
    // failure falls through to the backoff sleep and a fresh attempt.
    do {
      if (!connected()) {
        if (last = connect(); !last.ok()) break;
      }
      if (last = send_frame(request_type, payload); !last.ok()) break;

      const auto attempt_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration<double>(config_.recv_timeout_seconds);
      for (;;) {
        const double remaining =
            std::chrono::duration<double>(attempt_deadline -
                                          std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0.0) {
          last = Status::unavailable("timed out waiting for response");
          break;
        }
        auto frame = recv_frame(remaining);
        if (!frame.ok()) {
          last = frame.status();
          break;
        }
        auto& [header, body] = frame.value();
        if (header.type != response_type) continue;  // stale/other frame
        if (want_id) {
          // A kForecastResponse from a timed-out earlier attempt: match by
          // id, never deliver someone else's answer.
          std::uint64_t id = 0;
          if (body.size() < sizeof(id)) continue;
          std::memcpy(&id, body.data(), sizeof(id));
          if (id != *want_id) continue;
        }
        return std::move(body);
      }
    } while (false);

    disconnect();  // transport state is suspect after any failure
    if (backoff.exhausted()) return last;
    const double delay = backoff.next_delay();
    ++retries_;
    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
}

Result<wire::ForecastResponse> ForecastClient::forecast(
    const wire::ForecastRequest& request) {
  auto body = transact(wire::FrameType::kForecastRequest,
                       wire::encode_forecast_request(request),
                       wire::FrameType::kForecastResponse, request.request_id);
  if (!body.ok()) return body.status();
  return wire::decode_forecast_response(body.value());
}

Status ForecastClient::load_race(const telemetry::RaceLog& race) {
  auto body =
      transact(wire::FrameType::kLoadRace, wire::encode_race(race),
               wire::FrameType::kLoadRaceAck, std::nullopt);
  if (!body.ok()) return body.status();
  auto ack = wire::decode_status_ack(body.value());
  if (!ack.ok()) return ack.status();
  if (ack.value().first != 0) {
    return Status(static_cast<util::StatusCode>(ack.value().first),
                  ack.value().second);
  }
  return {};
}

Result<wire::SwapAck> ForecastClient::swap_model(
    const std::string& artifact_path) {
  wire::SwapRequest request{artifact_path};
  auto body = transact(wire::FrameType::kSwapModel,
                       wire::encode_swap_request(request),
                       wire::FrameType::kSwapAck, std::nullopt);
  if (!body.ok()) return body.status();
  return wire::decode_swap_ack(body.value());
}

Status ForecastClient::shutdown_server() {
  auto body = transact(wire::FrameType::kShutdown, {},
                       wire::FrameType::kShutdownAck, std::nullopt);
  if (!body.ok()) return body.status();
  auto ack = wire::decode_status_ack(body.value());
  if (!ack.ok()) return ack.status();
  return {};
}

}  // namespace ranknet::serve

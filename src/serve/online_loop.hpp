// Serving-side wiring of the online learning loop: the ingest → replay →
// train → gate → registry pipeline (DESIGN.md "Online learning & promotion
// gates").
//
// core::OnlineTrainer is deliberately registry-agnostic (core cannot link
// serve); this header supplies the serve-side halves:
//   * RegistryPromotionTarget — PromotionTarget over ModelRegistry::swap /
//     rollback, so a gate-passed candidate still runs the registry's own
//     stage + shadow-gate + probation machinery (two independent gates, by
//     design: the trainer judges quality on fresh races, the registry
//     judges serveability of the artifact bytes).
//   * registry_champion_view — the trainer's probe opponent: the active
//     generation's engine, pinned via an aliasing shared_ptr so the whole
//     ServingModel survives while a shadow score is in flight. Scoring the
//     engine (not the raw forecaster) is what makes champion metrics
//     identical for any engine thread count.
//   * make_affine_fitter — a CandidateFitter that refits the serving
//     AffineRankModel on the train window by exponentially-decayed least
//     squares (ml::OnlineLinearFit) and emits a v3 artifact with a real
//     calibration section. Microsecond-cheap, so soak tests drive hundreds
//     of full promote/rollback cycles in CI time.
//   * OnlineLoop — the session object gluing a long-lived StreamIngestor
//     (begin_race per race), the ReplayBuffer and the OnlineTrainer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/online_trainer.hpp"
#include "serve/model_registry.hpp"
#include "telemetry/replay_buffer.hpp"
#include "telemetry/stream_ingestor.hpp"

namespace ranknet::obs {
class Counter;
}

namespace ranknet::serve {

class RegistryPromotionTarget : public core::PromotionTarget {
 public:
  explicit RegistryPromotionTarget(ModelRegistry& registry)
      : registry_(registry) {}

  util::Result<std::uint64_t> promote(
      const std::string& artifact_path) override;
  util::Result<std::uint64_t> rollback(const std::string& reason) override;

 private:
  ModelRegistry& registry_;
};

/// Champion view for the trainer: the active generation's parallel engine
/// (falls back to the registry's CurRank fallback before init, so the view
/// is never null). The returned pointer aliases the ServingModel, keeping
/// the generation alive for the duration of a shadow score.
std::function<std::shared_ptr<core::RaceForecaster>()> registry_champion_view(
    ModelRegistry& registry);

struct AffineFitterConfig {
  /// Laps ahead the regression pairs (rank at lap t, rank at lap t+h) span
  /// — match the probe horizon so the fit optimizes what the gate scores.
  int horizon = 5;
  /// Per-race-boundary decay of older races' weight (1 = flat window).
  double decay = 0.9;
  double ridge = 1e-9;
};

/// Deterministic affine refit on the train window; ignores the per-attempt
/// seed (the fit is closed-form). Emits a v3 artifact whose calibration
/// section records the observed |rank| absmax.
core::CandidateFitter make_affine_fitter(AffineFitterConfig config = {});

struct OnlineLoopConfig {
  telemetry::IngestConfig ingest;
  telemetry::ReplayConfig replay;
  core::OnlineTrainerConfig trainer;
};

class OnlineLoop {
 public:
  OnlineLoop(ModelRegistry& registry, core::CandidateFitter fitter,
             OnlineLoopConfig config);

  /// Feed one race's (possibly fault-injected) record stream through the
  /// session ingestor and, on successful finalize, into the replay buffer.
  /// A race whose stream was too damaged to finalize returns the error and
  /// books nothing into replay (the trainer simply keeps its window).
  util::Status ingest_race(const telemetry::EventInfo& info,
                           const std::vector<telemetry::LapRecord>& records);

  /// One synchronous train/gate/promote step (see OnlineTrainer::step).
  core::TraceEvent step();

  core::OnlineTrainer& trainer() { return *trainer_; }
  telemetry::ReplayBuffer& replay() { return replay_; }
  telemetry::StreamIngestor& ingestor() { return ingestor_; }

 private:
  telemetry::StreamIngestor ingestor_;
  telemetry::ReplayBuffer replay_;
  RegistryPromotionTarget target_;
  std::unique_ptr<core::OnlineTrainer> trainer_;

  // serve.online.* ingest-side handles.
  obs::Counter* races_ingested_;
  obs::Counter* races_rejected_;
  obs::Counter* records_accepted_;
  obs::Counter* records_quarantined_;
};

}  // namespace ranknet::serve

// Versioned model registry with atomic hot-swap, shadow-gate promotion and
// automatic rollback — the serving front end's answer to "replace the model
// without dropping a request".
//
// Lifecycle of a swap (staged-commit, extending the PR-2 artifact loader):
//   1. stage    — the ModelFactory loads the candidate artifact off the
//                 serving path; a bad checksum / truncation / bit flip fails
//                 here and the active model is never touched.
//   2. gate     — the candidate shadow-forecasts a probe race and must keep
//                 its prediction-failure rate (nonfinite or implausible
//                 medians) under the configured bound; optionally its probe
//                 latency must stay within a factor of the active model's.
//   3. publish  — one shared_ptr store under a mutex. In-flight requests
//                 holding the previous ServingModel keep draining on it
//                 (refcount draining: the old engine is destroyed only when
//                 the last in-flight reference drops); new requests see the
//                 candidate.
//   4. probation— the first N serving results of a fresh version are
//                 watched; a failure auto-rolls back to the previous
//                 version. Rollback is the same atomic publish in reverse.
//
// Every transition is booked into the obs registry ("serve.registry.*"),
// which is how the soak test proves >=1 promotion and >=1 rollback happened
// under load.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/baselines.hpp"
#include "core/fleet_engine.hpp"
#include "core/forecast_cache.hpp"
#include "core/parallel_engine.hpp"
#include "serve/wire.hpp"
#include "telemetry/race_log.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace ranknet::serve {

/// Builds a forecaster from an artifact path. Must fail with Status (not
/// throw) on corrupt artifacts — nn::try_load_params is the intended base.
using ModelFactory =
    std::function<util::Result<std::shared_ptr<core::RaceForecaster>>(
        const std::string& artifact_path)>;

/// One published model generation: a race-sharded fleet of engines serving
/// per-shard forecaster instances built from one artifact. Immutable after
/// publish except for the engines' internal stats; the server takes a
/// shared_ptr per batch and the refcount is the drain.
struct ServingModel {
  std::uint64_t version = 0;
  std::string artifact_path;
  /// Shard-0 forecaster instance — the shadow gate's probe target (every
  /// shard's instance has identical weights, loaded from one artifact).
  std::shared_ptr<core::RaceForecaster> forecaster;
  /// The serving fleet: requests route to shards by race id.
  std::shared_ptr<core::FleetEngine> fleet;
  /// Shard-0 engine, kept for single-engine consumers (probes, tests).
  std::shared_ptr<core::ParallelForecastEngine> engine;
};

struct GateConfig {
  /// Max fraction of probe medians allowed to be nonfinite or outside
  /// [min_rank, max_rank]. 0 = every prediction must be plausible.
  double max_prediction_failure_rate = 0.0;
  double min_rank = 0.0;
  double max_rank = 200.0;
  /// Candidate probe latency must stay within this factor of the active
  /// model's probe latency. 0 disables the latency gate (the default: on a
  /// noisy box wall-clock gates flap; the failure-rate gate is the primary
  /// one).
  double max_latency_factor = 0.0;
  /// Probe forecast shape.
  int probe_origin_lap = 50;
  int probe_horizon = 10;
  int probe_num_samples = 8;
  std::uint64_t probe_seed = 0x5eed;
};

struct RegistryConfig {
  /// Race shards per generation; each shard gets its own forecaster
  /// instance (loaded from the same artifact), engine pool and driver
  /// thread. 1 = the pre-fleet single-engine layout.
  std::size_t shards = 1;
  std::size_t engine_threads = 0;  // 0 = inline (sequential mode), per shard
  std::size_t max_cars_per_task = 4;
  GateConfig gate;
  /// Serving results watched after a promotion; a failure inside the
  /// window triggers auto-rollback. 0 disables probation.
  std::uint64_t probation_requests = 64;
  /// Time bound on the same probation window (seconds since publish); once
  /// it elapses the version is trusted even if fewer than
  /// probation_requests results arrived — a low-traffic deployment must not
  /// stay on probation forever. 0 = request-count only. Measured by the
  /// registry's clock (see set_clock), so tests script it.
  double probation_seconds = 0.0;
};

class ModelRegistry {
 public:
  ModelRegistry(ModelFactory factory, RegistryConfig config);

  /// Probe race for the shadow gate; without one the gate is skipped
  /// (stage + checksum still apply).
  void set_probe_race(telemetry::RaceLog race);
  /// Forecast cache shared by every generation's engine (version-keyed, so
  /// generations never collide).
  void set_forecast_cache(std::shared_ptr<core::ForecastCache> cache);
  /// Degradation deadline armed on every generation's engine (seconds;
  /// 0 = none). The server overrides per request.
  void set_engine_deadline(double seconds);
  /// Time source for the latency gate and the probation time window.
  /// Defaults to the steady clock; tests inject a scripted clock so gate
  /// decisions and probation expiry are deterministic. Pre-injection the
  /// gate timed probes with util::Timer directly, which made the latency
  /// gate untestable (and flaky if forced): wall time on a loaded CI box is
  /// not a function of the candidate.
  void set_clock(util::ClockFn clock);

  /// Load and publish the first model, gate included (no previous model
  /// means no rollback target — a failed init leaves the registry empty).
  util::Status init(const std::string& artifact_path);

  struct SwapOutcome {
    wire::SwapAction action = wire::SwapAction::kRejected;
    std::uint64_t active_version = 0;
    util::Status status;  // why, when not promoted
  };
  /// Stage + gate + publish one candidate. Never disturbs the active model
  /// on failure.
  SwapOutcome swap(const std::string& artifact_path);

  /// Revert to the previous generation (no-op Status error when there is
  /// none). Also what probation failure calls.
  SwapOutcome rollback(const std::string& reason);

  /// Serving feedback: `ok` = the response was healthy (finite, in-range).
  /// Returns true when this result tripped a probation rollback.
  bool record_serving_result(std::uint64_t version, bool ok);

  /// Current generation (nullptr before a successful init). The returned
  /// shared_ptr is the drain token: hold it across the whole request.
  std::shared_ptr<const ServingModel> active() const;
  std::uint64_t active_version() const;

  /// Shared fallback (CurRank) every engine's degradation policy uses; the
  /// server also serves overload-tier requests from it directly.
  const std::shared_ptr<core::CurRankForecaster>& fallback() const {
    return fallback_;
  }

 private:
  /// stage+gate: build a candidate ServingModel, or say why not.
  util::Result<std::shared_ptr<ServingModel>> build_candidate(
      const std::string& artifact_path, std::uint64_t version);
  void publish(std::shared_ptr<const ServingModel> model);

  ModelFactory factory_;
  RegistryConfig config_;
  std::shared_ptr<core::ForecastCache> cache_;
  std::shared_ptr<core::CurRankForecaster> fallback_;
  double engine_deadline_seconds_ = 0.0;
  std::optional<telemetry::RaceLog> probe_race_;

  mutable std::mutex mutex_;
  std::shared_ptr<const ServingModel> active_;
  std::shared_ptr<const ServingModel> previous_;  // rollback target
  std::uint64_t next_version_ = 1;
  std::uint64_t probation_remaining_ = 0;
  double probation_deadline_ = 0.0;    // clock time; 0 = no time bound
  double active_probe_seconds_ = 0.0;  // latency-gate reference
  util::ClockFn clock_ = util::steady_clock_fn();

  // serve.registry.* handles, resolved once.
  obs::Counter* swaps_attempted_;
  obs::Counter* promoted_;
  obs::Counter* rejected_stage_;
  obs::Counter* rejected_gate_;
  obs::Counter* rolled_back_;
  obs::Gauge* active_version_gauge_;
};

}  // namespace ranknet::serve

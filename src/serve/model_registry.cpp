#include "serve/model_registry.hpp"

#include <cmath>
#include <utility>

#include "obs/metrics.hpp"

namespace ranknet::serve {

using util::Result;
using util::Status;

namespace {

/// Probe-forecast health: fraction of medians that are nonfinite or outside
/// the plausible rank band. The gate's primary signal — a zeroed, truncated
/// or wild-coefficient artifact fails this even when its checksum was
/// regenerated honestly.
double prediction_failure_rate(const core::RaceSamples& samples,
                               const GateConfig& gate) {
  std::size_t total = 0, bad = 0;
  for (const auto& [car_id, m] : samples) {
    const auto median = core::median_trajectory(m);
    for (double v : median) {
      ++total;
      if (!std::isfinite(v) || v < gate.min_rank || v > gate.max_rank) ++bad;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(bad) /
                            static_cast<double>(total);
}

}  // namespace

ModelRegistry::ModelRegistry(ModelFactory factory, RegistryConfig config)
    : factory_(std::move(factory)),
      config_(config),
      fallback_(std::make_shared<core::CurRankForecaster>()) {
  auto& reg = obs::Registry::instance();
  swaps_attempted_ = &reg.counter("serve.registry.swaps_attempted");
  promoted_ = &reg.counter("serve.registry.promoted");
  rejected_stage_ = &reg.counter("serve.registry.rejected_stage");
  rejected_gate_ = &reg.counter("serve.registry.rejected_gate");
  rolled_back_ = &reg.counter("serve.registry.rolled_back");
  active_version_gauge_ = &reg.gauge("serve.registry.active_version");
}

void ModelRegistry::set_probe_race(telemetry::RaceLog race) {
  probe_race_ = std::move(race);
}

void ModelRegistry::set_forecast_cache(
    std::shared_ptr<core::ForecastCache> cache) {
  cache_ = std::move(cache);
}

void ModelRegistry::set_engine_deadline(double seconds) {
  engine_deadline_seconds_ = seconds;
}

void ModelRegistry::set_clock(util::ClockFn clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

Result<std::shared_ptr<ServingModel>> ModelRegistry::build_candidate(
    const std::string& artifact_path, std::uint64_t version) {
  // Stage: load off the serving path. Checksum/truncation/bit-flip failures
  // surface here as Status and the active model is never touched.
  auto loaded = factory_(artifact_path);
  if (!loaded.ok()) {
    rejected_stage_->add(1);
    return loaded.status();
  }

  auto model = std::make_shared<ServingModel>();
  model->version = version;
  model->artifact_path = artifact_path;

  // Fleet factory: shard 0 reuses the forecaster staged above; later
  // shards re-load the same validated artifact so every shard serves an
  // independent instance of identical weights (prepare() caches never
  // cross shards). A load that fails after the first succeeded is a
  // genuine stage failure (e.g. the file changed underneath us) and
  // rejects the candidate.
  auto first = std::move(loaded).value();
  auto used_first = std::make_shared<bool>(false);
  core::FleetConfig fleet_cfg;
  fleet_cfg.shards = config_.shards == 0 ? 1 : config_.shards;
  fleet_cfg.shard.engine_threads = config_.engine_threads;
  fleet_cfg.shard.max_cars_per_task = config_.max_cars_per_task;
  fleet_cfg.shared_cache = cache_;  // version-keyed cross-generation dedup
  try {
    model->fleet = std::make_shared<core::FleetEngine>(
        [factory = factory_, path = artifact_path, first, used_first]()
            -> std::shared_ptr<core::RaceForecaster> {
          if (!*used_first) {
            *used_first = true;
            return first;
          }
          auto re = factory(path);
          if (!re.ok()) {
            throw std::runtime_error(re.status().message());
          }
          return std::move(re).value();
        },
        fleet_cfg);
  } catch (const std::exception& e) {
    rejected_stage_->add(1);
    return Status::corrupt_data(
        std::string("registry: shard artifact reload failed: ") + e.what());
  }
  model->fleet->set_model_version(version);
  model->forecaster = model->fleet->shard(0)->forecaster();
  model->engine = model->fleet->shard(0)->engine();
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.deadline_seconds = engine_deadline_seconds_;
  policy.fallback = fallback_;
  if (auto st = model->fleet->set_degradation_policy(std::move(policy));
      !st.ok()) {
    rejected_stage_->add(1);
    return st;
  }

  // Gate: shadow-forecast the probe race and judge the output before any
  // real request can see this version.
  if (probe_race_) {
    const auto& gate = config_.gate;
    util::Rng rng(gate.probe_seed);
    const double probe_t0 = clock_();
    core::RaceSamples probe;
    try {
      probe = model->forecaster->forecast(*probe_race_, gate.probe_origin_lap,
                                          gate.probe_horizon,
                                          gate.probe_num_samples, rng);
    } catch (const std::exception& e) {
      rejected_gate_->add(1);
      return Status::failed_precondition(
          std::string("shadow gate: candidate threw on probe race: ") +
          e.what());
    }
    const double probe_seconds = clock_() - probe_t0;
    const double failure_rate = prediction_failure_rate(probe, gate);
    if (failure_rate > gate.max_prediction_failure_rate) {
      rejected_gate_->add(1);
      return Status::failed_precondition(
          "shadow gate: prediction failure rate " +
          std::to_string(failure_rate) + " exceeds bound " +
          std::to_string(gate.max_prediction_failure_rate));
    }
    if (gate.max_latency_factor > 0.0 && active_probe_seconds_ > 0.0 &&
        probe_seconds > gate.max_latency_factor * active_probe_seconds_) {
      rejected_gate_->add(1);
      return Status::failed_precondition(
          "shadow gate: probe latency " + std::to_string(probe_seconds) +
          "s exceeds " + std::to_string(gate.max_latency_factor) +
          "x active (" + std::to_string(active_probe_seconds_) + "s)");
    }
    active_probe_seconds_ = probe_seconds;
  }
  return model;
}

void ModelRegistry::publish(std::shared_ptr<const ServingModel> model) {
  // The atomic hot-swap: one pointer store under the mutex. Readers that
  // already copied the old shared_ptr keep draining on the old engine.
  previous_ = std::move(active_);
  active_ = std::move(model);
  probation_remaining_ = config_.probation_requests;
  probation_deadline_ = config_.probation_seconds > 0.0
                            ? clock_() + config_.probation_seconds
                            : 0.0;
  active_version_gauge_->set(static_cast<double>(active_->version));
}

Status ModelRegistry::init(const std::string& artifact_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  swaps_attempted_->add(1);
  auto candidate = build_candidate(artifact_path, next_version_);
  if (!candidate.ok()) return candidate.status();
  ++next_version_;
  publish(std::move(candidate).value());
  previous_ = nullptr;  // nothing to roll back to before the first swap
  promoted_->add(1);
  return {};
}

ModelRegistry::SwapOutcome ModelRegistry::swap(
    const std::string& artifact_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  swaps_attempted_->add(1);
  SwapOutcome out;
  out.active_version = active_ ? active_->version : 0;
  if (!active_) {
    out.status = Status::failed_precondition(
        "registry: swap before a successful init");
    return out;
  }
  auto candidate = build_candidate(artifact_path, next_version_);
  if (!candidate.ok()) {
    out.action = wire::SwapAction::kRejected;
    out.status = candidate.status();
    return out;
  }
  ++next_version_;
  publish(std::move(candidate).value());
  promoted_->add(1);
  out.action = wire::SwapAction::kPromoted;
  out.active_version = active_->version;
  return out;
}

ModelRegistry::SwapOutcome ModelRegistry::rollback(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  SwapOutcome out;
  out.active_version = active_ ? active_->version : 0;
  if (!previous_) {
    out.status = Status::failed_precondition(
        "registry: no previous version to roll back to (" + reason + ")");
    return out;
  }
  active_ = std::move(previous_);
  previous_ = nullptr;        // one level of undo, not a history
  probation_remaining_ = 0;   // the restored version already served cleanly
  probation_deadline_ = 0.0;
  active_version_gauge_->set(static_cast<double>(active_->version));
  rolled_back_->add(1);
  out.action = wire::SwapAction::kRolledBack;
  out.active_version = active_->version;
  out.status = Status::unavailable("registry: rolled back: " + reason);
  return out;
}

bool ModelRegistry::record_serving_result(std::uint64_t version, bool ok) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!active_ || version != active_->version ||
        probation_remaining_ == 0) {
      return false;  // stale generation or out of probation — not our call
    }
    // Time-bounded probation: once the window elapses the version is
    // trusted, regardless of how few results trickled in.
    if (probation_deadline_ > 0.0 && clock_() >= probation_deadline_) {
      probation_remaining_ = 0;
      probation_deadline_ = 0.0;
      return false;
    }
    --probation_remaining_;
    if (ok) return false;
    if (!previous_) return false;  // nothing to fall back to
  }
  // Re-acquires the lock inside; safe because probation_remaining_ was
  // already consumed, so a racing call cannot double-trigger.
  return rollback("probation failure on v" + std::to_string(version)).action ==
         wire::SwapAction::kRolledBack;
}

std::shared_ptr<const ServingModel> ModelRegistry::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::uint64_t ModelRegistry::active_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_ ? active_->version : 0;
}

}  // namespace ranknet::serve

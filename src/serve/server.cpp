#include "serve/server.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <future>
#include <map>
#include <tuple>
#include <utility>

#include "core/fleet_engine.hpp"
#include "core/forecast_cache.hpp"
#include "core/forecaster.hpp"
#include "core/race_shard.hpp"
#include "tensor/simd_kernels.hpp"
#include "util/rng.hpp"

namespace ranknet::serve {

using util::Status;

namespace {

/// Medians a client may actually act on: finite and inside a generous rank
/// band. This is the serving-side health signal that feeds probation
/// rollback — a model that passed its (configurable) shadow gate but emits
/// garbage in production gets caught here.
bool response_healthy(const wire::ForecastResponse& response) {
  for (const auto& car : response.cars) {
    for (double v : car.median) {
      if (!std::isfinite(v) || v < -1e4 || v > 1e4) return false;
    }
  }
  return true;
}

double seconds_until(std::chrono::steady_clock::time_point deadline,
                     std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(deadline - now).count();
}

}  // namespace

ForecastServer::ForecastServer(ModelRegistry& registry, ServerConfig config)
    : registry_(registry), config_(std::move(config)) {
  auto& reg = obs::Registry::instance();
  m_.conns_accepted = &reg.counter("serve.conn.accepted");
  m_.conns_rejected = &reg.counter("serve.conn.rejected");
  m_.conns_slow_dropped = &reg.counter("serve.conn.slow_dropped");
  m_.frames_received = &reg.counter("serve.frames.received");
  m_.frames_corrupt_skipped = &reg.counter("serve.frames.corrupt_skipped");
  m_.frames_bad_header = &reg.counter("serve.frames.bad_header");
  m_.requests_received = &reg.counter("serve.requests.received");
  m_.requests_bad = &reg.counter("serve.requests.bad");
  m_.shed_queue_full = &reg.counter("serve.admission.shed_queue_full");
  m_.admitted_degraded = &reg.counter("serve.admission.degraded");
  m_.unknown_race = &reg.counter("serve.admission.unknown_race");
  m_.expired_in_queue = &reg.counter("serve.deadline.expired_in_queue");
  m_.tier_full = &reg.counter("serve.tier.full");
  m_.tier_cached = &reg.counter("serve.tier.cached");
  m_.tier_partial = &reg.counter("serve.tier.partial");
  m_.tier_fallback = &reg.counter("serve.tier.fallback");
  m_.tier_rejected = &reg.counter("serve.tier.rejected");
  m_.batch_groups = &reg.counter("serve.batch.groups");
  m_.batch_dedup_hits = &reg.counter("serve.batch.dedup_hits");
  m_.write_failures = &reg.counter("serve.write.failures");
  m_.request_latency = &reg.latency_histogram("serve.request.latency");
  static const double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64};
  m_.batch_size = &reg.histogram("serve.batch.size", kBatchBounds);
  // Pin the serving numerics point into the metrics surface: forecast
  // bytes (and cache keys) depend on the active kernel variant, so an
  // operator reading a serve dashboard can see at a glance whether this
  // process decodes in f64 (scalar/avx2) or reduced precision (bf16/int8).
  reg.gauge("serve.kernel.active_variant")
      .set(static_cast<double>(
          static_cast<int>(tensor::kernels::active_variant())));
}

ForecastServer::~ForecastServer() { stop(); }

Status ForecastServer::start() {
  if (running_.load()) {
    return Status::failed_precondition("server already running");
  }
  auto bound = util::UnixListener::bind(config_.socket_path);
  if (!bound.ok()) return bound.status();
  listener_ = std::move(bound).value();
  stop_requested_.store(false);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  worker_thread_ = std::thread([this] { worker_loop(); });
  return {};
}

void ForecastServer::stop() {
  stop_requested_.store(true);
  queue_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  if (worker_thread_.joinable()) worker_thread_.join();
  conns_.clear();
  listener_.close();
  running_.store(false, std::memory_order_release);
}

void ForecastServer::add_race(telemetry::RaceLog race) {
  // Bucket-sharded insert: loading race N+1 never blocks admission lookups
  // for races already being served out of other buckets.
  races_.insert(std::move(race));
}

// --- I/O thread ------------------------------------------------------------

void ForecastServer::io_loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint8_t> scratch(64 * 1024);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : conns_) {
      fds.push_back({conn->stream.fd(), POLLIN, 0});
    }
    int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/5);
    if (rc < 0 && errno != EINTR) break;
    const auto now = Clock::now();
    // fds indexes the pre-accept connection list; remember its size so a
    // connection accepted below is not polled against a stale pollfd.
    const std::size_t polled = conns_.size();

    if (fds[0].revents & POLLIN) {
      auto accepted = listener_.accept(0.0);
      if (accepted.ok()) {
        if (conns_.size() >= config_.max_connections) {
          m_.conns_rejected->add(1);  // stream closes on scope exit
        } else {
          auto conn = std::make_shared<Conn>();
          conn->stream = std::move(accepted).value();
          conn->last_progress = now;
          conns_.push_back(std::move(conn));
          m_.conns_accepted->add(1);
        }
      }
    }

    for (std::size_t i = 0; i < polled; ++i) {
      auto& conn = conns_[i];
      if (fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) {
        auto got = conn->stream.recv_some(scratch.data(), scratch.size(), 0.0);
        if (!got.ok() || got.value() == 0) {
          if (!got.ok() &&
              got.status().code() == util::StatusCode::kUnavailable &&
              !(fds[i + 1].revents & (POLLHUP | POLLERR))) {
            continue;  // spurious wakeup, not a close
          }
          conn->dead.store(true);
          continue;
        }
        conn->buf.insert(conn->buf.end(), scratch.data(),
                         scratch.data() + got.value());
        conn->last_progress = now;
        if (!drain_frames(conn)) conn->dead.store(true);
      }
      // Slow-client guard: a partial frame parked with no progress holds
      // reassembly memory hostage — cut it loose.
      if (!conn->buf.empty() &&
          seconds_until(now, conn->last_progress) >
              config_.slow_client_timeout_seconds) {
        m_.conns_slow_dropped->add(1);
        conn->dead.store(true);
      }
    }

    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::shared_ptr<Conn>& c) {
                                  return c->dead.load();
                                }),
                 conns_.end());
  }
}

bool ForecastServer::drain_frames(const std::shared_ptr<Conn>& conn) {
  auto& buf = conn->buf;
  while (buf.size() >= wire::kHeaderSize) {
    auto header = wire::decode_header(buf);
    if (!header.ok()) {
      // Bad magic/version/length: the byte stream is no longer a frame
      // stream; nothing after this point can be trusted.
      m_.frames_bad_header->add(1);
      return false;
    }
    const std::size_t frame_size =
        wire::kHeaderSize + header.value().payload_len;
    if (buf.size() < frame_size) return true;  // incomplete, wait for more
    const std::span<const std::uint8_t> payload(
        buf.data() + wire::kHeaderSize, header.value().payload_len);
    m_.frames_received->add(1);
    if (auto st = wire::verify_payload(header.value(), payload); !st.ok()) {
      // One corrupt payload costs one frame, not the connection: framing
      // is still aligned thanks to the length prefix.
      m_.frames_corrupt_skipped->add(1);
      buf.erase(buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(frame_size));
      continue;
    }
    switch (header.value().type) {
      case wire::FrameType::kForecastRequest:
        handle_forecast_frame(conn, payload);
        break;
      case wire::FrameType::kLoadRace:
        handle_load_race(conn, payload);
        break;
      case wire::FrameType::kSwapModel: {
        auto req = wire::decode_swap_request(payload);
        if (req.ok()) {
          std::lock_guard<std::mutex> lock(queue_mutex_);
          admin_.push_back(AdminOp{conn, std::move(req).value()});
          queue_cv_.notify_one();
        } else {
          wire::SwapAck ack;
          ack.status_code = static_cast<std::uint8_t>(req.status().code());
          ack.message = req.status().message();
          send_frame(conn, wire::FrameType::kSwapAck,
                     wire::encode_swap_ack(ack));
        }
        break;
      }
      case wire::FrameType::kShutdown:
        send_frame(conn, wire::FrameType::kShutdownAck,
                   wire::encode_status_ack(0, "stopping"));
        stop_requested_.store(true, std::memory_order_release);
        queue_cv_.notify_all();
        break;
      default:
        // A well-formed frame of a type only the server sends; ignore.
        break;
    }
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(frame_size));
  }
  return true;
}

void ForecastServer::handle_forecast_frame(
    const std::shared_ptr<Conn>& conn, std::span<const std::uint8_t> payload) {
  m_.requests_received->add(1);
  auto decoded = wire::decode_forecast_request(payload);
  if (!decoded.ok()) {
    m_.requests_bad->add(1);
    wire::ForecastResponse response;
    // Best effort to echo the id so the client can match the failure.
    if (payload.size() >= 8) {
      std::memcpy(&response.request_id, payload.data(), 8);
    }
    response.status_code =
        static_cast<std::uint8_t>(decoded.status().code());
    response.message = decoded.status().message();
    respond(conn, response);
    return;
  }
  Pending item;
  item.conn = conn;
  item.req = std::move(decoded).value();
  item.arrival = Clock::now();

  // Resolve the race once, here, and pin the immutable snapshot in the
  // queued request. The worker hot path never touches the race table.
  item.race = races_.find(item.req.race_id);
  if (!item.race) {
    m_.unknown_race->add(1);
    reject(item, Status::not_found("unknown race '" + item.req.race_id +
                                   "' (kLoadRace it first)"));
    return;
  }

  std::uint32_t deadline_us = item.req.deadline_us == 0
                                  ? config_.default_deadline_us
                                  : item.req.deadline_us;
  deadline_us = std::min(deadline_us, config_.max_deadline_us);
  item.deadline = item.arrival + std::chrono::microseconds(deadline_us);

  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (queue_.size() >= config_.queue_capacity) {
    m_.shed_queue_full->add(1);
    reject(item, Status::unavailable("queue full (capacity " +
                                     std::to_string(config_.queue_capacity) +
                                     ")"));
    return;
  }
  if (queue_.size() >= config_.overload_watermark) {
    item.degraded = true;
    m_.admitted_degraded->add(1);
  }
  queue_.push_back(std::move(item));
  queue_cv_.notify_one();
}

void ForecastServer::handle_load_race(const std::shared_ptr<Conn>& conn,
                                      std::span<const std::uint8_t> payload) {
  auto race = wire::decode_race(payload);
  if (!race.ok()) {
    send_frame(conn, wire::FrameType::kLoadRaceAck,
               wire::encode_status_ack(
                   static_cast<std::uint8_t>(race.status().code()),
                   race.status().message()));
    return;
  }
  add_race(std::move(race).value());
  send_frame(conn, wire::FrameType::kLoadRaceAck,
             wire::encode_status_ack(0, "loaded"));
}

// --- worker thread ---------------------------------------------------------

void ForecastServer::worker_loop() {
  while (true) {
    std::vector<Pending> batch;
    std::vector<AdminOp> admin;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stop_requested_.load(std::memory_order_acquire) ||
               !queue_.empty() || !admin_.empty();
      });
      while (!admin_.empty()) {
        admin.push_back(std::move(admin_.front()));
        admin_.pop_front();
      }
      const bool stopping = stop_requested_.load(std::memory_order_acquire);
      const std::size_t take =
          stopping ? queue_.size()
                   : std::min(queue_.size(), config_.batch_max);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (stopping && batch.empty() && admin.empty()) return;
    }

    // Admin ops first: a swap must not sit behind a long batch, and the
    // single worker thread is exactly what makes swap-vs-serve ordering
    // deterministic.
    for (auto& op : admin) {
      const auto outcome = registry_.swap(op.swap.artifact_path);
      wire::SwapAck ack;
      ack.status_code = static_cast<std::uint8_t>(outcome.status.code());
      ack.action = outcome.action;
      ack.active_version = outcome.active_version;
      ack.message = outcome.status.message();
      send_frame(op.conn, wire::FrameType::kSwapAck,
                 wire::encode_swap_ack(ack));
    }

    if (batch.empty()) continue;
    if (stop_requested_.load(std::memory_order_acquire)) {
      // Drain with explicit rejections — a shutdown sheds, it never hangs.
      for (auto& item : batch) {
        reject(item, Status::unavailable("server shutting down"));
      }
      continue;
    }
    m_.batch_size->observe(static_cast<double>(batch.size()));

    // Micro-batch grouping: identical (race, origin, horizon, samples,
    // seed) requests are one compute. Degraded admissions group separately
    // — they must not trigger a full primary forecast.
    std::map<std::tuple<std::string, std::int32_t, std::int32_t, std::int32_t,
                        std::uint64_t, bool>,
             std::vector<Pending>>
        groups;
    for (auto& item : batch) {
      groups[{item.req.race_id, item.req.origin_lap, item.req.horizon,
              item.req.num_samples, item.req.seed, item.degraded}]
          .push_back(std::move(item));
    }
    // Route every group to its race's shard and run them concurrently on
    // the shard drivers; one race's groups stay serialized on their shard
    // while different races overlap. The model shared_ptr pinned here is
    // the drain token — a swap mid-batch cannot destroy engines we are
    // forecasting on — and joining every future before the next iteration
    // keeps swap-vs-serve ordering deterministic.
    const auto model = registry_.active();
    // `pinned` holds the routed shards until every future below completes
    // (RaceShard::submit's lifetime contract: jobs never own their shard).
    std::vector<std::shared_ptr<core::RaceShard>> pinned;
    std::vector<std::future<void>> dispatched;
    pinned.reserve(groups.size());
    dispatched.reserve(groups.size());
    for (auto& [key, members] : groups) {
      m_.batch_groups->add(1);
      if (members.size() > 1) m_.batch_dedup_hits->add(members.size() - 1);
      std::shared_ptr<core::RaceShard> shard;
      if (model && model->fleet) {
        shard = model->fleet->shard_for(std::get<0>(key));
      }
      if (shard) {
        core::RaceShard* const s = shard.get();
        pinned.push_back(std::move(shard));
        dispatched.push_back(s->submit(
            [this, &members, &model, s] { process_group(members, model, s); }));
      } else {
        process_group(members, model, nullptr);  // reject path: no model
      }
    }
    for (auto& f : dispatched) {
      try {
        f.get();
      } catch (...) {
        // A torn-down driver surfaces broken_promise here; the affected
        // requests were already answered or their connections are dead.
      }
    }
  }
}

void ForecastServer::process_group(
    std::vector<Pending>& members,
    const std::shared_ptr<const ServingModel>& model,
    core::RaceShard* shard) {
  const auto now = Clock::now();
  // Requests whose budget evaporated in the queue are explicit sheds.
  std::vector<Pending> live;
  for (auto& item : members) {
    if (item.deadline <= now) {
      m_.expired_in_queue->add(1);
      reject(item, Status::deadline_exceeded("deadline expired in queue"));
    } else {
      live.push_back(std::move(item));
    }
  }
  if (live.empty()) return;
  const auto& req = live.front().req;

  if (!model) {
    for (auto& item : live) {
      reject(item, Status::failed_precondition("no model published"));
    }
    return;
  }

  // The race snapshot was pinned at admission; there is no re-lookup (and
  // no lock) here, and no "race vanished" path — an admitted request is
  // always answered against the state it was admitted with.
  const std::shared_ptr<const RaceEntry>& entry = live.front().race;
  if (req.origin_lap >= entry->race->num_laps()) {
    for (auto& item : live) {
      reject(item, Status::out_of_range(
                       "origin_lap " + std::to_string(req.origin_lap) +
                       " beyond race (" +
                       std::to_string(entry->race->num_laps()) + " laps)"));
    }
    return;
  }

  // One engine per shard: only this shard's driver thread mutates its
  // policy, so the per-group deadline arm below is single-writer. Without
  // a fleet (pre-init) fall back to the shard-0 alias.
  const auto& engine = shard ? shard->engine() : model->engine;
  if (shard) {
    // serve.shard.<i>.* booking: find-or-create costs one registry lookup
    // per *group*, not per request; the add itself is lock-free.
    auto& reg = obs::Registry::instance();
    const std::string prefix =
        "serve.shard." + std::to_string(shard->index()) + ".";
    reg.counter(prefix + "groups").add(1);
    reg.counter(prefix + "requests").add(live.size());
  }

  wire::ForecastResponse response;
  response.model_version = model->version;
  wire::Tier tier = wire::Tier::kFull;

  // The engine's base draw is the caller rng's first u64, so the key's
  // `base` — and with it cache/dedup identity — is a pure function of the
  // request's seed.
  util::Rng rng(req.seed);

  if (live.front().degraded) {
    // Overload tier: answer from the cache if the bytes already exist,
    // else from the cheap fallback model. Never the primary engine.
    const std::uint64_t base = util::Rng(req.seed)();
    core::RaceSamples samples;
    bool cached = false;
    if (const auto& cache = engine->forecast_cache()) {
      core::ForecastCacheKey key{
          entry->digest,
          base,
          engine->model_version(),
          req.origin_lap,
          req.horizon,
          req.num_samples,
          static_cast<int>(tensor::kernels::active_variant())};
      if (auto hit = cache->get(key)) {
        samples = *std::move(hit);
        cached = true;
      }
    }
    if (!cached) {
      samples = registry_.fallback()->forecast(*entry->race, req.origin_lap,
                                               req.horizon, req.num_samples,
                                               rng);
    }
    tier = cached ? wire::Tier::kCached : wire::Tier::kFallback;
    for (const auto& [car_id, m] : samples) {
      response.cars.push_back({car_id, core::median_trajectory(m)});
    }
  } else {
    // Per-request budget rides the engine's deadline tier: the tightest
    // remaining deadline in the group bounds the whole compute, and a
    // blown budget degrades to a partial-sample merge instead of a stall.
    double budget_seconds = 1e9;
    for (const auto& item : live) {
      budget_seconds =
          std::min(budget_seconds, seconds_until(item.deadline, now));
    }
    core::ParallelForecastEngine::DegradationPolicy policy;
    policy.deadline_seconds = budget_seconds;
    policy.fallback = registry_.fallback();
    if (auto st = engine->set_degradation_policy(std::move(policy));
        !st.ok()) {
      for (auto& item : live) reject(item, st);
      return;
    }

    const auto deg_before = engine->degradation();
    const auto hits_before = core::CacheCounters::instance().hits();
    core::RaceSamples samples;
    try {
      samples = engine->forecast(*entry->race, req.origin_lap, req.horizon,
                                 req.num_samples, rng);
    } catch (const std::exception& e) {
      for (auto& item : live) {
        reject(item, Status::failed_precondition(
                         std::string("forecast failed: ") + e.what()));
      }
      return;
    }
    const auto deg_after = engine->degradation();
    const bool cache_hit =
        core::CacheCounters::instance().hits() > hits_before;
    const auto fallback_delta =
        deg_after.fallback_cars() - deg_before.fallback_cars();
    const auto full_delta = deg_after.full_cars - deg_before.full_cars;
    if (cache_hit) {
      tier = wire::Tier::kCached;
    } else if (fallback_delta > 0) {
      tier = full_delta > 0 ? wire::Tier::kPartial : wire::Tier::kFallback;
    }
    for (const auto& [car_id, m] : samples) {
      response.cars.push_back({car_id, core::median_trajectory(m)});
    }
  }

  response.tier = tier;
  const bool healthy = response_healthy(response);
  if (!healthy) {
    response.status_code =
        static_cast<std::uint8_t>(util::StatusCode::kFailedPrecondition);
    response.message = "model emitted non-finite or implausible medians";
  }
  // Serving feedback: probation rollback triggers here when a freshly
  // promoted model misbehaves on real traffic.
  if (tier == wire::Tier::kFull || tier == wire::Tier::kPartial) {
    registry_.record_serving_result(model->version, healthy);
  }

  for (auto& item : live) {
    response.request_id = item.req.request_id;
    // Book metrics BEFORE the send: anyone who has observed the response is
    // guaranteed the counters already include it (the soak test snapshots
    // tier counters the instant the last response arrives).
    switch (tier) {
      case wire::Tier::kFull: m_.tier_full->add(1); break;
      case wire::Tier::kCached: m_.tier_cached->add(1); break;
      case wire::Tier::kPartial: m_.tier_partial->add(1); break;
      case wire::Tier::kFallback: m_.tier_fallback->add(1); break;
      case wire::Tier::kRejected: break;  // unreachable here
    }
    m_.request_latency->observe(
        std::chrono::duration<double>(Clock::now() - item.arrival).count());
    respond(item.conn, response);
  }
}

void ForecastServer::reject(const Pending& item, Status status) {
  wire::ForecastResponse response;
  response.request_id = item.req.request_id;
  response.status_code = static_cast<std::uint8_t>(status.code());
  response.tier = wire::Tier::kRejected;
  response.message = status.message();
  m_.tier_rejected->add(1);
  respond(item.conn, response);
}

void ForecastServer::respond(const std::shared_ptr<Conn>& conn,
                             const wire::ForecastResponse& response) {
  send_frame(conn, wire::FrameType::kForecastResponse,
             wire::encode_forecast_response(response));
}

void ForecastServer::send_frame(const std::shared_ptr<Conn>& conn,
                                wire::FrameType type,
                                std::span<const std::uint8_t> payload) {
  if (conn->dead.load()) return;
  const auto frame = wire::encode_frame(type, payload);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (auto st = conn->stream.send_all(frame.data(), frame.size(),
                                      config_.write_timeout_seconds);
      !st.ok()) {
    m_.write_failures->add(1);
    conn->dead.store(true);
  }
}

}  // namespace ranknet::serve

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ranknet::ml {

DecisionTree::DecisionTree(TreeConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

void DecisionTree::fit(const tensor::Matrix& x, std::span<const double> y) {
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  fit_indices(x, y, std::move(indices));
}

void DecisionTree::fit_indices(const tensor::Matrix& x,
                               std::span<const double> y,
                               std::vector<std::size_t> indices) {
  nodes_.clear();
  if (indices.empty()) {
    nodes_.push_back(Node{});  // degenerate: predicts 0
    return;
  }
  build(x, y, indices, 0, indices.size(), 0);
}

int DecisionTree::build(const tensor::Matrix& x, std::span<const double> y,
                        std::vector<std::size_t>& indices, std::size_t begin,
                        std::size_t end, int depth) {
  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += y[indices[i]];
  const double mean = sum / static_cast<double>(n);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_id)].value = mean;

  if (depth >= config_.max_depth || n < config_.min_samples_split) {
    return node_id;
  }

  // Parent impurity (sum of squared deviations).
  double parent_sse = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double d = y[indices[i]] - mean;
    parent_sse += d * d;
  }
  if (parent_sse <= 1e-12) return node_id;

  // Candidate features (all, or a random subset for forests).
  const std::size_t num_features = x.cols();
  std::vector<std::size_t> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  std::size_t tries = num_features;
  if (config_.max_features > 0 && config_.max_features < num_features) {
    rng_.shuffle(features);
    tries = config_.max_features;
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  std::vector<std::pair<double, double>> col(n);  // (feature value, target)
  for (std::size_t fi = 0; fi < tries; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = indices[begin + i];
      col[i] = {x(row, f), y[row]};
    }
    std::sort(col.begin(), col.end());
    // Prefix scan: evaluate every split position between distinct values.
    double left_sum = 0.0, left_sq = 0.0;
    double total_sq = 0.0;
    for (const auto& [_, t] : col) total_sq += t * t;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_sum += col[i].second;
      left_sq += col[i].second * col[i].second;
      if (col[i].first == col[i + 1].first) continue;
      const auto nl = i + 1;
      const auto nr = n - nl;
      if (nl < config_.min_samples_leaf || nr < config_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse_l =
          left_sq - left_sum * left_sum / static_cast<double>(nl);
      const double sse_r =
          right_sq - right_sum * right_sum / static_cast<double>(nr);
      const double gain = parent_sse - sse_l - sse_r;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (col[i].first + col[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition indices in place.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return x(row, static_cast<std::size_t>(best_feature)) <=
               best_threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // numeric degeneracy

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, y, indices, begin, mid, depth + 1);
  const int right = build(x, y, indices, mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict_one(std::span<const double> x) const {
  if (nodes_.empty()) return 0.0;
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    node = static_cast<std::size_t>(
        x[f] <= nodes_[node].threshold ? nodes_[node].left
                                       : nodes_[node].right);
  }
  return nodes_[node].value;
}

int DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (nodes_[node].feature >= 0) {
      stack.push_back({static_cast<std::size_t>(nodes_[node].left), d + 1});
      stack.push_back({static_cast<std::size_t>(nodes_[node].right), d + 1});
    }
  }
  return best;
}

}  // namespace ranknet::ml

// Random forest regressor (bagged CART trees with feature subsampling).
#pragma once

#include <memory>

#include "ml/decision_tree.hpp"

namespace ranknet::ml {

struct ForestConfig {
  std::size_t num_trees = 50;
  TreeConfig tree;
  /// Bootstrap sample size as a fraction of n (with replacement).
  double subsample = 1.0;
  /// Cap on bootstrap size (keeps single-core training tractable).
  std::size_t max_bootstrap = 6000;
  std::uint64_t seed = 13;
};

class RandomForest : public Regressor {
 public:
  explicit RandomForest(ForestConfig config = {});

  void fit(const tensor::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;

  std::size_t num_trees() const { return trees_.size(); }

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace ranknet::ml

#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stats.hpp"

namespace ranknet::ml {

Svr::Svr(SvrConfig config) : config_(config) {}

double Svr::kernel(std::span<const double> a, std::span<const double> b) const {
  if (config_.kernel == SvrKernel::kLinear) {
    double dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
    return dot;
  }
  double dist = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    dist += d * d;
  }
  return std::exp(-gamma_ * dist);
}

void Svr::fit(const tensor::Matrix& x, std::span<const double> y) {
  util::Rng rng(config_.seed);
  // Subsample if the problem is too large to materialize the kernel matrix.
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  if (rows.size() > config_.max_samples) {
    rng.shuffle(rows);
    rows.resize(config_.max_samples);
  }
  const std::size_t n = rows.size();
  support_x_ = tensor::Matrix(n, x.cols());
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      support_x_(i, c) = x(rows[i], c);
    }
    ys[i] = y[rows[i]];
  }

  // gamma = 1 / (d * var(X)) — sklearn's "scale" default.
  if (config_.gamma > 0.0) {
    gamma_ = config_.gamma;
  } else {
    util::RunningStats st;
    for (double v : support_x_.flat()) st.add(v);
    // variance() is NaN for n < 2; a degenerate fit falls back to the floor.
    const double raw = st.variance();
    const double var = std::isfinite(raw) ? std::max(raw, 1e-9) : 1e-9;
    gamma_ = 1.0 / (static_cast<double>(x.cols()) * var);
  }

  // Dual coordinate descent on the bias-augmented kernel K' = K + 1
  // (folding the bias into the kernel removes the equality constraint).
  tensor::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(support_x_.row(i), support_x_.row(j)) + 1.0;
      k(i, j) = v;
      k(j, i) = v;
    }
  }

  beta_.assign(n, 0.0);
  std::vector<double> f(n, 0.0);  // f_i = sum_j beta_j K'_ij
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t pass = 0; pass < config_.max_passes; ++pass) {
    rng.shuffle(order);
    double max_delta = 0.0;
    for (const auto i : order) {
      const double f_without_i = f[i] - beta_[i] * k(i, i);
      const double u = ys[i] - f_without_i;
      // Soft-thresholded unconstrained optimum, clipped to the box.
      double b_new = 0.0;
      if (std::abs(u) > config_.epsilon) {
        b_new = (u - std::copysign(config_.epsilon, u)) / k(i, i);
        b_new = std::clamp(b_new, -config_.c, config_.c);
      }
      const double delta = b_new - beta_[i];
      if (delta != 0.0) {
        for (std::size_t j = 0; j < n; ++j) f[j] += delta * k(i, j);
        beta_[i] = b_new;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < config_.tol) break;
  }
  bias_ = std::accumulate(beta_.begin(), beta_.end(), 0.0);
}

double Svr::predict_one(std::span<const double> x) const {
  double out = bias_;  // contribution of the constant kernel component
  for (std::size_t i = 0; i < beta_.size(); ++i) {
    if (beta_[i] == 0.0) continue;
    out += beta_[i] * kernel(support_x_.row(i), x);
  }
  return out;
}

std::size_t Svr::num_support_vectors() const {
  std::size_t n = 0;
  for (double b : beta_) {
    if (b != 0.0) ++n;
  }
  return n;
}

}  // namespace ranknet::ml

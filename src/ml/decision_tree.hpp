// CART regression tree (variance-reduction splits), the base learner for
// the RandomForest and XGBoost-style GBDT baselines.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/regressor.hpp"
#include "util/rng.hpp"

namespace ranknet::ml {

struct TreeConfig {
  int max_depth = 10;
  std::size_t min_samples_leaf = 3;
  std::size_t min_samples_split = 6;
  /// Number of features tried per split; 0 = all (RandomForest passes d/3).
  std::size_t max_features = 0;
};

class DecisionTree : public Regressor {
 public:
  explicit DecisionTree(TreeConfig config = {}, std::uint64_t seed = 7);

  void fit(const tensor::Matrix& x, std::span<const double> y) override;

  /// Fit on a subset of rows (bagging) with optional per-row weights is not
  /// needed; the forest passes bootstrapped index lists instead.
  void fit_indices(const tensor::Matrix& x, std::span<const double> y,
                   std::vector<std::size_t> indices);

  double predict_one(std::span<const double> x) const override;

  std::size_t num_nodes() const { return nodes_.size(); }
  int depth() const;

 private:
  struct Node {
    int feature = -1;       // -1 = leaf
    double threshold = 0.0;
    double value = 0.0;     // leaf prediction
    int left = -1;
    int right = -1;
  };

  int build(const tensor::Matrix& x, std::span<const double> y,
            std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, int depth);

  TreeConfig config_;
  util::Rng rng_;
  std::vector<Node> nodes_;
};

}  // namespace ranknet::ml

// ε-insensitive Support Vector Regression with RBF or linear kernel,
// trained by a simplified SMO on the dual (random working-pair selection).
#pragma once

#include "ml/regressor.hpp"
#include "util/rng.hpp"

namespace ranknet::ml {

enum class SvrKernel { kRbf, kLinear };

struct SvrConfig {
  SvrKernel kernel = SvrKernel::kRbf;
  double c = 10.0;         // box constraint
  double epsilon = 0.1;    // insensitive tube half-width
  double gamma = 0.0;      // RBF width; 0 = 1/(d * var(X)) (sklearn "scale")
  std::size_t max_passes = 40;
  double tol = 1e-3;
  /// Cap on training points (the kernel matrix is materialized).
  std::size_t max_samples = 2500;
  std::uint64_t seed = 41;
};

class Svr : public Regressor {
 public:
  explicit Svr(SvrConfig config = {});

  void fit(const tensor::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;

  std::size_t num_support_vectors() const;

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;

  SvrConfig config_;
  double gamma_ = 1.0;
  double bias_ = 0.0;
  tensor::Matrix support_x_;
  std::vector<double> beta_;  // alpha - alpha*, per training point
};

}  // namespace ranknet::ml

#include "ml/arima.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ranknet::ml {

namespace {

std::vector<double> difference(std::span<const double> xs) {
  std::vector<double> out;
  if (xs.size() < 2) return out;
  out.reserve(xs.size() - 1);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    out.push_back(xs[i] - xs[i - 1]);
  }
  return out;
}

/// Solve A w = b for small dense symmetric A by Gaussian elimination with
/// partial pivoting. A is modified in place (row-major n x n).
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n) {
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) {
      // Singular system: ridge it slightly and continue.
      a[col * n + col] += 1e-6;
      pivot = col;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> w(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * w[c];
    w[r] = acc / a[r * n + r];
  }
  return w;
}

}  // namespace

Arima::Arima(ArimaConfig config) : config_(config) {
  if (config_.p < 0 || config_.d < 0) {
    throw std::invalid_argument("Arima: negative order");
  }
}

void Arima::fit(std::span<const double> series) {
  history_.assign(series.begin(), series.end());
  diffed_ = history_;
  for (int k = 0; k < config_.d && diffed_.size() > 1; ++k) {
    diffed_ = difference(diffed_);
  }

  // Degrade the AR order gracefully on short series.
  const auto n = diffed_.size();
  int p = config_.p;
  while (p > 0 && n < static_cast<std::size_t>(3 * p + 2)) --p;
  phi_.assign(static_cast<std::size_t>(std::max(p, 0)), 0.0);
  intercept_ = 0.0;
  sigma_ = 1.0;
  if (n < 3) return;

  if (p == 0) {
    double mean = 0.0;
    for (double v : diffed_) mean += v;
    intercept_ = mean / static_cast<double>(n);
    double sse = 0.0;
    for (double v : diffed_) sse += (v - intercept_) * (v - intercept_);
    sigma_ = std::sqrt(sse / static_cast<double>(n));
    return;
  }

  // Conditional least squares: regress z_t on [1, z_{t-1}, ..., z_{t-p}].
  const std::size_t dim = static_cast<std::size_t>(p) + 1;
  std::vector<double> xtx(dim * dim, 0.0);
  std::vector<double> xty(dim, 0.0);
  std::vector<double> row(dim, 1.0);
  std::size_t count = 0;
  for (std::size_t t = static_cast<std::size_t>(p); t < n; ++t) {
    row[0] = 1.0;
    for (int i = 1; i <= p; ++i) {
      row[static_cast<std::size_t>(i)] = diffed_[t - static_cast<std::size_t>(i)];
    }
    for (std::size_t a = 0; a < dim; ++a) {
      for (std::size_t b = 0; b < dim; ++b) xtx[a * dim + b] += row[a] * row[b];
      xty[a] += row[a] * diffed_[t];
    }
    ++count;
  }
  // Small ridge keeps near-constant series well-posed.
  for (std::size_t a = 0; a < dim; ++a) xtx[a * dim + a] += 1e-8;
  const auto w = solve_linear(std::move(xtx), std::move(xty), dim);
  intercept_ = w[0];
  for (int i = 0; i < p; ++i) phi_[static_cast<std::size_t>(i)] = w[static_cast<std::size_t>(i) + 1];

  double sse = 0.0;
  for (std::size_t t = static_cast<std::size_t>(p); t < n; ++t) {
    double pred = intercept_;
    for (int i = 1; i <= p; ++i) {
      pred += phi_[static_cast<std::size_t>(i - 1)] *
              diffed_[t - static_cast<std::size_t>(i)];
    }
    const double e = diffed_[t] - pred;
    sse += e * e;
  }
  sigma_ = count > 0 ? std::sqrt(sse / static_cast<double>(count)) : 1.0;
}

std::vector<double> Arima::forecast_diffs(int horizon,
                                          std::vector<double>* noise_buffer,
                                          util::Rng* rng) const {
  std::vector<double> extended = diffed_;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(horizon));
  const int p = static_cast<int>(phi_.size());
  for (int h = 0; h < horizon; ++h) {
    double pred = intercept_;
    for (int i = 1; i <= p; ++i) {
      const auto idx = static_cast<std::ptrdiff_t>(extended.size()) - i;
      pred += phi_[static_cast<std::size_t>(i - 1)] *
              (idx >= 0 ? extended[static_cast<std::size_t>(idx)] : 0.0);
    }
    if (rng != nullptr) {
      const double eps = rng->normal(0.0, sigma_);
      pred += eps;
      if (noise_buffer != nullptr) noise_buffer->push_back(eps);
    }
    extended.push_back(pred);
    out.push_back(pred);
  }
  return out;
}

std::vector<double> Arima::forecast(int horizon) const {
  auto diffs = forecast_diffs(horizon, nullptr, nullptr);
  // Integrate back up d levels: track the running last value per level.
  std::vector<double> lasts;  // lasts[k] = last value of k-times-differenced
  std::vector<double> level = history_;
  for (int k = 0; k < config_.d; ++k) {
    lasts.push_back(level.empty() ? 0.0 : level.back());
    level = difference(level);
  }
  std::vector<double> out;
  out.reserve(diffs.size());
  for (double z : diffs) {
    double v = z;
    for (int k = config_.d - 1; k >= 0; --k) {
      v += lasts[static_cast<std::size_t>(k)];
      lasts[static_cast<std::size_t>(k)] = v;
    }
    out.push_back(v);
  }
  return out;
}

std::vector<std::vector<double>> Arima::sample_paths(int horizon,
                                                     int num_samples,
                                                     util::Rng& rng) const {
  std::vector<std::vector<double>> paths;
  paths.reserve(static_cast<std::size_t>(num_samples));
  for (int s = 0; s < num_samples; ++s) {
    auto diffs = forecast_diffs(horizon, nullptr, &rng);
    std::vector<double> lasts;
    std::vector<double> level = history_;
    for (int k = 0; k < config_.d; ++k) {
      lasts.push_back(level.empty() ? 0.0 : level.back());
      level = difference(level);
    }
    std::vector<double> path;
    path.reserve(diffs.size());
    for (double z : diffs) {
      double v = z;
      for (int k = config_.d - 1; k >= 0; --k) {
        v += lasts[static_cast<std::size_t>(k)];
        lasts[static_cast<std::size_t>(k)] = v;
      }
      path.push_back(v);
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace ranknet::ml

#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

namespace ranknet::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {}

void RandomForest::fit(const tensor::Matrix& x, std::span<const double> y) {
  trees_.clear();
  util::Rng rng(config_.seed);
  const std::size_t n = x.rows();
  if (n == 0) return;
  const auto boot = std::min<std::size_t>(
      config_.max_bootstrap,
      static_cast<std::size_t>(config_.subsample * static_cast<double>(n)) +
          1);
  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    // Standard heuristic for regression forests: d/3 features per split.
    tree_config.max_features = std::max<std::size_t>(1, x.cols() / 3);
  }
  trees_.reserve(config_.num_trees);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    std::vector<std::size_t> indices(boot);
    for (auto& idx : indices) {
      idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    trees_.emplace_back(tree_config, rng());
    trees_.back().fit_indices(x, y, std::move(indices));
  }
}

double RandomForest::predict_one(std::span<const double> x) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict_one(x);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace ranknet::ml

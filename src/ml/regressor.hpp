// Common interface for the classical ML regression baselines
// (paper Table III: RandomForest, SVM, XGBoost — point forecasts, no
// representation learning, no uncertainty).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace ranknet::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit on rows of X (n x d) against targets y (n).
  virtual void fit(const tensor::Matrix& x, std::span<const double> y) = 0;

  /// Predict a single feature vector.
  virtual double predict_one(std::span<const double> x) const = 0;

  /// Predict every row of X.
  std::vector<double> predict(const tensor::Matrix& x) const {
    std::vector<double> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row(r));
    return out;
  }
};

}  // namespace ranknet::ml

#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ranknet::ml {

Gbdt::Gbdt(GbdtConfig config) : config_(config), rng_(config.seed) {}

void Gbdt::fit(const tensor::Matrix& x, std::span<const double> y) {
  trees_.clear();
  const std::size_t n = x.rows();
  if (n == 0) return;
  base_score_ = 0.0;
  for (double v : y) base_score_ += v;
  base_score_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_score_);
  std::vector<double> grad(n);  // g_i = pred - y (squared loss), h_i = 1
  for (std::size_t round = 0; round < config_.num_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) grad[i] = pred[i] - y[i];

    // Row subsampling without replacement.
    std::vector<std::size_t> indices;
    indices.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (config_.subsample >= 1.0 || rng_.bernoulli(config_.subsample)) {
        indices.push_back(i);
      }
    }
    if (indices.size() < 2 * config_.min_child_weight) continue;

    Tree tree;
    build(x, grad, indices, 0, indices.size(), 0, tree);
    for (std::size_t i = 0; i < n; ++i) {
      pred[i] += config_.learning_rate * predict_tree(tree, x.row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

int Gbdt::build(const tensor::Matrix& x, std::span<const double> grad,
                std::vector<std::size_t>& indices, std::size_t begin,
                std::size_t end, int depth, Tree& tree) {
  const std::size_t n = end - begin;
  double g_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) g_sum += grad[indices[i]];
  const double h_sum = static_cast<double>(n);  // hessian = 1 per row

  const int node_id = static_cast<int>(tree.size());
  tree.push_back(Node{});
  // Newton leaf weight: -G / (H + lambda).
  tree[static_cast<std::size_t>(node_id)].value =
      -g_sum / (h_sum + config_.lambda);

  if (depth >= config_.max_depth || n < 2 * config_.min_child_weight) {
    return node_id;
  }

  // Structure score before the split.
  const double parent_score = g_sum * g_sum / (h_sum + config_.lambda);
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = config_.gamma + 1e-12;

  std::vector<std::pair<double, double>> col(n);  // (feature value, grad)
  for (std::size_t f = 0; f < x.cols(); ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = indices[begin + i];
      col[i] = {x(row, f), grad[row]};
    }
    std::sort(col.begin(), col.end());
    double gl = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      gl += col[i].second;
      if (col[i].first == col[i + 1].first) continue;
      const auto nl = i + 1;
      const auto nr = n - nl;
      if (nl < config_.min_child_weight || nr < config_.min_child_weight) {
        continue;
      }
      const double gr = g_sum - gl;
      const double gain =
          0.5 * (gl * gl / (static_cast<double>(nl) + config_.lambda) +
                 gr * gr / (static_cast<double>(nr) + config_.lambda) -
                 parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (col[i].first + col[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return x(row, static_cast<std::size_t>(best_feature)) <=
               best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;

  tree[static_cast<std::size_t>(node_id)].feature = best_feature;
  tree[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, grad, indices, begin, mid, depth + 1, tree);
  const int right = build(x, grad, indices, mid, end, depth + 1, tree);
  tree[static_cast<std::size_t>(node_id)].left = left;
  tree[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double Gbdt::predict_tree(const Tree& tree, std::span<const double> x) {
  std::size_t node = 0;
  while (tree[node].feature >= 0) {
    const auto f = static_cast<std::size_t>(tree[node].feature);
    node = static_cast<std::size_t>(x[f] <= tree[node].threshold
                                        ? tree[node].left
                                        : tree[node].right);
  }
  return tree[node].value;
}

double Gbdt::predict_one(std::span<const double> x) const {
  double out = base_score_;
  for (const auto& tree : trees_) {
    out += config_.learning_rate * predict_tree(tree, x);
  }
  return out;
}

}  // namespace ranknet::ml

// ARIMA(p, d, 0) forecaster: AR coefficients fitted by conditional least
// squares on the d-times differenced series; probabilistic forecasts via
// Gaussian innovations accumulated through the recursive forecast
// (the statistical baseline of the paper's Table V / Fig. 2c).
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ranknet::ml {

struct ArimaConfig {
  int p = 3;  // AR order
  int d = 1;  // differencing order
};

class Arima {
 public:
  explicit Arima(ArimaConfig config = {});

  /// Fit on one series (e.g. the rank history of one car up to the
  /// forecast origin). Short series degrade gracefully to lower orders.
  void fit(std::span<const double> series);

  /// Point forecast for the next `horizon` values.
  std::vector<double> forecast(int horizon) const;

  /// `num_samples` Monte-Carlo sample paths (num_samples x horizon),
  /// innovations drawn from the fitted residual distribution.
  std::vector<std::vector<double>> sample_paths(int horizon, int num_samples,
                                                util::Rng& rng) const;

  const std::vector<double>& coefficients() const { return phi_; }
  double intercept() const { return intercept_; }
  double residual_stddev() const { return sigma_; }

 private:
  std::vector<double> forecast_diffs(int horizon,
                                     std::vector<double>* noise_buffer,
                                     util::Rng* rng) const;

  ArimaConfig config_;
  std::vector<double> phi_;
  double intercept_ = 0.0;
  double sigma_ = 1.0;
  std::vector<double> history_;       // original series
  std::vector<double> diffed_;        // differenced series used for the AR
};

}  // namespace ranknet::ml

#include "ml/online_linear.hpp"

#include <algorithm>
#include <cmath>

namespace ranknet::ml {

void OnlineLinearFit::add(double x, double y) {
  n_ += 1.0;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_xy_ += x * y;
  ++count_;
}

void OnlineLinearFit::decay(double gamma) {
  const double g = std::clamp(gamma, 0.0, 1.0);
  n_ *= g;
  sum_x_ *= g;
  sum_y_ *= g;
  sum_xx_ *= g;
  sum_xy_ *= g;
}

OnlineLinearFit::Coefficients OnlineLinearFit::fit(double ridge) const {
  Coefficients c;
  if (n_ <= 0.0) return c;
  const double mean_y = sum_y_ / n_;
  if (n_ < 2.0) {
    c.intercept = mean_y;
    return c;
  }
  const double mean_x = sum_x_ / n_;
  // Centered normal equations: var_x * slope = cov_xy, damped by the ridge
  // term so a nearly-constant feature column degrades gracefully toward the
  // constant predictor instead of blowing the slope up.
  const double var_x = sum_xx_ / n_ - mean_x * mean_x;
  const double cov_xy = sum_xy_ / n_ - mean_x * mean_y;
  const double denom = var_x + std::max(ridge, 0.0);
  if (!(denom > 0.0) || !std::isfinite(denom)) {
    c.intercept = mean_y;
    return c;
  }
  c.slope = cov_xy / denom;
  c.intercept = mean_y - c.slope * mean_x;
  if (!std::isfinite(c.slope) || !std::isfinite(c.intercept)) {
    c.slope = 0.0;
    c.intercept = std::isfinite(mean_y) ? mean_y : 0.0;
  }
  return c;
}

void OnlineLinearFit::reset() { *this = OnlineLinearFit{}; }

}  // namespace ranknet::ml

// Exponentially-decayed online least squares for one-feature affine models,
//   y ≈ slope * x + intercept,
// maintained as running sufficient statistics (n, Σx, Σy, Σxx, Σxy) so an
// online trainer can fold freshly ingested observations in without keeping
// the raw data. decay() multiplies every statistic by γ ∈ (0, 1], which
// turns the fit into a recency-weighted window — the knob the
// champion/challenger loop uses to track drift (old races fade, the fit
// follows the freshest telemetry).
//
// Deterministic: pure arithmetic over the observation sequence, no RNG, no
// clocks. Two fitters fed the same observations in the same order produce
// bit-identical coefficients.
#pragma once

#include <cstdint>
#include <utility>

namespace ranknet::ml {

class OnlineLinearFit {
 public:
  struct Coefficients {
    double slope = 0.0;
    double intercept = 0.0;
  };

  /// Fold one (x, y) observation with unit weight.
  void add(double x, double y);

  /// Multiply every sufficient statistic by `gamma` (clamped to [0, 1]);
  /// gamma = 1 keeps the plain all-time fit.
  void decay(double gamma);

  /// Solve the (ridge-damped) normal equations. With fewer than two
  /// effective observations, or a degenerate design (all x equal), the fit
  /// falls back to slope 0 / intercept = mean(y) — a constant predictor,
  /// never NaN coefficients.
  Coefficients fit(double ridge = 1e-9) const;

  /// Effective observation count after decay (a real number: decayed
  /// observations count fractionally).
  double weight() const { return n_; }
  /// Raw observations folded in since construction (undecayed).
  std::uint64_t observations() const { return count_; }

  void reset();

 private:
  double n_ = 0.0;
  double sum_x_ = 0.0;
  double sum_y_ = 0.0;
  double sum_xx_ = 0.0;
  double sum_xy_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace ranknet::ml

// XGBoost-style gradient-boosted regression trees: second-order (Newton)
// boosting with squared loss, shrinkage, L2 leaf regularization and
// row subsampling. Squared loss makes the hessian 1, so leaf values reduce
// to regularized residual means — the structure mirrors XGBoost exactly.
#pragma once

#include "ml/regressor.hpp"
#include "util/rng.hpp"

namespace ranknet::ml {

struct GbdtConfig {
  std::size_t num_rounds = 120;
  int max_depth = 5;
  double learning_rate = 0.1;
  double lambda = 1.0;            // L2 regularization on leaf weights
  double gamma = 0.0;             // min split gain
  double subsample = 0.8;         // rows per round
  std::size_t min_child_weight = 4;
  std::uint64_t seed = 29;
};

class Gbdt : public Regressor {
 public:
  explicit Gbdt(GbdtConfig config = {});

  void fit(const tensor::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;

  std::size_t num_rounds() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;  // leaf weight
    int left = -1;
    int right = -1;
  };
  using Tree = std::vector<Node>;

  int build(const tensor::Matrix& x, std::span<const double> grad,
            std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, int depth, Tree& tree);
  static double predict_tree(const Tree& tree, std::span<const double> x);

  GbdtConfig config_;
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
  util::Rng rng_{29};
};

}  // namespace ranknet::ml

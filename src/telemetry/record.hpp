// Timing-and-scoring record schema, mirroring the paper's Fig. 1(a):
// Rank, CarId, Lap, LapTime, TimeBehindLeader, LapStatus, TrackStatus.
#pragma once

#include <cstdint>

namespace ranknet::telemetry {

/// 'T' = normal lap, 'P' = pit-stop lap (car crossed SF/SFP in the pit lane).
enum class LapStatus : std::uint8_t { kNormal = 0, kPit = 1 };

/// 'G' = green flag, 'Y' = yellow flag / caution lap.
enum class TrackStatus : std::uint8_t { kGreen = 0, kYellow = 1 };

inline char to_char(LapStatus s) { return s == LapStatus::kPit ? 'P' : 'T'; }
inline char to_char(TrackStatus s) {
  return s == TrackStatus::kYellow ? 'Y' : 'G';
}

/// One scoring line: the state of one car at the completion of one lap.
struct LapRecord {
  int rank = 0;      // 1-based position crossing SF/SFP on this lap
  int car_id = 0;
  int lap = 0;       // 1-based lap number
  double lap_time = 0.0;             // seconds to complete this lap
  double time_behind_leader = 0.0;   // seconds behind the lap leader
  LapStatus lap_status = LapStatus::kNormal;
  TrackStatus track_status = TrackStatus::kGreen;
};

}  // namespace ranknet::telemetry

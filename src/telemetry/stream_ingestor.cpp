#include "telemetry/stream_ingestor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"
#include "util/string_util.hpp"

namespace ranknet::telemetry {

StreamIngestor::StreamIngestor(IngestConfig config) : cfg_(config) {}

util::Status StreamIngestor::validate(const LapRecord& rec) const {
  if (!std::isfinite(rec.lap_time) || !std::isfinite(rec.time_behind_leader)) {
    return util::Status::corrupt_data(
        util::format("car %d lap %d: non-finite field", rec.car_id, rec.lap));
  }
  const int lap_bound = cfg_.expected_total_laps > 0
                            ? cfg_.expected_total_laps
                            : cfg_.max_lap;
  if (rec.car_id < 0 || rec.car_id > cfg_.max_car_id) {
    return util::Status::out_of_range(
        util::format("car id %d outside [0, %d]", rec.car_id, cfg_.max_car_id));
  }
  if (rec.lap < 1 || rec.lap > lap_bound) {
    return util::Status::out_of_range(
        util::format("car %d: lap %d outside [1, %d]", rec.car_id, rec.lap,
                     lap_bound));
  }
  if (rec.rank < 1 || rec.rank > cfg_.max_rank) {
    return util::Status::out_of_range(
        util::format("car %d lap %d: rank %d outside [1, %d]", rec.car_id,
                     rec.lap, rec.rank, cfg_.max_rank));
  }
  if (rec.lap_time < cfg_.min_lap_time || rec.lap_time > cfg_.max_lap_time) {
    return util::Status::out_of_range(
        util::format("car %d lap %d: lap time %.3f outside [%.1f, %.1f]",
                     rec.car_id, rec.lap, rec.lap_time, cfg_.min_lap_time,
                     cfg_.max_lap_time));
  }
  if (rec.time_behind_leader < 0.0 ||
      rec.time_behind_leader > cfg_.max_time_behind) {
    return util::Status::out_of_range(
        util::format("car %d lap %d: time behind leader %.3f outside "
                     "[0, %.1f]",
                     rec.car_id, rec.lap, rec.time_behind_leader,
                     cfg_.max_time_behind));
  }
  return {};
}

util::Status StreamIngestor::push(const LapRecord& rec) {
  if (finalized_) {
    return util::Status::failed_precondition(
        "StreamIngestor: push after finalize");
  }
  if (util::Status s = validate(rec); !s.ok()) {
    if (s.code() == util::StatusCode::kCorruptData) {
      ++counters_.quarantined_schema;
    } else {
      ++counters_.quarantined_range;
    }
    return s;
  }

  CarBuffer& car = cars_[rec.car_id];
  if (car.frontier == 0 && rec.lap > 1 + cfg_.max_lap_jump) {
    // A car's first record at an implausibly late lap is a corrupt lap
    // number; accepting it would poison the frontier and get every genuine
    // record for the car rejected as "too late".
    ++counters_.quarantined_monotonic;
    return util::Status::out_of_range(
        util::format("car %d: first record at implausible lap %d", rec.car_id,
                     rec.lap));
  }
  if (car.frontier > 0 && rec.lap < car.frontier - cfg_.reorder_window) {
    ++counters_.quarantined_monotonic;
    return util::Status::out_of_range(
        util::format("car %d: lap %d arrived %d laps behind frontier %d "
                     "(reorder window %d)",
                     rec.car_id, rec.lap, car.frontier - rec.lap, car.frontier,
                     cfg_.reorder_window));
  }
  if (car.frontier > 0 && rec.lap > car.frontier + cfg_.max_lap_jump) {
    // A far-forward jump is a corrupt lap number, not real progress; letting
    // it advance the frontier would make every genuine record "too late".
    ++counters_.quarantined_monotonic;
    return util::Status::out_of_range(
        util::format("car %d: lap %d jumps %d laps ahead of frontier %d",
                     rec.car_id, rec.lap, rec.lap - car.frontier,
                     car.frontier));
  }
  if (!car.laps.emplace(rec.lap, rec).second) {
    ++counters_.duplicates;  // idempotent: first accepted record wins
    return {};
  }
  if (rec.lap < car.frontier) ++counters_.reordered;
  car.frontier = std::max(car.frontier, rec.lap);
  ++counters_.accepted;
  return {};
}

util::Result<RaceLog> StreamIngestor::finalize(const EventInfo& info) {
  if (finalized_) {
    return util::Status::failed_precondition(
        "StreamIngestor: finalize called twice");
  }
  finalized_ = true;
  obs::SpanScope ingest_span(obs::Stage::kIngest);

  std::vector<LapRecord> records;
  for (auto& [car_id, car] : cars_) {
    if (car.laps.empty()) continue;

    // Leading gap: back-fill a short one from the first real record (the
    // rank at lap 1 is unknown but close); a long one means we never saw
    // the car's early race and cannot anchor anything — drop the car.
    const int first_lap = car.laps.begin()->first;
    if (first_lap > 1 + cfg_.max_gap_laps) {
      ++counters_.trimmed_cars;
      counters_.quarantined_gap += car.laps.size();
      continue;
    }

    std::vector<LapRecord> series;
    series.reserve(car.laps.size() + static_cast<std::size_t>(first_lap));
    int imputed = 0;
    for (int lap = 1; lap < first_lap; ++lap) {
      LapRecord fill = car.laps.begin()->second;
      fill.lap = lap;
      series.push_back(fill);
      ++imputed;
    }

    const LapRecord* prev = nullptr;
    int truncated = 0;  // laps lost to an unbridgeable tail gap
    for (auto it = car.laps.begin(); it != car.laps.end(); ++it) {
      const LapRecord& cur = it->second;
      if (prev != nullptr) {
        const int gap = cur.lap - prev->lap - 1;
        if (gap > cfg_.max_gap_laps) {
          // Unbridgeable: quarantine everything after the gap rather than
          // invent several laps of racing. The laps from the break point to
          // the car's last observed lap are still missing data — they must
          // count toward the damage fraction, or a car that lost its whole
          // tail reads as pristine.
          counters_.quarantined_gap +=
              static_cast<std::uint64_t>(std::distance(it, car.laps.end()));
          truncated = car.laps.rbegin()->first - prev->lap;
          break;
        }
        for (int k = 1; k <= gap; ++k) {
          const double t = static_cast<double>(k) / (gap + 1);
          LapRecord fill = *prev;
          fill.lap = prev->lap + k;
          fill.rank = std::clamp(
              static_cast<int>(std::lround(
                  prev->rank + t * (cur.rank - prev->rank))),
              1, cfg_.max_rank);
          fill.lap_time =
              prev->lap_time + t * (cur.lap_time - prev->lap_time);
          fill.time_behind_leader =
              prev->time_behind_leader +
              t * (cur.time_behind_leader - prev->time_behind_leader);
          series.push_back(fill);
          ++imputed;
        }
      }
      series.push_back(cur);
      prev = &it->second;
    }

    counters_.imputed += static_cast<std::uint64_t>(imputed);
    const double span_laps = static_cast<double>(series.size()) + truncated;
    damage_[car_id] = span_laps == 0.0
                          ? 1.0
                          : static_cast<double>(imputed + truncated) /
                                span_laps;
    last_observed_[car_id] = series.empty() ? 0 : series.back().lap;
    records.insert(records.end(), series.begin(), series.end());
  }

  if (records.empty()) {
    return util::Status::unavailable(
        "StreamIngestor: no usable records survived ingestion");
  }
  return RaceLog(info, std::move(records));
}

void StreamIngestor::begin_race() {
  // Fold the closing race's tallies into the session totals, then zero the
  // per-race state so the next race's counters and damage report start
  // clean. Works whether or not the previous race was finalized (a feed
  // can be abandoned mid-race).
  finished_totals_.accepted += counters_.accepted;
  finished_totals_.duplicates += counters_.duplicates;
  finished_totals_.reordered += counters_.reordered;
  finished_totals_.imputed += counters_.imputed;
  finished_totals_.quarantined_schema += counters_.quarantined_schema;
  finished_totals_.quarantined_range += counters_.quarantined_range;
  finished_totals_.quarantined_monotonic += counters_.quarantined_monotonic;
  finished_totals_.quarantined_gap += counters_.quarantined_gap;
  finished_totals_.trimmed_cars += counters_.trimmed_cars;
  counters_ = IngestCounters{};
  cars_.clear();
  damage_.clear();
  last_observed_.clear();
  finalized_ = false;
}

IngestCounters StreamIngestor::session_counters() const {
  IngestCounters total = finished_totals_;
  total.accepted += counters_.accepted;
  total.duplicates += counters_.duplicates;
  total.reordered += counters_.reordered;
  total.imputed += counters_.imputed;
  total.quarantined_schema += counters_.quarantined_schema;
  total.quarantined_range += counters_.quarantined_range;
  total.quarantined_monotonic += counters_.quarantined_monotonic;
  total.quarantined_gap += counters_.quarantined_gap;
  total.trimmed_cars += counters_.trimmed_cars;
  return total;
}

double StreamIngestor::damage_fraction(int car_id) const {
  const auto it = damage_.find(car_id);
  return it == damage_.end() ? 0.0 : it->second;
}

int StreamIngestor::last_observed_lap(int car_id) const {
  const auto it = last_observed_.find(car_id);
  return it == last_observed_.end() ? 0 : it->second;
}

}  // namespace ranknet::telemetry

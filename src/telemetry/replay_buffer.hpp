// ReplayBuffer: the bounded store of recently ingested races that feeds the
// online training loop (core/online_trainer.hpp).
//
// The StreamIngestor turns a faulty live feed into validated RaceLogs one
// race at a time; the replay buffer keeps the newest `capacity` of them so
// the trainer can fit candidates on a fresh window and hold out the races
// just before it as a probe set. Races are stored behind shared_ptr so a
// training step can pin its window while newer races keep arriving — a push
// never invalidates a window handed out earlier.
//
// Thread-safe: the ingest thread pushes while the trainer thread reads.
// Deterministic: contents are a pure function of the push sequence.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/race_log.hpp"

namespace ranknet::obs {
class Counter;
}

namespace ranknet::telemetry {

struct ReplayConfig {
  /// Races retained; pushing beyond this evicts the oldest. Must be >= 1.
  std::size_t capacity = 16;
};

/// A pinned read view: oldest -> newest order, safe to hold across pushes.
using RaceWindow = std::vector<std::shared_ptr<const RaceLog>>;

class ReplayBuffer {
 public:
  explicit ReplayBuffer(ReplayConfig config = {});

  /// Append one finalized race (evicting the oldest beyond capacity).
  void push(RaceLog race);

  std::size_t size() const;
  std::uint64_t total_pushed() const;

  /// The newest `count` races, oldest -> newest (fewer when the buffer
  /// holds fewer).
  RaceWindow newest(std::size_t count) const;

  /// `count` races older than the newest `skip_newest` ones, oldest ->
  /// newest — the trainer's held-out probe window selector. Returns fewer
  /// (possibly none) when the buffer is short.
  RaceWindow window(std::size_t skip_newest, std::size_t count) const;

 private:
  ReplayConfig config_;
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<const RaceLog>> races_;
  std::uint64_t total_pushed_ = 0;

  // serve.online.replay.* handles, resolved once.
  obs::Counter* pushed_;
  obs::Counter* evicted_;
  obs::Counter* records_;
};

}  // namespace ranknet::telemetry

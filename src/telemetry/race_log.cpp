#include "telemetry/race_log.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/string_util.hpp"

namespace ranknet::telemetry {

std::vector<std::size_t> CarSeries::pit_laps() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < lap_status.size(); ++i) {
    if (lap_status[i] == LapStatus::kPit) out.push_back(i);
  }
  return out;
}

RaceLog::RaceLog(EventInfo info, std::vector<LapRecord> records)
    : info_(std::move(info)), records_(std::move(records)) {
  std::sort(records_.begin(), records_.end(),
            [](const LapRecord& a, const LapRecord& b) {
              if (a.lap != b.lap) return a.lap < b.lap;
              return a.rank < b.rank;
            });
  build_views();
}

void RaceLog::build_views() {
  cars_.clear();
  car_ids_.clear();
  num_laps_ = 0;
  for (const auto& r : records_) {
    auto& series = cars_[r.car_id];
    series.car_id = r.car_id;
    if (r.lap != static_cast<int>(series.laps()) + 1) {
      throw std::invalid_argument(util::format(
          "RaceLog: car %d has non-contiguous laps (%d after %zu)", r.car_id,
          r.lap, series.laps()));
    }
    series.rank.push_back(static_cast<double>(r.rank));
    series.lap_time.push_back(r.lap_time);
    series.time_behind_leader.push_back(r.time_behind_leader);
    series.lap_status.push_back(r.lap_status);
    series.track_status.push_back(r.track_status);
    num_laps_ = std::max(num_laps_, r.lap);
  }
  for (const auto& [id, _] : cars_) car_ids_.push_back(id);
}

const CarSeries& RaceLog::car(int car_id) const {
  const auto it = cars_.find(car_id);
  if (it == cars_.end()) {
    throw std::out_of_range(util::format("RaceLog: unknown car %d", car_id));
  }
  return it->second;
}

int RaceLog::winner() const {
  int best_car = -1;
  std::size_t best_laps = 0;
  for (const auto& [id, series] : cars_) {
    if (series.laps() > best_laps ||
        (series.laps() == best_laps && best_car >= 0 &&
         series.rank.back() < cars_.at(best_car).rank.back())) {
      best_car = id;
      best_laps = series.laps();
    }
  }
  return best_car;
}

std::string RaceLog::id() const {
  return util::format("%s-%d", info_.name.c_str(), info_.year);
}

util::CsvTable RaceLog::to_csv() const {
  util::CsvTable table({"Rank", "CarId", "Lap", "LapTime", "TimeBehindLeader",
                        "LapStatus", "TrackStatus"});
  for (const auto& r : records_) {
    table.add_row({std::to_string(r.rank), std::to_string(r.car_id),
                   std::to_string(r.lap), util::format("%.4f", r.lap_time),
                   util::format("%.4f", r.time_behind_leader),
                   std::string(1, to_char(r.lap_status)),
                   std::string(1, to_char(r.track_status))});
  }
  return table;
}

RaceLog RaceLog::from_csv(const EventInfo& info, const util::CsvTable& table) {
  std::vector<LapRecord> records;
  records.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    LapRecord rec;
    rec.rank = static_cast<int>(table.cell_long(r, "Rank"));
    rec.car_id = static_cast<int>(table.cell_long(r, "CarId"));
    rec.lap = static_cast<int>(table.cell_long(r, "Lap"));
    rec.lap_time = table.cell_double(r, "LapTime");
    rec.time_behind_leader = table.cell_double(r, "TimeBehindLeader");
    rec.lap_status = table.cell(r, "LapStatus") == "P" ? LapStatus::kPit
                                                       : LapStatus::kNormal;
    rec.track_status = table.cell(r, "TrackStatus") == "Y"
                           ? TrackStatus::kYellow
                           : TrackStatus::kGreen;
    records.push_back(rec);
  }
  return RaceLog(info, std::move(records));
}

}  // namespace ranknet::telemetry

#include "telemetry/replay_buffer.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace ranknet::telemetry {

ReplayBuffer::ReplayBuffer(ReplayConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  auto& reg = obs::Registry::instance();
  pushed_ = &reg.counter("serve.online.replay.pushed");
  evicted_ = &reg.counter("serve.online.replay.evicted");
  records_ = &reg.counter("serve.online.replay.records");
}

void ReplayBuffer::push(RaceLog race) {
  const auto records = static_cast<std::uint64_t>(race.num_records());
  std::lock_guard<std::mutex> lock(mutex_);
  races_.push_back(std::make_shared<const RaceLog>(std::move(race)));
  ++total_pushed_;
  pushed_->add(1);
  records_->add(records);
  while (races_.size() > config_.capacity) {
    races_.pop_front();
    evicted_->add(1);
  }
}

std::size_t ReplayBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return races_.size();
}

std::uint64_t ReplayBuffer::total_pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_pushed_;
}

RaceWindow ReplayBuffer::newest(std::size_t count) const {
  return window(0, count);
}

RaceWindow ReplayBuffer::window(std::size_t skip_newest,
                                std::size_t count) const {
  std::lock_guard<std::mutex> lock(mutex_);
  RaceWindow out;
  if (skip_newest >= races_.size()) return out;
  const std::size_t end = races_.size() - skip_newest;  // one past newest kept
  const std::size_t begin = end > count ? end - count : 0;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) out.push_back(races_[i]);
  return out;
}

}  // namespace ranknet::telemetry

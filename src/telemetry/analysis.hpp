// Race-log analysis used by the paper's data-exploration artifacts:
// stints and pit classification (Fig. 4) and the per-race dataset
// statistics PitLapsRatio / RankChangesRatio (Fig. 6).
#pragma once

#include <vector>

#include "telemetry/race_log.hpp"

namespace ranknet::telemetry {

/// One pit stop event, classified per the paper: a "caution pit" happens
/// on a yellow-flag lap, a "normal pit" under green.
struct PitStop {
  int car_id = 0;
  int lap = 0;             // 1-based lap of the stop
  bool caution = false;    // occurred under yellow
  int stint_distance = 0;  // laps since the previous pit (or race start)
  int rank_change = 0;     // |rank after settling - rank before the stop|
};

/// All pit stops of a race, with stint distances and local rank impact.
/// `settle_laps` is how many laps after the stop the post-pit rank is read
/// (the paper observes the rank loss materializes over the next few laps).
std::vector<PitStop> extract_pit_stops(const RaceLog& race,
                                       int settle_laps = 2);

/// Fraction of (car, lap) records that are pit-stop laps.
double pit_laps_ratio(const RaceLog& race);

/// Fraction of (car, lap) transitions where the rank changed vs the
/// previous lap.
double rank_changes_ratio(const RaceLog& race);

/// Count of records with yellow-flag track status.
std::size_t caution_lap_records(const RaceLog& race);

}  // namespace ranknet::telemetry

// StreamIngestor: the fault-tolerant front door for live timing-and-scoring
// records (paper Fig. 1(a) — records arrive lap by lap over the wire).
//
// Real feeds drop, duplicate, reorder and corrupt records. The ingestor
// consumes records incrementally and guarantees that whatever survives is a
// well-formed RaceLog the forecasting stack can trust:
//
//   * schema validation  — non-finite numeric fields are quarantined,
//   * range validation   — fields outside the configured bounds (rank, lap,
//                          lap time, time behind leader) are quarantined,
//   * monotonicity       — per-car records may arrive out of order within a
//                          bounded reorder window behind the car's newest
//                          lap (frontier); older stragglers and implausible
//                          forward jumps are quarantined,
//   * deduplication      — a (car, lap) pair is accepted once; replays are
//                          counted and dropped, so ingestion is idempotent,
//   * gap imputation     — missing runs of at most `max_gap_laps` laps are
//                          filled by linear interpolation between the
//                          neighbouring real records at finalize; longer
//                          gaps truncate the car's series at the gap (the
//                          tail is quarantined rather than invented).
//
// Every rejection is tallied in per-category IngestCounters, and per-car
// damage metadata (imputed-lap fraction, last observed lap) feeds the
// forecast engine's degradation ladder (core/parallel_engine.hpp).
//
// Determinism: ingestion is a pure function of the record sequence — no
// clocks, no randomness — so a replayed faulty stream reproduces the same
// log, counters and damage report bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "telemetry/race_log.hpp"
#include "util/status.hpp"

namespace ranknet::telemetry {

struct IngestConfig {
  int reorder_window = 8;   // laps a record may trail the car's frontier
  int max_lap_jump = 32;    // laps a record may lead the car's frontier
  int max_gap_laps = 3;     // longest missing run imputation will bridge
  int expected_total_laps = 0;  // 0 = unknown; tightens the lap bound when set
  int max_rank = 128;
  int max_car_id = 10000;
  int max_lap = 5000;
  double min_lap_time = 1.0;       // seconds; a 0/negative lap time is noise
  double max_lap_time = 3600.0;
  double max_time_behind = 36000.0;
};

struct IngestCounters {
  std::uint64_t accepted = 0;
  std::uint64_t duplicates = 0;             // replayed (car, lap) records
  std::uint64_t reordered = 0;              // accepted behind the frontier
  std::uint64_t imputed = 0;                // synthetic gap-filling records
  std::uint64_t quarantined_schema = 0;     // non-finite fields
  std::uint64_t quarantined_range = 0;      // out-of-bounds fields
  std::uint64_t quarantined_monotonic = 0;  // outside the reorder window
  std::uint64_t quarantined_gap = 0;        // records behind unbridgeable gaps
  std::uint64_t trimmed_cars = 0;           // cars dropped whole at finalize

  std::uint64_t quarantined() const {
    return quarantined_schema + quarantined_range + quarantined_monotonic +
           quarantined_gap;
  }
};

class StreamIngestor {
 public:
  explicit StreamIngestor(IngestConfig config = {});

  /// Validate and buffer one record. A non-OK status means the record was
  /// quarantined (already counted); pushing a duplicate returns OK and is
  /// dropped. Returns FAILED_PRECONDITION after finalize().
  util::Status push(const LapRecord& rec);

  /// Close the stream: impute short gaps, trim cars that cannot be
  /// repaired, and build the RaceLog. Fails if no usable records survived.
  util::Result<RaceLog> finalize(const EventInfo& info);

  /// Re-arm a long-lived ingestor for the next race: clears the buffered
  /// laps, damage metadata, the finalized flag AND the per-race counters.
  /// Pre-fix, a session ingestor carried quarantine counters (and the
  /// finalized latch) across races, so race N's damage report accused race
  /// N+1's feed — counters() is per-race by contract; the lifetime totals
  /// live in session_counters().
  void begin_race();

  const IngestCounters& counters() const { return counters_; }
  /// Counters accumulated across every race of the session (the per-race
  /// counters of all finished races plus the current one).
  IngestCounters session_counters() const;

  // Damage metadata for the degradation ladder (valid after finalize) -----
  /// Fraction of the car's observed lap span that is not real telemetry:
  /// imputed laps plus any tail quarantined behind an unbridgeable gap,
  /// over the span through the car's last observed lap (0 for an unknown
  /// car).
  double damage_fraction(int car_id) const;
  /// Last lap backed by a real record (0 for an unknown/trimmed car).
  int last_observed_lap(int car_id) const;

 private:
  struct CarBuffer {
    std::map<int, LapRecord> laps;  // lap -> first accepted record
    int frontier = 0;               // newest accepted lap
  };

  util::Status validate(const LapRecord& rec) const;

  IngestConfig cfg_;
  IngestCounters counters_;          // current race only
  IngestCounters finished_totals_;   // races closed out by begin_race()
  std::map<int, CarBuffer> cars_;
  std::map<int, double> damage_;         // car -> imputed fraction
  std::map<int, int> last_observed_;     // car -> newest real lap kept
  bool finalized_ = false;
};

}  // namespace ranknet::telemetry

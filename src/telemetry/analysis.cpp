#include "telemetry/analysis.hpp"

#include <cmath>

namespace ranknet::telemetry {

std::vector<PitStop> extract_pit_stops(const RaceLog& race, int settle_laps) {
  std::vector<PitStop> out;
  for (const auto& [car_id, series] : race.cars()) {
    std::size_t previous_pit = 0;  // stint measured from race start initially
    for (std::size_t i = 0; i < series.laps(); ++i) {
      if (!series.pit(i)) continue;
      PitStop p;
      p.car_id = car_id;
      p.lap = static_cast<int>(i) + 1;
      p.caution = series.yellow(i);
      p.stint_distance = static_cast<int>(i - previous_pit);
      const std::size_t before = i > 0 ? i - 1 : i;
      const std::size_t after =
          std::min(i + static_cast<std::size_t>(settle_laps),
                   series.laps() - 1);
      p.rank_change = static_cast<int>(
          std::abs(series.rank[after] - series.rank[before]));
      out.push_back(p);
      previous_pit = i;
    }
  }
  return out;
}

double pit_laps_ratio(const RaceLog& race) {
  std::size_t pits = 0, total = 0;
  for (const auto& [_, series] : race.cars()) {
    total += series.laps();
    for (std::size_t i = 0; i < series.laps(); ++i) {
      if (series.pit(i)) ++pits;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(pits) / static_cast<double>(total);
}

double rank_changes_ratio(const RaceLog& race) {
  std::size_t changes = 0, total = 0;
  for (const auto& [_, series] : race.cars()) {
    for (std::size_t i = 1; i < series.laps(); ++i) {
      ++total;
      if (series.rank[i] != series.rank[i - 1]) ++changes;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(changes) / static_cast<double>(total);
}

std::size_t caution_lap_records(const RaceLog& race) {
  std::size_t n = 0;
  for (const auto& r : race.records()) {
    if (r.track_status == TrackStatus::kYellow) ++n;
  }
  return n;
}

}  // namespace ranknet::telemetry

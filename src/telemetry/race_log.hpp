// RaceLog: the scoring log of one race — every (car, lap) record plus event
// metadata — and CarSeries, the per-car lap-major view the forecasting
// pipeline consumes. CSV round-trip matches the Fig. 1(a) table layout.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "telemetry/record.hpp"
#include "util/csv.hpp"

namespace ranknet::telemetry {

/// Static description of an event (paper Table II row).
struct EventInfo {
  std::string name;            // "Indy500", "Texas", ...
  int year = 0;
  double track_length_miles = 0.0;
  std::string track_shape;     // "Oval", "Triangle"
  int total_laps = 0;
  double avg_speed_mph = 0.0;
};

/// Lap-major series for a single car. Index 0 corresponds to lap 1; a car
/// that retires early simply has a shorter series.
struct CarSeries {
  int car_id = 0;
  std::vector<double> rank;                // observed rank per lap
  std::vector<double> lap_time;            // seconds
  std::vector<double> time_behind_leader;  // seconds
  std::vector<LapStatus> lap_status;
  std::vector<TrackStatus> track_status;

  std::size_t laps() const { return rank.size(); }
  bool pit(std::size_t lap_idx) const {
    return lap_status[lap_idx] == LapStatus::kPit;
  }
  bool yellow(std::size_t lap_idx) const {
    return track_status[lap_idx] == TrackStatus::kYellow;
  }
  /// Lap indices (0-based) of all pit stops.
  std::vector<std::size_t> pit_laps() const;
};

class RaceLog {
 public:
  RaceLog() = default;
  RaceLog(EventInfo info, std::vector<LapRecord> records);

  const EventInfo& info() const { return info_; }
  const std::vector<LapRecord>& records() const { return records_; }
  std::size_t num_records() const { return records_.size(); }

  /// Ids of all cars that appear in the log, ascending.
  const std::vector<int>& car_ids() const { return car_ids_; }

  /// Per-car lap-major view; throws std::out_of_range for unknown ids.
  const CarSeries& car(int car_id) const;
  const std::map<int, CarSeries>& cars() const { return cars_; }

  /// Largest completed lap across all cars.
  int num_laps() const { return num_laps_; }

  /// Car id of the race winner (rank 1 on its final lap, longest distance).
  int winner() const;

  util::CsvTable to_csv() const;
  static RaceLog from_csv(const EventInfo& info, const util::CsvTable& table);

  /// A short identifier like "Indy500-2018".
  std::string id() const;

 private:
  void build_views();

  EventInfo info_;
  std::vector<LapRecord> records_;
  std::vector<int> car_ids_;
  std::map<int, CarSeries> cars_;
  int num_laps_ = 0;
};

}  // namespace ranknet::telemetry

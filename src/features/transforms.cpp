#include "features/transforms.hpp"

#include <algorithm>
#include <map>

namespace ranknet::features {

CarStatusFeatures compute_status_features(const telemetry::CarSeries& car) {
  CarStatusFeatures f;
  const std::size_t n = car.laps();
  f.track_status.resize(n);
  f.lap_status.resize(n);
  f.caution_laps.resize(n);
  f.pit_age.resize(n);
  double caution_since_pit = 0.0;
  double age = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    f.track_status[i] = car.yellow(i) ? 1.0 : 0.0;
    f.lap_status[i] = car.pit(i) ? 1.0 : 0.0;
    if (car.pit(i)) {
      caution_since_pit = 0.0;
      age = 0.0;
    } else {
      if (car.yellow(i)) caution_since_pit += 1.0;
      age += 1.0;
    }
    f.caution_laps[i] = caution_since_pit;
    f.pit_age[i] = age;
  }
  return f;
}

RaceContextFeatures compute_race_context(const telemetry::RaceLog& race) {
  RaceContextFeatures ctx;
  const auto laps = static_cast<std::size_t>(race.num_laps());
  ctx.total_pit_count.assign(laps, 0.0);
  ctx.total_caution.assign(laps, 0.0);
  for (const auto& rec : race.records()) {
    const auto idx = static_cast<std::size_t>(rec.lap - 1);
    if (rec.lap_status == telemetry::LapStatus::kPit) {
      ctx.total_pit_count[idx] += 1.0;
    }
    if (rec.track_status == telemetry::TrackStatus::kYellow) {
      ctx.total_caution[idx] = 1.0;
    }
  }
  return ctx;
}

std::vector<double> compute_leader_pit_count(const telemetry::RaceLog& race,
                                             int car_id) {
  const auto& target = race.car(car_id);
  const auto laps = target.laps();
  std::vector<double> out(laps, 0.0);
  // rank_at[car][lap] lookup built once per call from the lap-major views.
  for (std::size_t lap = 0; lap < laps; ++lap) {
    // Leaders are determined by the rank two laps earlier (paper Fig. 7):
    // at the very start of the race, use the earliest lap available.
    const std::size_t ref_lap = lap >= 2 ? lap - 2 : 0;
    if (ref_lap >= target.laps()) break;
    const double my_rank = target.rank[ref_lap];
    double count = 0.0;
    for (const auto& [other_id, other] : race.cars()) {
      if (other_id == car_id) continue;
      if (lap < other.laps() && ref_lap < other.laps() && other.pit(lap) &&
          other.rank[ref_lap] < my_rank) {
        count += 1.0;
      }
    }
    out[lap] = count;
  }
  return out;
}

std::vector<double> laps_to_next_pit(const telemetry::CarSeries& car) {
  const std::size_t n = car.laps();
  std::vector<double> out(n, 0.0);
  double next = static_cast<double>(n);  // sentinel: end of the car's race
  for (std::size_t i = n; i-- > 0;) {
    if (car.pit(i)) next = static_cast<double>(i);
    out[i] = next - static_cast<double>(i);
  }
  return out;
}

}  // namespace ranknet::features

#include "features/window.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace ranknet::features {

namespace {

// Fixed covariate scaling constants. Using constants instead of fitted
// scalers keeps the forecasting path (which invents future covariates)
// identical to training; the magnitudes put every feature in roughly [0, 3].
constexpr double kCautionLapsScale = 10.0;
constexpr double kPitAgeScale = 40.0;
constexpr double kPitCountScale = 10.0;

}  // namespace

std::size_t CovariateConfig::dim() const {
  std::size_t d = 0;
  if (race_status) d += 2;
  if (age_features) d += 2;
  if (context_features) d += 2;
  if (shift_features) d += 3;
  return d;
}

StatusStreams StatusStreams::from_race(const telemetry::RaceLog& race,
                                       int car_id) {
  const auto& car = race.car(car_id);
  const auto status = compute_status_features(car);
  const auto context = compute_race_context(race);
  StatusStreams s;
  s.track_status = status.track_status;
  s.lap_status = status.lap_status;
  s.leader_pit_count = compute_leader_pit_count(race, car_id);
  s.total_pit_count.assign(context.total_pit_count.begin(),
                           context.total_pit_count.begin() +
                               static_cast<std::ptrdiff_t>(car.laps()));
  return s;
}

std::vector<std::vector<double>> build_covariates(
    const StatusStreams& streams, const CovariateConfig& config) {
  const std::size_t n = streams.laps();
  std::vector<std::vector<double>> out(n);
  // Recompute accumulation features from the (possibly predicted) statuses.
  double caution_since_pit = 0.0;
  double age = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const bool pit = streams.lap_status[t] > 0.5;
    const bool yellow = streams.track_status[t] > 0.5;
    if (pit) {
      caution_since_pit = 0.0;
      age = 0.0;
    } else {
      if (yellow) caution_since_pit += 1.0;
      age += 1.0;
    }
    auto& row = out[t];
    row.reserve(config.dim());
    if (config.race_status) {
      row.push_back(streams.track_status[t]);
      row.push_back(streams.lap_status[t]);
    }
    if (config.age_features) {
      row.push_back(caution_since_pit / kCautionLapsScale);
      row.push_back(age / kPitAgeScale);
    }
    if (config.context_features) {
      row.push_back(
          (t < streams.leader_pit_count.size() ? streams.leader_pit_count[t]
                                               : 0.0) /
          kPitCountScale);
      row.push_back(
          (t < streams.total_pit_count.size() ? streams.total_pit_count[t]
                                              : 0.0) /
          kPitCountScale);
    }
    if (config.shift_features) {
      const std::size_t ts = t + static_cast<std::size_t>(config.shift);
      const bool in_range = ts < n;
      row.push_back(in_range ? streams.lap_status[ts] : 0.0);
      row.push_back(in_range ? streams.track_status[ts] : 0.0);
      row.push_back((in_range && ts < streams.total_pit_count.size()
                         ? streams.total_pit_count[ts]
                         : 0.0) /
                    kPitCountScale);
    }
  }
  return out;
}

CarVocab::CarVocab(const std::vector<telemetry::RaceLog>& races) {
  std::set<int> ids;
  for (const auto& race : races) {
    for (int id : race.car_ids()) ids.insert(id);
  }
  ids_.assign(ids.begin(), ids.end());
}

int CarVocab::index(int car_id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), car_id);
  if (it != ids_.end() && *it == car_id) {
    return static_cast<int>(it - ids_.begin());
  }
  return static_cast<int>(ids_.size());  // unknown slot
}

int CarVocab::size() const { return static_cast<int>(ids_.size()) + 1; }

std::vector<SeqExample> build_windows(
    const std::vector<telemetry::RaceLog>& races, const CarVocab& vocab,
    const WindowConfig& config) {
  std::vector<SeqExample> out;
  const auto enc = static_cast<std::size_t>(config.encoder_length);
  const auto dec = static_cast<std::size_t>(config.decoder_length);
  const auto window = enc + dec;
  for (const auto& race : races) {
    for (int car_id : race.car_ids()) {
      const auto& car = race.car(car_id);
      if (car.laps() < window) continue;
      const auto streams = StatusStreams::from_race(race, car_id);
      const auto covs = build_covariates(streams, config.covariates);
      for (std::size_t begin = 0; begin + window <= car.laps();
           begin += static_cast<std::size_t>(config.stride)) {
        SeqExample ex;
        ex.car_index = vocab.index(car_id);
        ex.covariates.assign(covs.begin() + static_cast<std::ptrdiff_t>(begin),
                             covs.begin() +
                                 static_cast<std::ptrdiff_t>(begin + window));
        ex.target.assign(car.rank.begin() + static_cast<std::ptrdiff_t>(begin),
                         car.rank.begin() +
                             static_cast<std::ptrdiff_t>(begin + window));
        bool change = false;
        for (std::size_t t = enc; t < window; ++t) {
          if (ex.target[t] != ex.target[t - 1]) change = true;
        }
        ex.weight = change ? config.change_weight : 1.0;
        out.push_back(std::move(ex));
      }
    }
  }
  return out;
}

}  // namespace ranknet::features

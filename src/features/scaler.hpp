// Target/feature standardization fitted on training data only.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

namespace ranknet::features {

/// Z-score scaler for a single variable.
class StandardScaler {
 public:
  StandardScaler() = default;
  StandardScaler(double mean, double stddev);

  /// Fit mean/stddev on samples; a zero stddev degrades to 1 so transform
  /// stays invertible.
  void fit(std::span<const double> xs);

  double transform(double x) const { return (x - mean_) / stddev_; }
  double inverse(double z) const { return z * stddev_ + mean_; }
  /// Scale-only inverse for standard deviations / widths.
  double inverse_scale(double s) const { return s * stddev_; }

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  void save(std::ostream& out) const;
  static StandardScaler load(std::istream& in);

 private:
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace ranknet::features

#include "features/scaler.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "util/stats.hpp"

namespace ranknet::features {

StandardScaler::StandardScaler(double mean, double stddev)
    : mean_(mean), stddev_(stddev > 0.0 ? stddev : 1.0) {}

void StandardScaler::fit(std::span<const double> xs) {
  if (xs.empty()) {
    mean_ = 0.0;
    stddev_ = 1.0;
    return;
  }
  mean_ = util::mean(xs);
  const double sd = util::stddev(xs);
  stddev_ = sd > 1e-12 ? sd : 1.0;
}

void StandardScaler::save(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&mean_), sizeof(mean_));
  out.write(reinterpret_cast<const char*>(&stddev_), sizeof(stddev_));
}

StandardScaler StandardScaler::load(std::istream& in) {
  StandardScaler s;
  in.read(reinterpret_cast<char*>(&s.mean_), sizeof(s.mean_));
  in.read(reinterpret_cast<char*>(&s.stddev_), sizeof(s.stddev_));
  return s;
}

}  // namespace ranknet::features

// Sliding-window sequence dataset construction for the encoder-decoder
// models (paper Fig. 5a: encoder length L0, decoder length k), plus the
// covariate assembly shared between training (ground-truth race status) and
// forecasting (race status predicted by the PitModel / oracle).
#pragma once

#include <cstddef>
#include <vector>

#include "features/transforms.hpp"
#include "telemetry/race_log.hpp"

namespace ranknet::features {

/// Which covariates enter the network (paper Table I + Fig. 7 steps 3-4).
struct CovariateConfig {
  bool race_status = true;   // TrackStatus, LapStatus (RankNet; off = DeepAR)
  bool age_features = true;  // CautionLaps, PitAge accumulation transforms
  bool context_features = true;  // LeaderPitCount, TotalPitCount (Fig.7 s3)
  bool shift_features = true;    // status/pit counts at lap t+shift (Fig.7 s4)
  int shift = 2;

  std::size_t dim() const;
};

/// Raw per-lap status streams for one car, extendable past the observed
/// horizon with predicted values during forecasting.
struct StatusStreams {
  std::vector<double> track_status;      // 1 = yellow
  std::vector<double> lap_status;        // 1 = pit
  std::vector<double> total_pit_count;   // race context, per lap
  std::vector<double> leader_pit_count;  // per car, per lap

  std::size_t laps() const { return track_status.size(); }
  /// Extract ground-truth streams for (race, car).
  static StatusStreams from_race(const telemetry::RaceLog& race, int car_id);
};

/// Assemble the covariate vector for every lap in [0, streams.laps()).
/// Age features are recomputed from the (possibly predicted) statuses, so
/// the same code path serves training and forecasting.
std::vector<std::vector<double>> build_covariates(const StatusStreams& streams,
                                                  const CovariateConfig& config);

/// One training window: laps [begin, begin + enc + dec) of one car.
struct SeqExample {
  std::vector<std::vector<double>> covariates;  // enc+dec rows of dim()
  std::vector<double> target;                   // observed rank, enc+dec
  int car_index = 0;   // dense per-event car index for the embedding
  double weight = 1.0; // Fig. 7 step 1: upweight windows with rank changes
};

struct WindowConfig {
  int encoder_length = 60;
  int decoder_length = 2;
  int stride = 1;              // training windows start every `stride` laps
  double change_weight = 9.0;  // loss weight when the decoder has a change
  CovariateConfig covariates;
};

/// Maps raw car ids to dense embedding indices; unseen cars map to a
/// shared "unknown" slot so models generalize to new entry lists.
class CarVocab {
 public:
  CarVocab() = default;
  explicit CarVocab(const std::vector<telemetry::RaceLog>& races);

  /// Dense index for a car id (last slot = unknown).
  int index(int car_id) const;
  /// Total embedding rows (known cars + 1 unknown slot).
  int size() const;

  const std::vector<int>& ids() const { return ids_; }

 private:
  std::vector<int> ids_;  // sorted known ids
};

/// All training windows from a set of races.
std::vector<SeqExample> build_windows(
    const std::vector<telemetry::RaceLog>& races, const CarVocab& vocab,
    const WindowConfig& config);

}  // namespace ranknet::features

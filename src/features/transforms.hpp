// Feature engineering per the paper's Table I and Fig. 7.
//
// Basic race-status features (TrackStatus, LapStatus) are transformed into
// accumulation ("age") features CautionLaps and PitAge; race-level context
// features LeaderPitCount / TotalPitCount and their shifted (future-lap)
// variants are the step-3/step-4 optimizations of Fig. 7.
#pragma once

#include <vector>

#include "telemetry/race_log.hpp"

namespace ranknet::features {

/// Per-car, lap-aligned derived features (index 0 = lap 1).
struct CarStatusFeatures {
  std::vector<double> track_status;  // 1 = yellow
  std::vector<double> lap_status;    // 1 = pit
  std::vector<double> caution_laps;  // caution laps since the car's last pit
  std::vector<double> pit_age;       // laps since the car's last pit
};

CarStatusFeatures compute_status_features(const telemetry::CarSeries& car);

/// Race-level context per lap (shared across cars).
struct RaceContextFeatures {
  /// # of cars that pit on this lap.
  std::vector<double> total_pit_count;
  /// # of cars ahead of `car` (by rank two laps earlier) that pit this lap.
  /// Computed per car by compute_leader_pit_count.
  std::vector<double> total_caution;  // 1 if any record this lap is yellow
};

RaceContextFeatures compute_race_context(const telemetry::RaceLog& race);

/// LeaderPitCount(i, L): # of cars ahead of car i (based on rank at L-2)
/// that pit at lap L (paper Fig. 7 step 3).
std::vector<double> compute_leader_pit_count(const telemetry::RaceLog& race,
                                             int car_id);

/// Laps until the car's next pit stop, counted from each lap; laps after the
/// final stop get the distance to the end of the car's race. Used as the
/// PitModel regression target.
std::vector<double> laps_to_next_pit(const telemetry::CarSeries& car);

}  // namespace ranknet::features

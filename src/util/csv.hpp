// Tiny CSV reader/writer used by the telemetry round-trip and by benches
// that dump series for external plotting. Handles plain (unquoted) CSV,
// which is all the timing-and-scoring schema needs.
//
// Two access tiers: the try_* functions return util::Status/Result and are
// the required path for untrusted input (live feeds, user files) — they
// reject truncated rows, non-numeric bytes, and NaN/Inf numerics. The
// throwing accessors delegate to them and remain for trusted internal data
// (simulator output, our own benches).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace ranknet::util {

/// In-memory CSV table with a header row.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Column index for a header name; throws std::out_of_range if absent.
  std::size_t col(const std::string& name) const;
  bool has_col(const std::string& name) const;

  const std::vector<std::string>& row(std::size_t r) const { return rows_.at(r); }
  const std::string& cell(std::size_t r, const std::string& name) const;
  double cell_double(std::size_t r, const std::string& name) const;
  long cell_long(std::size_t r, const std::string& name) const;

  /// Strict numeric access: full-match parse, finite-only doubles.
  Result<double> try_cell_double(std::size_t r, const std::string& name) const;
  Result<long> try_cell_long(std::size_t r, const std::string& name) const;

  void add_row(std::vector<std::string> row);
  /// Non-throwing add: rejects rows whose cell count mismatches the header
  /// (a truncated or over-long line in a damaged file).
  Status try_add_row(std::vector<std::string> row);

  std::string to_string() const;
  void save(const std::string& path) const;

  static CsvTable parse(const std::string& text);
  static CsvTable load(const std::string& path);

  /// Non-throwing parse/load for untrusted bytes.
  static Result<CsvTable> try_parse(const std::string& text);
  static Result<CsvTable> try_load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ranknet::util

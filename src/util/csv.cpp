#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace ranknet::util {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  for (std::size_t i = 0; i < header_.size(); ++i) index_[header_[i]] = i;
}

std::size_t CsvTable::col(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("CsvTable: no column named '" + name + "'");
  }
  return it->second;
}

bool CsvTable::has_col(const std::string& name) const {
  return index_.count(name) != 0;
}

const std::string& CsvTable::cell(std::size_t r,
                                  const std::string& name) const {
  return rows_.at(r).at(col(name));
}

double CsvTable::cell_double(std::size_t r, const std::string& name) const {
  auto res = try_cell_double(r, name);
  if (!res.ok()) throw std::runtime_error("CsvTable: " + res.status().to_string());
  return res.value();
}

long CsvTable::cell_long(std::size_t r, const std::string& name) const {
  auto res = try_cell_long(r, name);
  if (!res.ok()) throw std::runtime_error("CsvTable: " + res.status().to_string());
  return res.value();
}

Result<double> CsvTable::try_cell_double(std::size_t r,
                                         const std::string& name) const {
  if (!has_col(name)) return Status::not_found("no column named '" + name + "'");
  if (r >= rows_.size()) {
    return Status::out_of_range(format("row %zu of %zu", r, rows_.size()));
  }
  auto res = parse_finite_double(rows_[r][index_.at(name)]);
  if (!res.ok()) {
    return Status(res.status().code(),
                  "column '" + name + "': " + res.status().message());
  }
  return res;
}

Result<long> CsvTable::try_cell_long(std::size_t r,
                                     const std::string& name) const {
  if (!has_col(name)) return Status::not_found("no column named '" + name + "'");
  if (r >= rows_.size()) {
    return Status::out_of_range(format("row %zu of %zu", r, rows_.size()));
  }
  auto res = parse_long(rows_[r][index_.at(name)]);
  if (!res.ok()) {
    return Status(res.status().code(),
                  "column '" + name + "': " + res.status().message());
  }
  return res;
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (Status s = try_add_row(std::move(row)); !s.ok()) {
    throw std::invalid_argument("CsvTable: " + s.to_string());
  }
}

Status CsvTable::try_add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    return Status::corrupt_data(format("row with %zu cells, expected %zu",
                                       row.size(), header_.size()));
  }
  rows_.push_back(std::move(row));
  return {};
}

std::string CsvTable::to_string() const {
  std::ostringstream out;
  out << join(header_, ",") << '\n';
  for (const auto& row : rows_) out << join(row, ",") << '\n';
  return out.str();
}

void CsvTable::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CsvTable: cannot open " + path);
  f << to_string();
}

CsvTable CsvTable::parse(const std::string& text) {
  auto res = try_parse(text);
  if (!res.ok()) throw std::runtime_error("CsvTable: " + res.status().to_string());
  return std::move(res).value();
}

CsvTable CsvTable::load(const std::string& path) {
  auto res = try_load(path);
  if (!res.ok()) throw std::runtime_error("CsvTable: " + res.status().to_string());
  return std::move(res).value();
}

Result<CsvTable> CsvTable::try_parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return Status::corrupt_data("empty input");
  std::vector<std::string> header;
  for (auto& cellv : split(trim(line), ',')) {
    header.emplace_back(trim(cellv));
  }
  CsvTable table(std::move(header));
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> row;
    for (auto& cellv : split(trimmed, ',')) row.emplace_back(trim(cellv));
    if (Status s = table.try_add_row(std::move(row)); !s.ok()) {
      return Status(s.code(), format("line %zu: ", lineno) + s.message());
    }
  }
  return table;
}

Result<CsvTable> CsvTable::try_load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::not_found("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return try_parse(buf.str());
}

}  // namespace ranknet::util

#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace ranknet::util {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  for (std::size_t i = 0; i < header_.size(); ++i) index_[header_[i]] = i;
}

std::size_t CsvTable::col(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("CsvTable: no column named '" + name + "'");
  }
  return it->second;
}

bool CsvTable::has_col(const std::string& name) const {
  return index_.count(name) != 0;
}

const std::string& CsvTable::cell(std::size_t r,
                                  const std::string& name) const {
  return rows_.at(r).at(col(name));
}

double CsvTable::cell_double(std::size_t r, const std::string& name) const {
  return std::stod(cell(r, name));
}

long CsvTable::cell_long(std::size_t r, const std::string& name) const {
  return std::stol(cell(r, name));
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument(
        format("CsvTable: row with %zu cells, expected %zu", row.size(),
               header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string CsvTable::to_string() const {
  std::ostringstream out;
  out << join(header_, ",") << '\n';
  for (const auto& row : rows_) out << join(row, ",") << '\n';
  return out.str();
}

void CsvTable::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CsvTable: cannot open " + path);
  f << to_string();
}

CsvTable CsvTable::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("CsvTable: empty input");
  std::vector<std::string> header;
  for (auto& cellv : split(trim(line), ',')) {
    header.emplace_back(trim(cellv));
  }
  CsvTable table(std::move(header));
  while (std::getline(in, line)) {
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> row;
    for (auto& cellv : split(trimmed, ',')) row.emplace_back(trim(cellv));
    table.add_row(std::move(row));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("CsvTable: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

}  // namespace ranknet::util

// Fixed-size, futures-based thread pool for the parallel forecast engine.
//
// Deliberately work-stealing-free: tasks run in FIFO submission order on a
// fixed set of workers, so the pool itself introduces no scheduling
// nondeterminism beyond which worker picks a task up — and the forecast
// engine is designed so that the *result* of every task is independent of
// that choice (see core/parallel_engine.hpp).
//
// A pool of size 0 is valid and runs every task inline on the submitting
// thread, which gives callers a zero-overhead sequential mode with the same
// code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ranknet::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means "run tasks inline on submit".
  explicit ThreadPool(std::size_t threads);

  /// Bounded-wait teardown: waits only for tasks already *running* on a
  /// worker, never for the backlog. Tasks still queued are abandoned — their
  /// packaged_task is destroyed, so a held future reports
  /// std::future_error(broken_promise) instead of hanging or silently
  /// losing the work (regression-tested in test_util.cpp). A serving loop
  /// shutting down behind one stalled task therefore tears down in
  /// O(longest running task), not O(queue depth).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker (0 in inline mode,
  /// where submit() runs the task before returning). A load signal for
  /// shard routing / shed decisions, not a synchronization primitive: the
  /// value is stale the moment it is returned.
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Exceptions that escaped a raw queued callable (not routed through a
  /// future). submit() can never trigger this — packaged_task captures the
  /// exception into the future — so a nonzero count flags a misuse bug
  /// without taking the whole process down via std::terminate.
  std::uint64_t escaped_exceptions() const {
    return escaped_exceptions_.load(std::memory_order_relaxed);
  }

  /// Number of concurrent hardware threads (>= 1).
  static std::size_t hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
  }

  /// Enqueue a task and get a future for its result. A task that throws
  /// does not kill the worker or wedge the queue: the exception is captured
  /// by the packaged_task and rethrown from future::get() on the caller's
  /// thread (regression-tested in test_util.cpp).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using Result = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline mode
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> escaped_exceptions_{0};
  bool stop_ = false;
};

}  // namespace ranknet::util

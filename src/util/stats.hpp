// Small descriptive-statistics toolkit used by the simulator analysis
// benches (Fig. 4, Fig. 6) and by the evaluation metrics.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ranknet::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Quantile with linear interpolation between order statistics
/// (type-7, the numpy default). q in [0,1]. Empty input -> NaN.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

/// Pearson correlation coefficient; NaN when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi) with `bins` buckets.
/// Out-of-range samples are tallied in `underflow` / `overflow` and
/// excluded from `counts`, so edge-bin frequencies reflect only in-range
/// mass (NaN samples land in `overflow`).
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;
  std::size_t underflow = 0;  // samples < lo
  std::size_t overflow = 0;   // samples >= hi (and NaN)

  double bin_width() const;
  double bin_center(std::size_t i) const;
  /// In-range samples only (excludes underflow/overflow).
  std::size_t total() const;
  /// Normalized frequency of bucket i (counts[i] / total).
  double frequency(std::size_t i) const;
};

Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins);

/// Empirical CDF evaluated at sorted sample points.
struct Ecdf {
  std::vector<double> xs;   // sorted support
  std::vector<double> ps;   // P(X <= xs[i])

  /// Evaluate the step function at x.
  double operator()(double x) const;
};

Ecdf ecdf(std::span<const double> xs);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1). NaN when n < 2 — same degenerate sentinel as
  /// the batch `util::variance()`, so one sample never reads as "zero
  /// spread measured".
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ranknet::util

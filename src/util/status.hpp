// Status / Result<T>: the error taxonomy for every untrusted-input path
// (CSV feeds, model artifacts, live telemetry). Trusted internal invariants
// keep using exceptions/asserts; anything that parses bytes a remote feed or
// the filesystem could have mangled returns a Status instead of throwing, so
// the serving path can quarantine bad input and keep running.
//
// Modeled on the absl::Status idiom, sized to this library: a code, a
// human-readable message, and a small Result<T> carrying either a value or
// the Status explaining why there is none.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ranknet::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // caller-supplied value violates the contract
  kParseError,          // bytes do not parse as the expected type
  kOutOfRange,          // parsed fine but outside the schema's bounds
  kCorruptData,         // structural damage: bad magic, checksum, truncation
  kNotFound,            // named thing (file, column, car) does not exist
  kFailedPrecondition,  // operation ordering violated (e.g. finalize twice)
  kDeadlineExceeded,    // time budget exhausted
  kUnavailable,         // transient: feed stalled, resource busy
};

const char* status_code_name(StatusCode code);

class Status {
 public:
  /// Default is OK — `return {};` from a Status function means success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status parse_error(std::string m) {
    return {StatusCode::kParseError, std::move(m)};
  }
  static Status out_of_range(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status corrupt_data(std::string m) {
    return {StatusCode::kCorruptData, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "PARSE_ERROR: lap_time 'abc' is not a number".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or the Status explaining its absence. Accessing value() on an
/// error is a programming bug and asserts.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result constructed from an OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok() && "Result::value() on an error result");
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok() && "Result::value() on an error result");
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok() && "Result::value() on an error result");
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

/// Strict full-match numeric parsing for untrusted text fields. Unlike
/// std::stod/stol these reject trailing garbage ("12abc"), empty strings,
/// and — for the double variant — NaN/Inf spellings and overflow, which a
/// corrupted feed can otherwise smuggle into every downstream computation.
Result<double> parse_finite_double(std::string_view text);
Result<long> parse_long(std::string_view text);

}  // namespace ranknet::util

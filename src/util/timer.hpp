// Wall-clock timing used by the performance benches (Figs. 10-12).
#pragma once

#include <chrono>

namespace ranknet::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ranknet::util

#include "util/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ranknet::util {

namespace {

Status errno_status(const char* op) {
  return Status::unavailable(std::string(op) + ": " + std::strerror(errno));
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(O_NONBLOCK)");
  }
  return {};
}

Result<sockaddr_un> make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::invalid_argument("socket path empty or longer than " +
                                    std::to_string(sizeof(addr.sun_path) - 1) +
                                    " bytes: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// poll() one fd for `events`; OK when ready, kUnavailable on timeout.
/// A negative timeout waits forever (not used by the serving path).
Status poll_one(int fd, short events, double timeout_seconds) {
  pollfd p{fd, events, 0};
  const int timeout_ms =
      timeout_seconds < 0.0
          ? -1
          : static_cast<int>(timeout_seconds * 1e3) + 1;  // round up
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return {};
    if (rc == 0) return Status::unavailable("poll: timed out");
    if (errno != EINTR) return errno_status("poll");
  }
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<UnixStream> UnixStream::connect(const std::string& path,
                                       double timeout_seconds) {
  auto addr = make_addr(path);
  if (!addr.ok()) return addr.status();
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  if (auto s = set_nonblocking(fd.get()); !s.ok()) return s;
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr.value()),
                sizeof(sockaddr_un)) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return errno_status("connect");
    }
    if (auto s = poll_one(fd.get(), POLLOUT, timeout_seconds); !s.ok()) {
      return s;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      return Status::unavailable(std::string("connect: ") +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  return UnixStream(std::move(fd));
}

Status UnixStream::send_all(const void* data, std::size_t n,
                            double timeout_seconds) {
  if (!valid()) return Status::failed_precondition("send on closed stream");
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(fd_.get(), p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (auto s = poll_one(fd_.get(), POLLOUT, timeout_seconds); !s.ok()) {
        return s;  // slow receiver: kUnavailable, caller drops the peer
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return errno_status("send");
  }
  return {};
}

Status UnixStream::recv_all(void* data, std::size_t n,
                            double timeout_seconds) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t got = 0;
  while (got < n) {
    auto some = recv_some(p + got, n - got, timeout_seconds);
    if (!some.ok()) {
      return got == 0 ? some.status()
                      : Status::corrupt_data(
                            "stream stalled mid-message after " +
                            std::to_string(got) + " of " + std::to_string(n) +
                            " bytes: " + some.status().message());
    }
    if (some.value() == 0) {
      return got == 0
                 ? Status::unavailable("peer closed connection")
                 : Status::corrupt_data("peer closed mid-message after " +
                                        std::to_string(got) + " of " +
                                        std::to_string(n) + " bytes");
    }
    got += some.value();
  }
  return {};
}

Result<std::size_t> UnixStream::recv_some(void* data, std::size_t capacity,
                                          double timeout_seconds) {
  if (!valid()) return Status::failed_precondition("recv on closed stream");
  for (;;) {
    const ssize_t rc = ::recv(fd_.get(), data, capacity, 0);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (auto s = poll_one(fd_.get(), POLLIN, timeout_seconds); !s.ok()) {
        return s;
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return Status::unavailable("recv: connection reset by peer");
    }
    return errno_status("recv");
  }
}

UnixListener::~UnixListener() { close(); }

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::move(other.fd_)), path_(std::move(other.path_)) {
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::move(other.fd_);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

void UnixListener::close() {
  fd_.reset();
  if (!path_.empty()) ::unlink(path_.c_str());
  path_.clear();
}

Result<UnixListener> UnixListener::bind(const std::string& path, int backlog) {
  auto addr = make_addr(path);
  if (!addr.ok()) return addr.status();
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  if (auto s = set_nonblocking(fd.get()); !s.ok()) return s;
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr.value()),
             sizeof(sockaddr_un)) < 0) {
    return errno_status("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return errno_status("listen");
  UnixListener out;
  out.fd_ = std::move(fd);
  out.path_ = path;
  return out;
}

Result<UnixStream> UnixListener::accept(double timeout_seconds) {
  if (!valid()) return Status::failed_precondition("accept on closed listener");
  for (;;) {
    const int rc = ::accept(fd_.get(), nullptr, nullptr);
    if (rc >= 0) {
      Fd fd(rc);
      if (auto s = set_nonblocking(fd.get()); !s.ok()) return s;
      return UnixStream(std::move(fd));
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (auto s = poll_one(fd_.get(), POLLIN, timeout_seconds); !s.ok()) {
        return s;
      }
      continue;
    }
    if (errno == EINTR) continue;
    return errno_status("accept");
  }
}

}  // namespace ranknet::util

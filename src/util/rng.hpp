// Deterministic random number generation for the whole library.
//
// Every stochastic component (simulator, initializers, samplers, baselines)
// takes an explicit Rng so that experiments are reproducible bit-for-bit.
// The generator is xoshiro256++ (Blackman & Vigna), seeded via splitmix64:
// small integer seeds expand to well-distributed 256-bit states.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <span>
#include <vector>

namespace ranknet::util {

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion, recommended by the xoshiro authors.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto l = static_cast<std::uint64_t>(m);
    if (l < range) {
      const std::uint64_t t = (0 - range) % range;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (no cached state would break
  /// determinism across call sites, so we always draw a fresh pair).
  double normal() {
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Poisson draw (Knuth for small lambda, normal approx for large).
  /// Degenerate lambdas (NaN, ±inf, <= 0) deterministically yield 0 events
  /// without consuming generator state, extending the existing lambda <= 0
  /// early-out; pre-hardening, lambda = +inf fed NaN through std::lround
  /// (UB) and NaN silently burned one draw. Huge finite lambdas saturate at
  /// INT_MAX instead of overflowing the int conversion.
  int poisson(double lambda) {
    if (!std::isfinite(lambda) || lambda <= 0.0) return 0;
    if (lambda > 30.0) {
      const double x = normal(lambda, std::sqrt(lambda));
      if (x < 0.0) return 0;
      if (x >= static_cast<double>(std::numeric_limits<int>::max())) {
        return std::numeric_limits<int>::max();
      }
      return static_cast<int>(std::lround(x));
    }
    const double limit = std::exp(-lambda);
    double prod = uniform();
    int n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }

  /// Exponential draw with given rate (mean = 1/rate). A degenerate rate
  /// (NaN or <= 0) reads "the event never fires": the draw is +inf, never
  /// negative or NaN (pre-hardening, rate < 0 produced negative delays).
  /// The guard still consumes exactly one uniform so a degenerate call
  /// cannot shift the position of later draws in a keyed stream. rate =
  /// +inf naturally yields 0 (the event fires immediately).
  double exponential(double rate) {
    const double u = uniform();
    if (!(rate > 0.0)) return std::numeric_limits<double>::infinity();
    return -std::log(1.0 - u) / rate;
  }

  /// Truncated normal on [lo, hi] by rejection (assumes reasonable overlap).
  double truncated_normal(double mean, double stddev, double lo, double hi) {
    for (int i = 0; i < 1024; ++i) {
      const double x = normal(mean, stddev);
      if (x >= lo && x <= hi) return x;
    }
    return std::clamp(mean, lo, hi);  // degenerate parameters; stay in range
  }

  /// Sample an index from unnormalized non-negative weights.
  std::size_t categorical(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel streams).
  Rng split() { return Rng((*this)() ^ 0xa5a5a5a5a5a5a5a5ULL); }

  /// Keyed variant of split(): derive the child stream for (base, k1, k2)
  /// as a pure function of the key tuple, without consuming any generator
  /// state. Any worker can therefore recreate exactly the same stream for a
  /// given (car, sample) regardless of scheduling order — the property the
  /// parallel forecast engine's thread-count invariance rests on. The key
  /// is folded with the same splitmix64 finalizer the seeder uses.
  static Rng stream(std::uint64_t base, std::uint64_t k1,
                    std::uint64_t k2 = 0) {
    auto mix = [](std::uint64_t z) {
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    std::uint64_t s = mix(base + 0x9e3779b97f4a7c15ULL * (k1 + 1));
    s = mix(s ^ (0xa5a5a5a5a5a5a5a5ULL + 0x9e3779b97f4a7c15ULL * (k2 + 1)));
    return Rng(s);
  }

  /// Three-key stream derivation for fleet workloads: the child stream for
  /// (base, k1, k2, k3) is a pure function of the full key tuple, so a
  /// season job keyed by (season seed, race key, job shape) gets the same
  /// stream no matter which shard, thread, or reshard generation runs it.
  /// Folds k3 with one more keyed splitmix64 round on top of the two-key
  /// derivation (the two-key result for (base, k1, k2) is NOT a prefix of
  /// this one — the tuples live in disjoint families; the property test
  /// Rng.StreamFamiliesDisjointAcrossNearbyKeyTuples hammers both families
  /// over nearby tuples). Caveat: the base/k1 fold is affine in base, so
  /// two bases planted exactly golden-ratio steps apart alias ((base +
  /// 0x9e3779b97f4a7c15, k1) == (base, k1 + 1)). Bases are independent
  /// seeds (race digests, user seeds), not members of one keyed family —
  /// the disjointness claim is over key tuples under a fixed base.
  static Rng stream(std::uint64_t base, std::uint64_t k1, std::uint64_t k2,
                    std::uint64_t k3) {
    auto mix = [](std::uint64_t z) {
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    std::uint64_t s = mix(base + 0x9e3779b97f4a7c15ULL * (k1 + 1));
    s = mix(s ^ (0xa5a5a5a5a5a5a5a5ULL + 0x9e3779b97f4a7c15ULL * (k2 + 1)));
    s = mix(s ^ (0xc2b2ae3d27d4eb4fULL + 0x9e3779b97f4a7c15ULL * (k3 + 1)));
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ranknet::util

#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/string_util.hpp"

namespace ranknet::util {

namespace {

LogLevel g_level = LogLevel::kInfo;
std::once_flag g_env_once;
std::mutex g_mutex;

void init_from_env() {
  const char* env = std::getenv("RANKNET_LOG");
  if (env == nullptr) return;
  const std::string v = lower(env);
  if (v == "debug") g_level = LogLevel::kDebug;
  else if (v == "info") g_level = LogLevel::kInfo;
  else if (v == "warn") g_level = LogLevel::kWarn;
  else if (v == "error") g_level = LogLevel::kError;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  std::call_once(g_env_once, init_from_env);
  g_level = level;
}

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level;
}

void log(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

void log_debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
void log_info(const std::string& msg) { log(LogLevel::kInfo, msg); }
void log_warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
void log_error(const std::string& msg) { log(LogLevel::kError, msg); }

}  // namespace ranknet::util

#include "util/status.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace ranknet::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kCorruptData: return "CORRUPT_DATA";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Result<double> parse_finite_double(std::string_view text) {
  // strtod needs a NUL-terminated buffer; fields are short, so copy.
  const std::string buf(text);
  if (buf.empty()) return Status::parse_error("empty numeric field");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::parse_error("'" + buf + "' is not a number");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    return Status::out_of_range("'" + buf + "' is not a finite double");
  }
  return v;
}

Result<long> parse_long(std::string_view text) {
  const std::string buf(text);
  if (buf.empty()) return Status::parse_error("empty integer field");
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::parse_error("'" + buf + "' is not an integer");
  }
  if (errno == ERANGE) {
    return Status::out_of_range("'" + buf + "' overflows long");
  }
  return v;
}

}  // namespace ranknet::util

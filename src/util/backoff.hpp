// Exponential backoff with jitter for client-side retry loops.
//
// The serving client retries transient transport failures (connection
// refused while the server restarts, a dropped connection mid-request) and
// must not do so in lockstep with every other client: thousands of
// identical retry timers produce synchronized thundering herds exactly when
// the server is least able to absorb them. Each retry delay is
//   min(initial * multiplier^attempt, max_delay) * (1 - jitter * u),
// with u drawn uniformly from [0, 1) off an explicit util::Rng — so tests
// that seed the rng get reproducible schedules, matching the repo-wide
// determinism contract.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace ranknet::util {

struct BackoffConfig {
  double initial_seconds = 0.01;  // first retry delay
  double multiplier = 2.0;        // growth per attempt
  double max_seconds = 1.0;       // delay ceiling
  double jitter = 0.5;            // fraction of the delay randomized away
  int max_attempts = 5;           // retries before exhausted()
};

class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(BackoffConfig config, std::uint64_t seed = 1);

  /// Delay in seconds to sleep before the next retry, advancing the
  /// attempt counter. Returns 0.0 once exhausted.
  double next_delay();

  /// True after max_attempts delays have been handed out.
  bool exhausted() const { return attempt_ >= config_.max_attempts; }

  int attempt() const { return attempt_; }
  void reset() { attempt_ = 0; }

  const BackoffConfig& config() const { return config_; }

 private:
  BackoffConfig config_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace ranknet::util

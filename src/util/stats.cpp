#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ranknet::util {

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double mean(std::span<const double> xs) {
  return xs.empty() ? std::numeric_limits<double>::quiet_NaN()
                    : sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  return xs.empty() ? std::numeric_limits<double>::quiet_NaN()
                    : *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  return xs.empty() ? std::numeric_limits<double>::quiet_NaN()
                    : *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return sxy / std::sqrt(sxx * syy);
}

double Histogram::bin_width() const {
  return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
}

double Histogram::bin_center(std::size_t i) const {
  return lo + (static_cast<double>(i) + 0.5) * bin_width();
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

double Histogram::frequency(std::size_t i) const {
  const auto t = total();
  return t == 0 ? 0.0
                : static_cast<double>(counts[i]) / static_cast<double>(t);
}

Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  if (bins == 0 || hi <= lo) return h;
  const double w = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    if (x < lo) {
      ++h.underflow;
      continue;
    }
    if (!(x < hi)) {  // >= hi, and NaN
      ++h.overflow;
      continue;
    }
    auto idx = static_cast<std::size_t>((x - lo) / w);
    if (idx >= bins) idx = bins - 1;  // fp rounding at the upper edge
    ++h.counts[idx];
  }
  return h;
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  if (it == xs.begin()) return 0.0;
  return ps[static_cast<std::size_t>(it - xs.begin()) - 1];
}

Ecdf ecdf(std::span<const double> xs) {
  Ecdf e;
  e.xs.assign(xs.begin(), xs.end());
  std::sort(e.xs.begin(), e.xs.end());
  e.ps.resize(e.xs.size());
  for (std::size_t i = 0; i < e.xs.size(); ++i) {
    e.ps[i] = static_cast<double>(i + 1) / static_cast<double>(e.xs.size());
  }
  return e;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? std::numeric_limits<double>::quiet_NaN()
                : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ranknet::util

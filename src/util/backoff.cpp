#include "util/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace ranknet::util {

ExponentialBackoff::ExponentialBackoff(BackoffConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  config_.initial_seconds = std::max(0.0, config_.initial_seconds);
  config_.multiplier = std::max(1.0, config_.multiplier);
  config_.max_seconds = std::max(config_.initial_seconds, config_.max_seconds);
  config_.jitter = std::clamp(config_.jitter, 0.0, 1.0);
  config_.max_attempts = std::max(0, config_.max_attempts);
}

double ExponentialBackoff::next_delay() {
  if (exhausted()) return 0.0;
  const double raw =
      config_.initial_seconds * std::pow(config_.multiplier, attempt_);
  const double capped = std::min(raw, config_.max_seconds);
  ++attempt_;
  // Jitter shrinks the delay (never grows it): the ceiling stays honest and
  // a fleet of clients with identical configs still spreads out.
  return capped * (1.0 - config_.jitter * rng_.uniform());
}

}  // namespace ranknet::util

// Injectable time source.
//
// Everything in the serving/online-learning stack that reads a clock for a
// *decision* (latency gates, probation windows) takes a ClockFn instead of
// calling std::chrono directly, so tests can script time and make those
// decisions byte-reproducible. Pure measurement (bench timers, span
// histograms) keeps using util::Timer — nothing downstream branches on it.
#pragma once

#include <chrono>
#include <functional>

namespace ranknet::util {

/// Monotonic seconds. The absolute origin is unspecified; only deltas and
/// orderings are meaningful.
using ClockFn = std::function<double()>;

/// The production clock: steady_clock seconds since an arbitrary origin.
inline ClockFn steady_clock_fn() {
  return [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
}

}  // namespace ranknet::util

// Minimal leveled logger. Benches keep their tables on stdout; diagnostics
// go through here on stderr so output stays machine-parsable.
#pragma once

#include <string>

namespace ranknet::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
/// Honors the RANKNET_LOG environment variable (debug|info|warn|error)
/// on first use.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& msg);

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace ranknet::util

// Minimal RAII wrappers over AF_UNIX stream sockets for the forecast
// serving front end (src/serve). Local-only by design: the paper system's
// fan-in tier terminates remote transports elsewhere; this layer is the
// loader/parameter-server style local hop between that tier and the
// forecast engine.
//
// Error taxonomy (util::Status, never exceptions — the peer is untrusted):
//   kUnavailable  — timeout, connection refused/reset, peer closed early.
//   kCorruptData  — stream ended mid-message (truncated frame).
//   kInvalidArgument — unusable socket path.
// Every blocking operation takes an explicit timeout and is implemented as
// poll() + nonblocking I/O, so a stalled peer can never wedge a server
// thread (the slow-client guard the soak test leans on).
#pragma once

#include <cstddef>
#include <string>

#include "util/status.hpp"

namespace ranknet::util {

/// Move-only RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close now (idempotent).
  void reset();

 private:
  int fd_ = -1;
};

/// One connected byte stream (client side via connect(), server side from
/// UnixListener::accept()). The fd is nonblocking; all waiting happens in
/// poll() under the caller's timeout.
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(Fd fd) : fd_(std::move(fd)) {}

  /// Connect to a listening socket. kUnavailable when nobody listens or the
  /// handshake exceeds `timeout_seconds`.
  static Result<UnixStream> connect(const std::string& path,
                                    double timeout_seconds);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  void close() { fd_.reset(); }

  /// Write the whole buffer or fail. kUnavailable on timeout/reset (SIGPIPE
  /// is suppressed via MSG_NOSIGNAL).
  Status send_all(const void* data, std::size_t n, double timeout_seconds);

  /// Read exactly `n` bytes. kUnavailable on timeout before the first byte,
  /// kCorruptData when the peer closes mid-buffer (truncation).
  Status recv_all(void* data, std::size_t n, double timeout_seconds);

  /// One read of up to `capacity` bytes once data is available; 0 means the
  /// peer closed cleanly. kUnavailable on timeout.
  Result<std::size_t> recv_some(void* data, std::size_t capacity,
                                double timeout_seconds);

 private:
  Fd fd_;
};

/// Bound + listening server socket. Binding unlinks a stale socket file
/// first; the destructor unlinks it again so repeated test runs can reuse
/// one path.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(UnixListener&&) noexcept;
  UnixListener& operator=(UnixListener&&) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  static Result<UnixListener> bind(const std::string& path, int backlog = 64);

  /// Accept one connection; kUnavailable on timeout.
  Result<UnixStream> accept(double timeout_seconds);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  const std::string& path() const { return path_; }
  void close();

 private:
  Fd fd_;
  std::string path_;
};

}  // namespace ranknet::util

// String helpers shared across modules (CSV, logging, table printers).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ranknet::util {

std::vector<std::string> split(std::string_view s, char delim);
std::string_view trim(std::string_view s);
std::string lower(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// FNV-1a 64-bit hash, used for model-cache keys.
std::uint64_t fnv1a(std::string_view s);

}  // namespace ranknet::util

#include "util/string_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace ranknet::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ranknet::util

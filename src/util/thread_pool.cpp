#include "util/thread_pool.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ranknet::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  std::deque<std::function<void()>> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Abandon the not-yet-started backlog (bounded-wait teardown, see
    // header). Destroying a packaged_task breaks its promise, which is how
    // the abandonment is reported — destroy outside the lock since future
    // continuations could be arbitrary code.
    abandoned.swap(queue_);
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  abandoned.clear();
}

void ThreadPool::worker_loop() {
#ifdef _OPENMP
  // Tasks run OpenMP-parallel kernels; one OMP thread per worker keeps a
  // pool of N workers at N threads total instead of N x omp_num_threads.
  omp_set_num_threads(1);
#endif
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // backlog was abandoned by the destructor
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // submit() routes exceptions into the task's future; this guard only
    // fires for a raw callable that leaks one. Letting it escape here would
    // std::terminate the process — count it and keep the worker alive.
    try {
      task();
    } catch (...) {
      escaped_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace ranknet::util

#include "obs/metrics.hpp"

#include <array>
#include <cmath>
#include <sstream>

#include "util/string_util.hpp"

namespace ranknet::obs {

namespace {

/// Shortest-round-trip-ish formatting that is stable across runs: %.9g
/// prints integers without a trailing ".0" and keeps sums readable.
std::string fmt_double(double v) { return util::format("%.9g", v); }

/// "engine.task_seconds" -> "ranknet_engine_task_seconds".
std::string prom_name(const std::string& name) {
  std::string out = "ranknet_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(c == '.' || c == '-' ? '_' : c);
  return out;
}

std::string prom_le(double bound) {
  return std::isinf(bound) ? "+Inf" : fmt_double(bound);
}

}  // namespace

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size()]) {
  for (std::size_t i = 0; i < bounds_.size(); ++i) buckets_[i] = 0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out[bounds_.size()] = overflow_.load(std::memory_order_relaxed);
  return out;
}

double Histogram::approx_quantile(double q) const {
  const auto counts = bucket_counts();
  const auto total = count();
  if (total == 0 || bounds_.empty()) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      // Interpolate inside [lower, bounds_[i]]; latencies are non-negative
      // so the first bucket's lower edge is 0.
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double frac = (target - cum) / static_cast<double>(counts[i]);
      return lower + frac * (bounds_[i] - lower);
    }
    cum = next;
  }
  return bounds_.back();  // rank fell into the +Inf bucket
}

void Histogram::reset() {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::span<const double> latency_buckets() {
  static const std::array<double, 14> kBounds = {
      1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
      1e-2, 5e-2, 1e-1, 5e-1, 1.0,  10.0};
  return kBounds;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << name
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << name
        << "\": " << fmt_double(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
        << h->count() << ", \"sum\": " << fmt_double(h->sum())
        << ", \"buckets\": [";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->bounds();
    bool bfirst = true;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      // Skip empty buckets to keep snapshots readable; the +Inf bucket is
      // index bounds.size().
      if (counts[i] == 0) continue;
      const std::string le = i < bounds.size() ? fmt_double(bounds[i])
                                               : std::string("\"+Inf\"");
      out << (bfirst ? "" : ", ") << "{\"le\": " << le
          << ", \"count\": " << counts[i] << "}";
      bfirst = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const auto pn = prom_name(name);
    out << "# TYPE " << pn << " counter\n" << pn << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const auto pn = prom_name(name);
    out << "# TYPE " << pn << " gauge\n"
        << pn << " " << fmt_double(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto pn = prom_name(name);
    out << "# TYPE " << pn << " histogram\n";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->bounds();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      out << pn << "_bucket{le=\"" << prom_le(bounds[i]) << "\"} " << cum
          << "\n";
    }
    cum += counts[bounds.size()];
    out << pn << "_bucket{le=\"+Inf\"} " << cum << "\n";
    out << pn << "_sum " << fmt_double(h->sum()) << "\n";
    out << pn << "_count " << h->count() << "\n";
  }
  return out.str();
}

}  // namespace ranknet::obs

// Scoped trace spans for the forecast pipeline.
//
// A SpanScope times one stage of the serving path and books the latency
// into a registry histogram ("span.<stage>.seconds") plus an accumulated
// gauge ("span.<stage>.seconds_total"); the histogram's count doubles as
// the span counter. Stage taxonomy (DESIGN.md "Observability"):
//
//   ingest     telemetry::StreamIngestor::finalize (validate+impute+build)
//   prepare    per-race feature-cache warm-up + car partitioning
//   partition  primary-model partition tasks (fan-out + drain)
//   merge      merging finished partitions into the result map
//   fallback   degradation-ladder rescue forecasts (tiers 1/2)
//   evaluate   one full evaluation pass over a race (core/evaluation)
//
// Spans are on by default and cost two steady_clock reads plus one
// histogram observe per stage — they sit around whole pipeline stages, not
// kernels, so the overhead is well under the 2% budget (measured in the
// fig10 bench; see DESIGN.md). Set the environment variable
// RANKNET_OBS_SPANS=0 (or call set_spans_enabled(false)) to drop the clock
// reads entirely, e.g. for an A/B overhead measurement.
#pragma once

#include <cstddef>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace ranknet::obs {

enum class Stage : std::size_t {
  kIngest = 0,
  kPrepare,
  kPartition,
  kMerge,
  kFallback,
  kEvaluate,
  kCount,
};

const char* stage_name(Stage s);

/// Global span switch (default: on, unless RANKNET_OBS_SPANS=0/off in the
/// environment at process start).
bool spans_enabled();
void set_spans_enabled(bool on);

/// Registry histogram a stage books into (resolved once per process).
Histogram& stage_histogram(Stage s);
Gauge& stage_seconds_total(Stage s);

/// RAII stage timer. Books on destruction unless stop() already did.
class SpanScope {
 public:
  explicit SpanScope(Stage stage) : stage_(stage), armed_(spans_enabled()) {}
  ~SpanScope() {
    if (armed_) record();
  }

  /// End the span early; returns the elapsed seconds (0 when disabled).
  double stop() {
    if (!armed_) return 0.0;
    armed_ = false;
    return record();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  double record();

  Stage stage_;
  bool armed_;
  util::Timer timer_;
};

}  // namespace ranknet::obs

#include "obs/trace.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/string_util.hpp"

namespace ranknet::obs {

namespace {

std::atomic<bool>& spans_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("RANKNET_OBS_SPANS");
    const bool off = env != nullptr && (std::strcmp(env, "0") == 0 ||
                                        std::strcmp(env, "off") == 0);
    return !off;
  }();
  return flag;
}

struct StageMetrics {
  Histogram* seconds = nullptr;
  Gauge* seconds_total = nullptr;
};

/// One-time name resolution per stage; handles stay valid for the process.
StageMetrics& metrics_for(Stage s) {
  static std::array<StageMetrics, static_cast<std::size_t>(Stage::kCount)>
      cache = [] {
        std::array<StageMetrics, static_cast<std::size_t>(Stage::kCount)> m;
        auto& reg = Registry::instance();
        for (std::size_t i = 0; i < m.size(); ++i) {
          const char* name = stage_name(static_cast<Stage>(i));
          m[i].seconds = &reg.latency_histogram(
              util::format("span.%s.seconds", name));
          m[i].seconds_total =
              &reg.gauge(util::format("span.%s.seconds_total", name));
        }
        return m;
      }();
  return cache[static_cast<std::size_t>(s)];
}

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kIngest: return "ingest";
    case Stage::kPrepare: return "prepare";
    case Stage::kPartition: return "partition";
    case Stage::kMerge: return "merge";
    case Stage::kFallback: return "fallback";
    case Stage::kEvaluate: return "evaluate";
    case Stage::kCount: break;
  }
  return "?";
}

bool spans_enabled() {
  return spans_flag().load(std::memory_order_relaxed);
}

void set_spans_enabled(bool on) {
  spans_flag().store(on, std::memory_order_relaxed);
}

Histogram& stage_histogram(Stage s) { return *metrics_for(s).seconds; }

Gauge& stage_seconds_total(Stage s) {
  return *metrics_for(s).seconds_total;
}

double SpanScope::record() {
  const double secs = timer_.seconds();
  auto& m = metrics_for(stage_);
  m.seconds->observe(secs);
  m.seconds_total->add(secs);
  return secs;
}

}  // namespace ranknet::obs

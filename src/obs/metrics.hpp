// Process-wide observability registry: named counters, gauges and
// fixed-bucket latency histograms, exported as JSON or Prometheus text.
//
// This is the single place the serving stack reads its health from. The
// legacy accounting singletons (tensor::OpCounters, tensor::WorkspaceCounters,
// core::EngineCounters, core::DegradationCounters) are thin shims whose
// storage lives here, and the pipeline trace spans (obs/trace.hpp) book
// their stage latencies into registry histograms — so one snapshot covers
// kernels, arenas, the forecast engine, the degradation ladder and the
// pipeline stages at once.
//
// Hot-path contract: incrementing an existing metric is one relaxed atomic
// RMW (Counter::add / Histogram bucket add) or a CAS loop for double sums
// (Gauge::add) — no locks, no allocation, no name lookup. Name lookup
// happens only at registration (find-or-create under a mutex); callers on
// hot paths resolve their handles once and keep the reference, which stays
// valid for the life of the process (metrics are never removed, only
// reset to zero).
//
// Export determinism: metrics are stored in name-sorted maps, so repeated
// exports of the same state produce byte-identical text — the golden
// snapshot test in tests/test_obs.cpp relies on this.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ranknet::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  // One counter per cache line: kernel-accounting counters are bumped from
  // every pool worker at once, and false sharing there is a real slowdown.
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Double-valued metric supporting set / add / record_max. Used for
/// accumulated seconds and high-water marks.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  void record_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative-le semantics on
/// export; storage is per-bucket). Bucket i counts samples with
/// v <= bounds[i]; samples above the last bound land in the implicit +Inf
/// bucket. observe() is a linear scan over a handful of bounds plus one
/// relaxed add — no locks.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    add_sum(v);
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        buckets_[i].fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    overflow_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<std::uint64_t> bucket_counts() const;
  /// Approximate quantile by linear interpolation inside the bucket that
  /// crosses rank q*count (upper-bounded by the last finite bound).
  double approx_quantile(double q) const;
  void reset();

 private:
  void add_sum(double v) {
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket bounds (seconds): 1µs .. 10s, decade-and-half
/// spaced. Suits everything from a kernel call to a full evaluation pass.
std::span<const double> latency_buckets();

class Registry {
 public:
  /// The process-wide registry every subsystem books into.
  static Registry& instance();

  /// Find-or-create by name. References stay valid forever; resolve once on
  /// hot paths. Names use dotted lowercase ("engine.forecasts"); the
  /// Prometheus export maps '.' to '_' under a "ranknet_" prefix.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consulted only on first registration; later calls
  /// with the same name return the existing histogram.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);
  Histogram& latency_histogram(std::string_view name) {
    return histogram(name, latency_buckets());
  }

  /// Zero every metric, keeping registrations (handles stay valid).
  void reset();

  /// JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, name-sorted within each section.
  std::string to_json() const;
  /// Prometheus text exposition (counter / gauge / histogram metric
  /// families, cumulative-le buckets, name-sorted).
  std::string to_prometheus() const;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  mutable std::mutex mutex_;  // guards registration and export, not updates
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ranknet::obs

// Track and event configuration for the race simulator.
//
// The four superspeedway events of the paper's Table II are provided as
// presets (Indy500, Texas, Iowa, Pocono). Parameters control the causal
// structure the forecasting models must learn: lap pace, pit-lane time loss,
// caution frequency/length, and the fuel/tire resource window that bounds
// stint length (paper Fig. 4: no car runs more than ~50 laps on a tank).
#pragma once

#include <string>
#include <vector>

namespace ranknet::sim {

struct TrackConfig {
  std::string name;
  double length_miles = 2.5;
  std::string shape = "Oval";
  int total_laps = 200;
  double avg_speed_mph = 175.0;

  /// Green-flag pit-lane time loss in seconds (drive-through + service).
  double pit_loss_seconds = 46.0;
  /// Multiplier on the base lap time while under yellow.
  double caution_speed_factor = 1.75;
  /// Per-lap probability that an incident triggers a caution period.
  double caution_prob_per_lap = 0.022;
  int caution_min_laps = 4;
  int caution_max_laps = 9;

  /// Fuel/tire window: laps a full tank lasts at green-flag pace.
  double fuel_window_laps = 34.0;
  /// Fuel burned by one caution lap relative to a green lap.
  double caution_fuel_factor = 0.35;

  /// Field size range (varies by year).
  int min_cars = 33;
  int max_cars = 33;

  /// Minimum single-lap time advantage needed to complete an overtake under
  /// green; smaller gains leave the attacker stuck in dirty air behind the
  /// defender. Governs how static the running order is (paper Fig. 6).
  double pass_margin_seconds = 1.0;
  /// Gap a failed attacker settles to behind the defender.
  double follow_gap_seconds = 0.2;

  /// Spread of driver skill in seconds per lap (fastest to slowest).
  double skill_spread_seconds = 1.6;
  /// Per-lap i.i.d. pace noise (seconds).
  double lap_noise_seconds = 0.55;
  /// Per-lap probability of an unscheduled (mechanical) early pit.
  double mechanical_pit_prob = 0.0035;
  /// Per-lap probability a car retires outside of caution-causing crashes.
  double attrition_prob = 0.0006;

  /// Base green-flag lap time implied by length and average speed.
  double base_lap_seconds() const {
    return length_miles / avg_speed_mph * 3600.0;
  }
};

/// Table II presets.
TrackConfig indy500_track();
TrackConfig texas_track();
TrackConfig iowa_track();
TrackConfig pocono_track();

/// All four presets in paper order.
std::vector<TrackConfig> all_tracks();

/// Preset lookup by event name ("Indy500", "Texas", "Iowa", "Pocono");
/// throws std::invalid_argument for unknown names.
TrackConfig track_by_name(const std::string& name);

}  // namespace ranknet::sim

#include "simulator/fault_injector.hpp"

#include <limits>
#include <utility>

namespace ranknet::sim {

using telemetry::LapRecord;

FaultInjector::FaultInjector(std::vector<LapRecord> clean,
                             FaultProfile profile, std::uint64_t seed)
    : clean_(std::move(clean)), profile_(profile), rng_(seed) {}

LapRecord FaultInjector::corrupt(LapRecord rec) {
  // One field mangled per corruption, the way a torn packet or a flaky
  // scoring terminal does it. Every variant is invalid under the ingestor's
  // schema/range checks — corruption should be caught, not absorbed.
  switch (rng_.uniform_int(0, 5)) {
    case 0: rec.rank = 0; break;
    case 1: rec.rank = 9999; break;
    case 2: rec.lap_time = std::numeric_limits<double>::quiet_NaN(); break;
    case 3: rec.lap_time = -rec.lap_time; break;
    case 4: rec.time_behind_leader = -1.0; break;
    default: rec.lap = rec.lap + 4000; break;
  }
  return rec;
}

std::optional<LapRecord> FaultInjector::next() {
  if (stalling_ > 0) {
    --stalling_;
    ++counters_.stall_ticks;
    return std::nullopt;
  }
  // Admit input into the in-flight buffer until it is deep enough to emit:
  // reorder_depth + 1 in-flight records bound any record's displacement to
  // reorder_depth positions.
  const std::size_t depth =
      static_cast<std::size_t>(profile_.reorder_depth < 0
                                   ? 0
                                   : profile_.reorder_depth) + 1;
  while (buffer_.size() < depth && pos_ < clean_.size()) {
    LapRecord rec = clean_[pos_++];
    if (profile_.drop_rate > 0.0 && rng_.bernoulli(profile_.drop_rate)) {
      ++counters_.dropped;
      continue;
    }
    if (profile_.corrupt_rate > 0.0 && rng_.bernoulli(profile_.corrupt_rate)) {
      rec = corrupt(rec);
      ++counters_.corrupted;
    }
    buffer_.push_back({rec, 0});
    if (profile_.duplicate_rate > 0.0 &&
        rng_.bernoulli(profile_.duplicate_rate)) {
      buffer_.push_back({rec, 0});  // replay rides the same reorder window
      ++counters_.duplicated;
    }
  }
  if (buffer_.empty()) return std::nullopt;  // exhausted

  std::size_t idx = 0;
  if (profile_.reorder_depth > 0 && buffer_.size() > 1 &&
      buffer_.front().skips < profile_.reorder_depth) {
    // The front entry is the oldest and always the most-skipped; once its
    // skip count hits reorder_depth it is emitted unconditionally, which
    // caps every record's displacement (early OR late) at reorder_depth.
    idx = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(buffer_.size()) - 1));
  }
  LapRecord out = buffer_[idx].rec;
  for (std::size_t i = 0; i < idx; ++i) ++buffer_[i].skips;
  buffer_.erase(buffer_.begin() + static_cast<std::ptrdiff_t>(idx));
  if (idx != 0) ++counters_.reordered;
  ++counters_.delivered;

  if (profile_.stall_rate > 0.0 && rng_.bernoulli(profile_.stall_rate)) {
    stalling_ = profile_.stall_length;
  }
  return out;
}

WireFaultInjector::WireFaultInjector(WireFaultProfile profile,
                                     std::uint64_t seed)
    : profile_(profile), rng_(seed) {}

std::optional<std::vector<std::uint8_t>> WireFaultInjector::apply(
    std::span<const std::uint8_t> frame) {
  ++counters_.frames;
  if (profile_.drop_rate > 0.0 && rng_.bernoulli(profile_.drop_rate)) {
    ++counters_.dropped;
    return std::nullopt;
  }
  std::vector<std::uint8_t> out(frame.begin(), frame.end());
  if (!out.empty() && profile_.truncate_rate > 0.0 &&
      rng_.bernoulli(profile_.truncate_rate)) {
    // Cut anywhere from "only the first byte survives" to "one byte short":
    // both leave the receiver holding a partial frame behind an intact
    // length prefix — the case the slow-client timeout must clean up.
    const auto keep = static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(out.size()) - 1 > 0
                                ? static_cast<std::int64_t>(out.size()) - 1
                                : 1));
    out.resize(keep);
    ++counters_.truncated;
  } else if (!out.empty() && profile_.corrupt_rate > 0.0 &&
             rng_.bernoulli(profile_.corrupt_rate)) {
    // One flipped bit in one byte — must trip the frame checksum, never
    // reach the decoder as valid payload.
    const auto idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
    out[idx] ^= static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
    ++counters_.corrupted;
  }
  ++counters_.delivered;
  return out;
}

int WireFaultInjector::stall_before_send_ms() {
  if (profile_.stall_rate > 0.0 && rng_.bernoulli(profile_.stall_rate)) {
    ++counters_.stalls;
    return profile_.stall_ms;
  }
  return 0;
}

std::vector<LapRecord> FaultInjector::drain() {
  std::vector<LapRecord> out;
  out.reserve(clean_.size());
  while (!done()) {
    if (auto rec = next()) out.push_back(*rec);
  }
  return out;
}

}  // namespace ranknet::sim

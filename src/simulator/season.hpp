// Table II dataset inventory: the 25 superspeedway races (events × years)
// used by the paper, with the paper's train/validation/test split, all
// generated deterministically from a base seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simulator/race_sim.hpp"
#include "telemetry/race_log.hpp"

namespace ranknet::sim {

enum class Usage { kTrain, kValidation, kTest };

const char* usage_name(Usage u);

/// One row of the expanded Table II inventory.
struct RaceSpec {
  std::string event;
  int year = 0;
  int laps = 0;  // lap counts vary by year for Iowa/Pocono/Texas
  Usage usage = Usage::kTrain;
};

/// All 25 races of the paper's Table II, in (event, year) order.
std::vector<RaceSpec> table2_specs();

/// Default base seed for the generated dataset.
inline constexpr std::uint64_t kDefaultDatasetSeed = 20210521;

/// Bumped whenever simulator dynamics change, so trained-model caches keyed
/// on it are invalidated together with the data they were fitted on.
inline constexpr int kSimulatorVersion = 2;

/// Deterministically simulate one spec'd race.
telemetry::RaceLog simulate_race(const RaceSpec& spec,
                                 std::uint64_t base_seed = kDefaultDatasetSeed);

/// Deterministically simulate every Table II race (all 25 track/event/year
/// combinations, 2013-2019), in table2_specs() order — the season-fleet
/// workload (bench/season_fleet.cpp replays all of them concurrently).
std::vector<telemetry::RaceLog> simulate_season(
    std::uint64_t base_seed = kDefaultDatasetSeed);

/// One event's races grouped by usage.
struct EventDataset {
  std::string event;
  std::vector<telemetry::RaceLog> train;
  std::vector<telemetry::RaceLog> validation;
  std::vector<telemetry::RaceLog> test;

  std::size_t total_records() const;
};

/// Build the dataset for one event ("Indy500", "Texas", "Iowa", "Pocono").
EventDataset build_event_dataset(const std::string& event,
                                 std::uint64_t base_seed = kDefaultDatasetSeed);

/// Build all four event datasets.
std::vector<EventDataset> build_all_datasets(
    std::uint64_t base_seed = kDefaultDatasetSeed);

}  // namespace ranknet::sim

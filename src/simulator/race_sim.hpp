// Discrete lap-by-lap race simulator.
//
// This is the data substrate standing in for the proprietary IndyCar
// timing-and-scoring logs (see DESIGN.md). It models the causal structure
// the paper analyses:
//   * pace = track base lap time + driver skill + slow pace drift + noise,
//   * pit stops bounded by a fuel/tire resource window (Fig. 4a: no stint
//     beyond ~50 laps), planned under green, opportunistic under yellow,
//     plus rare unscheduled mechanical stops (the short-stint tail),
//   * caution periods triggered by incidents: the field slows and bunches
//     behind the safety car (so caution pits cost far less rank than green
//     pits — Fig. 4d), cars burn less fuel (stretching stints — Fig. 4b),
//   * retirements/attrition.
// Output is a telemetry::RaceLog in the exact Fig. 1(a) schema.
#pragma once

#include <cstdint>
#include <vector>

#include "simulator/track.hpp"
#include "telemetry/race_log.hpp"
#include "util/rng.hpp"

namespace ranknet::sim {

/// Per-driver latent parameters, drawn once per race by make_field.
struct DriverProfile {
  int car_id = 0;
  double skill_offset = 0.0;     // seconds per lap vs field average
  double noise_sigma = 0.4;      // per-lap pace noise (seconds)
  double pit_window_bias = 0.0;  // strategy: early (-) vs late (+) stops
  double dnf_rate = 0.0005;      // per-lap retirement probability
};

/// Draw a field of `num_cars` drivers with distinct car ids.
std::vector<DriverProfile> make_field(const TrackConfig& track, int num_cars,
                                      util::Rng& rng);

struct RaceParams {
  TrackConfig track;
  int year = 2018;
  std::uint64_t seed = 1;
  /// 0 means: draw from [track.min_cars, track.max_cars].
  int num_cars = 0;
  /// 0 means: use track.total_laps (Table II varies laps by year).
  int total_laps = 0;
};

class RaceSimulator {
 public:
  explicit RaceSimulator(RaceParams params);

  /// Simulate the full race and return its scoring log.
  telemetry::RaceLog run();

 private:
  RaceParams params_;
};

}  // namespace ranknet::sim

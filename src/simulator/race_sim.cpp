#include "simulator/race_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/string_util.hpp"

namespace ranknet::sim {

namespace {

/// Mutable per-car simulation state.
struct CarState {
  DriverProfile profile;
  double cum_time = 0.0;     // race time at the end of the last lap
  double prev_cum = 0.0;     // race time at the end of the previous lap
  double fuel_used = 0.0;    // green-lap equivalents since the last stop
  int stint_age = 0;         // laps since the last stop
  double planned_stint = 30; // target laps for the current stint
  double pace_drift = 0.0;   // slow random walk on pace
  bool pitted_this_caution = false;
  bool active = true;
  int grid_pos = 0;
  int prev_rank = 0;  // 1-based rank at the end of the previous lap
};

double draw_planned_stint(const TrackConfig& track, const DriverProfile& d,
                          util::Rng& rng) {
  const double fw = track.fuel_window_laps;
  const double target = 0.86 * fw + d.pit_window_bias;
  return rng.truncated_normal(target, 2.5, 0.60 * fw, fw - 1.0);
}

}  // namespace

std::vector<DriverProfile> make_field(const TrackConfig& track, int num_cars,
                                      util::Rng& rng) {
  // Distinct two-digit car ids, like real entry lists.
  std::set<int> ids;
  while (static_cast<int>(ids.size()) < num_cars) {
    ids.insert(static_cast<int>(rng.uniform_int(1, 99)));
  }
  std::vector<DriverProfile> field;
  field.reserve(static_cast<std::size_t>(num_cars));
  int i = 0;
  for (int id : ids) {
    DriverProfile d;
    d.car_id = id;
    // Evenly spread skill plus an individual wobble; assignment of skill to
    // car id is randomized below so id does not encode pace ordering.
    const double frac =
        num_cars > 1 ? static_cast<double>(i) / (num_cars - 1) - 0.5 : 0.0;
    d.skill_offset = track.skill_spread_seconds * frac + rng.normal(0.0, 0.08);
    d.noise_sigma = track.lap_noise_seconds * rng.uniform(0.8, 1.25);
    d.pit_window_bias = rng.normal(0.0, 1.5);
    d.dnf_rate = track.attrition_prob * rng.uniform(0.4, 1.8);
    field.push_back(d);
    ++i;
  }
  // Shuffle skills across ids.
  std::vector<double> skills;
  for (const auto& d : field) skills.push_back(d.skill_offset);
  rng.shuffle(skills);
  for (std::size_t j = 0; j < field.size(); ++j) {
    field[j].skill_offset = skills[j];
  }
  return field;
}

RaceSimulator::RaceSimulator(RaceParams params) : params_(std::move(params)) {}

telemetry::RaceLog RaceSimulator::run() {
  const TrackConfig& track = params_.track;
  util::Rng rng(params_.seed);

  const int num_cars =
      params_.num_cars > 0
          ? params_.num_cars
          : static_cast<int>(rng.uniform_int(track.min_cars, track.max_cars));
  const int total_laps =
      params_.total_laps > 0 ? params_.total_laps : track.total_laps;
  const double base = track.base_lap_seconds();
  // Hard stint cap from tire wear; fuel alone would allow very long stints
  // under caution, but the paper observes no stint beyond ~1.5 windows.
  const double max_stint = 1.5 * track.fuel_window_laps;

  auto field = make_field(track, num_cars, rng);

  // Qualifying: grid order is skill order perturbed by qualifying noise.
  std::vector<CarState> cars(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) cars[i].profile = field[i];
  std::vector<std::size_t> grid(cars.size());
  std::iota(grid.begin(), grid.end(), 0);
  std::vector<double> quali(cars.size());
  for (std::size_t i = 0; i < cars.size(); ++i) {
    quali[i] = cars[i].profile.skill_offset + rng.normal(0.0, 0.35);
  }
  std::sort(grid.begin(), grid.end(),
            [&](std::size_t a, std::size_t b) { return quali[a] < quali[b]; });
  for (std::size_t pos = 0; pos < grid.size(); ++pos) {
    cars[grid[pos]].grid_pos = static_cast<int>(pos);
    cars[grid[pos]].prev_rank = static_cast<int>(pos) + 1;
    // Rolling start: the field crosses SF already spread out a little.
    cars[grid[pos]].cum_time = 0.55 * static_cast<double>(pos);
  }
  for (auto& c : cars) c.planned_stint = draw_planned_stint(track, c.profile, rng);

  std::vector<telemetry::LapRecord> records;
  records.reserve(cars.size() * static_cast<std::size_t>(total_laps));

  int caution_remaining = 0;
  for (int lap = 1; lap <= total_laps; ++lap) {
    // --- incidents -------------------------------------------------------
    if (caution_remaining == 0 && rng.bernoulli(track.caution_prob_per_lap)) {
      caution_remaining = static_cast<int>(
          rng.uniform_int(track.caution_min_laps, track.caution_max_laps));
      for (auto& c : cars) c.pitted_this_caution = false;
      // Roughly half the cautions involve a car crashing out.
      if (rng.bernoulli(0.5)) {
        std::vector<std::size_t> active_idx;
        for (std::size_t i = 0; i < cars.size(); ++i) {
          if (cars[i].active) active_idx.push_back(i);
        }
        if (!active_idx.empty()) {
          const auto victim = active_idx[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(active_idx.size()) - 1))];
          cars[victim].active = false;
        }
      }
    }
    const bool yellow = caution_remaining > 0;

    // --- per-car lap -----------------------------------------------------
    std::vector<std::size_t> finishers;
    std::vector<bool> pitted(cars.size(), false);
    for (std::size_t i = 0; i < cars.size(); ++i) {
      auto& c = cars[i];
      if (!c.active) continue;
      // Attrition (non-caution mechanical retirement).
      if (rng.bernoulli(c.profile.dnf_rate)) {
        c.active = false;
        continue;
      }

      // Pit decision.
      const double fuel_left = track.fuel_window_laps - c.fuel_used;
      bool pit = false;
      if (fuel_left <= 1.0 || c.stint_age >= static_cast<int>(max_stint)) {
        pit = true;  // resource constraint: out of fuel or tires
      } else if (!yellow && c.fuel_used >= c.planned_stint) {
        // Planned green-flag stop. The plan is in fuel units, so caution
        // laps (reduced burn) stretch the stint in lap terms — the long
        // tail of the paper's Fig. 4(b) CDF.
        pit = true;
      } else if (yellow && !c.pitted_this_caution &&
                 c.fuel_used > 0.30 * track.fuel_window_laps &&
                 rng.bernoulli(0.85)) {
        pit = true;  // opportunistic stop under caution
      } else if (rng.bernoulli(track.mechanical_pit_prob)) {
        pit = true;  // unscheduled mechanical stop (short-stint tail)
      }

      // Pace drift: slow random walk, bounded.
      c.pace_drift =
          std::clamp(c.pace_drift + rng.normal(0.0, 0.012), -0.5, 0.5);

      double lt = base * (yellow ? track.caution_speed_factor : 1.0) +
                  c.profile.skill_offset + c.pace_drift +
                  rng.normal(0.0, c.profile.noise_sigma);
      if (lap == 1) {
        // Accordion effect through the first green lap.
        lt += 0.25 * static_cast<double>(c.grid_pos);
      }
      if (pit) {
        const double loss = track.pit_loss_seconds * (yellow ? 0.55 : 1.0);
        lt += loss + std::abs(rng.normal(0.0, 2.2));
        c.fuel_used = 0.0;
        c.stint_age = 0;
        c.planned_stint = draw_planned_stint(track, c.profile, rng);
        if (yellow) c.pitted_this_caution = true;
      } else {
        c.fuel_used += yellow ? track.caution_fuel_factor : 1.0;
        c.stint_age += 1;
      }

      c.prev_cum = c.cum_time;
      c.cum_time += lt;
      pitted[i] = pit;
      finishers.push_back(i);
    }

    // --- safety-car bunching ---------------------------------------------
    // Under yellow the field closes up behind the pace car: each car's gap
    // to the leader shrinks toward a tight queue while on-track order is
    // preserved. This is what makes caution pits cheap in rank terms.
    if (yellow && !finishers.empty()) {
      std::sort(finishers.begin(), finishers.end(),
                [&](std::size_t a, std::size_t b) {
                  return cars[a].cum_time < cars[b].cum_time;
                });
      const double leader_time = cars[finishers[0]].cum_time;
      double prev_time = leader_time;
      // No car can close faster than a flat-out lap allows: this floor keeps
      // recorded lap times physical while the gap shrinks over several laps.
      const double min_lap = 0.92 * base;
      for (std::size_t pos = 1; pos < finishers.size(); ++pos) {
        auto& c = cars[finishers[pos]];
        const double queue_gap =
            1.1 * static_cast<double>(pos) + 0.4;  // target bunched gap
        const double target = leader_time + queue_gap;
        double t = std::min(c.cum_time, target);
        t = std::max(t, prev_time + 0.25);  // keep order + minimum spacing
        t = std::max(t, c.prev_cum + min_lap);
        c.cum_time = t;
        prev_time = t;
      }
    } else {
      // Green-flag overtaking friction: passing needs a decisive time
      // advantage; marginal attackers get stuck in dirty air and settle a
      // small gap behind the defender. This keeps the running order sticky
      // between pit cycles, as the real scoring data is.
      std::sort(finishers.begin(), finishers.end(),
                [&](std::size_t a, std::size_t b) {
                  return cars[a].cum_time < cars[b].cum_time;
                });
      for (std::size_t pos = 1; pos < finishers.size(); ++pos) {
        auto& ahead = cars[finishers[pos - 1]];
        auto& behind = cars[finishers[pos]];
        const bool is_overtake = ahead.prev_rank > behind.prev_rank;
        const double gain = behind.cum_time - ahead.cum_time;
        if (is_overtake && gain < track.pass_margin_seconds) {
          // Revert the pass: the attacker tucks in behind the defender.
          ahead.cum_time = behind.cum_time + track.follow_gap_seconds;
          std::swap(finishers[pos - 1], finishers[pos]);
        }
      }
      std::sort(finishers.begin(), finishers.end(),
                [&](std::size_t a, std::size_t b) {
                  return cars[a].cum_time < cars[b].cum_time;
                });
    }

    // --- scoring ----------------------------------------------------------
    const double leader_time =
        finishers.empty() ? 0.0 : cars[finishers[0]].cum_time;
    for (std::size_t pos = 0; pos < finishers.size(); ++pos) {
      const auto i = finishers[pos];
      auto& c = cars[i];
      telemetry::LapRecord rec;
      rec.rank = static_cast<int>(pos) + 1;
      rec.car_id = c.profile.car_id;
      rec.lap = lap;
      rec.lap_time = c.cum_time - c.prev_cum;
      rec.time_behind_leader = c.cum_time - leader_time;
      rec.lap_status =
          pitted[i] ? telemetry::LapStatus::kPit : telemetry::LapStatus::kNormal;
      rec.track_status = yellow ? telemetry::TrackStatus::kYellow
                                : telemetry::TrackStatus::kGreen;
      records.push_back(rec);
      c.prev_rank = rec.rank;
    }

    if (caution_remaining > 0) --caution_remaining;
  }

  telemetry::EventInfo info;
  info.name = track.name;
  info.year = params_.year;
  info.track_length_miles = track.length_miles;
  info.track_shape = track.shape;
  info.total_laps = total_laps;
  info.avg_speed_mph = track.avg_speed_mph;
  return telemetry::RaceLog(info, std::move(records));
}

}  // namespace ranknet::sim

// FaultInjector: wraps a clean timing-and-scoring record stream with the
// failure modes a live feed actually exhibits — drops, duplicates, bounded
// reordering, field corruption, and feed stalls — under a seeded RNG, so
// every failure scenario is exactly reproducible. This is the adversary the
// telemetry::StreamIngestor is tested and demoed against
// (examples/live_forecast, tests/test_fault_injection).
//
// Contract: with an all-zero FaultProfile the injected stream is
// byte-identical to the clean stream, in the same order (property-tested).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "telemetry/record.hpp"
#include "util/rng.hpp"

namespace ranknet::sim {

struct FaultProfile {
  double drop_rate = 0.0;       // P(record silently lost)
  double duplicate_rate = 0.0;  // P(record delivered twice)
  double corrupt_rate = 0.0;    // P(one field mangled in transit)
  int reorder_depth = 0;        // max positions a record may be displaced
  double stall_rate = 0.0;      // P(feed goes quiet after a delivery)
  int stall_length = 3;         // quiet ticks per stall
};

struct FaultCounters {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t reordered = 0;  // emitted out of arrival order
  std::uint64_t stall_ticks = 0;
};

class FaultInjector {
 public:
  FaultInjector(std::vector<telemetry::LapRecord> clean, FaultProfile profile,
                std::uint64_t seed);

  /// One feed tick: the next (possibly faulty) record, or nullopt when the
  /// feed is stalling this tick or exhausted — check done() to tell apart.
  std::optional<telemetry::LapRecord> next();

  /// True once every record has been delivered, dropped, or drained.
  bool done() const { return pos_ >= clean_.size() && buffer_.empty(); }

  /// Convenience: run the feed to exhaustion, stall ticks elided.
  std::vector<telemetry::LapRecord> drain();

  const FaultCounters& counters() const { return counters_; }
  const FaultProfile& profile() const { return profile_; }

 private:
  telemetry::LapRecord corrupt(telemetry::LapRecord rec);

  std::vector<telemetry::LapRecord> clean_;
  FaultProfile profile_;
  util::Rng rng_;
  FaultCounters counters_;
  // In-flight records: index i entered before index i+1. Reordering picks a
  // random element; `skips` counts how many younger records were emitted
  // ahead of this one, and a record whose skips reach reorder_depth is
  // force-emitted — so displacement is bounded in BOTH directions.
  struct InFlight {
    telemetry::LapRecord rec;
    int skips = 0;
  };
  std::vector<InFlight> buffer_;
  std::size_t pos_ = 0;
  int stalling_ = 0;
};

// ---------------------------------------------------------------------------
// Wire-level faults (the serving path's adversary)
// ---------------------------------------------------------------------------

/// Failure modes of the serving front end's transport hop: whole frames
/// lost, cut short mid-write, bit-flipped in flight, or preceded by a
/// client that simply stops sending for a while. Mirrors FaultProfile but
/// operates on opaque byte frames (src/serve wire frames), so the same
/// seeded-adversary pattern covers both the telemetry feed and the request
/// loop.
struct WireFaultProfile {
  double drop_rate = 0.0;      // P(frame never sent)
  double truncate_rate = 0.0;  // P(frame cut short mid-write)
  double corrupt_rate = 0.0;   // P(one byte of the frame flipped)
  double stall_rate = 0.0;     // P(sender goes quiet before this frame)
  int stall_ms = 20;           // quiet time per stall
};

struct WireFaultCounters {
  std::uint64_t frames = 0;     // frames offered to the injector
  std::uint64_t delivered = 0;  // emitted (possibly mutated)
  std::uint64_t dropped = 0;
  std::uint64_t truncated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t stalls = 0;
};

/// Seeded mutator for outgoing byte frames. The test/bench client harness
/// routes every encoded wire frame through apply() before writing it to the
/// socket, which makes the server-side robustness claims reproducible:
/// the exact same frames are mangled the exact same way for a given seed.
///
/// Contract: with an all-zero profile, apply() returns every frame
/// byte-identical and stall_before_send_ms() is always 0 (property-tested
/// in test_fault_injection.cpp).
class WireFaultInjector {
 public:
  WireFaultInjector(WireFaultProfile profile, std::uint64_t seed);

  /// The bytes to actually send for this frame: unchanged, truncated, or
  /// corrupted — or nullopt when the frame is dropped entirely.
  std::optional<std::vector<std::uint8_t>> apply(
      std::span<const std::uint8_t> frame);

  /// Milliseconds the sender should stay quiet before the next send
  /// (drawn per frame, 0 when not stalling). Simulates a stalled client
  /// holding a connection open — the server's slow-client guard's target.
  int stall_before_send_ms();

  const WireFaultCounters& counters() const { return counters_; }
  const WireFaultProfile& profile() const { return profile_; }

 private:
  WireFaultProfile profile_;
  util::Rng rng_;
  WireFaultCounters counters_;
};

}  // namespace ranknet::sim

// FaultInjector: wraps a clean timing-and-scoring record stream with the
// failure modes a live feed actually exhibits — drops, duplicates, bounded
// reordering, field corruption, and feed stalls — under a seeded RNG, so
// every failure scenario is exactly reproducible. This is the adversary the
// telemetry::StreamIngestor is tested and demoed against
// (examples/live_forecast, tests/test_fault_injection).
//
// Contract: with an all-zero FaultProfile the injected stream is
// byte-identical to the clean stream, in the same order (property-tested).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "telemetry/record.hpp"
#include "util/rng.hpp"

namespace ranknet::sim {

struct FaultProfile {
  double drop_rate = 0.0;       // P(record silently lost)
  double duplicate_rate = 0.0;  // P(record delivered twice)
  double corrupt_rate = 0.0;    // P(one field mangled in transit)
  int reorder_depth = 0;        // max positions a record may be displaced
  double stall_rate = 0.0;      // P(feed goes quiet after a delivery)
  int stall_length = 3;         // quiet ticks per stall
};

struct FaultCounters {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t reordered = 0;  // emitted out of arrival order
  std::uint64_t stall_ticks = 0;
};

class FaultInjector {
 public:
  FaultInjector(std::vector<telemetry::LapRecord> clean, FaultProfile profile,
                std::uint64_t seed);

  /// One feed tick: the next (possibly faulty) record, or nullopt when the
  /// feed is stalling this tick or exhausted — check done() to tell apart.
  std::optional<telemetry::LapRecord> next();

  /// True once every record has been delivered, dropped, or drained.
  bool done() const { return pos_ >= clean_.size() && buffer_.empty(); }

  /// Convenience: run the feed to exhaustion, stall ticks elided.
  std::vector<telemetry::LapRecord> drain();

  const FaultCounters& counters() const { return counters_; }
  const FaultProfile& profile() const { return profile_; }

 private:
  telemetry::LapRecord corrupt(telemetry::LapRecord rec);

  std::vector<telemetry::LapRecord> clean_;
  FaultProfile profile_;
  util::Rng rng_;
  FaultCounters counters_;
  // In-flight records: index i entered before index i+1. Reordering picks a
  // random element; `skips` counts how many younger records were emitted
  // ahead of this one, and a record whose skips reach reorder_depth is
  // force-emitted — so displacement is bounded in BOTH directions.
  struct InFlight {
    telemetry::LapRecord rec;
    int skips = 0;
  };
  std::vector<InFlight> buffer_;
  std::size_t pos_ = 0;
  int stalling_ = 0;
};

}  // namespace ranknet::sim

#include "simulator/track.hpp"

#include <stdexcept>

namespace ranknet::sim {

TrackConfig indy500_track() {
  TrackConfig t;
  t.name = "Indy500";
  t.length_miles = 2.5;
  t.shape = "Oval";
  t.total_laps = 200;
  t.avg_speed_mph = 175.0;
  t.pit_loss_seconds = 46.0;
  t.caution_speed_factor = 1.8;
  t.caution_prob_per_lap = 0.024;  // most dynamic event (paper Fig. 6)
  t.caution_min_laps = 4;
  t.caution_max_laps = 9;
  t.fuel_window_laps = 33.0;
  t.min_cars = 33;
  t.max_cars = 33;
  t.pass_margin_seconds = 0.85;
  t.skill_spread_seconds = 2.0;
  t.lap_noise_seconds = 0.50;
  return t;
}

TrackConfig texas_track() {
  TrackConfig t;
  t.name = "Texas";
  t.length_miles = 1.455;
  t.shape = "Oval";
  t.total_laps = 228;
  t.avg_speed_mph = 153.0;
  t.pit_loss_seconds = 34.0;
  t.caution_speed_factor = 1.7;
  t.caution_prob_per_lap = 0.016;
  t.caution_min_laps = 5;
  t.caution_max_laps = 11;
  t.fuel_window_laps = 40.0;
  t.min_cars = 22;
  t.max_cars = 24;
  t.pass_margin_seconds = 1.1;
  t.skill_spread_seconds = 1.3;
  t.lap_noise_seconds = 0.36;
  return t;
}

TrackConfig iowa_track() {
  TrackConfig t;
  t.name = "Iowa";
  t.length_miles = 0.894;
  t.shape = "Oval";
  t.total_laps = 250;
  t.avg_speed_mph = 135.0;
  t.pit_loss_seconds = 24.0;
  t.caution_speed_factor = 1.6;
  t.caution_prob_per_lap = 0.010;  // least dynamic event (paper Fig. 6)
  t.caution_min_laps = 6;
  t.caution_max_laps = 12;
  t.fuel_window_laps = 58.0;
  t.min_cars = 21;
  t.max_cars = 24;
  t.pass_margin_seconds = 1.5;
  t.skill_spread_seconds = 0.9;
  t.lap_noise_seconds = 0.20;
  return t;
}

TrackConfig pocono_track() {
  TrackConfig t;
  t.name = "Pocono";
  t.length_miles = 2.5;
  t.shape = "Triangle";
  t.total_laps = 160;
  t.avg_speed_mph = 135.0;
  t.pit_loss_seconds = 42.0;
  t.caution_prob_per_lap = 0.014;
  t.caution_speed_factor = 1.7;
  t.caution_min_laps = 4;
  t.caution_max_laps = 8;
  t.fuel_window_laps = 30.0;
  t.min_cars = 22;
  t.max_cars = 24;
  t.pass_margin_seconds = 1.2;
  t.skill_spread_seconds = 1.4;
  t.lap_noise_seconds = 0.33;
  return t;
}

std::vector<TrackConfig> all_tracks() {
  return {indy500_track(), iowa_track(), pocono_track(), texas_track()};
}

TrackConfig track_by_name(const std::string& name) {
  if (name == "Indy500") return indy500_track();
  if (name == "Texas") return texas_track();
  if (name == "Iowa") return iowa_track();
  if (name == "Pocono") return pocono_track();
  throw std::invalid_argument("track_by_name: unknown event '" + name + "'");
}

}  // namespace ranknet::sim

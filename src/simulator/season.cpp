#include "simulator/season.hpp"

#include <stdexcept>

#include "util/string_util.hpp"

namespace ranknet::sim {

const char* usage_name(Usage u) {
  switch (u) {
    case Usage::kTrain: return "Training";
    case Usage::kValidation: return "Validation";
    case Usage::kTest: return "Test";
  }
  return "?";
}

std::vector<RaceSpec> table2_specs() {
  std::vector<RaceSpec> specs;
  // Indy500 2013-2017 train, 2018 validation, 2019 test; 200 laps.
  for (int year = 2013; year <= 2017; ++year) {
    specs.push_back({"Indy500", year, 200, Usage::kTrain});
  }
  specs.push_back({"Indy500", 2018, 200, Usage::kValidation});
  specs.push_back({"Indy500", 2019, 200, Usage::kTest});
  // Iowa 2013, 2015-2018 train (250 laps); 2019 test (300 laps).
  specs.push_back({"Iowa", 2013, 250, Usage::kTrain});
  for (int year = 2015; year <= 2018; ++year) {
    specs.push_back({"Iowa", year, 250, Usage::kTrain});
  }
  specs.push_back({"Iowa", 2019, 300, Usage::kTest});
  // Pocono 2013, 2015-2017 train (160 laps); 2018 test (200 laps).
  specs.push_back({"Pocono", 2013, 160, Usage::kTrain});
  for (int year = 2015; year <= 2017; ++year) {
    specs.push_back({"Pocono", year, 160, Usage::kTrain});
  }
  specs.push_back({"Pocono", 2018, 200, Usage::kTest});
  // Texas 2013-2017 train (228 laps); 2018-2019 test (248 laps).
  for (int year = 2013; year <= 2017; ++year) {
    specs.push_back({"Texas", year, 228, Usage::kTrain});
  }
  specs.push_back({"Texas", 2018, 248, Usage::kTest});
  specs.push_back({"Texas", 2019, 248, Usage::kTest});
  return specs;
}

telemetry::RaceLog simulate_race(const RaceSpec& spec,
                                 std::uint64_t base_seed) {
  RaceParams params;
  params.track = track_by_name(spec.event);
  params.year = spec.year;
  params.total_laps = spec.laps;
  params.seed = base_seed ^ util::fnv1a(util::format(
                                "%s-%d", spec.event.c_str(), spec.year));
  return RaceSimulator(params).run();
}

std::vector<telemetry::RaceLog> simulate_season(std::uint64_t base_seed) {
  std::vector<telemetry::RaceLog> races;
  const auto specs = table2_specs();
  races.reserve(specs.size());
  for (const auto& spec : specs) {
    races.push_back(simulate_race(spec, base_seed));
  }
  return races;
}

std::size_t EventDataset::total_records() const {
  std::size_t n = 0;
  for (const auto* group : {&train, &validation, &test}) {
    for (const auto& race : *group) n += race.num_records();
  }
  return n;
}

EventDataset build_event_dataset(const std::string& event,
                                 std::uint64_t base_seed) {
  EventDataset ds;
  ds.event = event;
  for (const auto& spec : table2_specs()) {
    if (spec.event != event) continue;
    auto race = simulate_race(spec, base_seed);
    switch (spec.usage) {
      case Usage::kTrain: ds.train.push_back(std::move(race)); break;
      case Usage::kValidation: ds.validation.push_back(std::move(race)); break;
      case Usage::kTest: ds.test.push_back(std::move(race)); break;
    }
  }
  if (ds.train.empty() && ds.validation.empty() && ds.test.empty()) {
    throw std::invalid_argument("build_event_dataset: unknown event '" +
                                event + "'");
  }
  return ds;
}

std::vector<EventDataset> build_all_datasets(std::uint64_t base_seed) {
  std::vector<EventDataset> out;
  for (const auto& name : {"Indy500", "Iowa", "Pocono", "Texas"}) {
    out.push_back(build_event_dataset(name, base_seed));
  }
  return out;
}

}  // namespace ranknet::sim

// Fully-connected layer with optional fused activation and manual backprop.
#pragma once

#include "nn/param.hpp"
#include "tensor/matrix.hpp"
#include "tensor/simd_kernels.hpp"
#include "util/rng.hpp"

namespace ranknet::nn {

enum class Activation { kNone, kRelu, kTanh, kSigmoid };

/// nn::Activation → the tensor layer's dispatched activation code.
tensor::kernels::DenseAct to_dense_act(Activation a);

class Dense : public Layer {
 public:
  Dense(std::size_t input_dim, std::size_t output_dim, util::Rng& rng,
        Activation activation = Activation::kNone,
        std::string name = "dense");

  /// Forward pass; caches input and activation output for backward.
  tensor::Matrix forward(const tensor::Matrix& x);

  /// Forward without caching (inference path).
  tensor::Matrix forward_inference(const tensor::Matrix& x) const;

  /// Backward: accumulates weight/bias grads, returns dLoss/dInput.
  tensor::Matrix backward(const tensor::Matrix& dy);

  std::vector<Parameter*> params() override { return {&weight_, &bias_}; }

  std::size_t input_dim() const { return weight_.value.rows(); }
  std::size_t output_dim() const { return weight_.value.cols(); }

  /// Read access for the inference runtime (borrowed, never copied).
  const tensor::Matrix& weight() const { return weight_.value; }
  const tensor::Matrix& bias() const { return bias_.value; }
  Activation activation() const { return activation_; }
  /// Name of the weight parameter ("<layer>.weight") — the annotation/
  /// calibration key for reduced-precision packs (tensor::quant).
  const std::string& weight_name() const { return weight_.name; }

 private:
  tensor::Matrix apply(const tensor::Matrix& x, tensor::Matrix* pre) const;

  Parameter weight_;  // (in x out)
  Parameter bias_;    // (1 x out)
  Activation activation_;
  tensor::Matrix cached_x_;
  tensor::Matrix cached_y_;  // post-activation (for activation backward)
};

}  // namespace ranknet::nn

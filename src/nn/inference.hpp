// Inference runtime: zero-allocation sessions over the training layers.
//
// A session is the serving face of a training layer. It borrows the layer's
// weights (Dense/Gaussian/Embedding/Attention read them in place;
// LstmInferenceSession packs [wx ; wh] into a Workspace once per session so
// the decode loop runs one GEMM per layer per step) and runs every kernel
// over caller-owned views, so after the arena warms up a decode step
// performs zero heap allocations. The training graph (forward/backward,
// Adam, activation tapes) is untouched — sessions are rebuilt per forecast
// call, so weight updates between calls are always visible.
//
// Bit-identity contract: every session routes through the same compiled
// kernel loops as the training-path forward_inference (tensor/kernels.hpp
// view overloads), so session output is bit-identical to the corresponding
// layer call. test_inference_session asserts this for batches {1, 7, 64}.
//
// Storage rules (see tensor/workspace.hpp): a session's views live until
// the next Workspace::begin(); sessions never call begin() themselves —
// the top-level entry point (e.g. LstmSeqModel::sample_forward) owns the
// epoch.
#pragma once

#include <span>

#include "nn/attention.hpp"
#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/gaussian.hpp"
#include "nn/lstm.hpp"
#include "tensor/kernels.hpp"
#include "tensor/view.hpp"
#include "tensor/workspace.hpp"
#include "util/rng.hpp"

namespace ranknet::nn {

/// Stateless wrapper over a Dense layer: y = activation(x * W + b) into
/// caller storage. Weights are borrowed, never copied.
class DenseInferenceSession {
 public:
  DenseInferenceSession() = default;
  explicit DenseInferenceSession(const Dense& layer);

  /// y must be (x.rows() x output_dim); y may not alias x.
  void apply(tensor::ConstMatrixView x, tensor::MatrixView y) const;

  std::size_t input_dim() const { return layer_->input_dim(); }
  std::size_t output_dim() const { return layer_->output_dim(); }
  const Dense& layer() const { return *layer_; }

 private:
  const Dense* layer_ = nullptr;
};

/// Gather embedding rows into caller storage.
class EmbeddingInferenceSession {
 public:
  EmbeddingInferenceSession() = default;
  explicit EmbeddingInferenceSession(const Embedding& layer)
      : layer_(&layer) {}

  /// out must be (indices.size() x dim). Throws std::out_of_range on a bad
  /// index, like Embedding::forward_inference.
  void gather(std::span<const int> indices, tensor::MatrixView out) const;

  std::size_t dim() const { return layer_->dim(); }

 private:
  const Embedding* layer_ = nullptr;
};

/// Gaussian head over caller storage: mu = h*Wmu + bmu, sigma =
/// softplus(h*Ws + bs) + kSigmaFloor, plus row-stream sampling.
class GaussianInferenceSession {
 public:
  GaussianInferenceSession() = default;
  explicit GaussianInferenceSession(const GaussianHead& head)
      : mu_(head.mu_dense()), sigma_(head.sigma_dense()) {}

  /// mu and sigma must be (h.rows() x target_dim).
  void forward(tensor::ConstMatrixView h, tensor::MatrixView mu,
               tensor::MatrixView sigma) const;

  /// Draw one sample per row into out; same draw order as
  /// GaussianHead::sample, so results are bit-identical.
  static void sample(tensor::ConstMatrixView mu, tensor::ConstMatrixView sigma,
                     util::Rng& rng, tensor::MatrixView out);
  /// Row r draws only from row_rngs[r] (partition invariance).
  static void sample(tensor::ConstMatrixView mu, tensor::ConstMatrixView sigma,
                     std::span<util::Rng> row_rngs, tensor::MatrixView out);
  /// Decode-tree expansion draw: out row r draws from row_rngs[r] over the
  /// branch-width parameters mu/sigma at row branch_of_row[r]. Because the
  /// draw still reads only (mu, sigma, row_rngs[r]), a row whose branch row
  /// holds the same bits as its independent-decode mu/sigma row produces
  /// bit-identical output to the plain row-stream sample() above.
  static void sample_rows(tensor::ConstMatrixView mu,
                          tensor::ConstMatrixView sigma,
                          std::span<const std::size_t> branch_of_row,
                          std::span<util::Rng> row_rngs,
                          tensor::MatrixView out);

  std::size_t target_dim() const { return mu_.output_dim(); }

 private:
  DenseInferenceSession mu_, sigma_;
};

/// Stateful LSTM decode session for a fixed batch size. Construction packs
/// the layer's [wx ; wh] into `ws` (transpose-free: the packed matrix feeds
/// the same row-major GEMM as the training cell) and takes all per-step
/// scratch, so step() allocates nothing.
class LstmInferenceSession {
 public:
  LstmInferenceSession(const LstmLayer& layer, std::size_t batch,
                       tensor::Workspace& ws);

  std::size_t batch() const { return batch_; }
  std::size_t input_dim() const { return in_; }
  std::size_t hidden_dim() const { return hidden_; }

  /// Zero h and c (matches LstmLayer::step starting from a fresh state).
  void reset_state();
  /// Copy a training-path state in (state must be (batch x hidden)).
  void load_state(const LstmState& state);
  /// Decode-tree expansion: row r of this session's (h, c) becomes a
  /// byte-for-byte copy of row src_row_per_dst[r] of `src`'s state. Plain
  /// row copies — no arithmetic — so expansion cannot perturb a single bit.
  void load_state_rows(const LstmInferenceSession& src,
                       std::span<const std::size_t> src_row_per_dst);
  /// Copy the session state out into a training-path LstmState.
  void store_state(LstmState& state) const;

  /// Input packing: the caller writes the input segment of row r (length
  /// input_dim) before each step().
  std::span<double> x_row(std::size_t r) {
    return {xh_.data() + r * xh_.cols(), in_};
  }
  /// Copy a full (batch x input_dim) matrix into the input segments.
  void set_input(tensor::ConstMatrixView x);

  /// One decode step: packs h into [x | h], then runs the fused cell.
  /// Bit-identical to LstmLayer::step on the same state and input.
  void step();

  tensor::MatrixView h() const { return h_; }
  tensor::MatrixView c() const { return c_; }

 private:
  const LstmLayer* layer_;
  std::size_t batch_, in_, hidden_;
  std::span<const double> bias_;   // borrowed from the layer
  tensor::MatrixView w_packed_;    // (in+hidden) x 4*hidden
  tensor::MatrixView xh_;          // batch x (in+hidden)
  tensor::MatrixView h_, c_;       // batch x hidden
  tensor::LstmStepScratch scratch_;
};

/// Causal multi-head self-attention over caller storage for a fixed
/// (rows = batch*seq_len, seq_len) shape. Weights borrowed; per-head
/// scratch taken from `ws` once at construction.
class AttentionInferenceSession {
 public:
  AttentionInferenceSession(const MultiHeadSelfAttention& layer,
                            std::size_t rows, std::size_t seq_len,
                            tensor::Workspace& ws);

  /// y must be (rows x dim); y may not alias x. Bit-identical to
  /// MultiHeadSelfAttention::forward_inference.
  void forward(tensor::ConstMatrixView x, tensor::MatrixView y) const;

 private:
  const MultiHeadSelfAttention* layer_;
  std::size_t seq_len_;
  tensor::MatrixView q_, k_, v_, concat_;   // rows x dim
  tensor::MatrixView qh_, kh_, vh_, outh_;  // seq_len x head_dim
  tensor::MatrixView scores_;               // seq_len x seq_len
};

/// Pre-LN Transformer block over caller storage (x + MHA(LN(x)), then
/// x + FFN(LN(x))). Bit-identical to TransformerBlock::forward_inference.
class TransformerBlockSession {
 public:
  TransformerBlockSession(const TransformerBlock& block, std::size_t rows,
                          std::size_t seq_len, tensor::Workspace& ws);

  /// out must be (rows x dim); out may not alias x.
  void forward(tensor::ConstMatrixView x, tensor::MatrixView out) const;

 private:
  const TransformerBlock* block_;
  AttentionInferenceSession attn_;
  DenseInferenceSession ffn1_, ffn2_;
  tensor::MatrixView ln_out_;  // rows x dim (ln1 then ln2 output)
  tensor::MatrixView attn_y_;  // rows x dim
  tensor::MatrixView hmid_;    // rows x dim (x + attn residual)
  tensor::MatrixView ffn_h_;   // rows x ffn_dim
  tensor::MatrixView ffn_y_;   // rows x dim
};

}  // namespace ranknet::nn

// ADAM optimizer (paper Table IV: ADAM, lr 1e-3, decay factor 0.5) with
// global-norm gradient clipping.
#pragma once

#include <vector>

#include "nn/param.hpp"

namespace ranknet::nn {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double clip_norm = 10.0;  // 0 disables clipping
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config = {});

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }

  /// Scale all gradients so their global L2 norm is at most max_norm;
  /// returns the pre-clip norm.
  double clip_gradients(double max_norm);

 private:
  std::vector<Parameter*> params_;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
  AdamConfig config_;
  long t_ = 0;
};

}  // namespace ranknet::nn

// Save / load all parameters of a model to a binary file (model cache).
//
// v2 format (written by save_params):
//   magic "RKNT" + u32 schema version, u64 payload size, u64 FNV-1a payload
//   checksum, then the payload: count, then per parameter: name, rows, cols,
//   data. The checksum makes a bit-flipped or truncated artifact fail loudly
//   at load instead of poisoning a serving model.
// v3 format (written by the calibration overload of save_params): same
//   envelope and magic, schema version 3, and the payload gains a trailing
//   calibration section after the parameters: u64 entry count, then per
//   entry: name string, f64 activation absmax, f64 zero point. The section
//   carries the int8 activation ranges recorded by a calibration pass
//   (tensor/quant.hpp) so a quantized model round-trips through the
//   artifact cache without re-probing.
// v1 files (the pre-checksum format: bare magic + count + parameters) are
// still readable so existing artifacts/*.bin caches keep working; v2 files
// simply load with an empty calibration. v2+ payloads are parsed strictly:
// bytes after the last declared section are corruption, not padding.
#pragma once

#include <string>
#include <vector>

#include "nn/param.hpp"
#include "tensor/quant.hpp"
#include "util/status.hpp"

namespace ranknet::nn {

void save_params(const std::string& path,
                 const std::vector<Parameter*>& params);

/// v3 save: parameters plus the per-tensor activation calibration table.
void save_params(const std::string& path,
                 const std::vector<Parameter*>& params,
                 const tensor::quant::Calibration& calibration);

/// Loads into existing parameters (shapes/names must match); throws
/// std::runtime_error on any mismatch or I/O failure.
void load_params(const std::string& path,
                 const std::vector<Parameter*>& params);

/// Non-throwing load for untrusted artifact bytes: validates magic, schema
/// version, payload size and checksum (v2+) before touching any parameter.
/// On error no parameter is modified.
util::Status try_load_params(const std::string& path,
                             const std::vector<Parameter*>& params);

/// Calibration-aware load: like try_load_params, and additionally fills
/// `calibration` from a v3 artifact's calibration section (cleared for
/// v1/v2 artifacts, which predate calibration). `calibration` may be null
/// when the caller only wants the weights.
util::Status try_load_params(const std::string& path,
                             const std::vector<Parameter*>& params,
                             tensor::quant::Calibration* calibration);

}  // namespace ranknet::nn

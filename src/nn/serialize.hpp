// Save / load all parameters of a model to a binary file (model cache).
// Format: magic, count, then per parameter: name, rows, cols, payload.
// Loading checks names and shapes so a stale cache fails loudly.
#pragma once

#include <string>
#include <vector>

#include "nn/param.hpp"

namespace ranknet::nn {

void save_params(const std::string& path,
                 const std::vector<Parameter*>& params);

/// Loads into existing parameters (shapes/names must match); throws
/// std::runtime_error on any mismatch or I/O failure.
void load_params(const std::string& path,
                 const std::vector<Parameter*>& params);

}  // namespace ranknet::nn

// Save / load all parameters of a model to a binary file (model cache).
//
// v2 format (written by save_params):
//   magic "RKNT" + u32 schema version, u64 payload size, u64 FNV-1a payload
//   checksum, then the payload: count, then per parameter: name, rows, cols,
//   data. The checksum makes a bit-flipped or truncated artifact fail loudly
//   at load instead of poisoning a serving model.
// v1 files (the pre-checksum format: bare magic + count + parameters) are
// still readable so existing artifacts/*.bin caches keep working.
#pragma once

#include <string>
#include <vector>

#include "nn/param.hpp"
#include "util/status.hpp"

namespace ranknet::nn {

void save_params(const std::string& path,
                 const std::vector<Parameter*>& params);

/// Loads into existing parameters (shapes/names must match); throws
/// std::runtime_error on any mismatch or I/O failure.
void load_params(const std::string& path,
                 const std::vector<Parameter*>& params);

/// Non-throwing load for untrusted artifact bytes: validates magic, schema
/// version, payload size and checksum (v2) before touching any parameter.
/// On error no parameter is modified.
util::Status try_load_params(const std::string& path,
                             const std::vector<Parameter*>& params);

}  // namespace ranknet::nn

// LSTM layer with truncated-BPTT-free full-sequence backprop.
//
// The paper's RankModel is a stacked 2-layer LSTM encoder-decoder with
// shared parameters between encoder and decoder (GluonTS DeepAR style); the
// stack here is simply two LstmLayer objects applied in sequence over the
// whole unrolled window.
#pragma once

#include <vector>

#include "nn/param.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace ranknet::nn {

/// Recurrent state of one layer for one batch.
struct LstmState {
  tensor::Matrix h;  // (batch x hidden)
  tensor::Matrix c;  // (batch x hidden)

  LstmState() = default;
  LstmState(std::size_t batch, std::size_t hidden)
      : h(batch, hidden), c(batch, hidden) {}
};

class LstmLayer : public Layer {
 public:
  LstmLayer(std::size_t input_dim, std::size_t hidden_dim, util::Rng& rng,
            std::string name = "lstm");

  /// Training forward over the full sequence (time-major: xs[t] is
  /// batch x input). Starts from a zero state and caches everything needed
  /// for backward. Returns h_t for every step.
  std::vector<tensor::Matrix> forward(const std::vector<tensor::Matrix>& xs);

  /// Backward: dhs[t] = dLoss/dh_t (zero matrices where no loss applies).
  /// Accumulates parameter gradients and returns dLoss/dx_t.
  std::vector<tensor::Matrix> backward(
      const std::vector<tensor::Matrix>& dhs);

  /// Single inference step: consumes x, updates state in place, returns h.
  /// Used by the ancestral-sampling forecaster (paper Algorithm 2).
  tensor::Matrix step(const tensor::Matrix& x, LstmState& state) const;

  std::vector<Parameter*> params() override { return {&wx_, &wh_, &b_}; }

  std::size_t input_dim() const { return wx_.value.rows(); }
  std::size_t hidden_dim() const { return wh_.value.rows(); }

  /// Read access for the inference runtime (LstmInferenceSession packs
  /// [wx ; wh] from these on construction).
  const tensor::Matrix& wx() const { return wx_.value; }
  const tensor::Matrix& wh() const { return wh_.value; }
  const tensor::Matrix& bias() const { return b_.value; }
  /// Name of the wx parameter ("<layer>.wx") — the annotation/calibration
  /// key for the packed [wx ; wh] GEMM (tensor::quant).
  const std::string& wx_name() const { return wx_.name; }

 private:
  // Computes gates for one step; writes post-activation gates (batch x 4h)
  // and the new (h, c, tanh_c).
  void cell(const tensor::Matrix& x, const tensor::Matrix& h_prev,
            const tensor::Matrix& c_prev, tensor::Matrix& gates,
            tensor::Matrix& h, tensor::Matrix& c,
            tensor::Matrix& tanh_c) const;

  Parameter wx_;  // (input x 4*hidden), gate order [i f g o]
  Parameter wh_;  // (hidden x 4*hidden)
  Parameter b_;   // (1 x 4*hidden)

  // Training caches (time-major).
  std::vector<tensor::Matrix> xs_, hs_, cs_, gates_, tanh_cs_;
};

}  // namespace ranknet::nn

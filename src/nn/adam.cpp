#include "nn/adam.hpp"

#include <cmath>

#include "tensor/kernels.hpp"
#include "tensor/quant.hpp"

namespace ranknet::nn {

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

double Adam::clip_gradients(double max_norm) {
  double total = 0.0;
  for (const auto* p : params_) total += tensor::squared_norm(p->grad);
  const double norm = std::sqrt(total);
  if (max_norm > 0.0 && norm > max_norm) {
    const double scale = max_norm / (norm + 1e-12);
    for (auto* p : params_) tensor::scale_inplace(p->grad, scale);
  }
  return norm;
}

void Adam::step() {
  if (config_.clip_norm > 0.0) clip_gradients(config_.clip_norm);
  ++t_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = *params_[i];
    auto* value = p.value.data();
    auto* grad = p.grad.data();
    auto* m = m_[i].data();
    auto* v = v_[i].data();
    const std::size_t n = p.value.size();
    for (std::size_t j = 0; j < n; ++j) {
      m[j] = config_.beta1 * m[j] + (1.0 - config_.beta1) * grad[j];
      v[j] = config_.beta2 * v[j] + (1.0 - config_.beta2) * grad[j] * grad[j];
      const double mhat = m[j] / bias1;
      const double vhat = v[j] / bias2;
      value[j] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
      grad[j] = 0.0;
    }
    // In-place weight mutation: any reduced-precision pack of this tensor
    // is now stale.
    tensor::quant::invalidate(value);
  }
}

}  // namespace ranknet::nn

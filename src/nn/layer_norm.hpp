// Row-wise layer normalization with learned gain/bias (Transformer blocks).
#pragma once

#include "nn/param.hpp"
#include "tensor/matrix.hpp"
#include "tensor/view.hpp"

namespace ranknet::nn {

class LayerNorm : public Layer {
 public:
  explicit LayerNorm(std::size_t dim, std::string name = "ln");

  tensor::Matrix forward(const tensor::Matrix& x);
  tensor::Matrix forward_inference(const tensor::Matrix& x) const;
  tensor::Matrix backward(const tensor::Matrix& dy);

  /// Inference-runtime apply over caller-owned storage; shares the same
  /// compiled row loop as forward_inference, so it is bit-identical. y may
  /// alias x (exact alias only).
  void apply_view(tensor::ConstMatrixView x, tensor::MatrixView y) const;

  std::vector<Parameter*> params() override { return {&gamma_, &beta_}; }

 private:
  tensor::Matrix apply(const tensor::Matrix& x, tensor::Matrix* x_hat) const;

  Parameter gamma_;  // (1 x dim)
  Parameter beta_;   // (1 x dim)
  tensor::Matrix cached_x_hat_;   // normalized input
  std::vector<double> cached_inv_std_;
};

}  // namespace ranknet::nn

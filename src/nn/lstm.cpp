#include "nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace ranknet::nn {

namespace {

/// Forget-gate bias starts at 1 (standard trick for gradient flow).
tensor::Matrix initial_bias(std::size_t hidden) {
  tensor::Matrix b(1, 4 * hidden);
  for (std::size_t j = hidden; j < 2 * hidden; ++j) b(0, j) = 1.0;
  return b;
}

}  // namespace

LstmLayer::LstmLayer(std::size_t input_dim, std::size_t hidden_dim,
                     util::Rng& rng, std::string name)
    : wx_(name + ".wx",
          tensor::Matrix::glorot(input_dim, 4 * hidden_dim, rng)),
      wh_(name + ".wh",
          tensor::Matrix::glorot(hidden_dim, 4 * hidden_dim, rng)),
      b_(name + ".b", initial_bias(hidden_dim)) {}

void LstmLayer::cell(const tensor::Matrix& x, const tensor::Matrix& h_prev,
                     const tensor::Matrix& c_prev, tensor::Matrix& gates,
                     tensor::Matrix& h, tensor::Matrix& c,
                     tensor::Matrix& tanh_c) const {
  const std::size_t batch = x.rows();
  const std::size_t hidden = hidden_dim();
  gates = tensor::Matrix(batch, 4 * hidden);
  tensor::gemm(1.0, x, false, wx_.value, false, 0.0, gates);
  tensor::gemm(1.0, h_prev, false, wh_.value, false, 1.0, gates);
  tensor::add_bias_rows(gates, b_.value.row(0));

  // Split activation: sigmoid on [i f o], tanh on [g]. Applied row-wise so
  // the Sigmoid/Tanh kernel accounting matches the op classes of the paper.
  // Gate layout per row: [i (h), f (h), g (h), o (h)].
  {
    // View-free approach: apply sigmoid/tanh on strided slices via
    // temporary matrices to keep kernel accounting exact.
    tensor::Matrix sig(batch, 3 * hidden);
    tensor::Matrix tg(batch, hidden);
    for (std::size_t r = 0; r < batch; ++r) {
      const double* g = gates.data() + r * 4 * hidden;
      double* s = sig.data() + r * 3 * hidden;
      double* t = tg.data() + r * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        s[j] = g[j];                        // i
        s[hidden + j] = g[hidden + j];      // f
        s[2 * hidden + j] = g[3 * hidden + j];  // o
        t[j] = g[2 * hidden + j];           // g
      }
    }
    tensor::sigmoid_inplace(sig);
    tensor::tanh_inplace(tg);
    for (std::size_t r = 0; r < batch; ++r) {
      double* g = gates.data() + r * 4 * hidden;
      const double* s = sig.data() + r * 3 * hidden;
      const double* t = tg.data() + r * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        g[j] = s[j];
        g[hidden + j] = s[hidden + j];
        g[3 * hidden + j] = s[2 * hidden + j];
        g[2 * hidden + j] = t[j];
      }
    }
  }

  c = tensor::Matrix(batch, hidden);
  h = tensor::Matrix(batch, hidden);
  tanh_c = tensor::Matrix(batch, hidden);
  // c = f ⊙ c_prev + i ⊙ g  — booked as Mul kernels like the paper's
  // operation breakdown.
  {
    tensor::Matrix fgate(batch, hidden), igate(batch, hidden),
        ggate(batch, hidden), ogate(batch, hidden);
    for (std::size_t r = 0; r < batch; ++r) {
      const double* g = gates.data() + r * 4 * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        igate(r, j) = g[j];
        fgate(r, j) = g[hidden + j];
        ggate(r, j) = g[2 * hidden + j];
        ogate(r, j) = g[3 * hidden + j];
      }
    }
    tensor::hadamard(fgate, c_prev, c);
    tensor::hadamard_add(igate, ggate, c);
    tanh_c = c;
    tensor::tanh_inplace(tanh_c);
    tensor::hadamard(ogate, tanh_c, h);
  }
}

std::vector<tensor::Matrix> LstmLayer::forward(
    const std::vector<tensor::Matrix>& xs) {
  const std::size_t steps = xs.size();
  if (steps == 0) throw std::invalid_argument("LstmLayer: empty sequence");
  const std::size_t batch = xs[0].rows();
  const std::size_t hidden = hidden_dim();

  xs_ = xs;
  hs_.assign(steps, {});
  cs_.assign(steps, {});
  gates_.assign(steps, {});
  tanh_cs_.assign(steps, {});

  tensor::Matrix h_prev(batch, hidden);
  tensor::Matrix c_prev(batch, hidden);
  for (std::size_t t = 0; t < steps; ++t) {
    cell(xs[t], h_prev, c_prev, gates_[t], hs_[t], cs_[t], tanh_cs_[t]);
    h_prev = hs_[t];
    c_prev = cs_[t];
  }
  return hs_;
}

std::vector<tensor::Matrix> LstmLayer::backward(
    const std::vector<tensor::Matrix>& dhs) {
  const std::size_t steps = xs_.size();
  if (dhs.size() != steps) {
    throw std::invalid_argument("LstmLayer::backward: wrong #steps");
  }
  const std::size_t batch = xs_[0].rows();
  const std::size_t hidden = hidden_dim();

  std::vector<tensor::Matrix> dxs(steps);
  tensor::Matrix dh_next(batch, hidden);  // from step t+1
  tensor::Matrix dc_next(batch, hidden);
  const tensor::Matrix zero_state(batch, hidden);

  for (std::size_t t = steps; t-- > 0;) {
    // Total gradient at h_t: external + recurrent.
    tensor::Matrix dh = dhs[t];
    tensor::add_inplace(dh, dh_next);

    const auto& gates = gates_[t];
    const auto& tanh_c = tanh_cs_[t];
    const tensor::Matrix& c_prev = t > 0 ? cs_[t - 1] : zero_state;

    tensor::Matrix dgates(batch, 4 * hidden);  // pre-activation grads
    tensor::Matrix dc(batch, hidden);
    for (std::size_t r = 0; r < batch; ++r) {
      const double* g = gates.data() + r * 4 * hidden;
      const double* tc = tanh_c.data() + r * hidden;
      const double* dhr = dh.data() + r * hidden;
      const double* dcn = dc_next.data() + r * hidden;
      const double* cp = c_prev.data() + r * hidden;
      double* dg = dgates.data() + r * 4 * hidden;
      double* dcr = dc.data() + r * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        const double i = g[j];
        const double f = g[hidden + j];
        const double gg = g[2 * hidden + j];
        const double o = g[3 * hidden + j];
        const double dho = dhr[j];
        // dL/dc_t = dL/dh_t * o * (1 - tanh(c)^2) + dL/dc_{t+1} part.
        const double dct = dho * o * (1.0 - tc[j] * tc[j]) + dcn[j];
        dcr[j] = dct;
        const double di = dct * gg;
        const double df = dct * cp[j];
        const double dgg = dct * i;
        const double dov = dho * tc[j];
        dg[j] = di * i * (1.0 - i);
        dg[hidden + j] = df * f * (1.0 - f);
        dg[2 * hidden + j] = dgg * (1.0 - gg * gg);
        dg[3 * hidden + j] = dov * o * (1.0 - o);
      }
    }

    // Parameter grads and input grads.
    tensor::gemm(1.0, xs_[t], true, dgates, false, 1.0, wx_.grad);
    if (t > 0) {
      tensor::gemm(1.0, hs_[t - 1], true, dgates, false, 1.0, wh_.grad);
    }
    tensor::sum_rows(dgates, b_.grad.row(0));

    dxs[t] = tensor::Matrix(batch, xs_[t].cols());
    tensor::gemm(1.0, dgates, false, wx_.value, true, 0.0, dxs[t]);

    // Recurrent grads to step t-1.
    dh_next = tensor::Matrix(batch, hidden);
    tensor::gemm(1.0, dgates, false, wh_.value, true, 0.0, dh_next);
    dc_next = tensor::Matrix(batch, hidden);
    for (std::size_t r = 0; r < batch; ++r) {
      const double* g = gates.data() + r * 4 * hidden;
      const double* dcr = dc.data() + r * hidden;
      double* dcn = dc_next.data() + r * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        dcn[j] = dcr[j] * g[hidden + j];  // dL/dc_{t-1} = dc_t * f
      }
    }
  }
  return dxs;
}

tensor::Matrix LstmLayer::step(const tensor::Matrix& x,
                               LstmState& state) const {
  const std::size_t batch = x.rows();
  const std::size_t hidden = hidden_dim();
  if (state.h.empty()) state = LstmState(batch, hidden);
  tensor::Matrix gates, h, c, tanh_c;
  cell(x, state.h, state.c, gates, h, c, tanh_c);
  state.h = h;
  state.c = c;
  return state.h;
}

}  // namespace ranknet::nn

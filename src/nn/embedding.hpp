// Categorical embedding (paper: CarId embedding, Table I transformations).
#pragma once

#include <vector>

#include "nn/param.hpp"
#include "util/rng.hpp"

namespace ranknet::nn {

class Embedding : public Layer {
 public:
  Embedding(std::size_t vocab, std::size_t dim, util::Rng& rng,
            std::string name = "embedding");

  /// Look up one row per index; caches indices for backward.
  tensor::Matrix forward(const std::vector<int>& indices);
  tensor::Matrix forward_inference(const std::vector<int>& indices) const;

  /// Scatter-add gradient rows back into the table.
  void backward(const tensor::Matrix& dy);

  std::vector<Parameter*> params() override { return {&table_}; }
  std::size_t dim() const { return table_.value.cols(); }
  std::size_t vocab() const { return table_.value.rows(); }

  /// Read access for the inference runtime (borrowed, never copied).
  const tensor::Matrix& table() const { return table_.value; }

 private:
  Parameter table_;  // (vocab x dim)
  std::vector<int> cached_indices_;
};

}  // namespace ranknet::nn

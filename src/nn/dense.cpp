#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace ranknet::nn {

Dense::Dense(std::size_t input_dim, std::size_t output_dim, util::Rng& rng,
             Activation activation, std::string name)
    : weight_(name + ".weight",
              tensor::Matrix::glorot(input_dim, output_dim, rng)),
      bias_(name + ".bias", tensor::Matrix(1, output_dim)),
      activation_(activation) {}

tensor::kernels::DenseAct to_dense_act(Activation a) {
  switch (a) {
    case Activation::kRelu:
      return tensor::kernels::DenseAct::kRelu;
    case Activation::kTanh:
      return tensor::kernels::DenseAct::kTanh;
    case Activation::kSigmoid:
      return tensor::kernels::DenseAct::kSigmoid;
    case Activation::kNone:
      break;
  }
  return tensor::kernels::DenseAct::kNone;
}

tensor::Matrix Dense::apply(const tensor::Matrix& x,
                            tensor::Matrix* post) const {
  tensor::Matrix y(x.rows(), weight_.value.cols());
  tensor::dense_forward(tensor::ConstMatrixView(x),
                        tensor::ConstMatrixView(weight_.value),
                        tensor::ConstMatrixView(bias_.value).row(0),
                        to_dense_act(activation_), tensor::MatrixView(y));
  if (post != nullptr) *post = y;
  return y;
}

tensor::Matrix Dense::forward(const tensor::Matrix& x) {
  cached_x_ = x;
  return apply(x, &cached_y_);
}

tensor::Matrix Dense::forward_inference(const tensor::Matrix& x) const {
  return apply(x, nullptr);
}

tensor::Matrix Dense::backward(const tensor::Matrix& dy) {
  if (cached_x_.empty()) {
    throw std::logic_error("Dense::backward called before forward");
  }
  tensor::Matrix dz = dy;
  switch (activation_) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      for (std::size_t i = 0; i < dz.size(); ++i) {
        if (cached_y_.flat()[i] <= 0.0) dz.flat()[i] = 0.0;
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < dz.size(); ++i) {
        const double y = cached_y_.flat()[i];
        dz.flat()[i] *= 1.0 - y * y;
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < dz.size(); ++i) {
        const double y = cached_y_.flat()[i];
        dz.flat()[i] *= y * (1.0 - y);
      }
      break;
  }
  // dW += X^T dZ ; db += column sums of dZ ; dX = dZ W^T.
  tensor::gemm(1.0, cached_x_, true, dz, false, 1.0, weight_.grad);
  tensor::sum_rows(dz, bias_.grad.row(0));
  tensor::Matrix dx(cached_x_.rows(), cached_x_.cols());
  tensor::gemm(1.0, dz, false, weight_.value, true, 0.0, dx);
  return dx;
}

}  // namespace ranknet::nn

// Causal multi-head self-attention and the pre-LN Transformer block used by
// the Transformer implementation of RankNet (paper Section IV-I: GluonTS
// Transformer, model dim 32, multi-head attention).
//
// Layout convention: a batch of B sequences of length T is packed into one
// (B*T x d) matrix, rows grouped by sequence. LayerNorm and the FFN operate
// on the packed matrix directly; attention slices per sequence and applies a
// causal mask so step t only attends to steps <= t (autoregressive
// forecasting needs causality, exactly like the LSTM).
#pragma once

#include <vector>

#include "nn/dense.hpp"
#include "nn/layer_norm.hpp"
#include "nn/param.hpp"
#include "util/rng.hpp"

namespace ranknet::nn {

class MultiHeadSelfAttention : public Layer {
 public:
  MultiHeadSelfAttention(std::size_t dim, std::size_t heads, util::Rng& rng,
                         std::string name = "mha");

  /// x: (B*T x d) packed rows; seq_len = T.
  tensor::Matrix forward(const tensor::Matrix& x, std::size_t seq_len);
  tensor::Matrix forward_inference(const tensor::Matrix& x,
                                   std::size_t seq_len) const;
  tensor::Matrix backward(const tensor::Matrix& dy);

  std::vector<Parameter*> params() override;

  std::size_t dim() const { return wq_.value.rows(); }
  std::size_t heads() const { return heads_; }

  /// Read access for the inference runtime (borrowed, never copied).
  const tensor::Matrix& wq() const { return wq_.value; }
  const tensor::Matrix& wk() const { return wk_.value; }
  const tensor::Matrix& wv() const { return wv_.value; }
  const tensor::Matrix& wo() const { return wo_.value; }

 private:
  Parameter wq_, wk_, wv_, wo_;  // each (d x d)
  std::size_t heads_;

  // Training caches.
  std::size_t cached_seq_len_ = 0;
  tensor::Matrix cached_x_, cached_q_, cached_k_, cached_v_, cached_concat_;
  // attention weights per (sequence, head): (T x T) each.
  std::vector<tensor::Matrix> cached_attn_;
};

/// Pre-LN Transformer block: x + MHA(LN(x)), then x + FFN(LN(x)).
class TransformerBlock : public Layer {
 public:
  TransformerBlock(std::size_t dim, std::size_t heads, std::size_t ffn_dim,
                   util::Rng& rng, std::string name = "block");

  tensor::Matrix forward(const tensor::Matrix& x, std::size_t seq_len);
  tensor::Matrix forward_inference(const tensor::Matrix& x,
                                   std::size_t seq_len) const;
  tensor::Matrix backward(const tensor::Matrix& dy);

  std::vector<Parameter*> params() override;

  /// Read access for the inference runtime (TransformerBlockSession).
  const LayerNorm& ln1() const { return ln1_; }
  const LayerNorm& ln2() const { return ln2_; }
  const MultiHeadSelfAttention& attn() const { return attn_; }
  const Dense& ffn1() const { return ffn1_; }
  const Dense& ffn2() const { return ffn2_; }

 private:
  LayerNorm ln1_, ln2_;
  MultiHeadSelfAttention attn_;
  Dense ffn1_, ffn2_;
};

/// Deterministic sinusoidal positional encoding, (seq_len x dim).
tensor::Matrix positional_encoding(std::size_t seq_len, std::size_t dim);

}  // namespace ranknet::nn

// Probabilistic (Gaussian likelihood) output head, following DeepAR
// (paper Section III-B): the network emits distribution parameters
//   µ = W_µᵀ h + b_µ,   σ = softplus(W_σᵀ h + b_σ)
// and is trained by maximizing log-likelihood (paper Algorithm 1, Eq. 1).
// Supports multivariate targets as independent Gaussian factors (used by
// the RankNet-Joint variant on [Rank, LapStatus, TrackStatus]).
#pragma once

#include <span>

#include "nn/dense.hpp"
#include "nn/param.hpp"
#include "util/rng.hpp"

namespace ranknet::nn {

class GaussianHead : public Layer {
 public:
  GaussianHead(std::size_t hidden_dim, std::size_t target_dim, util::Rng& rng,
               std::string name = "gaussian");

  struct Output {
    tensor::Matrix mu;     // (rows x target_dim)
    tensor::Matrix sigma;  // (rows x target_dim), strictly positive
  };

  /// Forward with caching for backward.
  Output forward(const tensor::Matrix& h);
  Output forward_inference(const tensor::Matrix& h) const;

  /// Mean weighted negative log likelihood of targets z under the cached
  /// forward output, and its gradient w.r.t. h (returned). `weights` has one
  /// entry per row (instance weighting, Fig. 7 step 1); pass {} for uniform.
  /// The NLL is averaged over rows (sum over target dims).
  double nll_backward(const Output& out, const tensor::Matrix& z,
                      std::span<const double> weights, tensor::Matrix& dh);

  /// NLL value only (validation path; no gradients).
  static double nll(const Output& out, const tensor::Matrix& z,
                    std::span<const double> weights);

  /// Draw one sample per row from N(mu, sigma), all rows from one stream.
  static tensor::Matrix sample(const Output& out, util::Rng& rng);

  /// Draw one sample per row, row r from its own stream row_rngs[r]. Row
  /// r's draw then depends only on (mu_r, sigma_r, row_rngs[r]) — never on
  /// which other rows share the batch — which is what lets the parallel
  /// forecast engine split or merge row blocks without changing results.
  static tensor::Matrix sample(const Output& out, std::span<util::Rng> row_rngs);

  std::vector<Parameter*> params() override;

  std::size_t target_dim() const { return mu_.output_dim(); }

  /// Floor added to softplus(σ_raw) for likelihood stability; the inference
  /// runtime must apply the same floor to stay bit-identical.
  static constexpr double kSigmaFloor = 1e-3;

  /// Read access for the inference runtime (borrowed, never copied).
  const Dense& mu_dense() const { return mu_; }
  const Dense& sigma_dense() const { return sigma_raw_; }

 private:
  Dense mu_;
  Dense sigma_raw_;
  tensor::Matrix cached_sigma_raw_;  // pre-softplus, for backward
};

}  // namespace ranknet::nn

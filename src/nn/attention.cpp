#include "nn/attention.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/inference.hpp"
#include "tensor/kernels.hpp"

namespace ranknet::nn {

namespace {

/// Copy head columns [h*dh, (h+1)*dh) of packed rows [row0, row0+T) into a
/// pre-shaped (T x dh) view. Shared by the training path and the inference
/// sessions so both run the same compiled loop.
void slice_head_into(tensor::ConstMatrixView packed, std::size_t row0,
                     std::size_t seq_len, std::size_t head,
                     std::size_t head_dim, tensor::MatrixView out) {
  for (std::size_t t = 0; t < seq_len; ++t) {
    for (std::size_t c = 0; c < head_dim; ++c) {
      out(t, c) = packed(row0 + t, head * head_dim + c);
    }
  }
}

tensor::Matrix slice_head(const tensor::Matrix& packed, std::size_t row0,
                          std::size_t seq_len, std::size_t head,
                          std::size_t head_dim) {
  tensor::Matrix out(seq_len, head_dim);
  slice_head_into(packed, row0, seq_len, head, head_dim, out);
  return out;
}

void add_head_slice(tensor::MatrixView packed, tensor::ConstMatrixView part,
                    std::size_t row0, std::size_t head,
                    std::size_t head_dim) {
  for (std::size_t t = 0; t < part.rows(); ++t) {
    for (std::size_t c = 0; c < head_dim; ++c) {
      packed(row0 + t, head * head_dim + c) += part(t, c);
    }
  }
}

/// Row-wise causal softmax of scores (T x T): entries j > i are masked out.
void causal_softmax(tensor::MatrixView scores) {
  const std::size_t n = scores.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double mx = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j <= i; ++j) mx = std::max(mx, scores(i, j));
    double total = 0.0;
    for (std::size_t j = 0; j <= i; ++j) {
      scores(i, j) = std::exp(scores(i, j) - mx);
      total += scores(i, j);
    }
    const double inv = 1.0 / total;
    for (std::size_t j = 0; j < n; ++j) {
      scores(i, j) = j <= i ? scores(i, j) * inv : 0.0;
    }
  }
  tensor::OpCounters::instance().record(tensor::Kernel::kSoftmax,
                                        5ULL * n * n, 8ULL * 2 * n * n);
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t dim,
                                               std::size_t heads,
                                               util::Rng& rng,
                                               std::string name)
    : wq_(name + ".wq", tensor::Matrix::glorot(dim, dim, rng)),
      wk_(name + ".wk", tensor::Matrix::glorot(dim, dim, rng)),
      wv_(name + ".wv", tensor::Matrix::glorot(dim, dim, rng)),
      wo_(name + ".wo", tensor::Matrix::glorot(dim, dim, rng)),
      heads_(heads) {
  if (dim % heads != 0) {
    throw std::invalid_argument("MultiHeadSelfAttention: dim % heads != 0");
  }
}

std::vector<Parameter*> MultiHeadSelfAttention::params() {
  return {&wq_, &wk_, &wv_, &wo_};
}

tensor::Matrix MultiHeadSelfAttention::forward(const tensor::Matrix& x,
                                               std::size_t seq_len) {
  if (x.rows() % seq_len != 0) {
    throw std::invalid_argument("MHA: rows not a multiple of seq_len");
  }
  const std::size_t batch = x.rows() / seq_len;
  const std::size_t d = dim();
  const std::size_t head_dim = d / heads_;
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim));

  cached_x_ = x;
  cached_seq_len_ = seq_len;
  cached_q_ = tensor::Matrix(x.rows(), d);
  cached_k_ = tensor::Matrix(x.rows(), d);
  cached_v_ = tensor::Matrix(x.rows(), d);
  tensor::gemm(1.0, x, false, wq_.value, false, 0.0, cached_q_);
  tensor::gemm(1.0, x, false, wk_.value, false, 0.0, cached_k_);
  tensor::gemm(1.0, x, false, wv_.value, false, 0.0, cached_v_);

  cached_concat_ = tensor::Matrix(x.rows(), d);
  cached_attn_.assign(batch * heads_, {});
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t row0 = b * seq_len;
    for (std::size_t h = 0; h < heads_; ++h) {
      auto qh = slice_head(cached_q_, row0, seq_len, h, head_dim);
      auto kh = slice_head(cached_k_, row0, seq_len, h, head_dim);
      auto vh = slice_head(cached_v_, row0, seq_len, h, head_dim);
      tensor::Matrix scores(seq_len, seq_len);
      tensor::gemm(scale, qh, false, kh, true, 0.0, scores);
      causal_softmax(scores);
      tensor::Matrix out(seq_len, head_dim);
      tensor::gemm(1.0, scores, false, vh, false, 0.0, out);
      add_head_slice(cached_concat_, out, row0, h, head_dim);
      cached_attn_[b * heads_ + h] = std::move(scores);
    }
  }
  tensor::Matrix y(x.rows(), d);
  tensor::gemm(1.0, cached_concat_, false, wo_.value, false, 0.0, y);
  return y;
}

tensor::Matrix MultiHeadSelfAttention::forward_inference(
    const tensor::Matrix& x, std::size_t seq_len) const {
  // Same math as forward without touching caches.
  const std::size_t batch = x.rows() / seq_len;
  const std::size_t d = dim();
  const std::size_t head_dim = d / heads_;
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim));
  tensor::Matrix q(x.rows(), d), k(x.rows(), d), v(x.rows(), d);
  tensor::gemm(1.0, x, false, wq_.value, false, 0.0, q);
  tensor::gemm(1.0, x, false, wk_.value, false, 0.0, k);
  tensor::gemm(1.0, x, false, wv_.value, false, 0.0, v);
  tensor::Matrix concat(x.rows(), d);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t row0 = b * seq_len;
    for (std::size_t h = 0; h < heads_; ++h) {
      auto qh = slice_head(q, row0, seq_len, h, head_dim);
      auto kh = slice_head(k, row0, seq_len, h, head_dim);
      auto vh = slice_head(v, row0, seq_len, h, head_dim);
      tensor::Matrix scores(seq_len, seq_len);
      tensor::gemm(scale, qh, false, kh, true, 0.0, scores);
      causal_softmax(scores);
      tensor::Matrix out(seq_len, head_dim);
      tensor::gemm(1.0, scores, false, vh, false, 0.0, out);
      add_head_slice(concat, out, row0, h, head_dim);
    }
  }
  tensor::Matrix y(x.rows(), d);
  tensor::gemm(1.0, concat, false, wo_.value, false, 0.0, y);
  return y;
}

tensor::Matrix MultiHeadSelfAttention::backward(const tensor::Matrix& dy) {
  if (cached_x_.empty()) {
    throw std::logic_error("MHA::backward before forward");
  }
  const std::size_t seq_len = cached_seq_len_;
  const std::size_t batch = cached_x_.rows() / seq_len;
  const std::size_t d = dim();
  const std::size_t head_dim = d / heads_;
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim));

  // Through the output projection.
  tensor::gemm(1.0, cached_concat_, true, dy, false, 1.0, wo_.grad);
  tensor::Matrix dconcat(dy.rows(), d);
  tensor::gemm(1.0, dy, false, wo_.value, true, 0.0, dconcat);

  tensor::Matrix dq(dy.rows(), d), dk(dy.rows(), d), dv(dy.rows(), d);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t row0 = b * seq_len;
    for (std::size_t h = 0; h < heads_; ++h) {
      const auto& attn = cached_attn_[b * heads_ + h];
      auto qh = slice_head(cached_q_, row0, seq_len, h, head_dim);
      auto kh = slice_head(cached_k_, row0, seq_len, h, head_dim);
      auto vh = slice_head(cached_v_, row0, seq_len, h, head_dim);
      auto dout = slice_head(dconcat, row0, seq_len, h, head_dim);

      // dV_h = A^T dOut ; dA = dOut V_h^T.
      tensor::Matrix dvh(seq_len, head_dim);
      tensor::gemm(1.0, attn, true, dout, false, 0.0, dvh);
      tensor::Matrix dattn(seq_len, seq_len);
      tensor::gemm(1.0, dout, false, vh, true, 0.0, dattn);

      // Softmax backward per row (masked entries have attn == 0).
      tensor::Matrix dscores(seq_len, seq_len);
      for (std::size_t i = 0; i < seq_len; ++i) {
        double dot = 0.0;
        for (std::size_t j = 0; j < seq_len; ++j) {
          dot += dattn(i, j) * attn(i, j);
        }
        for (std::size_t j = 0; j < seq_len; ++j) {
          dscores(i, j) = attn(i, j) * (dattn(i, j) - dot);
        }
      }

      tensor::Matrix dqh(seq_len, head_dim), dkh(seq_len, head_dim);
      tensor::gemm(scale, dscores, false, kh, false, 0.0, dqh);
      tensor::gemm(scale, dscores, true, qh, false, 0.0, dkh);

      add_head_slice(dq, dqh, row0, h, head_dim);
      add_head_slice(dk, dkh, row0, h, head_dim);
      add_head_slice(dv, dvh, row0, h, head_dim);
    }
  }

  tensor::gemm(1.0, cached_x_, true, dq, false, 1.0, wq_.grad);
  tensor::gemm(1.0, cached_x_, true, dk, false, 1.0, wk_.grad);
  tensor::gemm(1.0, cached_x_, true, dv, false, 1.0, wv_.grad);
  tensor::Matrix dx(cached_x_.rows(), d);
  tensor::gemm(1.0, dq, false, wq_.value, true, 0.0, dx);
  tensor::gemm(1.0, dk, false, wk_.value, true, 1.0, dx);
  tensor::gemm(1.0, dv, false, wv_.value, true, 1.0, dx);
  return dx;
}

TransformerBlock::TransformerBlock(std::size_t dim, std::size_t heads,
                                   std::size_t ffn_dim, util::Rng& rng,
                                   std::string name)
    : ln1_(dim, name + ".ln1"),
      ln2_(dim, name + ".ln2"),
      attn_(dim, heads, rng, name + ".attn"),
      ffn1_(dim, ffn_dim, rng, Activation::kRelu, name + ".ffn1"),
      ffn2_(ffn_dim, dim, rng, Activation::kNone, name + ".ffn2") {}

std::vector<Parameter*> TransformerBlock::params() {
  std::vector<Parameter*> out;
  for (auto* layer : std::initializer_list<Layer*>{&ln1_, &attn_, &ln2_,
                                                   &ffn1_, &ffn2_}) {
    for (auto* p : layer->params()) out.push_back(p);
  }
  return out;
}

tensor::Matrix TransformerBlock::forward(const tensor::Matrix& x,
                                         std::size_t seq_len) {
  tensor::Matrix h = x;
  tensor::add_inplace(h, attn_.forward(ln1_.forward(x), seq_len));
  tensor::Matrix out = h;
  tensor::add_inplace(out, ffn2_.forward(ffn1_.forward(ln2_.forward(h))));
  return out;
}

tensor::Matrix TransformerBlock::forward_inference(const tensor::Matrix& x,
                                                   std::size_t seq_len) const {
  tensor::Matrix h = x;
  tensor::add_inplace(
      h, attn_.forward_inference(ln1_.forward_inference(x), seq_len));
  tensor::Matrix out = h;
  tensor::add_inplace(out, ffn2_.forward_inference(ffn1_.forward_inference(
                               ln2_.forward_inference(h))));
  return out;
}

tensor::Matrix TransformerBlock::backward(const tensor::Matrix& dy) {
  // out = h + ffn2(ffn1(ln2(h)));  h = x + attn(ln1(x)).
  tensor::Matrix dh = dy;
  tensor::add_inplace(dh, ln2_.backward(ffn1_.backward(ffn2_.backward(dy))));
  tensor::Matrix dx = dh;
  tensor::add_inplace(dx, ln1_.backward(attn_.backward(dh)));
  return dx;
}

AttentionInferenceSession::AttentionInferenceSession(
    const MultiHeadSelfAttention& layer, std::size_t rows,
    std::size_t seq_len, tensor::Workspace& ws)
    : layer_(&layer), seq_len_(seq_len) {
  if (rows % seq_len != 0) {
    throw std::invalid_argument(
        "AttentionInferenceSession: rows not a multiple of seq_len");
  }
  const std::size_t d = layer.dim();
  const std::size_t head_dim = d / layer.heads();
  q_ = ws.take(rows, d);
  k_ = ws.take(rows, d);
  v_ = ws.take(rows, d);
  concat_ = ws.take(rows, d);
  qh_ = ws.take(seq_len, head_dim);
  kh_ = ws.take(seq_len, head_dim);
  vh_ = ws.take(seq_len, head_dim);
  outh_ = ws.take(seq_len, head_dim);
  scores_ = ws.take(seq_len, seq_len);
}

void AttentionInferenceSession::forward(tensor::ConstMatrixView x,
                                        tensor::MatrixView y) const {
  // Same math as forward_inference over caller-owned storage; the per-head
  // slice/softmax/GEMM loop reuses one set of scratch views instead of
  // allocating per head.
  const std::size_t batch = x.rows() / seq_len_;
  const std::size_t d = layer_->dim();
  const std::size_t head_dim = d / layer_->heads();
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim));
  tensor::gemm(1.0, x, false, layer_->wq(), false, 0.0, q_);
  tensor::gemm(1.0, x, false, layer_->wk(), false, 0.0, k_);
  tensor::gemm(1.0, x, false, layer_->wv(), false, 0.0, v_);
  concat_.set_zero();
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t row0 = b * seq_len_;
    for (std::size_t h = 0; h < layer_->heads(); ++h) {
      slice_head_into(q_, row0, seq_len_, h, head_dim, qh_);
      slice_head_into(k_, row0, seq_len_, h, head_dim, kh_);
      slice_head_into(v_, row0, seq_len_, h, head_dim, vh_);
      tensor::gemm(scale, qh_, false, kh_, true, 0.0, scores_);
      causal_softmax(scores_);
      tensor::gemm(1.0, scores_, false, vh_, false, 0.0, outh_);
      add_head_slice(concat_, outh_, row0, h, head_dim);
    }
  }
  tensor::gemm(1.0, concat_, false, layer_->wo(), false, 0.0, y);
}

TransformerBlockSession::TransformerBlockSession(const TransformerBlock& block,
                                                 std::size_t rows,
                                                 std::size_t seq_len,
                                                 tensor::Workspace& ws)
    : block_(&block),
      attn_(block.attn(), rows, seq_len, ws),
      ffn1_(block.ffn1()),
      ffn2_(block.ffn2()) {
  const std::size_t d = block.attn().dim();
  ln_out_ = ws.take(rows, d);
  attn_y_ = ws.take(rows, d);
  hmid_ = ws.take(rows, d);
  ffn_h_ = ws.take(rows, ffn1_.output_dim());
  ffn_y_ = ws.take(rows, d);
}

void TransformerBlockSession::forward(tensor::ConstMatrixView x,
                                      tensor::MatrixView out) const {
  // h = x + MHA(LN1(x)); out = h + FFN(LN2(h)). The residual copies mirror
  // the training path's unbooked `Matrix h = x` assignments.
  block_->ln1().apply_view(x, ln_out_);
  attn_.forward(ln_out_, attn_y_);
  for (std::size_t i = 0; i < x.size(); ++i) hmid_.data()[i] = x.data()[i];
  tensor::add_inplace(hmid_, attn_y_);
  block_->ln2().apply_view(hmid_, ln_out_);
  ffn1_.apply(ln_out_, ffn_h_);
  ffn2_.apply(ffn_h_, ffn_y_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = hmid_.data()[i];
  }
  tensor::add_inplace(out, ffn_y_);
}

tensor::Matrix positional_encoding(std::size_t seq_len, std::size_t dim) {
  tensor::Matrix pe(seq_len, dim);
  for (std::size_t t = 0; t < seq_len; ++t) {
    for (std::size_t c = 0; c < dim; ++c) {
      const double exponent =
          static_cast<double>(2 * (c / 2)) / static_cast<double>(dim);
      const double angle =
          static_cast<double>(t) / std::pow(10000.0, exponent);
      pe(t, c) = (c % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
  return pe;
}

}  // namespace ranknet::nn

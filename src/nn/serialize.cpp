#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "tensor/serialize.hpp"
#include "util/string_util.hpp"

namespace ranknet::nn {

namespace {
// v1: bare magic, then count + parameters, no integrity check.
constexpr std::uint64_t kMagicV1 = 0x524b4e45542d3031ULL;  // "RKNET-01"
// v2+: magic + version + payload size + FNV-1a checksum, then the payload.
constexpr std::uint64_t kMagicV2 = 0x524b4e54763253ULL;  // "RKNTv2S"
constexpr std::uint32_t kSchemaVersion = 2;
// v3 appends a calibration section to the payload; same magic and envelope.
constexpr std::uint32_t kSchemaVersionCalibrated = 3;
// A parameter name longer than this means the length field is garbage.
constexpr std::uint64_t kMaxNameLen = 1 << 16;

void write_string(std::ostream& out, const std::string& s) {
  const std::uint64_t n = s.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(s.data(), static_cast<std::streamsize>(n));
}

util::Result<std::string> read_string(std::istream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return util::Status::corrupt_data("truncated string length");
  if (n > kMaxNameLen) {
    return util::Status::corrupt_data(
        util::format("implausible string length %llu",
                     static_cast<unsigned long long>(n)));
  }
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) return util::Status::corrupt_data("truncated string payload");
  return s;
}

/// v3 calibration section: entry count, then per entry a tensor name, the
/// recorded activation absmax, and the (always-zero, symmetric) zero point.
util::Status load_calibration(std::istream& in,
                              tensor::quant::Calibration& out,
                              const std::string& path) {
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) {
    return util::Status::corrupt_data("truncated calibration header in " +
                                      path);
  }
  // Sanity bound: a model has a handful of GEMM tensors, not millions.
  if (count > kMaxNameLen) {
    return util::Status::corrupt_data(
        util::format("implausible calibration entry count %llu in %s",
                     static_cast<unsigned long long>(count), path.c_str()));
  }
  tensor::quant::Calibration calib;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto name = read_string(in);
    if (!name.ok()) return name.status();
    double absmax = 0.0, zero_point = 0.0;
    in.read(reinterpret_cast<char*>(&absmax), sizeof(absmax));
    in.read(reinterpret_cast<char*>(&zero_point), sizeof(zero_point));
    if (!in) {
      return util::Status::corrupt_data("truncated calibration entry in " +
                                        path);
    }
    // The runtime quantizes symmetrically; an asymmetric artifact would be
    // silently misinterpreted, so reject it loudly instead.
    if (zero_point != 0.0) {
      return util::Status::corrupt_data(
          "nonzero int8 zero point for '" + name.value() + "' in " + path +
          " (runtime is symmetric-only)");
    }
    calib[name.value()] = absmax;
  }
  out = std::move(calib);
  return {};
}

/// Payload shared by all versions: count, then named parameter matrices;
/// v3 payloads carry a trailing calibration section. Parses into scratch
/// and commits only when everything matched, so a failed load never leaves
/// a model half-overwritten.
util::Status load_payload(std::istream& in,
                          const std::vector<Parameter*>& params,
                          std::uint32_t version,
                          tensor::quant::Calibration* calibration,
                          const std::string& path, bool strict_tail) {
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return util::Status::corrupt_data("truncated header in " + path);
  if (count != params.size()) {
    return util::Status::corrupt_data(util::format(
        "parameter count mismatch in %s: file has %llu, model has %zu",
        path.c_str(), static_cast<unsigned long long>(count), params.size()));
  }
  std::vector<tensor::Matrix> staged;
  staged.reserve(params.size());
  for (const auto* p : params) {
    auto name = read_string(in);
    if (!name.ok()) return name.status();
    if (name.value() != p->name) {
      return util::Status::corrupt_data("expected parameter '" + p->name +
                                        "', found '" + name.value() + "' in " +
                                        path);
    }
    tensor::Matrix m;
    try {
      m = tensor::read_matrix(in);
    } catch (const std::exception& e) {
      return util::Status::corrupt_data(std::string(e.what()) + " for " +
                                        p->name + " in " + path);
    }
    if (!m.same_shape(p->value)) {
      return util::Status::corrupt_data("shape mismatch for " + p->name +
                                        " in " + path);
    }
    staged.push_back(std::move(m));
  }
  // Parse the calibration section (when present) before committing any
  // parameter, so a truncated tail leaves the model untouched too.
  tensor::quant::Calibration calib;
  if (version >= kSchemaVersionCalibrated) {
    if (util::Status s = load_calibration(in, calib, path); !s.ok()) return s;
  }
  // The payload must end exactly where the last section does. Trailing
  // bytes mean the writer and this parser disagree about the schema (e.g.
  // a calibration section whose entry count was shrunk by corruption with
  // an honestly regenerated checksum) — reject before committing anything
  // rather than silently ignoring content we did not understand. v1 legacy
  // files predate the sized-payload envelope and stay lenient.
  if (strict_tail && in.peek() != std::istream::traits_type::eof()) {
    return util::Status::corrupt_data("trailing bytes after payload in " +
                                      path);
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    // The commit both frees the old weight storage and may land the new
    // storage on a previously-packed address: drop reduced-precision packs
    // keyed to either pointer.
    tensor::quant::invalidate(params[i]->value.data());
    params[i]->value = std::move(staged[i]);
    tensor::quant::invalidate(params[i]->value.data());
    params[i]->zero_grad();
  }
  if (calibration != nullptr) *calibration = std::move(calib);
  return {};
}

void save_artifact(const std::string& path,
                   const std::vector<Parameter*>& params,
                   const tensor::quant::Calibration* calibration) {
  std::ostringstream payload(std::ios::binary);
  const std::uint64_t count = params.size();
  payload.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto* p : params) {
    write_string(payload, p->name);
    tensor::write_matrix(payload, p->value);
  }
  if (calibration != nullptr) {
    const std::uint64_t n = calibration->size();
    payload.write(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const auto& [name, absmax] : *calibration) {
      write_string(payload, name);
      const double zero_point = 0.0;  // symmetric quantization only
      payload.write(reinterpret_cast<const char*>(&absmax), sizeof(absmax));
      payload.write(reinterpret_cast<const char*>(&zero_point),
                    sizeof(zero_point));
    }
  }
  const std::string bytes = payload.str();
  const std::uint64_t checksum = util::fnv1a(bytes);
  const std::uint64_t size = bytes.size();
  const std::uint32_t version =
      calibration != nullptr ? kSchemaVersionCalibrated : kSchemaVersion;

  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  out.write(reinterpret_cast<const char*>(&kMagicV2), sizeof(kMagicV2));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.write(bytes.data(), static_cast<std::streamsize>(size));
  if (!out) throw std::runtime_error("save_params: write failed: " + path);
}

}  // namespace

void save_params(const std::string& path,
                 const std::vector<Parameter*>& params) {
  save_artifact(path, params, nullptr);
}

void save_params(const std::string& path,
                 const std::vector<Parameter*>& params,
                 const tensor::quant::Calibration& calibration) {
  save_artifact(path, params, &calibration);
}

util::Status try_load_params(const std::string& path,
                             const std::vector<Parameter*>& params,
                             tensor::quant::Calibration* calibration) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::not_found("cannot open " + path);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) return util::Status::corrupt_data("truncated header in " + path);

  if (magic == kMagicV1) {
    // Legacy pre-checksum artifacts stay loadable (backward compat).
    return load_payload(in, params, /*version=*/1, calibration, path,
                        /*strict_tail=*/false);
  }
  if (magic != kMagicV2) {
    return util::Status::corrupt_data("bad magic in " + path);
  }
  std::uint32_t version = 0;
  std::uint64_t size = 0, checksum = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in) return util::Status::corrupt_data("truncated header in " + path);
  if (version > kSchemaVersionCalibrated) {
    return util::Status::corrupt_data(
        util::format("%s has schema version %u, newer than supported %u",
                     path.c_str(), version, kSchemaVersionCalibrated));
  }
  // Validate the declared size against what the file actually holds before
  // trusting it with an allocation — a corrupt size field must not turn
  // into a multi-gigabyte buffer.
  const std::istream::pos_type header_end = in.tellg();
  in.seekg(0, std::ios::end);
  const std::uint64_t remaining =
      static_cast<std::uint64_t>(in.tellg() - header_end);
  in.seekg(header_end);
  if (size != remaining) {
    return util::Status::corrupt_data(util::format(
        "payload size mismatch in %s: header says %llu, file has %llu",
        path.c_str(), static_cast<unsigned long long>(size),
        static_cast<unsigned long long>(remaining)));
  }
  std::string bytes(size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  if (!in || in.gcount() != static_cast<std::streamsize>(size)) {
    return util::Status::corrupt_data("truncated payload in " + path);
  }
  if (util::fnv1a(bytes) != checksum) {
    return util::Status::corrupt_data("checksum mismatch in " + path +
                                      " (artifact is corrupt)");
  }
  std::istringstream payload(bytes, std::ios::binary);
  return load_payload(payload, params, version, calibration, path,
                      /*strict_tail=*/true);
}

util::Status try_load_params(const std::string& path,
                             const std::vector<Parameter*>& params) {
  return try_load_params(path, params, nullptr);
}

void load_params(const std::string& path,
                 const std::vector<Parameter*>& params) {
  if (util::Status s = try_load_params(path, params); !s.ok()) {
    throw std::runtime_error("load_params: " + s.to_string());
  }
}

}  // namespace ranknet::nn

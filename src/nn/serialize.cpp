#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace ranknet::nn {

namespace {
constexpr std::uint64_t kMagic = 0x524b4e45542d3031ULL;  // "RKNET-01"

void write_string(std::ostream& out, const std::string& s) {
  const std::uint64_t n = s.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(s.data(), static_cast<std::streamsize>(n));
}

std::string read_string(std::istream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

}  // namespace

void save_params(const std::string& path,
                 const std::vector<Parameter*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const std::uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto* p : params) {
    write_string(out, p->name);
    tensor::write_matrix(out, p->value);
  }
  if (!out) throw std::runtime_error("save_params: write failed: " + path);
}

void load_params(const std::string& path,
                 const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  std::uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_params: bad header in " + path);
  }
  if (count != params.size()) {
    throw std::runtime_error("load_params: parameter count mismatch in " +
                             path);
  }
  for (auto* p : params) {
    const std::string name = read_string(in);
    if (name != p->name) {
      throw std::runtime_error("load_params: expected parameter '" + p->name +
                               "', found '" + name + "' in " + path);
    }
    auto m = tensor::read_matrix(in);
    if (!m.same_shape(p->value)) {
      throw std::runtime_error("load_params: shape mismatch for " + p->name);
    }
    p->value = std::move(m);
    p->zero_grad();
  }
}

}  // namespace ranknet::nn

// Trainable parameter: value + accumulated gradient, plus the Layer
// interface every trainable module implements so optimizers and the model
// cache can walk a model's parameters uniformly.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace ranknet::nn {

struct Parameter {
  std::string name;
  tensor::Matrix value;
  tensor::Matrix grad;

  Parameter() = default;
  Parameter(std::string n, tensor::Matrix v)
      : name(std::move(n)),
        value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.set_zero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;
  /// All trainable parameters of this layer (and sub-layers).
  virtual std::vector<Parameter*> params() = 0;

  void zero_grad() {
    for (auto* p : params()) p->zero_grad();
  }
  std::size_t num_weights() {
    std::size_t n = 0;
    for (auto* p : params()) n += p->value.size();
    return n;
  }
};

}  // namespace ranknet::nn

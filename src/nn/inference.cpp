#include "nn/inference.hpp"

#include <stdexcept>

#include "tensor/quant.hpp"

namespace ranknet::nn {

DenseInferenceSession::DenseInferenceSession(const Dense& layer)
    : layer_(&layer) {
  // Bind the weight pointer to its tensor name so reduced-precision packs
  // can resolve their calibrated activation range (no-op cost otherwise).
  tensor::quant::annotate(layer.weight().data(), layer.weight_name());
}

void DenseInferenceSession::apply(tensor::ConstMatrixView x,
                                  tensor::MatrixView y) const {
  if (tensor::quant::recording_active()) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      tensor::quant::record_activation(layer_->weight_name(), x.row(r).data(),
                                       x.cols());
    }
  }
  // Same dispatched op as Dense::apply — layer and session share one
  // compiled path per variant, so their outputs are bit-identical.
  tensor::dense_forward(x, tensor::ConstMatrixView(layer_->weight()),
                        tensor::ConstMatrixView(layer_->bias()).row(0),
                        to_dense_act(layer_->activation()), y);
}

void EmbeddingInferenceSession::gather(std::span<const int> indices,
                                       tensor::MatrixView out) const {
  const tensor::Matrix& table = layer_->table();
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const int idx = indices[r];
    if (idx < 0 || static_cast<std::size_t>(idx) >= layer_->vocab()) {
      throw std::out_of_range("Embedding: index out of range");
    }
    for (std::size_t c = 0; c < table.cols(); ++c) {
      out(r, c) = table(static_cast<std::size_t>(idx), c);
    }
  }
}

void GaussianInferenceSession::forward(tensor::ConstMatrixView h,
                                       tensor::MatrixView mu,
                                       tensor::MatrixView sigma) const {
  if (tensor::quant::recording_active()) {
    for (std::size_t r = 0; r < h.rows(); ++r) {
      tensor::quant::record_activation(mu_.layer().weight_name(),
                                       h.row(r).data(), h.cols());
      tensor::quant::record_activation(sigma_.layer().weight_name(),
                                       h.row(r).data(), h.cols());
    }
  }
  tensor::gaussian_head_forward(
      h, tensor::ConstMatrixView(mu_.layer().weight()),
      tensor::ConstMatrixView(mu_.layer().bias()).row(0),
      tensor::ConstMatrixView(sigma_.layer().weight()),
      tensor::ConstMatrixView(sigma_.layer().bias()).row(0),
      GaussianHead::kSigmaFloor, mu, sigma);
}

void GaussianInferenceSession::sample(tensor::ConstMatrixView mu,
                                      tensor::ConstMatrixView sigma,
                                      util::Rng& rng, tensor::MatrixView out) {
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = rng.normal(mu(r, c), sigma(r, c));
    }
  }
}

void GaussianInferenceSession::sample(tensor::ConstMatrixView mu,
                                      tensor::ConstMatrixView sigma,
                                      std::span<util::Rng> row_rngs,
                                      tensor::MatrixView out) {
  if (row_rngs.size() != out.rows()) {
    throw std::invalid_argument(
        "GaussianInferenceSession::sample: one rng per row");
  }
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = row_rngs[r].normal(mu(r, c), sigma(r, c));
    }
  }
}

void GaussianInferenceSession::sample_rows(
    tensor::ConstMatrixView mu, tensor::ConstMatrixView sigma,
    std::span<const std::size_t> branch_of_row, std::span<util::Rng> row_rngs,
    tensor::MatrixView out) {
  if (row_rngs.size() != out.rows() || branch_of_row.size() != out.rows()) {
    throw std::invalid_argument(
        "GaussianInferenceSession::sample_rows: one rng and one branch row "
        "per output row");
  }
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const std::size_t b = branch_of_row[r];
    if (b >= mu.rows()) {
      throw std::out_of_range(
          "GaussianInferenceSession::sample_rows: branch row out of range");
    }
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = row_rngs[r].normal(mu(b, c), sigma(b, c));
    }
  }
}

LstmInferenceSession::LstmInferenceSession(const LstmLayer& layer,
                                           std::size_t batch,
                                           tensor::Workspace& ws)
    : layer_(&layer),
      batch_(batch),
      in_(layer.input_dim()),
      hidden_(layer.hidden_dim()) {
  bias_ = tensor::ConstMatrixView(layer.bias()).row(0);

  // Pack [wx ; wh] row-concatenated: rows [0, in) are wx, rows [in, in+H)
  // are wh. One GEMM over [x | h] then walks exactly the same per-element
  // accumulation order as the training cell's wx-then-wh GEMM pair.
  w_packed_ = ws.take(in_ + hidden_, 4 * hidden_);
  const tensor::Matrix& wx = layer.wx();
  const tensor::Matrix& wh = layer.wh();
  for (std::size_t r = 0; r < in_; ++r) {
    for (std::size_t c = 0; c < 4 * hidden_; ++c) w_packed_(r, c) = wx(r, c);
  }
  for (std::size_t r = 0; r < hidden_; ++r) {
    for (std::size_t c = 0; c < 4 * hidden_; ++c) {
      w_packed_(in_ + r, c) = wh(r, c);
    }
  }
  // The workspace slot may be a reused address whose previous contents were
  // packed by a reduced-precision variant: drop any stale pack, then bind
  // the packed tensor's calibration name. (Pointer-keyed pack coherence —
  // see tensor/quant.hpp.)
  tensor::quant::invalidate(w_packed_.data());
  tensor::quant::annotate(w_packed_.data(), layer.wx_name());

  xh_ = ws.take_zeroed(batch_, in_ + hidden_);
  h_ = ws.take_zeroed(batch_, hidden_);
  c_ = ws.take_zeroed(batch_, hidden_);
  scratch_.gates = ws.take(batch_, 4 * hidden_);
  scratch_.sig = ws.take(batch_, 3 * hidden_);
  scratch_.tg = ws.take(batch_, hidden_);
  scratch_.fgate = ws.take(batch_, hidden_);
  scratch_.igate = ws.take(batch_, hidden_);
  scratch_.ggate = ws.take(batch_, hidden_);
  scratch_.ogate = ws.take(batch_, hidden_);
  scratch_.tanh_c = ws.take(batch_, hidden_);
}

void LstmInferenceSession::reset_state() {
  h_.set_zero();
  c_.set_zero();
}

void LstmInferenceSession::load_state(const LstmState& state) {
  if (state.h.empty()) {
    reset_state();
    return;
  }
  if (state.h.rows() != batch_ || state.h.cols() != hidden_) {
    throw std::invalid_argument("LstmInferenceSession: state shape mismatch");
  }
  for (std::size_t i = 0; i < batch_ * hidden_; ++i) {
    h_.data()[i] = state.h.data()[i];
    c_.data()[i] = state.c.data()[i];
  }
}

void LstmInferenceSession::load_state_rows(
    const LstmInferenceSession& src,
    std::span<const std::size_t> src_row_per_dst) {
  if (src_row_per_dst.size() != batch_) {
    throw std::invalid_argument(
        "LstmInferenceSession::load_state_rows: one source row per state "
        "row");
  }
  if (src.hidden_ != hidden_) {
    throw std::invalid_argument(
        "LstmInferenceSession::load_state_rows: hidden dim mismatch");
  }
  for (std::size_t r = 0; r < batch_; ++r) {
    const std::size_t s = src_row_per_dst[r];
    if (s >= src.batch_) {
      throw std::out_of_range(
          "LstmInferenceSession::load_state_rows: source row out of range");
    }
    const double* sh = src.h_.data() + s * hidden_;
    const double* sc = src.c_.data() + s * hidden_;
    double* dh = h_.data() + r * hidden_;
    double* dc = c_.data() + r * hidden_;
    for (std::size_t j = 0; j < hidden_; ++j) {
      dh[j] = sh[j];
      dc[j] = sc[j];
    }
  }
}

void LstmInferenceSession::store_state(LstmState& state) const {
  if (state.h.rows() != batch_ || state.h.cols() != hidden_) {
    state = LstmState(batch_, hidden_);
  }
  for (std::size_t i = 0; i < batch_ * hidden_; ++i) {
    state.h.data()[i] = h_.data()[i];
    state.c.data()[i] = c_.data()[i];
  }
}

void LstmInferenceSession::set_input(tensor::ConstMatrixView x) {
  if (x.rows() != batch_ || x.cols() != in_) {
    throw std::invalid_argument("LstmInferenceSession: input shape mismatch");
  }
  for (std::size_t r = 0; r < batch_; ++r) {
    const auto src = x.row(r);
    auto dst = x_row(r);
    for (std::size_t c = 0; c < in_; ++c) dst[c] = src[c];
  }
}

void LstmInferenceSession::step() {
  // Pack the recurrent state into the tail columns of [x | h].
  for (std::size_t r = 0; r < batch_; ++r) {
    double* dst = xh_.data() + r * xh_.cols() + in_;
    const double* src = h_.data() + r * hidden_;
    for (std::size_t j = 0; j < hidden_; ++j) dst[j] = src[j];
  }
  if (tensor::quant::recording_active()) {
    tensor::quant::record_activation(layer_->wx_name(), xh_.data(),
                                     batch_ * xh_.cols());
  }
  tensor::lstm_cell_step(xh_, w_packed_, bias_, c_, h_, scratch_);
}

}  // namespace ranknet::nn

#include "nn/gaussian.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace ranknet::nn {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5*log(2*pi)
}  // namespace

GaussianHead::GaussianHead(std::size_t hidden_dim, std::size_t target_dim,
                           util::Rng& rng, std::string name)
    : mu_(hidden_dim, target_dim, rng, Activation::kNone, name + ".mu"),
      sigma_raw_(hidden_dim, target_dim, rng, Activation::kNone,
                 name + ".sigma") {}

GaussianHead::Output GaussianHead::forward(const tensor::Matrix& h) {
  Output out;
  out.mu = mu_.forward(h);
  cached_sigma_raw_ = sigma_raw_.forward(h);
  out.sigma = cached_sigma_raw_;
  tensor::softplus_inplace(out.sigma);
  for (auto& s : out.sigma.flat()) s += kSigmaFloor;
  return out;
}

GaussianHead::Output GaussianHead::forward_inference(
    const tensor::Matrix& h) const {
  // One fused tensor op shared with GaussianInferenceSession::forward, so
  // the serving path is bit-identical to this one under either kernel
  // variant. The sequence it runs (two kNone dense projections, stable
  // softplus, floor add) is exactly what the pre-dispatch code ran here.
  Output out;
  out.mu = tensor::Matrix(h.rows(), mu_.output_dim());
  out.sigma = tensor::Matrix(h.rows(), sigma_raw_.output_dim());
  tensor::gaussian_head_forward(
      tensor::ConstMatrixView(h), tensor::ConstMatrixView(mu_.weight()),
      tensor::ConstMatrixView(mu_.bias()).row(0),
      tensor::ConstMatrixView(sigma_raw_.weight()),
      tensor::ConstMatrixView(sigma_raw_.bias()).row(0), kSigmaFloor,
      tensor::MatrixView(out.mu), tensor::MatrixView(out.sigma));
  return out;
}

double GaussianHead::nll(const Output& out, const tensor::Matrix& z,
                         std::span<const double> weights) {
  if (!out.mu.same_shape(z)) {
    throw std::invalid_argument("GaussianHead::nll: target shape mismatch");
  }
  double total = 0.0, wsum = 0.0;
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const double w = weights.empty() ? 1.0 : weights[r];
    double row_nll = 0.0;
    for (std::size_t c = 0; c < z.cols(); ++c) {
      const double mu = out.mu(r, c);
      const double sigma = out.sigma(r, c);
      const double err = z(r, c) - mu;
      row_nll += kHalfLog2Pi + std::log(sigma) +
                 0.5 * err * err / (sigma * sigma);
    }
    total += w * row_nll;
    wsum += w;
  }
  return wsum > 0.0 ? total / wsum : 0.0;
}

double GaussianHead::nll_backward(const Output& out, const tensor::Matrix& z,
                                  std::span<const double> weights,
                                  tensor::Matrix& dh) {
  if (cached_sigma_raw_.empty()) {
    throw std::logic_error("GaussianHead::nll_backward before forward");
  }
  double wsum = 0.0;
  for (std::size_t r = 0; r < z.rows(); ++r) {
    wsum += weights.empty() ? 1.0 : weights[r];
  }
  if (wsum <= 0.0) wsum = 1.0;

  tensor::Matrix dmu(z.rows(), z.cols());
  tensor::Matrix dsraw(z.rows(), z.cols());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const double w = (weights.empty() ? 1.0 : weights[r]) / wsum;
    for (std::size_t c = 0; c < z.cols(); ++c) {
      const double mu = out.mu(r, c);
      const double sigma = out.sigma(r, c);
      const double err = z(r, c) - mu;
      // dNLL/dmu and dNLL/dsigma, then sigma -> raw via softplus'(x) =
      // sigmoid(x).
      dmu(r, c) = w * (-err) / (sigma * sigma);
      const double dsig =
          w * (1.0 / sigma - err * err / (sigma * sigma * sigma));
      const double sraw = cached_sigma_raw_(r, c);
      dsraw(r, c) = dsig / (1.0 + std::exp(-sraw));
    }
  }
  const double total = nll(out, z, weights);

  dh = mu_.backward(dmu);
  tensor::add_inplace(dh, sigma_raw_.backward(dsraw));
  return total;
}

tensor::Matrix GaussianHead::sample(const Output& out, util::Rng& rng) {
  tensor::Matrix s(out.mu.rows(), out.mu.cols());
  for (std::size_t r = 0; r < s.rows(); ++r) {
    for (std::size_t c = 0; c < s.cols(); ++c) {
      s(r, c) = rng.normal(out.mu(r, c), out.sigma(r, c));
    }
  }
  return s;
}

tensor::Matrix GaussianHead::sample(const Output& out,
                                    std::span<util::Rng> row_rngs) {
  if (row_rngs.size() != out.mu.rows()) {
    throw std::invalid_argument("GaussianHead::sample: one rng per row");
  }
  tensor::Matrix s(out.mu.rows(), out.mu.cols());
  for (std::size_t r = 0; r < s.rows(); ++r) {
    for (std::size_t c = 0; c < s.cols(); ++c) {
      s(r, c) = row_rngs[r].normal(out.mu(r, c), out.sigma(r, c));
    }
  }
  return s;
}

std::vector<Parameter*> GaussianHead::params() {
  std::vector<Parameter*> out;
  for (auto* p : mu_.params()) out.push_back(p);
  for (auto* p : sigma_raw_.params()) out.push_back(p);
  return out;
}

}  // namespace ranknet::nn

#include "nn/embedding.hpp"

#include <stdexcept>

namespace ranknet::nn {

Embedding::Embedding(std::size_t vocab, std::size_t dim, util::Rng& rng,
                     std::string name)
    : table_(name + ".table", tensor::Matrix::randn(vocab, dim, rng, 0.1)) {}

tensor::Matrix Embedding::forward_inference(
    const std::vector<int>& indices) const {
  tensor::Matrix out(indices.size(), dim());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const auto idx = static_cast<std::size_t>(indices[r]);
    if (idx >= vocab()) {
      throw std::out_of_range("Embedding: index out of range");
    }
    for (std::size_t c = 0; c < dim(); ++c) out(r, c) = table_.value(idx, c);
  }
  return out;
}

tensor::Matrix Embedding::forward(const std::vector<int>& indices) {
  cached_indices_ = indices;
  return forward_inference(indices);
}

void Embedding::backward(const tensor::Matrix& dy) {
  if (dy.rows() != cached_indices_.size() || dy.cols() != dim()) {
    throw std::invalid_argument("Embedding::backward: shape mismatch");
  }
  for (std::size_t r = 0; r < cached_indices_.size(); ++r) {
    const auto idx = static_cast<std::size_t>(cached_indices_[r]);
    for (std::size_t c = 0; c < dim(); ++c) table_.grad(idx, c) += dy(r, c);
  }
}

}  // namespace ranknet::nn

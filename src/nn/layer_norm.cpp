#include "nn/layer_norm.hpp"

#include <cmath>

namespace ranknet::nn {

namespace {
constexpr double kEps = 1e-5;

/// Shared row loop for every LayerNorm face (training apply, inference
/// apply, view apply) — one compilation, bit-identical results. x_hat is
/// optional (training cache); y may exactly alias x.
void layer_norm_rows(const double* x, std::size_t rows, std::size_t d,
                     const double* gamma, const double* beta, double* y,
                     double* x_hat) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x + r * d;
    double mean = 0.0;
    for (std::size_t c = 0; c < d; ++c) mean += xr[c];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      var += (xr[c] - mean) * (xr[c] - mean);
    }
    var /= static_cast<double>(d);
    const double inv_std = 1.0 / std::sqrt(var + kEps);
    for (std::size_t c = 0; c < d; ++c) {
      const double xh = (xr[c] - mean) * inv_std;
      if (x_hat != nullptr) x_hat[r * d + c] = xh;
      y[r * d + c] = xh * gamma[c] + beta[c];
    }
  }
}

}  // namespace

LayerNorm::LayerNorm(std::size_t dim, std::string name)
    : gamma_(name + ".gamma", tensor::Matrix(1, dim, 1.0)),
      beta_(name + ".beta", tensor::Matrix(1, dim, 0.0)) {}

tensor::Matrix LayerNorm::apply(const tensor::Matrix& x,
                                tensor::Matrix* x_hat) const {
  const std::size_t d = x.cols();
  tensor::Matrix y(x.rows(), d);
  if (x_hat != nullptr) *x_hat = tensor::Matrix(x.rows(), d);
  layer_norm_rows(x.data(), x.rows(), d, gamma_.value.data(),
                  beta_.value.data(), y.data(),
                  x_hat != nullptr ? x_hat->data() : nullptr);
  return y;
}

void LayerNorm::apply_view(tensor::ConstMatrixView x,
                           tensor::MatrixView y) const {
  layer_norm_rows(x.data(), x.rows(), x.cols(), gamma_.value.data(),
                  beta_.value.data(), y.data(), nullptr);
}

tensor::Matrix LayerNorm::forward(const tensor::Matrix& x) {
  cached_inv_std_.resize(x.rows());
  const std::size_t d = x.cols();
  // Compute inv_std alongside apply (recomputed cheaply here for clarity).
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.data() + r * d;
    double mean = 0.0;
    for (std::size_t c = 0; c < d; ++c) mean += xr[c];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      var += (xr[c] - mean) * (xr[c] - mean);
    }
    var /= static_cast<double>(d);
    cached_inv_std_[r] = 1.0 / std::sqrt(var + kEps);
  }
  return apply(x, &cached_x_hat_);
}

tensor::Matrix LayerNorm::forward_inference(const tensor::Matrix& x) const {
  return apply(x, nullptr);
}

tensor::Matrix LayerNorm::backward(const tensor::Matrix& dy) {
  const std::size_t d = dy.cols();
  tensor::Matrix dx(dy.rows(), d);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const double inv_std = cached_inv_std_[r];
    // Grad w.r.t. x_hat, plus parameter grads.
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double dyv = dy(r, c);
      const double xh = cached_x_hat_(r, c);
      gamma_.grad(0, c) += dyv * xh;
      beta_.grad(0, c) += dyv;
      const double dxh = dyv * gamma_.value(0, c);
      sum_dxhat += dxh;
      sum_dxhat_xhat += dxh * xh;
    }
    const double inv_d = 1.0 / static_cast<double>(d);
    for (std::size_t c = 0; c < d; ++c) {
      const double dxh = dy(r, c) * gamma_.value(0, c);
      const double xh = cached_x_hat_(r, c);
      dx(r, c) = inv_std * (dxh - inv_d * sum_dxhat - inv_d * xh * sum_dxhat_xhat);
    }
  }
  return dx;
}

}  // namespace ranknet::nn

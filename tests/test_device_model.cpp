// Tests of the efficiency-study substrate (Figs. 10-12): instrumented
// workload measurement and the analytic device model.
#include <gtest/gtest.h>

#include "core/device_model.hpp"

namespace {

using namespace ranknet;
using core::Workload;
using tensor::Kernel;

TEST(Workload, MeasuresAllLstmKernelClasses) {
  const auto w = core::measure_ranknet_workload(16, 1);
  EXPECT_EQ(w.batch, 16u);
  EXPECT_GT(w.wall_seconds, 0.0);
  EXPECT_GT(w.cpu_us_per_sample(), 0.0);
  // The paper's five kernel classes must all appear in a training step.
  for (const auto k : {Kernel::kMatMul, Kernel::kMul, Kernel::kAdd,
                       Kernel::kSigmoid, Kernel::kTanh}) {
    EXPECT_GT(w.kernel(k).calls, 0u) << tensor::kernel_name(k);
    EXPECT_GT(w.kernel(k).flops, 0u) << tensor::kernel_name(k);
    EXPECT_GT(w.kernel(k).bytes, 0u) << tensor::kernel_name(k);
  }
  // MatMul dominates the flops (paper: ~half the walltime, most flops).
  const auto total = [&] {
    std::uint64_t t = 0;
    for (const auto& s : w.per_kernel) t += s.flops;
    return t;
  }();
  EXPECT_GT(w.kernel(Kernel::kMatMul).flops, total / 2);
}

TEST(Workload, FlopsScaleLinearlyWithBatch) {
  const auto w1 = core::measure_ranknet_workload(8, 1);
  const auto w2 = core::measure_ranknet_workload(16, 1);
  const double f1 = static_cast<double>(w1.kernel(Kernel::kMatMul).flops);
  const double f2 = static_cast<double>(w2.kernel(Kernel::kMatMul).flops);
  // X*W flops double; H*W flops double as well -> total should ~double.
  EXPECT_NEAR(f2 / f1, 2.0, 0.2);
  // Call counts are batch-independent (same graph, bigger tensors).
  EXPECT_EQ(w1.kernel(Kernel::kMatMul).calls,
            w2.kernel(Kernel::kMatMul).calls);
}

TEST(DeviceModel, LargeBatchIsFasterPerSampleOnAccelerators) {
  const auto w_small = core::measure_ranknet_workload(16, 1);
  const auto w_large = core::measure_ranknet_workload(256, 1);
  for (const auto& spec : {core::gpu_spec(), core::gpu_cudnn_spec()}) {
    const double small = core::modeled_us_per_sample(w_small, spec);
    const double large = core::modeled_us_per_sample(w_large, spec);
    EXPECT_LT(large, small) << spec.name;
  }
}

TEST(DeviceModel, CudnnFusionBeatsOpByOpGpu) {
  const auto w = core::measure_ranknet_workload(32, 1);
  EXPECT_LT(core::modeled_us_per_sample(w, core::gpu_cudnn_spec()),
            core::modeled_us_per_sample(w, core::gpu_spec()));
}

TEST(DeviceModel, HybridOffloadGrowsWithBatch) {
  const auto w_small = core::measure_ranknet_workload(16, 1);
  const auto w_large = core::measure_ranknet_workload(512, 1);
  const auto ve = core::ve_spec();
  const auto b_small = core::hybrid_breakdown(w_small, ve);
  const auto b_large = core::hybrid_breakdown(w_large, ve);
  EXPECT_GE(b_large.offloaded_flop_fraction,
            b_small.offloaded_flop_fraction);
  // Breakdown fractions sum to ~1.
  for (const auto& b : {b_small, b_large}) {
    const double total = b.matmul_mul_host + b.matmul_mul_dev +
                         b.pointwise_host + b.pointwise_dev + b.other_host +
                         b.other_dev + b.data_move;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DeviceModel, RooflineCeilingsArePositiveAndOrdered) {
  const auto roof = core::measure_cpu_roofline();
  EXPECT_GT(roof.peak_gflops, 0.1);
  EXPECT_GT(roof.scalar_gflops, 0.05);
  EXPECT_GT(roof.dram_bw_gbs, 0.1);
  // Dense FMA peak must exceed the dependent-scalar peak.
  EXPECT_GT(roof.peak_gflops, roof.scalar_gflops * 0.5);
}

}  // namespace
